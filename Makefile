GO ?= go

.PHONY: all build vet test race bench cover fuzz experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over every parser (seeds always run under `test`).
fuzz:
	$(GO) test -fuzz=FuzzTokenize -fuzztime=30s ./internal/pytoken
	$(GO) test -fuzz=FuzzParseModule -fuzztime=30s ./internal/pyparse
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/regex
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ltlf
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ir

# Regenerate every paper artifact (tables, figures, theorems).
experiments:
	$(GO) test -run 'TestPaper' -v .

clean:
	$(GO) clean ./...

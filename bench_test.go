package shelley

// Benchmark harness: one Benchmark* target per paper artifact (see the
// experiment index in DESIGN.md §3), plus ablation benchmarks for the
// design choices the library makes. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute timings are machine-dependent; EXPERIMENTS.md records the
// shapes that must hold (e.g. Glushkov ≤ Thompson states, RS ≤ classic
// membership queries).

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/check"
	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/learn"
	"github.com/shelley-go/shelley/internal/ltlf"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/regex"
	"github.com/shelley-go/shelley/internal/trace"
)

func mustRead(b *testing.B, name string) string {
	b.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

func mustLoadPaper(b *testing.B) *Module {
	b.Helper()
	m, err := LoadFiles(
		filepath.Join("testdata", "valve.py"),
		filepath.Join("testdata", "badsector.py"),
		filepath.Join("testdata", "goodsector.py"),
	)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- T1: Table 1 — parsing and modelling every annotation form ---

func BenchmarkTable1Annotations(b *testing.B) {
	src := mustRead(b, "valve.py") + "\n" + mustRead(b, "badsector.py")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSource(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: Table 2 — lowering the five return-statement forms ---

func BenchmarkTable2Returns(b *testing.B) {
	src := `@sys
class C:
    @op_initial
    def a(self):
        return ["b"]
    @op_initial
    def b(self):
        return ["a", "b"]
    @op_initial
    def c(self):
        return ["b"], 2
    @op_initial
    def d(self):
        return ["b"], True
    @op_initial_final
    def e(self):
        return ["a", "b"], 2
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSource(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F1: Fig. 1 — regenerating the Valve diagram ---

func BenchmarkFig1ValveDiagram(b *testing.B) {
	m := mustLoadPaper(b)
	valve, _ := m.Class("Valve")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dot := valve.ProtocolDiagram(); len(dot) == 0 {
			b.Fatal("empty diagram")
		}
	}
}

// --- F2: Fig. 2 — full BadSector verification (both errors) ---

func BenchmarkFig2BadSectorCheck(b *testing.B) {
	m := mustLoadPaper(b)
	bad, _ := m.Class("BadSector")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := bad.Check()
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Diagnostics) != 2 {
			b.Fatal("expected both paper errors")
		}
	}
}

// BenchmarkFig2GoodSectorCheck is the passing-counterpart baseline: how
// much of the cost is error search vs. plain verification.
func BenchmarkFig2GoodSectorCheck(b *testing.B) {
	m := mustLoadPaper(b)
	good, _ := m.Class("GoodSector")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := good.Check()
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() {
			b.Fatal("GoodSector must verify")
		}
	}
}

// --- F3: Fig. 3 — dependency-graph extraction for Sector ---

func BenchmarkFig3SectorModel(b *testing.B) {
	data, err := os.ReadFile(filepath.Join("testdata", "sector.py"))
	if err != nil {
		b.Fatal(err)
	}
	m, err := LoadSource(string(data))
	if err != nil {
		b.Fatal(err)
	}
	sector, _ := m.Class("Sector")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sector.DependencyDiagram(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F4a: Fig. 4 Examples 1-2 — trace-semantics membership ---

func benchProgram() ir.Program {
	return ir.NewLoop(ir.NewSeq(
		ir.NewCall("a"),
		ir.NewIf(
			ir.NewSeq(ir.NewCall("b"), ir.NewReturn()),
			ir.NewCall("c"),
		),
	))
}

func BenchmarkFig4TraceMembership(b *testing.B) {
	p := benchProgram()
	t1 := []string{"a", "c", "a", "c"}
	t2 := []string{"a", "c", "a", "b"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !trace.In(trace.Ongoing, t1, p) || !trace.In(trace.Returned, t2, p) {
			b.Fatal("paper examples must hold")
		}
	}
}

// --- F4b: Fig. 4 Example 3 — behavior inference ---

func BenchmarkFig4Inference(b *testing.B) {
	p := benchProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Extract(p)
		if len(res.Returned) != 1 {
			b.Fatal("inference shape changed")
		}
	}
}

// --- TH1/TH2: the theorem validation loop, as a benchmark ---

func BenchmarkTheoremValidation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	programs := make([]ir.Program, 64)
	for i := range programs {
		programs[i] = ir.Random(rng, ir.GeneratorConfig{MaxDepth: 3, Labels: []string{"a", "b"}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := programs[i%len(programs)]
		inferred := core.Infer(p)
		sem := regex.TraceSet(trace.Language(p, 3))
		enum := regex.TraceSet(regex.Enumerate(inferred, 3))
		if len(sem) != len(enum) {
			b.Fatal("theorem violated")
		}
	}
}

// --- C1: Corollary 1 — regex→DFA→regex round trip ---

func BenchmarkCorollary1RoundTrip(b *testing.B) {
	inferred := regex.Simplify(core.Infer(benchProgram()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dfa := automata.CompileMinimal(inferred)
		back := dfa.ToRegex()
		if regex.IsEmptyLanguage(back) {
			b.Fatal("round trip lost the language")
		}
	}
}

// --- X1: L* learning of the Valve protocol ---

func BenchmarkLStarValve(b *testing.B) {
	m := mustLoadPaper(b)
	valve, _ := m.Class("Valve")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valve.Learn(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// ablationRegex is a mid-size expression exercising all operators.
var ablationRegex = regex.MustParse("(a . (b + c))* . a . b . (c + a . (b + c)* . c)")

// BenchmarkAblationThompson/Glushkov/Derivatives compare the three
// regex→automaton constructions (paper future work discusses working
// directly on regular languages; these are the candidate engines).
func BenchmarkAblationThompson(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := automata.FromRegexThompson(ablationRegex)
		if n.NumStates() == 0 {
			b.Fatal("no states")
		}
	}
}

func BenchmarkAblationGlushkov(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := automata.FromRegexGlushkov(ablationRegex)
		if n.NumStates() == 0 {
			b.Fatal("no states")
		}
	}
}

func BenchmarkAblationDerivativeDFA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := automata.FromRegexDerivatives(ablationRegex)
		if d.NumStates() == 0 {
			b.Fatal("no states")
		}
	}
}

// BenchmarkAblationMatch* compare trace matching via derivatives
// against a precompiled minimal DFA.
func BenchmarkAblationMatchDerivatives(b *testing.B) {
	tr := []string{"a", "b", "a", "c", "a", "b", "c"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		regex.Match(ablationRegex, tr)
	}
}

func BenchmarkAblationMatchDFA(b *testing.B) {
	d := automata.CompileMinimal(ablationRegex)
	tr := []string{"a", "b", "a", "c", "a", "b", "c"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Accepts(tr)
	}
}

// BenchmarkAblationEquivalence* compare equivalence checking with and
// without minimization.
func BenchmarkAblationEquivalenceDerivative(b *testing.B) {
	r1 := regex.MustParse("(a + b)*")
	r2 := regex.MustParse("(a* . b*)*")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !regex.Equivalent(r1, r2) {
			b.Fatal("languages equal")
		}
	}
}

func BenchmarkAblationEquivalenceMinimized(b *testing.B) {
	r1 := regex.MustParse("(a + b)*")
	r2 := regex.MustParse("(a* . b*)*")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d1 := automata.CompileMinimal(r1)
		d2 := automata.CompileMinimal(r2)
		if !automata.Equivalent(d1, d2) {
			b.Fatal("languages equal")
		}
	}
}

// BenchmarkAblationLStar* compare counterexample-processing strategies.
func benchLStar(b *testing.B, strategy learn.Strategy) {
	target := automata.CompileMinimal(regex.MustParse("(a . b . c . a . b)*"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := learn.LStar(learn.NewDFATeacher(target), learn.Config{Strategy: strategy})
		if err != nil {
			b.Fatal(err)
		}
		if res.DFA.NumStates() == 0 {
			b.Fatal("no automaton")
		}
	}
}

func BenchmarkAblationLStarClassic(b *testing.B) { benchLStar(b, learn.ClassicAngluin) }

func BenchmarkAblationLStarRivestSchapire(b *testing.B) { benchLStar(b, learn.RivestSchapire) }

// BenchmarkAblationKearnsVazirani learns the same target with the
// classification-tree algorithm.
func BenchmarkAblationKearnsVazirani(b *testing.B) {
	target := automata.CompileMinimal(regex.MustParse("(a . b . c . a . b)*"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := learn.KearnsVazirani(learn.NewDFATeacher(target), learn.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.DFA.NumStates() == 0 {
			b.Fatal("no automaton")
		}
	}
}

// BenchmarkAblationLTLfCompile measures claim compilation, the piece
// that replaces the paper's NuSMV backend.
func BenchmarkAblationLTLfCompile(b *testing.B) {
	f := ltlf.MustParse("(!a.open) W b.open")
	alphabet := []string{
		"a.clean", "a.close", "a.open", "a.test",
		"b.clean", "b.close", "b.open", "b.test",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := ltlf.CompileNegation(f, alphabet)
		if d.NumStates() == 0 {
			b.Fatal("no automaton")
		}
	}
}

// BenchmarkScaleCheckByOps measures how verification scales with the
// number of composite operations (the state-space driver in practice).
func BenchmarkScaleCheckByOps(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(benchName("ops", n), func(b *testing.B) {
			src := syntheticComposite(n)
			m, err := LoadSource(src)
			if err != nil {
				b.Fatal(err)
			}
			c, _ := m.Class("Chain")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := c.Check()
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatalf("chain should verify:\n%s", report)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// syntheticComposite builds a chain of n composite operations that each
// run a full valid valve cycle.
func syntheticComposite(n int) string {
	src := `@sys
class Dev:
    @op_initial
    def acquire(self):
        return ["release"]

    @op_final
    def release(self):
        return ["acquire"]

@sys(["d"])
class Chain:
    def __init__(self):
        self.d = Dev()

`
	for i := 0; i < n; i++ {
		decorator := "@op"
		if i == 0 {
			decorator = "@op_initial"
		}
		if i == n-1 {
			decorator = "@op_final"
			if n == 1 {
				decorator = "@op_initial_final"
			}
		}
		next := "[]"
		if i < n-1 {
			next = `["step` + itoa(i+1) + `"]`
		}
		src += "    " + decorator + "\n" +
			"    def step" + itoa(i) + "(self):\n" +
			"        self.d.acquire()\n" +
			"        self.d.release()\n" +
			"        return " + next + "\n\n"
	}
	return src
}

// BenchmarkAblationFlattening compares the paper's union-level
// flattening against the exit-aware (precise) mode on the BadSector
// verification.
func benchFlattening(b *testing.B, opts ...check.Option) {
	m := mustLoadPaper(b)
	bad, _ := m.Class("BadSector")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := bad.Check(opts...)
		if err != nil {
			b.Fatal(err)
		}
		if report.OK() {
			b.Fatal("BadSector must fail")
		}
	}
}

func BenchmarkAblationFlatteningUnion(b *testing.B) { benchFlattening(b) }

func BenchmarkAblationFlatteningPrecise(b *testing.B) {
	benchFlattening(b, check.Precise())
}

// BenchmarkScaleLTLfByFormulaSize compiles nested weak-until chains of
// growing depth — the claim-compiler scaling series.
func BenchmarkScaleLTLfByFormulaSize(b *testing.B) {
	alphabet := []string{"a", "b", "c", "d"}
	for _, depth := range []int{2, 4, 6, 8} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			f := ltlf.NewAtom("a")
			syms := []string{"b", "c", "d"}
			for i := 0; i < depth; i++ {
				f = ltlf.WeakUntilOf(ltlf.NotOf(ltlf.NewAtom(syms[i%3])), f)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := ltlf.Compile(f, alphabet)
				if d.NumStates() == 0 {
					b.Fatal("no automaton")
				}
			}
		})
	}
}

// BenchmarkScaleLearnByProtocolSize learns ring protocols of growing
// size — the model-inference scaling series (X1).
func BenchmarkScaleLearnByProtocolSize(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName("states", n), func(b *testing.B) {
			// Ring language: (s0 . s1 . ... . s(n-1))*
			parts := make([]regex.Regex, n)
			for i := range parts {
				parts[i] = regex.Symbol("s" + itoa(i))
			}
			target := automata.CompileMinimal(regex.Star(regex.Concat(parts...)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := learn.LStar(learn.NewDFATeacher(target), learn.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if res.DFA.NumStates() != n {
					b.Fatalf("learned %d states, want %d", res.DFA.NumStates(), n)
				}
			}
		})
	}
}

// BenchmarkScaleEnumerate measures the bounded trace enumerator on the
// paper's example program at growing depth bounds.
func BenchmarkScaleEnumerate(b *testing.B) {
	p := benchProgram()
	for _, depth := range []int{4, 6, 8} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := trace.Language(p, depth); len(got) == 0 {
					b.Fatal("no traces")
				}
			}
		})
	}
}

// --- P1: the memoizing pipeline cache — cold vs cached verification ---

// benchCheckAllModule is the workload for the cache benchmarks: the
// paper's three classes plus a 16-operation synthetic chain, so both
// small and state-space-heavy analyses are in the mix.
func benchCheckAllModule(b *testing.B) *Module {
	b.Helper()
	src := mustRead(b, "valve.py") + "\n" +
		mustRead(b, "badsector.py") + "\n" +
		mustRead(b, "goodsector.py") + "\n" +
		syntheticComposite(16)
	m, err := LoadSource(src)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkCheckAllCold measures full verification with memoization
// disabled: every iteration recomputes every behavior, automaton, and
// report from scratch. Pair with BenchmarkCheckAllCached; EXPERIMENTS.md
// records the ratio (the acceptance bar is ≥ 5×).
func BenchmarkCheckAllCold(b *testing.B) {
	m := benchCheckAllModule(b)
	m.SetPipelineCaching(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := m.CheckAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchmarkCheckAllCached measures the warm path: one priming pass fills
// the cache, then every iteration is fingerprint lookups plus report
// clones.
func BenchmarkCheckAllCached(b *testing.B) {
	m := benchCheckAllModule(b)
	if _, err := m.CheckAll(); err != nil { // prime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := m.CheckAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchmarkCheckAllConcurrentCached is the fan-out on a warm cache —
// the CheckAllConcurrent fast path CI smoke-tests.
func BenchmarkCheckAllConcurrentCached(b *testing.B) {
	m := mustLoadPaper(b)
	if _, err := m.CheckAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CheckAllConcurrent(2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- P3: tracing overhead on the warm path ---

// BenchmarkCheckAllTracingOff is the warm-cache baseline for the
// tracing ablation: CheckAllContext with a plain context, so the only
// obs cost is one nil context lookup per instrumentation point.
func BenchmarkCheckAllTracingOff(b *testing.B) {
	m := benchCheckAllModule(b)
	ctx := context.Background()
	if _, err := m.CheckAllContext(ctx, 1); err != nil { // prime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CheckAllContext(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckAllTracingOn is the same warm workload with a live
// tracer exporting into a ring buffer — the shelleyd -trace
// configuration. EXPERIMENTS.md P3 records the ratio (acceptance bar:
// <5% overhead on the warm path).
func BenchmarkCheckAllTracingOn(b *testing.B) {
	m := benchCheckAllModule(b)
	ring := obs.NewRing(1 << 12)
	ctx := obs.ContextWithTracer(context.Background(), obs.New(obs.WithExporter(ring)))
	if _, err := m.CheckAllContext(ctx, 1); err != nil { // prime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CheckAllContext(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceExecution runs the concrete Valve cycle on the
// emulated board.
func BenchmarkDeviceExecution(b *testing.B) {
	m := mustLoadPaper(b)
	valve, _ := m.Class("Valve")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board := NewBoard()
		dev, err := valve.NewDevice(board)
		if err != nil {
			b.Fatal(err)
		}
		board.SetInput(29, true)
		for _, op := range []string{"test", "open", "close"} {
			if _, _, err := dev.Call(op); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package shelley

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// tightBudget is small enough that every pathological corpus entry
// trips it in well under a second, keeping the regression suite fast
// while still exercising the real enforcement paths.
func tightBudget() Budget {
	return Budget{
		MaxNFAStates:   1000,
		MaxDFAStates:   1000,
		MaxRegexSize:   1000,
		MaxSearchNodes: 1000,
	}
}

func pathologicalPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "pathological", "*.py"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no pathological corpus files found")
	}
	return paths
}

// TestPathologicalCorpusBudgeted is the tentpole regression: every
// engineered-blowup input must come back as a structured budget or
// cancellation error, quickly, with the worker goroutine actually
// released — never an unbounded construction.
func TestPathologicalCorpusBudgeted(t *testing.T) {
	for _, p := range pathologicalPaths(t) {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			mod, err := LoadFile(p)
			if err != nil {
				t.Fatalf("LoadFile: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			ctx = WithBudget(ctx, tightBudget())
			start := time.Now()
			_, err = mod.CheckAllContext(ctx, 1)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("check succeeded under tight budget; corpus entry is not pathological enough")
			}
			if !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrCanceled) {
				t.Fatalf("want structured budget/cancel error, got: %v", err)
			}
			if elapsed > 25*time.Second {
				t.Fatalf("budget error took %v; enforcement is not amortized early enough", elapsed)
			}
		})
	}
}

// TestPathologicalCorpusDeadline checks the other cutoff: with an
// unlimited budget but a short deadline, the gates' periodic context
// polls must abandon the construction near the deadline instead of
// running the exponential build to completion.
func TestPathologicalCorpusDeadline(t *testing.T) {
	mod, err := LoadFile(filepath.Join("testdata", "pathological", "detblow.py"))
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = mod.CheckAllContext(ctx, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("check succeeded; detblow should not finish in 100ms")
	}
	if !errors.Is(err, ErrCanceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want cancellation error, got: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline cutoff took %v; context polls are too sparse", elapsed)
	}
}

// TestBudgetErrorDoesNotPoisonModule is the cache-poisoning
// regression at the module level: a budget-exceeded check must not be
// replayed to an unbudgeted (or bigger-budget) retry on the same
// resident module, because the budget is part of every cache key.
func TestBudgetErrorDoesNotPoisonModule(t *testing.T) {
	mod, err := LoadFile(filepath.Join("testdata", "smarthome.py"))
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	tight := WithBudget(context.Background(), Budget{MaxDFAStates: 2})
	if _, err := mod.CheckAllContext(tight, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded under MaxDFAStates=2, got: %v", err)
	}
	// Same tight budget again: the error must be served deterministically
	// (cached or recomputed), still as a budget error.
	if _, err := mod.CheckAllContext(tight, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("second tight check: want ErrBudgetExceeded, got: %v", err)
	}
	// A larger budget on the SAME module must succeed: its cache keys
	// differ, so the cached budget error cannot shadow the real result.
	reports, err := mod.CheckAllContext(WithBudget(context.Background(), DefaultBudget()), 1)
	if err != nil {
		t.Fatalf("default-budget retry failed: %v", err)
	}
	for _, r := range reports {
		if !r.OK() {
			t.Fatalf("smarthome report not OK after retry: %v", r)
		}
	}
	// And unlimited works too.
	if _, err := mod.CheckAll(); err != nil {
		t.Fatalf("unlimited retry failed: %v", err)
	}
}

// TestCanceledCheckDoesNotPoisonModule is the cancellation twin of the
// budget-poisoning regression, and the review scenario verbatim:
// shelleyd uses one fixed Config.Limits for every request, so the
// budget-prefixed cache keys are identical across requests — a request
// deadline firing mid-construction must therefore leave NO cache entry
// behind. The test times a deadline to fire inside the blowup build
// (retrying with a fresh module until it wins the race against the
// budget gate), then re-checks the SAME resident module with the SAME
// budget and a generous deadline: that retry must recompute — detblow
// deterministically exceeds the tight budget — instead of replaying
// the cached cancellation.
func TestCanceledCheckDoesNotPoisonModule(t *testing.T) {
	b := tightBudget()
	var mod *Module
	for attempt := 0; attempt < 20 && mod == nil; attempt++ {
		m, err := LoadFile(filepath.Join("testdata", "pathological", "detblow.py"))
		if err != nil {
			t.Fatalf("LoadFile: %v", err)
		}
		ctx, cancel := context.WithTimeout(WithBudget(context.Background(), b), time.Millisecond)
		_, err = m.CheckAllContext(ctx, 1)
		cancel()
		if err == nil {
			t.Fatal("detblow checked OK under the tight budget")
		}
		if errors.Is(err, ErrCanceled) {
			mod = m // the deadline fired mid-construction on this module
		}
	}
	if mod == nil {
		t.Skip("budget gate always tripped before the 1ms deadline; cannot time a mid-build cancellation on this machine")
	}
	ctx, cancel := context.WithTimeout(WithBudget(context.Background(), b), 30*time.Second)
	defer cancel()
	_, err := mod.CheckAllContext(ctx, 1)
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("same-budget retry replayed a cached cancellation: %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("same-budget retry: want fresh ErrBudgetExceeded, got: %v", err)
	}
}

// TestBudgetedCheckReleasesGoroutines is the worker-stop regression:
// after a blowup check is cut off, the goroutine count must return to
// baseline — nothing may keep grinding on the abandoned construction.
func TestBudgetedCheckReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	mod, err := LoadFile(filepath.Join("testdata", "pathological", "detblow.py"))
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	ctx := WithBudget(context.Background(), tightBudget())
	if _, err := mod.CheckAllContext(ctx, 4); err == nil {
		t.Fatal("expected budget error")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d now vs %d before",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Package client is the Go client for shelleyd, the resident
// verification-service daemon, and the home of its wire types. The
// server (internal/server) imports this package for the request and
// response schemas, so client and daemon can never drift: there is
// exactly one definition of every JSON body that crosses the wire.
package client

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/mine"
)

// Fingerprint returns the content fingerprint of a MicroPython source
// body: the key under which shelleyd keeps the loaded module (and its
// warm pipeline cache) resident. Clients that have POSTed a source
// once can re-check it cache-only by sending the fingerprint alone.
func Fingerprint(source string) string {
	sum := sha256.Sum256([]byte(source))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// CheckRequest asks for full verification reports. Exactly one of
// Source and Fingerprint must be set: Source carries MicroPython text
// (loaded, checked, and made resident), Fingerprint names an
// already-resident module for a cache-only re-check (404 when the
// module is not resident).
type CheckRequest struct {
	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Class restricts checking to one class; empty checks every class
	// in source order.
	Class string `json:"class,omitempty"`

	// Precise switches to exit-aware flattening (shelley.Precise).
	Precise bool `json:"precise,omitempty"`
}

// ResponseMeta carries transport-level metadata of a daemon response.
// It is populated by the client from HTTP headers and never crosses
// the wire in the JSON body (coalesced requests share one byte-exact
// body, so anything per-request must live in headers).
type ResponseMeta struct {
	// TraceID is the X-Shelley-Trace header of the response: the trace
	// ID the daemon ran (or would run) the request under — either the
	// one this client sent, or a server-generated one. Quote it when
	// correlating with daemon access logs or /v1/trace-export output.
	TraceID string `json:"-"`
}

func (m *ResponseMeta) setTraceID(id string) { m.TraceID = id }

// CheckResponse is the outcome of a /v1/check request.
type CheckResponse struct {
	ResponseMeta
	// Fingerprint identifies the (now resident) module; send it back
	// in later requests to skip re-uploading the source.
	Fingerprint string `json:"fingerprint"`

	// OK reports whether every checked class verified clean.
	OK bool `json:"ok"`

	// Reports are the per-class verification reports, in source order
	// (or the single requested class).
	Reports []*shelley.Report `json:"reports"`
}

// InferRequest asks for inferred per-operation behavior regexes
// (the paper's §3.2 inference) of one class.
type InferRequest struct {
	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Class names the class to infer; required.
	Class string `json:"class"`

	// Operation restricts inference to one operation; empty infers
	// every operation in source order.
	Operation string `json:"operation,omitempty"`
}

// OperationBehavior is one operation's inferred behavior.
type OperationBehavior struct {
	Operation string `json:"operation"`

	// Behavior is ⟦p⟧ in the paper-verbatim concrete syntax.
	Behavior string `json:"behavior"`

	// Simplified is the language-preserving normalization of Behavior.
	Simplified string `json:"simplified"`
}

// InferResponse is the outcome of a /v1/infer request.
type InferResponse struct {
	ResponseMeta

	Fingerprint string              `json:"fingerprint"`
	Class       string              `json:"class"`
	Behaviors   []OperationBehavior `json:"behaviors"`
}

// TraceRequest asks whether a call sequence is a valid complete usage
// of a class (the membership oracle), optionally also replaying it as
// a flattened qualified trace against live subsystem instances.
type TraceRequest struct {
	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Class names the class to drive; required.
	Class string `json:"class"`

	// Trace is the call sequence (operation names; qualified
	// "subsystem.op" names when Replay is set on a composite).
	Trace []string `json:"trace"`

	// Replay additionally replays the trace with Class.ReplayFlat and
	// reports the first protocol error.
	Replay bool `json:"replay,omitempty"`
}

// TraceResponse is the outcome of a /v1/trace request.
type TraceResponse struct {
	ResponseMeta

	Fingerprint string   `json:"fingerprint"`
	Class       string   `json:"class"`
	Trace       []string `json:"trace"`

	// Accepted reports trace membership under the specification
	// (angelic) semantics.
	Accepted bool `json:"accepted"`

	// ReplayError is the first protocol error of the flattened replay
	// (Replay requests only); empty for a clean complete usage.
	ReplayError string `json:"replay_error,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WatchRequest is the body of POST /v1/watch: push one source
// generation into a named watch session. The daemon diffs it against
// the session's resident generation at method granularity, re-verifies
// only the classes the diff invalidates (everything else is answered
// from the session's warm pipeline cache), and publishes the resulting
// WatchUpdate to every long-poller of the session.
type WatchRequest struct {
	// Session names the watch session; required. Sessions are created on
	// first use and keyed per daemon, so concurrent editors should pick
	// distinct names.
	Session string `json:"session"`

	// Source is the full MicroPython source of the new generation;
	// required (watch mode diffs server-side, so there is no
	// fingerprint-only form).
	Source string `json:"source"`

	// Precise switches the re-verification to exit-aware flattening.
	Precise bool `json:"precise,omitempty"`
}

// WatchDiff is the wire form of the daemon's generation diff: how the
// pushed source differs from the session's previous resident
// generation, at class granularity.
type WatchDiff struct {
	// Initial marks the session's first generation (everything Added).
	Initial bool `json:"initial,omitempty"`

	// Added, Removed, Changed, and Unchanged partition the union of the
	// two generations' class names, each sorted.
	Added     []string `json:"added,omitempty"`
	Removed   []string `json:"removed,omitempty"`
	Changed   []string `json:"changed,omitempty"`
	Unchanged []string `json:"unchanged,omitempty"`

	// ProtocolChanged lists the changed classes whose protocol surface
	// moved — only these invalidate their dependents' cached results.
	ProtocolChanged []string `json:"protocol_changed,omitempty"`

	// ChangedMethods maps each changed class to the names of its edited
	// or new operations.
	ChangedMethods map[string][]string `json:"changed_methods,omitempty"`

	// Invalidated is the predicted re-verification frontier: changed and
	// added classes plus dependents of protocol-level changes.
	Invalidated []string `json:"invalidated,omitempty"`
}

// WatchUpdate is one published re-check round of a watch session: the
// 200 body of POST /v1/watch and of a successful long-poll
// GET /v1/watch.
type WatchUpdate struct {
	ResponseMeta

	// Session echoes the session name; Seq is the generation's position
	// in the session (1 for the first push), strictly increasing.
	// Long-pollers pass the last Seq they saw as ?after=.
	Session string `json:"session"`
	Seq     uint64 `json:"seq"`

	// Fingerprint is the content fingerprint of this generation's
	// source.
	Fingerprint string `json:"fingerprint"`

	// OK reports whether every class of the generation verified clean.
	OK bool `json:"ok"`

	// Reports are the per-class verification reports in source order —
	// byte-identical to what a cold /v1/check of the same source yields,
	// whether each class was re-verified or answered from the session
	// cache.
	Reports []*shelley.Report `json:"reports"`

	// Diff is the generation diff against the previous push.
	Diff WatchDiff `json:"diff"`

	// ReusedReports counts classes answered from the session's warm
	// cache; CheckedClasses counts classes actually re-verified. Their
	// sum is the generation's class count.
	ReusedReports  int `json:"reused_reports"`
	CheckedClasses int `json:"checked_classes"`

	// ElapsedMicros is the wall time of the whole round (parse, diff,
	// re-check) in microseconds.
	ElapsedMicros int64 `json:"elapsed_micros"`
}

// BatchItem is one unit of a /v1/check-batch or /v1/jobs request. It
// carries the same fields as a CheckRequest: source text or a resident
// fingerprint, an optional class filter, and the precise-mode flag.
type BatchItem struct {
	// ID is an opaque client label echoed back on the item's record,
	// so streaming callers can correlate results without tracking
	// indices.
	ID string `json:"id,omitempty"`

	Source      string `json:"source,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Class       string `json:"class,omitempty"`
	Precise     bool   `json:"precise,omitempty"`
}

// BatchRequest is the body of POST /v1/check-batch (synchronous NDJSON
// stream) and POST /v1/jobs (async job submission).
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchRecord is one line of a batch NDJSON stream. Per-item records
// carry Index/ID/Status plus either Check (status 200) or Error; the
// final line of every well-formed stream is a terminal summary record
// with Done set. A missing terminal record means the stream was
// truncated in flight.
type BatchRecord struct {
	// Index is the item's position in the request (per-item records
	// only). Records arrive in completion order, not index order.
	Index int `json:"index"`

	// ID echoes the item's client-supplied label.
	ID string `json:"id,omitempty"`

	// Status is the item's outcome as an HTTP status code: 200 verified
	// (see Check), 400/404/413/422 per-item request errors, 499 client
	// canceled mid-stream, 503 admission refused under drain, 504
	// deadline expired. A non-200 item never fails the batch: the
	// stream keeps flowing and the terminal record counts it in Failed.
	Status int `json:"status,omitempty"`

	// Check is the item's CheckResponse, byte-identical to what a
	// single /v1/check of the same item would return (the two paths
	// share one coalesced execution and one encoder). Decode with
	// CheckResponse.
	Check json.RawMessage `json:"check,omitempty"`

	// Error is the item's error text for non-200 statuses.
	Error string `json:"error,omitempty"`

	// Done marks the terminal summary record closing the stream.
	Done bool `json:"done,omitempty"`

	// Total/Succeeded/Failed summarize the batch (terminal record
	// only). Total counts items, Succeeded status-200 records, Failed
	// everything else.
	Total     int `json:"total,omitempty"`
	Succeeded int `json:"succeeded,omitempty"`
	Failed    int `json:"failed,omitempty"`
}

// CheckResponse decodes the record's embedded check result; nil for
// non-200 records.
func (r *BatchRecord) CheckResponse() (*CheckResponse, error) {
	if len(r.Check) == 0 {
		return nil, nil
	}
	var resp CheckResponse
	if err := json.Unmarshal(r.Check, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding batch record %d: %w", r.Index, err)
	}
	return &resp, nil
}

// SnapshotImportResponse is the body of PUT /v1/snapshot: how many
// artifact-store entries the daemon imported from the uploaded
// snapshot, and how many records it skipped (duplicates of entries it
// already held, or records that failed verification).
type SnapshotImportResponse struct {
	ResponseMeta

	Imported int `json:"imported"`
	Skipped  int `json:"skipped"`
}

// IngestEvent is one NDJSON line of a POST /v1/ingest frame: one
// observed usage (or usage prefix) of one class on one device. ClassFP
// is "<module-fingerprint>/<ClassName>"; Status is "ok"/"" for a
// complete usage, "partial"/"error" for a prefix. Aliased from the
// miner's wire type so daemon and client can never drift.
type IngestEvent = mine.Event

// IngestResponse is the 200 body of POST /v1/ingest: what happened to
// each decoded observation. Shed observations were dropped by a corpus
// bound (counted, never blocked); malformed and oversize lines were
// skipped without failing the frame.
type IngestResponse struct {
	ResponseMeta

	Received  int `json:"received"`
	Accepted  int `json:"accepted"`
	Shed      int `json:"shed"`
	Malformed int `json:"malformed,omitempty"`
	Oversize  int `json:"oversize,omitempty"`
}

// DriftReport is one class's conformance-drift verdict: "conformant",
// "under-approximated" (fleet inside the static model but not covering
// it), or "DRIFT" with a shortest offending trace. Aliased from the
// miner's wire type.
type DriftReport = mine.Report

// DriftResponse is the body of GET /v1/drift.
type DriftResponse struct {
	ResponseMeta

	Reports []DriftReport `json:"reports"`
}

// JobAccepted is the 202 body of POST /v1/jobs.
type JobAccepted struct {
	ResponseMeta

	// Job is the job ID; poll GET /v1/jobs/{id} or stream
	// GET /v1/jobs/{id}?stream=1.
	Job string `json:"job"`

	// Total is the number of items admitted.
	Total int `json:"total"`
}

// JobStatus is the poll body of GET /v1/jobs/{id}.
type JobStatus struct {
	ResponseMeta

	Job string `json:"job"`

	// State is "running" or "done".
	State string `json:"state"`

	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	// Records holds the per-item records accumulated so far; populated
	// only when the poll asks for them (?records=1).
	Records []BatchRecord `json:"records,omitempty"`
}

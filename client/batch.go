package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// ErrTruncatedStream is returned by BatchStream.Next when the NDJSON
// stream ends without a terminal Done record — the connection dropped
// (or the daemon died) mid-batch, so records already consumed are
// valid but the batch as a whole must be considered incomplete.
var ErrTruncatedStream = errors.New("client: batch stream ended without terminal record")

// BatchStream iterates the NDJSON records of a /v1/check-batch or job
// stream as the daemon emits them: Next returns each per-item record
// the moment its line arrives, so results for fast items are usable
// while slow items are still verifying. Always Close the stream (Next
// returning io.EOF closes it implicitly).
type BatchStream struct {
	ResponseMeta

	body    io.ReadCloser
	dec     *json.Decoder
	summary *BatchRecord
	err     error
}

// Next returns the next per-item record. It returns io.EOF after the
// terminal summary record (retrievable via Summary), and
// ErrTruncatedStream when the stream ends without one.
func (s *BatchStream) Next() (*BatchRecord, error) {
	if s.err != nil {
		return nil, s.err
	}
	var rec BatchRecord
	if err := s.dec.Decode(&rec); err != nil {
		if errors.Is(err, io.EOF) {
			err = ErrTruncatedStream
		} else {
			err = fmt.Errorf("client: decoding batch stream: %w", err)
		}
		s.err = err
		s.Close()
		return nil, err
	}
	if rec.Done {
		s.summary = &rec
		s.err = io.EOF
		s.Close()
		return nil, io.EOF
	}
	return &rec, nil
}

// Summary returns the terminal record, or nil before Next has returned
// io.EOF.
func (s *BatchStream) Summary() *BatchRecord { return s.summary }

// Collect drains the stream and returns every per-item record in
// arrival order. The terminal summary is available via Summary.
func (s *BatchStream) Collect() ([]BatchRecord, error) {
	var out []BatchRecord
	for {
		rec, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, *rec)
	}
}

// Close releases the underlying connection. Closing before the
// terminal record abandons the stream (the daemon observes the cancel
// and marks remaining items canceled).
func (s *BatchStream) Close() error {
	if s.body == nil {
		return nil
	}
	err := s.body.Close()
	s.body = nil
	return err
}

// CheckBatch POSTs /v1/check-batch and returns the live record stream.
// Cancel ctx (or Close the stream) to abandon it mid-flight. A 429 or
// 503 refusal surfaces as an *APIError whose RetryAfter carries the
// daemon's jittered backoff hint.
func (c *Client) CheckBatch(ctx context.Context, req BatchRequest) (*BatchStream, error) {
	resp, err := c.postStream(ctx, "/v1/check-batch", req)
	if err != nil {
		return nil, err
	}
	return newBatchStream(resp), nil
}

// SubmitJob POSTs /v1/jobs: the batch is verified asynchronously and
// the accepted job can be polled with Job or streamed with JobStream.
// Use it for batches larger than the daemon's synchronous window.
func (c *Client) SubmitJob(ctx context.Context, req BatchRequest) (*JobAccepted, error) {
	var resp JobAccepted
	if err := c.post(ctx, "/v1/jobs", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job GETs /v1/jobs/{id}: a point-in-time snapshot of the job's
// progress. withRecords additionally returns the records accumulated
// so far.
func (c *Client) Job(ctx context.Context, id string, withRecords bool) (*JobStatus, error) {
	path := "/v1/jobs/" + url.PathEscape(id)
	if withRecords {
		path += "?records=1"
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode/100 != 2 {
		return nil, apiError(httpResp, raw)
	}
	var status JobStatus
	if err := json.Unmarshal(raw, &status); err != nil {
		return nil, fmt.Errorf("client: decoding job status: %w", err)
	}
	status.setTraceID(httpResp.Header.Get("X-Shelley-Trace"))
	return &status, nil
}

// JobStream GETs /v1/jobs/{id}?stream=1: an NDJSON stream that replays
// the job's accumulated records and then tails live ones until the job
// completes — the same record framing as CheckBatch, so one consumer
// loop serves both modes.
func (c *Client) JobStream(ctx context.Context, id string) (*BatchStream, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"?stream=1", nil)
	if err != nil {
		return nil, err
	}
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode/100 != 2 {
		defer httpResp.Body.Close()
		raw, _ := io.ReadAll(httpResp.Body)
		return nil, apiError(httpResp, raw)
	}
	return newBatchStream(httpResp), nil
}

func newBatchStream(resp *http.Response) *BatchStream {
	// A buffered reader turns one read syscall per record into one per
	// burst — on a warm stream the records arrive faster than the
	// decoder drains them, so this is a measurable throughput lever.
	s := &BatchStream{body: resp.Body, dec: json.NewDecoder(bufio.NewReaderSize(resp.Body, 32<<10))}
	s.setTraceID(resp.Header.Get("X-Shelley-Trace"))
	return s
}

// postStream issues a POST whose successful response body is handed to
// the caller unread (streaming endpoints); error responses are drained
// and mapped exactly like post, and retried under the same policy —
// a whole-batch 429/503 refusal arrives before any record flows, so
// retrying it never replays delivered work.
func (c *Client) postStream(ctx context.Context, path string, req any) (*http.Response, error) {
	var httpResp *http.Response
	err := c.withRetry(ctx, func() error {
		var oerr error
		httpResp, oerr = c.postStreamOnce(ctx, path, req)
		return oerr
	})
	return httpResp, err
}

func (c *Client) postStreamOnce(ctx context.Context, path string, req any) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode/100 != 2 {
		defer httpResp.Body.Close()
		raw, _ := io.ReadAll(httpResp.Body)
		return nil, apiError(httpResp, raw)
	}
	return httpResp, nil
}

package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/shelley-go/shelley/internal/obs"
)

// Client talks to a running shelleyd.
type Client struct {
	base string
	http *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the daemon at base, e.g.
// "http://127.0.0.1:9944". The default underlying http.Client has no
// timeout of its own — deadlines come from the caller's context.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	// StatusCode is the HTTP status (404 unknown class/module, 503
	// queue saturated or draining, 504 deadline exceeded, ...).
	StatusCode int

	// Message is the server's error text.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("shelleyd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Check POSTs /v1/check: full verification reports for a source (or a
// resident-module fingerprint).
func (c *Client) Check(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	var resp CheckResponse
	if err := c.post(ctx, "/v1/check", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Infer POSTs /v1/infer: per-operation behavior regexes of one class.
func (c *Client) Infer(ctx context.Context, req InferRequest) (*InferResponse, error) {
	var resp InferResponse
	if err := c.post(ctx, "/v1/infer", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace POSTs /v1/trace: trace membership and optional flattened
// replay.
func (c *Client) Trace(ctx context.Context, req TraceRequest) (*TraceResponse, error) {
	var resp TraceResponse
	if err := c.post(ctx, "/v1/trace", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz GETs /healthz; nil means the daemon is up and accepting
// work (a draining daemon reports unhealthy).
func (c *Client) Healthz(ctx context.Context) error {
	body, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	_ = body
	return nil
}

// Metrics GETs /metrics and returns the raw text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.get(ctx, "/metrics")
}

// MetricValue GETs /metrics and extracts one metric by name (labels
// included, e.g. `shelleyd_requests_total{endpoint="check",code="200"}`).
// ok is false when the metric is absent.
func (c *Client) MetricValue(ctx context.Context, name string) (value float64, ok bool, err error) {
	text, err := c.Metrics(ctx)
	if err != nil {
		return 0, false, err
	}
	v, ok := ParseMetric(text, name)
	return v, ok, nil
}

// ParseMetric extracts one metric from a /metrics exposition by exact
// name (labels included). ok is false when absent.
func ParseMetric(text, name string) (value float64, ok bool) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, val, found := strings.Cut(line, " ")
		if !found || metric != name {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// WaitReady polls /healthz until the daemon answers healthy or the
// deadline passes — the startup handshake used by tests and the
// selfcheck load generator.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: daemon at %s not ready: %w", c.base, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	// Distributed-trace propagation: reuse the trace of the active span
	// when the caller's context carries one, otherwise originate a
	// fresh ID, so every request is correlatable with the daemon's
	// access log and /v1/trace-export output.
	traceID := obs.SpanFrom(ctx).TraceID()
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	httpReq.Header.Set("X-Shelley-Trace", traceID)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	if httpResp.StatusCode/100 != 2 {
		return apiError(httpResp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	if m, ok := resp.(interface{ setTraceID(string) }); ok {
		if id := httpResp.Header.Get("X-Shelley-Trace"); id != "" {
			m.setTraceID(id)
		} else {
			m.setTraceID(traceID)
		}
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string) (string, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return "", err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return "", err
	}
	if httpResp.StatusCode/100 != 2 {
		return "", apiError(httpResp.StatusCode, raw)
	}
	return string(raw), nil
}

func apiError(status int, body []byte) error {
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return &APIError{StatusCode: status, Message: e.Error}
	}
	return &APIError{StatusCode: status, Message: strings.TrimSpace(string(body))}
}

package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/shelley-go/shelley/internal/obs"
)

// Client talks to a running shelleyd.
type Client struct {
	base  string
	http  *http.Client
	token string

	retry   RetryPolicy
	retryOn bool

	// sleep and randFloat are the retry machinery's test seams.
	sleep     func(context.Context, time.Duration) error
	randFloat func() float64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithToken sets the X-Shelley-Client header on every request. The
// daemon keys batch admission control by this token (falling back to
// the remote address), so clients sharing a NAT or proxy should each
// send a distinct token to get their own fair share of the pool.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// New returns a client for the daemon at base, e.g.
// "http://127.0.0.1:9944". The default underlying http.Client has no
// timeout of its own — deadlines come from the caller's context.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		http:      &http.Client{},
		sleep:     sleepCtx,
		randFloat: randFloatDefault,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx daemon response.
type APIError struct {
	// StatusCode is the HTTP status (404 unknown class/module, 429
	// per-client admission refused, 503 queue saturated or draining,
	// 504 deadline exceeded, ...).
	StatusCode int

	// Message is the server's error text.
	Message string

	// RetryAfter is the daemon's backoff hint from the Retry-After
	// header (429/503 responses), already jittered server-side so a
	// fleet of refused clients does not retry in lockstep. Zero when
	// the response carried no hint.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("shelleyd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Temporary reports whether the request may succeed if retried after
// RetryAfter (admission, saturation, and drain refusals).
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// Check POSTs /v1/check: full verification reports for a source (or a
// resident-module fingerprint).
func (c *Client) Check(ctx context.Context, req CheckRequest) (*CheckResponse, error) {
	var resp CheckResponse
	if err := c.post(ctx, "/v1/check", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Infer POSTs /v1/infer: per-operation behavior regexes of one class.
func (c *Client) Infer(ctx context.Context, req InferRequest) (*InferResponse, error) {
	var resp InferResponse
	if err := c.post(ctx, "/v1/infer", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace POSTs /v1/trace: trace membership and optional flattened
// replay.
func (c *Client) Trace(ctx context.Context, req TraceRequest) (*TraceResponse, error) {
	var resp TraceResponse
	if err := c.post(ctx, "/v1/trace", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz GETs /healthz; nil means the daemon is up and accepting
// work (a draining daemon reports unhealthy).
func (c *Client) Healthz(ctx context.Context) error {
	body, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	_ = body
	return nil
}

// Metrics GETs /metrics and returns the raw text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.get(ctx, "/metrics")
}

// MetricValue GETs /metrics and extracts one metric by name (labels
// included, e.g. `shelleyd_requests_total{endpoint="check",code="200"}`).
// ok is false when the metric is absent.
func (c *Client) MetricValue(ctx context.Context, name string) (value float64, ok bool, err error) {
	text, err := c.Metrics(ctx)
	if err != nil {
		return 0, false, err
	}
	v, ok := ParseMetric(text, name)
	return v, ok, nil
}

// ParseMetric extracts one metric from a /metrics exposition by exact
// name (labels included). ok is false when absent.
func ParseMetric(text, name string) (value float64, ok bool) {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, val, found := strings.Cut(line, " ")
		if !found || metric != name {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// WaitReady polls /healthz until the daemon answers healthy or the
// deadline passes — the startup handshake used by tests and the
// selfcheck load generator.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: daemon at %s not ready: %w", c.base, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// post runs a JSON POST under the retry policy. GETs (health, metrics)
// are deliberately not retried: they are observability probes whose
// callers want the instantaneous answer, not an eventually-healthy one.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	return c.withRetry(ctx, func() error { return c.postOnce(ctx, path, req, resp) })
}

func (c *Client) postOnce(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	if httpResp.StatusCode/100 != 2 {
		return apiError(httpResp, raw)
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	if m, ok := resp.(interface{ setTraceID(string) }); ok {
		if id := httpResp.Header.Get("X-Shelley-Trace"); id != "" {
			m.setTraceID(id)
		} else {
			m.setTraceID(httpReq.Header.Get("X-Shelley-Trace"))
		}
	}
	return nil
}

// setHeaders stamps the per-client headers every daemon request
// carries: the admission-control token (when configured) and the
// distributed-trace ID — reusing the trace of the caller's active span
// when the context carries one, originating a fresh ID otherwise, so
// every request is correlatable with the daemon's access log and
// /v1/trace-export output.
func (c *Client) setHeaders(httpReq *http.Request) {
	if c.token != "" {
		httpReq.Header.Set("X-Shelley-Client", c.token)
	}
	traceID := obs.SpanFrom(httpReq.Context()).TraceID()
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	httpReq.Header.Set("X-Shelley-Trace", traceID)
}

func (c *Client) get(ctx context.Context, path string) (string, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return "", err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return "", err
	}
	if httpResp.StatusCode/100 != 2 {
		return "", apiError(httpResp, raw)
	}
	return string(raw), nil
}

func apiError(resp *http.Response, body []byte) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		apiErr.Message = e.Error
	} else {
		apiErr.Message = strings.TrimSpace(string(body))
	}
	return apiErr
}

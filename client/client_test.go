package client

import (
	"strings"
	"testing"
)

func TestFingerprintStableAndDistinct(t *testing.T) {
	a, b := Fingerprint("class A: pass"), Fingerprint("class B: pass")
	if a == b {
		t.Error("distinct sources must fingerprint differently")
	}
	if a != Fingerprint("class A: pass") {
		t.Error("fingerprint must be deterministic")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Errorf("fingerprint %q lacks algorithm prefix", a)
	}
}

func TestParseMetric(t *testing.T) {
	text := `# HELP shelleyd_coalesced_total x
# TYPE shelleyd_coalesced_total counter
shelleyd_coalesced_total 7
shelleyd_requests_total{endpoint="check",code="200"} 41
shelleyd_queue_depth 0
`
	if v, ok := ParseMetric(text, "shelleyd_coalesced_total"); !ok || v != 7 {
		t.Errorf("coalesced = %v, %v", v, ok)
	}
	if v, ok := ParseMetric(text, `shelleyd_requests_total{endpoint="check",code="200"}`); !ok || v != 41 {
		t.Errorf("labeled metric = %v, %v", v, ok)
	}
	if _, ok := ParseMetric(text, "absent_metric"); ok {
		t.Error("absent metric must report !ok")
	}
}

func TestAPIErrorRendering(t *testing.T) {
	err := &APIError{StatusCode: 503, Message: "queue saturated"}
	for _, want := range []string{"503", "queue saturated"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}

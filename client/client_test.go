package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/obs"
)

func TestFingerprintStableAndDistinct(t *testing.T) {
	a, b := Fingerprint("class A: pass"), Fingerprint("class B: pass")
	if a == b {
		t.Error("distinct sources must fingerprint differently")
	}
	if a != Fingerprint("class A: pass") {
		t.Error("fingerprint must be deterministic")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Errorf("fingerprint %q lacks algorithm prefix", a)
	}
}

func TestParseMetric(t *testing.T) {
	exposition := `# HELP shelleyd_coalesced_total x
# TYPE shelleyd_coalesced_total counter
shelleyd_coalesced_total 7
shelleyd_requests_total{endpoint="check",code="200"} 41
shelleyd_queue_depth 0
shelleyd_request_seconds_bucket{endpoint="check",le="0.001"} 12
shelleyd_request_seconds_bucket{endpoint="check",le="+Inf"} 30
shelleyd_request_seconds_sum{endpoint="check"} 0.42
shelleyd_pipeline_hit_ratio 0.875
shelleyd_broken_metric notanumber
shelleyd_no_value
`
	tests := []struct {
		name   string
		metric string
		want   float64
		wantOK bool
	}{
		{"plain counter", "shelleyd_coalesced_total", 7, true},
		{"labeled counter", `shelleyd_requests_total{endpoint="check",code="200"}`, 41, true},
		{"zero-valued gauge", "shelleyd_queue_depth", 0, true},
		{"histogram bucket", `shelleyd_request_seconds_bucket{endpoint="check",le="0.001"}`, 12, true},
		{"histogram +Inf bucket", `shelleyd_request_seconds_bucket{endpoint="check",le="+Inf"}`, 30, true},
		{"histogram sum (float)", `shelleyd_request_seconds_sum{endpoint="check"}`, 0.42, true},
		{"fractional gauge", "shelleyd_pipeline_hit_ratio", 0.875, true},
		{"absent metric", "absent_metric", 0, false},
		{"name prefix must not match", "shelleyd_coalesced", 0, false},
		{"comment lines are not metrics", "# HELP shelleyd_coalesced_total x", 0, false},
		{"malformed value", "shelleyd_broken_metric", 0, false},
		{"line without value", "shelleyd_no_value", 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, ok := ParseMetric(exposition, tt.metric)
			if ok != tt.wantOK || v != tt.want {
				t.Errorf("ParseMetric(%q) = %v, %v; want %v, %v", tt.metric, v, ok, tt.want, tt.wantOK)
			}
		})
	}
	if _, ok := ParseMetric("", "anything"); ok {
		t.Error("empty exposition must report !ok")
	}
}

// traceEcho is a stub daemon that records the request trace header and
// echoes (or overrides) it in the response.
func traceEcho(t *testing.T, override string) (*Client, *string) {
	t.Helper()
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("X-Shelley-Trace")
		id := got
		if override != "" {
			id = override
		}
		w.Header().Set("X-Shelley-Trace", id)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(CheckResponse{Fingerprint: "sha256:x", OK: true})
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL), &got
}

func TestPostGeneratesTraceHeader(t *testing.T) {
	cl, got := traceEcho(t, "")
	resp, err := cl.Check(context.Background(), CheckRequest{Source: "class A: pass"})
	if err != nil {
		t.Fatal(err)
	}
	if *got == "" {
		t.Fatal("client sent no X-Shelley-Trace header")
	}
	if len(*got) != 32 {
		t.Errorf("generated trace ID %q is not 32 hex chars", *got)
	}
	if resp.TraceID != *got {
		t.Errorf("response TraceID = %q, want the sent ID %q", resp.TraceID, *got)
	}
}

func TestPostPropagatesActiveSpanTrace(t *testing.T) {
	cl, got := traceEcho(t, "")
	tr := obs.New(obs.WithDeterministicIDs())
	ctx := obs.ContextWithTracer(context.Background(), tr)
	ctx, span := obs.Start(ctx, "caller")
	defer span.End()

	if _, err := cl.Check(ctx, CheckRequest{Source: "class A: pass"}); err != nil {
		t.Fatal(err)
	}
	if *got != span.TraceID() {
		t.Errorf("sent trace %q, want the active span's trace %q", *got, span.TraceID())
	}
}

func TestResponseExposesServerAssignedTraceID(t *testing.T) {
	cl, _ := traceEcho(t, "server-chose-this")
	resp, err := cl.Check(context.Background(), CheckRequest{Source: "class A: pass"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "server-chose-this" {
		t.Errorf("TraceID = %q, want the server-assigned ID", resp.TraceID)
	}
}

func TestTraceIDStaysOutOfWireBody(t *testing.T) {
	resp := CheckResponse{ResponseMeta: ResponseMeta{TraceID: "secret"}, Fingerprint: "sha256:x"}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "secret") || strings.Contains(string(b), "TraceID") {
		t.Errorf("TraceID leaked into JSON body: %s", b)
	}
}

func TestAPIErrorRendering(t *testing.T) {
	err := &APIError{StatusCode: 503, Message: "queue saturated"}
	for _, want := range []string{"503", "queue saturated"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}

package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Ingest POSTs one frame of trace observations to /v1/ingest, encoded
// as NDJSON (one IngestEvent per line). The daemon buffers observations
// in bounded per-class corpora and mines them in the background —
// ingest never waits on learning. Admission refusals (429/503) carry a
// Retry-After hint and are safe to retry: a refused frame ingested
// nothing. Under WithRetry they are retried automatically.
func (c *Client) Ingest(ctx context.Context, events []IngestEvent) (*IngestResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return nil, fmt.Errorf("client: encoding ingest frame: %w", err)
		}
	}
	frame := buf.Bytes()
	var resp IngestResponse
	if err := c.withRetry(ctx, func() error { return c.ingestOnce(ctx, frame, &resp) }); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) ingestOnce(ctx context.Context, frame []byte, resp *IngestResponse) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/x-ndjson")
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return err
	}
	if httpResp.StatusCode/100 != 2 {
		return apiError(httpResp, raw)
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("client: decoding /v1/ingest response: %w", err)
	}
	resp.setTraceID(httpResp.Header.Get("X-Shelley-Trace"))
	return nil
}

// Drift GETs /v1/drift: every tracked class's current conformance
// verdict from the daemon's last mining round. Pass a class fingerprint
// to filter to one class; empty returns all.
func (c *Client) Drift(ctx context.Context, classFP string) (*DriftResponse, error) {
	path := "/v1/drift"
	if classFP != "" {
		path += "?class=" + url.QueryEscape(classFP)
	}
	body, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	var resp DriftResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		return nil, fmt.Errorf("client: decoding /v1/drift response: %w", err)
	}
	return &resp, nil
}

package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy configures opt-in automatic retries of temporary daemon
// refusals (429 admission, 503 saturation/drain). The zero value of
// each field takes the documented default; install with WithRetry.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, the first included.
	// 0 means 4.
	MaxAttempts int

	// BaseDelay seeds the exponential backoff: attempt n waits
	// BaseDelay·2ⁿ, jittered to 0.5–1.5× so a fleet of refused clients
	// does not retry in lockstep. 0 means 100ms.
	BaseDelay time.Duration

	// MaxDelay caps any single wait. 0 means 5s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// backoff is the wait before retry number attempt (0-based). A daemon
// Retry-After hint wins outright — the server already jittered it and
// knows its own drain state better than any client-side guess.
func (p RetryPolicy) backoff(attempt int, hint time.Duration, randFloat func() float64) time.Duration {
	if hint > 0 {
		return hint
	}
	d := p.BaseDelay << attempt
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	d = time.Duration(float64(d) * (0.5 + randFloat()))
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// WithRetry makes every request retry temporary refusals (APIError
// with Temporary() true: 429 and 503) under the given policy, honoring
// the daemon's Retry-After hint when one is sent. Non-temporary errors
// (4xx request problems, transport failures) are never retried, and
// the caller's context deadline always wins over a pending backoff.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults(); c.retryOn = true }
}

// withRetry runs op under the client's retry policy; without WithRetry
// it is a single attempt.
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	if !c.retryOn {
		return op()
	}
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !apiErr.Temporary() || attempt+1 >= c.retry.MaxAttempts {
			return err
		}
		if serr := c.sleep(ctx, c.retry.backoff(attempt, apiErr.RetryAfter, c.randFloat)); serr != nil {
			// The deadline fired mid-backoff; the refusal is the more
			// informative error.
			return err
		}
	}
}

// sleepCtx is the production sleep; tests substitute the hook.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// CheckBatchAll runs a batch to completion under the retry policy,
// returning one record per item in item order. Two refusal layers are
// retried: a whole-batch 429/503 (handled by the transport retry
// inside CheckBatch), and per-record 503s — items individually refused
// while the daemon drained or saturated mid-stream — which are
// resubmitted as a smaller follow-up batch. Any other record status is
// a final per-item outcome and is returned as-is; a broken stream
// fails the call. Without WithRetry a single pass runs and 503 records
// come back unretried.
func (c *Client) CheckBatchAll(ctx context.Context, req BatchRequest) ([]BatchRecord, error) {
	records := make([]BatchRecord, len(req.Items))
	pending := make([]int, len(req.Items))
	for i := range pending {
		pending[i] = i
	}
	maxAttempts := 1
	if c.retryOn {
		maxAttempts = c.retry.MaxAttempts
	}
	for attempt := 0; len(pending) > 0 && attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if serr := c.sleep(ctx, c.retry.backoff(attempt-1, 0, c.randFloat)); serr != nil {
				return records, serr
			}
		}
		sub := BatchRequest{Items: make([]BatchItem, len(pending))}
		for i, idx := range pending {
			sub.Items[i] = req.Items[idx]
		}
		stream, err := c.CheckBatch(ctx, sub)
		if err != nil {
			return records, err
		}
		recs, err := stream.Collect()
		if err != nil {
			return records, err
		}
		var next []int
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(pending) {
				return records, fmt.Errorf("client: batch record index %d out of range", rec.Index)
			}
			orig := pending[rec.Index]
			rec.Index = orig
			records[orig] = rec
			if rec.Status == http.StatusServiceUnavailable {
				next = append(next, orig)
			}
		}
		pending = next
	}
	return records, nil
}

// randFloat is the jitter source; tests substitute the hook.
func randFloatDefault() float64 { return rand.Float64() }

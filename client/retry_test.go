package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// flakyCheck serves /v1/check: the first fail responses answer with
// status (plus an optional Retry-After hint), then every later request
// succeeds. It counts hits.
type flakyCheck struct {
	mu         sync.Mutex
	hits       int
	fail       int
	status     int
	retryAfter string
}

func (f *flakyCheck) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits++
	n := f.hits
	f.mu.Unlock()
	if n <= f.fail {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		fmt.Fprintf(w, `{"error":"try later"}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"fingerprint":"sha256:abc","ok":true,"reports":[]}`)
}

func (f *flakyCheck) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

// retryClient builds a client against srv with the policy installed and
// deterministic seams: randFloat pins jitter to 1.0× and the sleep hook
// records each backoff instead of waiting.
func retryClient(srv *httptest.Server, p RetryPolicy, slept *[]time.Duration) *Client {
	c := New(srv.URL, WithRetry(p))
	c.randFloat = func() float64 { return 0.5 }
	c.sleep = func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return c
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	f := &flakyCheck{fail: 2, status: http.StatusServiceUnavailable, retryAfter: "2"}
	srv := httptest.NewServer(f)
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv, RetryPolicy{}, &slept)
	resp, err := c.Check(context.Background(), CheckRequest{Source: "class A:\n    pass\n"})
	if err != nil {
		t.Fatalf("Check after retries: %v", err)
	}
	if !resp.OK {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if got := f.count(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoffs %v, want %v (the daemon hint must win over the schedule)", slept, want)
	}
}

func TestRetryExponentialBackoffWithoutHint(t *testing.T) {
	f := &flakyCheck{fail: 100, status: http.StatusTooManyRequests}
	srv := httptest.NewServer(f)
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv, RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}, &slept)
	_, err := c.Check(context.Background(), CheckRequest{Source: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want final 429 APIError, got %v", err)
	}
	if got := f.count(); got != 4 {
		t.Fatalf("server saw %d requests, want MaxAttempts=4", got)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(slept) != 3 || slept[0] != want[0] || slept[1] != want[1] || slept[2] != want[2] {
		t.Fatalf("backoffs %v, want doubling schedule %v", slept, want)
	}
}

func TestRetryJitterStaysWithinBounds(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for i, r := range []float64{0, 0.25, 0.5, 0.999} {
		d := p.backoff(1, 0, func() float64 { return r })
		lo := time.Duration(float64(2*p.BaseDelay) * 0.5)
		hi := time.Duration(float64(2*p.BaseDelay) * 1.5)
		if d < lo || d > hi {
			t.Fatalf("sample %d: backoff %v outside jitter bounds [%v, %v]", i, d, lo, hi)
		}
	}
	if d := p.backoff(30, 0, func() float64 { return 0.999 }); d > p.MaxDelay {
		t.Fatalf("deep attempt backoff %v exceeds MaxDelay %v", d, p.MaxDelay)
	}
}

func TestRetryDisabledWithoutOptIn(t *testing.T) {
	f := &flakyCheck{fail: 1, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(f)
	defer srv.Close()

	c := New(srv.URL)
	_, err := c.Check(context.Background(), CheckRequest{Source: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 surfaced on first refusal, got %v", err)
	}
	if got := f.count(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no opt-in, no retry)", got)
	}
}

func TestRetrySkipsNonTemporaryErrors(t *testing.T) {
	f := &flakyCheck{fail: 100, status: http.StatusNotFound}
	srv := httptest.NewServer(f)
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv, RetryPolicy{}, &slept)
	_, err := c.Check(context.Background(), CheckRequest{Fingerprint: "sha256:missing"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404 APIError, got %v", err)
	}
	if got := f.count(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (404 is permanent)", got)
	}
	if len(slept) != 0 {
		t.Fatalf("unexpected backoffs %v for a permanent error", slept)
	}
}

func TestRetryStopsWhenContextExpiresMidBackoff(t *testing.T) {
	f := &flakyCheck{fail: 100, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(f)
	defer srv.Close()

	c := New(srv.URL, WithRetry(RetryPolicy{}))
	c.randFloat = func() float64 { return 0.5 }
	c.sleep = func(ctx context.Context, _ time.Duration) error { return context.DeadlineExceeded }
	_, err := c.Check(context.Background(), CheckRequest{Source: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want the refusal surfaced when the deadline fires mid-backoff, got %v", err)
	}
	if got := f.count(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no attempt after an expired wait)", got)
	}
}

// batchDrainServer serves /v1/check-batch, answering 503 records for
// fingerprints listed in refuseOnce the first time they appear — the
// shape of a daemon refusing late submissions while draining a pool.
type batchDrainServer struct {
	mu         sync.Mutex
	calls      [][]int // item counts per call, by original ID
	refuseOnce map[string]bool
}

func (b *batchDrainServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b.mu.Lock()
	sizes := make([]int, 0, len(req.Items))
	for range req.Items {
		sizes = append(sizes, 1)
	}
	b.calls = append(b.calls, sizes)
	b.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	succeeded, failed := 0, 0
	for i, item := range req.Items {
		b.mu.Lock()
		refuse := b.refuseOnce[item.ID]
		if refuse {
			delete(b.refuseOnce, item.ID)
		}
		b.mu.Unlock()
		if refuse {
			failed++
			enc.Encode(BatchRecord{Index: i, ID: item.ID, Status: http.StatusServiceUnavailable, Error: "draining"})
			continue
		}
		succeeded++
		check, _ := json.Marshal(CheckResponse{Fingerprint: Fingerprint(item.Source), OK: true})
		enc.Encode(BatchRecord{Index: i, ID: item.ID, Status: http.StatusOK, Check: check})
	}
	enc.Encode(BatchRecord{Done: true, Total: len(req.Items), Succeeded: succeeded, Failed: failed})
}

func TestCheckBatchAllResubmitsDrainRefusedRecords(t *testing.T) {
	b := &batchDrainServer{refuseOnce: map[string]bool{"b": true, "d": true}}
	srv := httptest.NewServer(b)
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv, RetryPolicy{}, &slept)
	req := BatchRequest{Items: []BatchItem{
		{ID: "a", Source: "a"}, {ID: "b", Source: "b"},
		{ID: "c", Source: "c"}, {ID: "d", Source: "d"},
	}}
	records, err := c.CheckBatchAll(context.Background(), req)
	if err != nil {
		t.Fatalf("CheckBatchAll: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4", len(records))
	}
	for i, rec := range records {
		if rec.Index != i {
			t.Fatalf("record %d carries index %d; records must come back in item order", i, rec.Index)
		}
		if rec.Status != http.StatusOK {
			t.Fatalf("record %d status %d after resubmission, want 200", i, rec.Status)
		}
		if rec.ID != req.Items[i].ID {
			t.Fatalf("record %d ID %q, want %q", i, rec.ID, req.Items[i].ID)
		}
	}
	b.mu.Lock()
	calls := b.calls
	b.mu.Unlock()
	if len(calls) != 2 || len(calls[0]) != 4 || len(calls[1]) != 2 {
		t.Fatalf("batch call shapes %v, want one full pass then a 2-item resubmission", calls)
	}
	if len(slept) != 1 {
		t.Fatalf("resubmission slept %v, want exactly one backoff between passes", slept)
	}
}

func TestCheckBatchAllWithoutRetryIsSinglePass(t *testing.T) {
	b := &batchDrainServer{refuseOnce: map[string]bool{"b": true}}
	srv := httptest.NewServer(b)
	defer srv.Close()

	c := New(srv.URL)
	records, err := c.CheckBatchAll(context.Background(), BatchRequest{Items: []BatchItem{
		{ID: "a", Source: "a"}, {ID: "b", Source: "b"},
	}})
	if err != nil {
		t.Fatalf("CheckBatchAll: %v", err)
	}
	if records[0].Status != http.StatusOK || records[1].Status != http.StatusServiceUnavailable {
		t.Fatalf("records %+v; without opt-in the 503 must come back unretried", records)
	}
	b.mu.Lock()
	calls := len(b.calls)
	b.mu.Unlock()
	if calls != 1 {
		t.Fatalf("server saw %d batch calls, want 1", calls)
	}
}

func TestCheckBatchAllRetriesWholeBatchRefusal(t *testing.T) {
	var mu sync.Mutex
	refusals := 1
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		refuse := refusals > 0
		if refuse {
			refusals--
		}
		mu.Unlock()
		if refuse {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		var req BatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i, item := range req.Items {
			check, _ := json.Marshal(CheckResponse{Fingerprint: Fingerprint(item.Source), OK: true})
			enc.Encode(BatchRecord{Index: i, ID: item.ID, Status: http.StatusOK, Check: check})
		}
		enc.Encode(BatchRecord{Done: true, Total: len(req.Items), Succeeded: len(req.Items)})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := retryClient(srv, RetryPolicy{}, &slept)
	records, err := c.CheckBatchAll(context.Background(), BatchRequest{Items: []BatchItem{{ID: "a", Source: "a"}}})
	if err != nil {
		t.Fatalf("CheckBatchAll: %v", err)
	}
	if records[0].Status != http.StatusOK {
		t.Fatalf("record %+v, want 200 after whole-batch retry", records[0])
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 2 {
		t.Fatalf("server saw %d calls, want 2 (refusal then success)", got)
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Fatalf("backoffs %v, want the daemon's 1s hint honored once", slept)
	}
}

package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// SnapshotDownload GETs /v1/snapshot, streaming the daemon's durable
// artifact store — every verified report and response body it holds —
// into w. The bytes are an opaque self-verifying stream meant for
// SnapshotUpload (to this daemon or another): uploading it to a fresh
// instance pre-warms it without re-verifying anything. Returns the
// number of bytes written. 404 when the daemon runs without a store.
func (c *Client) SnapshotDownload(ctx context.Context, w io.Writer) (int64, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/snapshot", nil)
	if err != nil {
		return 0, err
	}
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return 0, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(httpResp.Body)
		return 0, apiError(httpResp, raw)
	}
	return io.Copy(w, httpResp.Body)
}

// SnapshotUpload PUTs a snapshot stream (produced by SnapshotDownload)
// into the daemon's artifact store. The daemon re-verifies every
// record — damaged or duplicate entries are skipped and counted in the
// response, never trusted — and a structurally broken stream answers
// 400. 404 when the daemon runs without a store.
func (c *Client) SnapshotUpload(ctx context.Context, r io.Reader) (*SnapshotImportResponse, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/snapshot", r)
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/octet-stream")
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode/100 != 2 {
		return nil, apiError(httpResp, raw)
	}
	var resp SnapshotImportResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding /v1/snapshot response: %w", err)
	}
	resp.setTraceID(httpResp.Header.Get("X-Shelley-Trace"))
	return &resp, nil
}

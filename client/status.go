package client

import (
	"context"
	"encoding/json"
	"time"
)

// StatusResponse is the GET /v1/status body: the daemon's live
// operational picture — gauges, rolling per-endpoint rates and
// percentiles, SLO budgets, firing alerts, and recent exemplar traces.
// Duration-typed fields marshal as integer nanoseconds (Go's
// time.Duration JSON encoding); field names carry the _ns suffix as a
// reminder.
type StatusResponse struct {
	Now       time.Time     `json:"now"`
	Start     time.Time     `json:"start"`
	UptimeSec float64       `json:"uptime_sec"`
	Interval  time.Duration `json:"interval_ns"`
	Draining  bool          `json:"draining"`

	// Gauges are the latest instantaneous values, keyed by metric name
	// (label block included for labeled families).
	Gauges map[string]float64 `json:"gauges"`

	Endpoints []EndpointStatus `json:"endpoints"`
	SLOs      []SLOStatus      `json:"slos,omitempty"`
	Alerts    []AlertStatus    `json:"alerts"`
	Exemplars []ExemplarStatus `json:"exemplars"`
}

// EndpointStatus is one endpoint's rolling view.
type EndpointStatus struct {
	Endpoint string `json:"endpoint"`

	// Codes are since-boot request counts by status code.
	Codes map[string]uint64 `json:"codes"`

	// Windows maps a window label ("10s", "1m", "5m", "1h") to the
	// statistics over that window.
	Windows map[string]WindowStats `json:"windows"`
}

// WindowStats are rolling statistics over one window.
type WindowStats struct {
	// Window is the effective span the statistics cover — the
	// requested window clamped to retained history.
	Window time.Duration `json:"window_ns"`

	Total     uint64  `json:"total"`
	Errors    uint64  `json:"errors"`
	Rate      float64 `json:"rate"`
	ErrorRate float64 `json:"error_rate"`

	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// SLOStatus is one objective's current evaluation.
type SLOStatus struct {
	Name     string        `json:"name"`
	Endpoint string        `json:"endpoint"`
	Target   float64       `json:"target"`
	Latency  time.Duration `json:"latency_ns,omitempty"`

	BadFrac float64       `json:"bad_frac"`
	Window  time.Duration `json:"window_ns"`

	// BurnFast/BurnSlow are error-budget burn rates over the page
	// rule's 5m/1h windows; 1.0 spends exactly the budget.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`

	BudgetRemaining float64 `json:"budget_remaining"`

	// Firing is "", "warn", or "page".
	Firing string `json:"firing,omitempty"`
}

// AlertStatus is one firing alert — an SLO burn or a drift flip (whose
// Counterexample carries the offending trace).
type AlertStatus struct {
	Key            string    `json:"key"`
	Severity       string    `json:"severity"`
	Since          time.Time `json:"since"`
	Message        string    `json:"message"`
	Value          float64   `json:"value,omitempty"`
	Counterexample []string  `json:"counterexample,omitempty"`
}

// ExemplarStatus is one tail-sampled request with its span tree.
type ExemplarStatus struct {
	TraceID  string        `json:"trace_id"`
	Endpoint string        `json:"endpoint"`
	Code     int           `json:"code"`
	Reason   string        `json:"reason"`
	Duration time.Duration `json:"duration_ns"`

	// Bucket is the fine histogram bucket the request landed in;
	// BucketLe its human-readable upper bound.
	Bucket   int    `json:"bucket"`
	BucketLe string `json:"bucket_le"`

	At           time.Time      `json:"at"`
	Spans        []ExemplarSpan `json:"spans,omitempty"`
	SpansDropped int            `json:"spans_dropped,omitempty"`
}

// ExemplarSpan is one span of an exemplar's tree.
type ExemplarSpan struct {
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Counts   map[string]uint64 `json:"counts,omitempty"`
}

// Status GETs /v1/status — the daemon's live telemetry view. Requires
// the daemon to run with telemetry enabled (404 otherwise, surfaced as
// an *APIError).
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	raw, err := c.get(ctx, "/v1/status")
	if err != nil {
		return nil, err
	}
	var out StatusResponse
	if err := json.Unmarshal([]byte(raw), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

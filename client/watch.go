package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// WatchPush POSTs /v1/watch: push one source generation into a named
// watch session and get its re-check round back. The daemon re-verifies
// only what the edit invalidated; the returned update carries the full
// report set (cached and fresh alike) plus the diff and reuse counters.
// Retried under the client's retry policy like every POST.
func (c *Client) WatchPush(ctx context.Context, req WatchRequest) (*WatchUpdate, error) {
	var resp WatchUpdate
	if err := c.post(ctx, "/v1/watch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Watch long-polls GET /v1/watch for the next re-check round of a
// session with Seq > after: it blocks until an editor pushes a new
// generation, the daemon's poll window lapses (nil update, nil error —
// poll again with the same after), or the daemon starts draining
// (503 APIError). Pass the last update's Seq as after (0 for "any
// generation"); a slow poller skips straight to the latest round, it is
// never fed stale generations one by one.
func (c *Client) Watch(ctx context.Context, session string, after uint64) (*WatchUpdate, error) {
	q := url.Values{}
	q.Set("session", session)
	q.Set("after", strconv.FormatUint(after, 10))
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/watch?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	c.setHeaders(httpReq)
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	switch {
	case httpResp.StatusCode == http.StatusNoContent:
		return nil, nil
	case httpResp.StatusCode/100 != 2:
		return nil, apiError(httpResp, raw)
	}
	var upd WatchUpdate
	if err := json.Unmarshal(raw, &upd); err != nil {
		return nil, fmt.Errorf("client: decoding /v1/watch response: %w", err)
	}
	if id := httpResp.Header.Get("X-Shelley-Trace"); id != "" {
		upd.setTraceID(id)
	}
	return &upd, nil
}

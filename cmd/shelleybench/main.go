// Command shelleybench converts `go test -bench` text output into a
// machine-readable BENCH_<date>.json record, so benchmark runs (CI's
// bench-smoke, or a developer's laptop) accumulate into a comparable
// performance trajectory instead of scrolling away in logs.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | shelleybench -o BENCH_$(date +%F).json
//	shelleybench -i bench.txt
//
// The converter is deliberately lossless about per-benchmark metrics:
// the standard ns/op, B/op, and allocs/op land in typed fields, and any
// custom ReportMetric units ride along in "extra". Non-benchmark lines
// (PASS, ok, failures) are ignored, but goos/goarch/pkg/cpu headers are
// captured so records from different machines stay distinguishable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Record is the top-level JSON document.
type Record struct {
	Date   string `json:"date"`
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line.
type Benchmark struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`

	// Procs is the -N GOMAXPROCS suffix Go appends to the name.
	Procs int `json:"procs,omitempty"`

	Runs        int64    `json:"runs"`
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`

	// Extra holds custom testing.B ReportMetric units, keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleybench:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

var benchLineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

// run is the testable body of main.
func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("shelleybench", flag.ContinueOnError)
	in := fs.String("i", "", "input file of go test -bench output (empty = stdin)")
	out := fs.String("o", "", "output JSON file (empty = stdout)")
	date := fs.String("date", "", "record date, YYYY-MM-DD (empty = today)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 0 {
		return 2, fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return 2, err
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		return 1, err
	}
	if len(rec.Benchmarks) == 0 {
		return 1, fmt.Errorf("no benchmark lines in input")
	}
	rec.Date = *date
	if rec.Date == "" {
		rec.Date = time.Now().Format("2006-01-02")
	}

	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return 1, err
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			return 1, err
		}
		fmt.Fprintf(stdout, "shelleybench: %d benchmarks -> %s\n", len(rec.Benchmarks), *out)
		return 0, nil
	}
	_, err = stdout.Write(b)
	return 0, err
}

// parse consumes go test -bench output. Header lines (goos/goarch/
// pkg/cpu) may repeat once per package; the pkg header applies to every
// benchmark line that follows it.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rec.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Pkg: pkg, Extra: map[string]float64{}}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		var err error
		if b.Runs, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return nil, fmt.Errorf("bad runs in %q: %w", line, err)
		}
		// The tail is value-unit pairs: "21.82 ns/op  0 B/op  0 allocs/op".
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd metric fields in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				val := v
				b.BPerOp = &val
			case "allocs/op":
				val := v
				b.AllocsPerOp = &val
			default:
				b.Extra[unit] = v
			}
		}
		if len(b.Extra) == 0 {
			b.Extra = nil
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	return rec, sc.Err()
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/shelley-go/shelley
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2Cold-8         	     100	    110432 ns/op	    8104 B/op	      38 allocs/op
BenchmarkFig2Cached-8       	   10000	       132.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCheckThroughput    	     500	   2104932 ns/op	        475.1 items/s
PASS
ok  	github.com/shelley-go/shelley	4.312s
pkg: github.com/shelley-go/shelley/internal/server
BenchmarkMetricsObserveParallel-8 	53447365	        21.82 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/shelley-go/shelley/internal/server	2.457s
`

func TestParseAndEmit(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "bench.json")
	var stdout strings.Builder
	code, err := run([]string{"-o", outFile, "-date", "2026-08-08"}, strings.NewReader(sampleOutput), &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}

	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Date != "2026-08-08" || rec.GOOS != "linux" || rec.GOARCH != "amd64" {
		t.Errorf("header = %s/%s/%s", rec.Date, rec.GOOS, rec.GOARCH)
	}
	if len(rec.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rec.Benchmarks))
	}

	cold := rec.Benchmarks[0]
	if cold.Name != "BenchmarkFig2Cold" || cold.Procs != 8 || cold.Runs != 100 || cold.NsPerOp != 110432 {
		t.Errorf("cold = %+v", cold)
	}
	if cold.BPerOp == nil || *cold.BPerOp != 8104 || cold.AllocsPerOp == nil || *cold.AllocsPerOp != 38 {
		t.Errorf("cold memory metrics = %+v", cold)
	}
	if cold.Pkg != "github.com/shelley-go/shelley" {
		t.Errorf("cold pkg = %q", cold.Pkg)
	}

	// Fractional ns/op and custom ReportMetric units survive.
	if rec.Benchmarks[1].NsPerOp != 132.5 {
		t.Errorf("cached ns/op = %v", rec.Benchmarks[1].NsPerOp)
	}
	tp := rec.Benchmarks[2]
	if tp.Procs != 0 || tp.Extra["items/s"] != 475.1 || tp.BPerOp != nil {
		t.Errorf("throughput = %+v", tp)
	}

	// The second pkg header applies to the benchmarks after it.
	par := rec.Benchmarks[3]
	if par.Name != "BenchmarkMetricsObserveParallel" || par.Pkg != "github.com/shelley-go/shelley/internal/server" {
		t.Errorf("parallel = %+v", par)
	}
}

func TestStdoutAndDefaults(t *testing.T) {
	var stdout strings.Builder
	code, err := run(nil, strings.NewReader(sampleOutput), &stdout)
	if err != nil || code != 0 {
		t.Fatalf("run = (%d, %v)", code, err)
	}
	var rec Record
	if err := json.Unmarshal([]byte(stdout.String()), &rec); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if rec.Date == "" {
		t.Error("date not defaulted")
	}
}

func TestErrors(t *testing.T) {
	var stdout strings.Builder
	if code, err := run(nil, strings.NewReader("PASS\nok x 1s\n"), &stdout); err == nil || code != 1 {
		t.Errorf("empty input: (%d, %v), want code 1 and error", code, err)
	}
	if code, err := run([]string{"-badflag"}, strings.NewReader(""), &stdout); err == nil || code != 2 {
		t.Errorf("bad flag: (%d, %v), want code 2 and error", code, err)
	}
	if code, err := run([]string{"-i", "/nonexistent"}, strings.NewReader(""), &stdout); err == nil || code != 2 {
		t.Errorf("bad input file: (%d, %v), want code 2 and error", code, err)
	}
}

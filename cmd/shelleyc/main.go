// Command shelleyc verifies Shelley-annotated MicroPython files: it
// runs the full pipeline (model extraction, invocation analysis,
// subsystem-usage verification, temporal claims) on every class and
// prints the paper-formatted error messages.
//
// Usage:
//
//	shelleyc [-class NAME] [-quiet] [-trace out.json] FILE.py [FILE.py ...]
//
// The exit status is 0 when every checked class verifies, 1 when any
// diagnostic is reported, and 2 on usage or load errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/check"
	"github.com/shelley-go/shelley/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleyc:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// withBudgetFlags attaches the -max-states / -max-regex resource budget
// to ctx; both zero leaves the context unlimited (historical behavior).
func withBudgetFlags(ctx context.Context, maxStates, maxRegex int) context.Context {
	if maxStates <= 0 && maxRegex <= 0 {
		return ctx
	}
	return shelley.WithBudget(ctx, shelley.Budget{
		MaxNFAStates:   maxStates,
		MaxDFAStates:   maxStates,
		MaxRegexSize:   maxRegex,
		MaxSearchNodes: maxStates,
	})
}

func run(args []string, out io.Writer) (code int, err error) {
	fs := flag.NewFlagSet("shelleyc", flag.ContinueOnError)
	className := fs.String("class", "", "verify only this class")
	quiet := fs.Bool("quiet", false, "suppress OK lines")
	emitNuSMV := fs.Bool("nusmv", false, "print each class's NuSMV model instead of verifying")
	jsonOut := fs.Bool("json", false, "print machine-readable JSON reports")
	precise := fs.Bool("precise", false, "use exit-aware flattening (tighter than the paper's union model)")
	violations := fs.Int("violations", 0, "additionally list up to N invalid usages per subsystem")
	explain := fs.Bool("explain", false, "print a step-by-step explanation for failed claims")
	stats := fs.Bool("stats", false, "print pipeline cache statistics after verification")
	maxStates := fs.Int("max-states", 0, "bound automata states and search nodes per construction (0 = unlimited)")
	maxRegex := fs.Int("max-regex", 0, "bound regex size per construction (0 = unlimited)")
	var tr obs.CLIFlags
	tr.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() == 0 {
		return 2, fmt.Errorf("no input files (usage: shelleyc [-class NAME] FILE.py ...)")
	}
	ctx := tr.Context(context.Background())
	ctx = withBudgetFlags(ctx, *maxStates, *maxRegex)
	defer func() {
		if ferr := tr.Flush(); ferr != nil && err == nil {
			code, err = 2, fmt.Errorf("writing trace: %w", ferr)
		}
	}()
	// One root span for the whole invocation, so every load and check
	// shares a single trace in the exported file. Ended before the
	// deferred Flush (LIFO).
	ctx, root := obs.Start(ctx, "cli.shelleyc", obs.Int("files", fs.NArg()))
	defer root.End()

	mod, err := shelley.LoadFilesContext(ctx, fs.Args()...)
	if err != nil {
		return 2, err
	}

	classes := mod.Classes()
	if *className != "" {
		c, ok := mod.Class(*className)
		if !ok {
			return 2, fmt.Errorf("class %q not found", *className)
		}
		classes = []*shelley.Class{c}
	}

	if *emitNuSMV {
		for _, c := range classes {
			text, err := c.ExportNuSMV()
			if err != nil {
				return 2, err
			}
			fmt.Fprint(out, text)
		}
		return 0, nil
	}

	var checkOpts []check.Option
	if *precise {
		checkOpts = append(checkOpts, check.Precise())
	}

	failed := false
	var reports []*shelley.Report
	for _, c := range classes {
		report, err := c.CheckContext(ctx, checkOpts...)
		if err != nil {
			return 2, err
		}
		reports = append(reports, report)
		if !report.OK() {
			failed = true
		}
		if *jsonOut {
			continue
		}
		if report.OK() {
			if !*quiet {
				fmt.Fprintf(out, "class %s: OK\n", c.Name())
			}
			continue
		}
		fmt.Fprintf(out, "class %s:\n%s\n", c.Name(), report)
		if *explain {
			for _, d := range report.Diagnostics {
				if d.Explanation != "" {
					fmt.Fprintf(out, "\n%s", d.Explanation)
				}
			}
		}
		if *violations > 0 {
			vs, err := c.UsageViolations(*violations, checkOpts...)
			if err != nil {
				return 2, err
			}
			for _, v := range vs {
				fmt.Fprintf(out, "invalid usage (subsystem %s): %s\n", v.Subsystem, strings.Join(v.Trace, ", "))
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 2, err
		}
	}
	if *stats {
		fmt.Fprint(out, mod.PipelineStats())
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

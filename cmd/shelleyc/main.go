// Command shelleyc verifies Shelley-annotated MicroPython files: it
// runs the full pipeline (model extraction, invocation analysis,
// subsystem-usage verification, temporal claims) on every class and
// prints the paper-formatted error messages.
//
// Usage:
//
//	shelleyc [-class NAME] [-quiet] [-trace out.json] FILE.py [FILE.py ...]
//	shelleyc -server http://HOST:PORT [-batch] FILE.py [FILE.py ...]
//	shelleyc -incremental [-poll D] [-rounds N] FILE.py
//
// With -server the files are verified by a running shelleyd instead of
// in-process; each file is checked as its own module. Adding -batch
// folds every file into one /v1/check-batch request and prints results
// as the daemon streams them back — the fast path for large file sets
// against a warm daemon.
//
// With -incremental, shelleyc watches one file and re-verifies each
// save against the previous generation through a long-lived session:
// only classes the edit invalidates re-run, everything else is answered
// from the warm pipeline cache, and each round prints what changed,
// what re-verified, and what was reused.
//
// The exit status is 0 when every checked class verifies, 1 when any
// diagnostic is reported, and 2 on usage or load errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/check"
	"github.com/shelley-go/shelley/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleyc:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// withBudgetFlags attaches the -max-states / -max-regex resource budget
// to ctx; both zero leaves the context unlimited (historical behavior).
func withBudgetFlags(ctx context.Context, maxStates, maxRegex int) context.Context {
	if maxStates <= 0 && maxRegex <= 0 {
		return ctx
	}
	return shelley.WithBudget(ctx, shelley.Budget{
		MaxNFAStates:   maxStates,
		MaxDFAStates:   maxStates,
		MaxRegexSize:   maxRegex,
		MaxSearchNodes: maxStates,
	})
}

func run(args []string, out io.Writer) (code int, err error) {
	fs := flag.NewFlagSet("shelleyc", flag.ContinueOnError)
	className := fs.String("class", "", "verify only this class")
	quiet := fs.Bool("quiet", false, "suppress OK lines")
	emitNuSMV := fs.Bool("nusmv", false, "print each class's NuSMV model instead of verifying")
	jsonOut := fs.Bool("json", false, "print machine-readable JSON reports")
	precise := fs.Bool("precise", false, "use exit-aware flattening (tighter than the paper's union model)")
	violations := fs.Int("violations", 0, "additionally list up to N invalid usages per subsystem")
	explain := fs.Bool("explain", false, "print a step-by-step explanation for failed claims")
	stats := fs.Bool("stats", false, "print pipeline cache statistics after verification")
	maxStates := fs.Int("max-states", 0, "bound automata states and search nodes per construction (0 = unlimited)")
	maxRegex := fs.Int("max-regex", 0, "bound regex size per construction (0 = unlimited)")
	serverURL := fs.String("server", "", "verify via a running shelleyd at this base URL instead of in-process")
	batch := fs.Bool("batch", false, "with -server: send every file in one /v1/check-batch stream")
	incremental := fs.Bool("incremental", false, "watch one file and incrementally re-verify on change (only edited methods' dependents re-run)")
	pollEvery := fs.Duration("poll", 200*time.Millisecond, "with -incremental: file modification poll period")
	rounds := fs.Int("rounds", 0, "with -incremental: exit after N re-check rounds (0 = run until interrupted)")
	var tr obs.CLIFlags
	tr.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() == 0 {
		return 2, fmt.Errorf("no input files (usage: shelleyc [-class NAME] FILE.py ...)")
	}
	if *serverURL != "" {
		if *emitNuSMV || *explain || *stats || *violations > 0 {
			return 2, fmt.Errorf("-nusmv, -explain, -stats, and -violations are in-process modes; drop them or drop -server")
		}
		return runRemote(out, *serverURL, *batch, fs.Args(), *className, *precise, *quiet, *jsonOut)
	}
	if *batch {
		return 2, fmt.Errorf("-batch requires -server (in-process verification has no batch wire)")
	}
	if *incremental {
		if *emitNuSMV || *jsonOut || *explain || *violations > 0 || *className != "" {
			return 2, fmt.Errorf("-incremental re-verifies whole files on change; drop -nusmv/-json/-explain/-violations/-class")
		}
		if fs.NArg() != 1 {
			return 2, fmt.Errorf("-incremental watches exactly one file")
		}
		var checkOpts []check.Option
		if *precise {
			checkOpts = append(checkOpts, check.Precise())
		}
		ctx := withBudgetFlags(context.Background(), *maxStates, *maxRegex)
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, syscall.SIGTERM, os.Interrupt)
		return runIncremental(ctx, out, fs.Arg(0), checkOpts, *quiet, *stats, *pollEvery, *rounds, stop)
	}
	ctx := tr.Context(context.Background())
	ctx = withBudgetFlags(ctx, *maxStates, *maxRegex)
	defer func() {
		if ferr := tr.Flush(); ferr != nil && err == nil {
			code, err = 2, fmt.Errorf("writing trace: %w", ferr)
		}
	}()
	// One root span for the whole invocation, so every load and check
	// shares a single trace in the exported file. Ended before the
	// deferred Flush (LIFO).
	ctx, root := obs.Start(ctx, "cli.shelleyc", obs.Int("files", fs.NArg()))
	defer root.End()

	mod, err := shelley.LoadFilesContext(ctx, fs.Args()...)
	if err != nil {
		return 2, err
	}

	classes := mod.Classes()
	if *className != "" {
		c, ok := mod.Class(*className)
		if !ok {
			return 2, fmt.Errorf("class %q not found", *className)
		}
		classes = []*shelley.Class{c}
	}

	if *emitNuSMV {
		for _, c := range classes {
			text, err := c.ExportNuSMV()
			if err != nil {
				return 2, err
			}
			fmt.Fprint(out, text)
		}
		return 0, nil
	}

	var checkOpts []check.Option
	if *precise {
		checkOpts = append(checkOpts, check.Precise())
	}

	failed := false
	var reports []*shelley.Report
	for _, c := range classes {
		report, err := c.CheckContext(ctx, checkOpts...)
		if err != nil {
			return 2, err
		}
		reports = append(reports, report)
		if !report.OK() {
			failed = true
		}
		if *jsonOut {
			continue
		}
		if report.OK() {
			if !*quiet {
				fmt.Fprintf(out, "class %s: OK\n", c.Name())
			}
			continue
		}
		fmt.Fprintf(out, "class %s:\n%s\n", c.Name(), report)
		if *explain {
			for _, d := range report.Diagnostics {
				if d.Explanation != "" {
					fmt.Fprintf(out, "\n%s", d.Explanation)
				}
			}
		}
		if *violations > 0 {
			vs, err := c.UsageViolations(*violations, checkOpts...)
			if err != nil {
				return 2, err
			}
			for _, v := range vs {
				fmt.Fprintf(out, "invalid usage (subsystem %s): %s\n", v.Subsystem, strings.Join(v.Trace, ", "))
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 2, err
		}
	}
	if *stats {
		fmt.Fprint(out, mod.PipelineStats())
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

// runIncremental is the edit-loop mode: one long-lived shelley.Session
// watches a single file, re-checking each saved generation against the
// previous one. Unchanged methods' inferred behaviors, unchanged
// protocols' automata, and unchanged classes' whole reports are reused
// from the session cache, so each round's cost tracks the size of the
// edit, not the size of the file. A save that fails to parse is
// reported and skipped — the session keeps its last good generation and
// the watch continues. The exit status reflects the last completed
// round (0 clean, 1 findings); stop delivers SIGINT/SIGTERM.
func runIncremental(ctx context.Context, out io.Writer, path string, checkOpts []check.Option, quiet, stats bool, pollEvery time.Duration, rounds int, stop <-chan os.Signal) (int, error) {
	sess := shelley.NewSession()
	code := 0
	round := 0
	var lastMod time.Time
	var lastSize int64
	for {
		st, err := os.Stat(path)
		if err != nil {
			return 2, err
		}
		if round == 0 || !st.ModTime().Equal(lastMod) || st.Size() != lastSize {
			lastMod, lastSize = st.ModTime(), st.Size()
			src, err := os.ReadFile(path)
			if err != nil {
				return 2, err
			}
			res, rerr := sess.Recheck(ctx, path, src, checkOpts...)
			if rerr != nil {
				// A half-saved or broken file must not kill the loop: the
				// previous generation stays resident and the next save
				// gets another chance.
				fmt.Fprintf(out, "%s: %v (watch continues)\n", path, rerr)
			} else {
				round++
				code = printRound(out, round, res, quiet, stats)
			}
		}
		if rounds > 0 && round >= rounds {
			return code, nil
		}
		select {
		case <-stop:
			return code, nil
		case <-time.After(pollEvery):
		}
	}
}

// printRound renders one incremental round: failing class reports, a
// one-line summary of what the edit invalidated and what was reused,
// and (with -stats) the round's pipeline-stage delta.
func printRound(out io.Writer, round int, res *shelley.RecheckResult, quiet, stats bool) int {
	code := 0
	for _, rep := range res.Reports {
		if rep.OK() {
			if !quiet {
				fmt.Fprintf(out, "class %s: OK\n", rep.Class)
			}
			continue
		}
		code = 1
		fmt.Fprintf(out, "class %s:\n%s\n", rep.Class, rep)
	}
	summary := "no observable change"
	switch d := res.Diff; {
	case d.Initial:
		summary = "initial load"
	case !d.Clean():
		parts := make([]string, 0, 3)
		if len(d.Changed) > 0 {
			parts = append(parts, "changed "+strings.Join(d.Changed, ","))
		}
		if len(d.Added) > 0 {
			parts = append(parts, "added "+strings.Join(d.Added, ","))
		}
		if len(d.Removed) > 0 {
			parts = append(parts, "removed "+strings.Join(d.Removed, ","))
		}
		summary = strings.Join(parts, "; ")
	}
	fmt.Fprintf(out, "recheck #%d: %s — %d re-verified, %d reused, %s\n",
		round, summary, res.CheckedClasses, res.ReusedReports, res.Elapsed.Round(time.Microsecond))
	if stats {
		fmt.Fprint(out, res.Stats)
	}
	return code
}

// runRemote verifies the files against a running shelleyd: one
// /v1/check per file, or one streamed /v1/check-batch for all of them
// with -batch. Results print in the local format as they arrive, and
// the exit-code contract is unchanged — 0 clean, 1 findings, 2 errors
// (including per-item request errors, which never abort the rest of
// the stream).
func runRemote(out io.Writer, serverURL string, batch bool, files []string, className string, precise, quiet, jsonOut bool) (int, error) {
	cl := client.New(serverURL)
	ctx := context.Background()
	items := make([]client.BatchItem, len(files))
	for i, p := range files {
		b, err := os.ReadFile(p)
		if err != nil {
			return 2, err
		}
		items[i] = client.BatchItem{ID: p, Source: string(b), Class: className, Precise: precise}
	}

	code := 0
	worst := func(c int) {
		if c > code {
			code = c
		}
	}
	var reports []*shelley.Report
	handle := func(file string, resp *client.CheckResponse, status int, errText string) {
		if status != 0 {
			worst(2)
			fmt.Fprintf(out, "%s: error (%d): %s\n", file, status, errText)
			return
		}
		for _, rep := range resp.Reports {
			reports = append(reports, rep)
			if rep.OK() {
				if !quiet && !jsonOut {
					fmt.Fprintf(out, "class %s: OK\n", rep.Class)
				}
				continue
			}
			worst(1)
			if !jsonOut {
				fmt.Fprintf(out, "class %s:\n%s\n", rep.Class, rep)
			}
		}
	}

	if batch {
		stream, err := cl.CheckBatch(ctx, client.BatchRequest{Items: items})
		if err != nil {
			return 2, err
		}
		defer stream.Close()
		for {
			rec, err := stream.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return 2, err
			}
			if rec.Status != http.StatusOK {
				handle(rec.ID, nil, rec.Status, rec.Error)
				continue
			}
			resp, err := rec.CheckResponse()
			if err != nil {
				return 2, err
			}
			handle(rec.ID, resp, 0, "")
		}
		if sum := stream.Summary(); sum != nil && sum.Error != "" {
			return 2, fmt.Errorf("batch incomplete: %s", sum.Error)
		}
	} else {
		for i, it := range items {
			resp, err := cl.Check(ctx, client.CheckRequest{Source: it.Source, Class: it.Class, Precise: it.Precise})
			if err != nil {
				var apiErr *client.APIError
				if errors.As(err, &apiErr) {
					handle(files[i], nil, apiErr.StatusCode, apiErr.Message)
					continue
				}
				return 2, err
			}
			handle(files[i], resp, 0, "")
		}
	}

	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 2, err
		}
	}
	return code, nil
}

package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/shelley-go/shelley/internal/server"
)

func paperFiles() []string {
	base := filepath.Join("..", "..", "testdata")
	return []string{
		filepath.Join(base, "valve.py"),
		filepath.Join(base, "badsector.py"),
	}
}

func TestRunReportsPaperErrors(t *testing.T) {
	var out strings.Builder
	code, err := run(paperFiles(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	text := out.String()
	for _, want := range []string{
		"class Valve: OK",
		"Error in specification: INVALID SUBSYSTEM USAGE",
		"Counter example: open_a, a.test, a.open",
		"  * Valve 'a': test, >open< (not final)",
		"Error in specification: FAIL TO MEET REQUIREMENT",
		"Formula: (!a.open) W b.open",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunSingleClassAndQuiet(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-class", "Valve", "-quiet"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	if out.String() != "" {
		t.Errorf("quiet run should print nothing, got %q", out.String())
	}
}

func TestRunNuSMVExport(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-class", "BadSector", "-nusmv"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	for _, want := range []string{"MODULE main", "LTLSPEC", "e_a_open"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("NuSMV export missing %q", want)
		}
	}
}

// TestRunExitCodeContract pins the documented exit-status contract the
// CI and editor integrations script against: 0 every class verified,
// 1 any diagnostic reported, 2 usage or load errors (always paired
// with a non-nil error so main prints to stderr).
func TestRunExitCodeContract(t *testing.T) {
	base := filepath.Join("..", "..", "testdata")
	cases := []struct {
		name    string
		args    []string
		code    int
		wantErr bool
	}{
		{"all verified", []string{filepath.Join(base, "valve.py")}, 0, false},
		{"verified single class", append([]string{"-class", "Valve"}, paperFiles()...), 0, false},
		{"diagnostics reported", paperFiles(), 1, false},
		{"diagnostics in selected class", append([]string{"-class", "BadSector"}, paperFiles()...), 1, false},
		{"no input files", nil, 2, true},
		{"missing file", []string{filepath.Join(base, "missing.py")}, 2, true},
		{"missing class", append([]string{"-class", "NoSuchClass"}, paperFiles()...), 2, true},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2, true},
		{"unparsable source", []string{filepath.Join(base, "golden")}, 2, true},
	}
	for _, tc := range cases {
		var out strings.Builder
		code, err := run(tc.args, &out)
		if code != tc.code {
			t.Errorf("%s: exit code = %d, want %d (err=%v)", tc.name, code, tc.code, err)
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}

	// The missing-class error must name the class so the caller can
	// tell a typo from a load failure.
	var out strings.Builder
	_, err := run(append([]string{"-class", "NoSuchClass"}, paperFiles()...), &out)
	if err == nil || !strings.Contains(err.Error(), "NoSuchClass") {
		t.Errorf("missing-class error should name the class: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Error("no files should be an error")
	}
	if _, err := run([]string{"missing.py"}, &out); err == nil {
		t.Error("missing file should be an error")
	}
	if _, err := run(append([]string{"-class", "Nope"}, paperFiles()...), &out); err == nil {
		t.Error("unknown class should be an error")
	}
	if _, err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag should be an error")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-json"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var reports []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0]["class"] != "Valve" || reports[0]["ok"] != true {
		t.Errorf("report 0 = %v", reports[0])
	}
	if reports[1]["class"] != "BadSector" || reports[1]["ok"] != false {
		t.Errorf("report 1 = %v", reports[1])
	}
	diags := reports[1]["diagnostics"].([]any)
	first := diags[0].(map[string]any)
	if first["kind"] != "INVALID SUBSYSTEM USAGE" {
		t.Errorf("kind = %v", first["kind"])
	}
}

func TestRunPreciseFlag(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-precise"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	// BadSector's violations are real, so precise mode still fails.
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "INVALID SUBSYSTEM USAGE") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunViolationsFlag(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-violations", "3"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "invalid usage (subsystem a): a.test, a.open") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunExplainFlag(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-explain"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	for _, want := range []string{"claim: !a.open W b.open", "VIOLATED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explanation missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRemoteBatch round-trips shelleyc's -server/-batch mode
// against an in-process daemon: clean and failing files in one batch,
// local-format output, and the 0/1/2 exit-code contract preserved.
func TestRunRemoteBatch(t *testing.T) {
	srv := server.New(server.Config{Workers: 1})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	url := "http://" + addr

	base := filepath.Join("..", "..", "testdata")
	valve := filepath.Join(base, "valve.py")
	// Remote items are one module per file, so the failing file must be
	// self-contained: valve.py + badsector.py concatenated.
	vb, err := os.ReadFile(valve)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(filepath.Join(base, "badsector.py"))
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "badmodule.py")
	if err := os.WriteFile(bad, append(vb, bb...), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	code, err := run([]string{"-server", url, "-batch", valve, bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (findings)\n%s", code, out.String())
	}
	for _, want := range []string{"class Valve: OK", "INVALID SUBSYSTEM USAGE"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// Single-shot remote mode agrees, and a clean file exits 0.
	out.Reset()
	if code, err = run([]string{"-server", url, valve}, &out); err != nil || code != 0 {
		t.Errorf("clean remote check: (%d, %v)\n%s", code, err, out.String())
	}

	// A per-item request error is exit 2 and does not abort the batch.
	out.Reset()
	if code, err = run([]string{"-server", url, "-batch", "-class", "NoSuchClass", valve}, &out); err != nil || code != 2 {
		t.Errorf("missing class: (%d, %v)\n%s", code, err, out.String())
	}

	// -batch without -server is a usage error; so is -nusmv with -server.
	if code, _ := run([]string{"-batch", valve}, &out); code != 2 {
		t.Errorf("-batch alone: code %d, want 2", code)
	}
	if code, _ := run([]string{"-server", url, "-nusmv", valve}, &out); code != 2 {
		t.Errorf("-server -nusmv: code %d, want 2", code)
	}
}

// TestIncrementalWatchLoop drives -incremental end to end: an initial
// load, then an edit of one class, asserting the second round
// re-verifies only the edited class and reuses the other's report.
func TestIncrementalWatchLoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mod.py")
	src := func(op string) string {
		return `@sys
class Dev:
    @op_initial_final
    def op0(self):
        return ["op0", "op1"]

    @op_initial_final
    def op1(self):
        return []

@sys(["d"])
class Ctl:
    def __init__(self):
        self.d = Dev()

    @op_initial_final
    def go(self):
        self.d.` + op + `()
        return []
`
	}
	if err := os.WriteFile(path, []byte(src("op0")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Edit the file as soon as the first round's summary appears, so
	// the loop observes a mid-watch save.
	var out syncBuilder
	go func() {
		for !strings.Contains(out.String(), "recheck #1") {
			time.Sleep(time.Millisecond)
		}
		if err := os.WriteFile(path, []byte(src("op1")), 0o644); err != nil {
			t.Error(err)
		}
		now := time.Now().Add(time.Second)
		if err := os.Chtimes(path, now, now); err != nil {
			t.Error(err)
		}
	}()

	code, err := run([]string{"-incremental", "-poll", "5ms", "-rounds", "2", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "recheck #1: initial load — 2 re-verified, 0 reused") {
		t.Fatalf("first round summary missing:\n%s", text)
	}
	if !strings.Contains(text, "recheck #2: changed Ctl — 1 re-verified, 1 reused") {
		t.Fatalf("second round did not reuse the untouched class:\n%s", text)
	}
}

// syncBuilder is a strings.Builder safe for the cross-goroutine
// read-while-writing pattern of the incremental test.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// Command shelleyd is the resident verification daemon: it keeps
// loaded modules and their memoizing pipeline caches warm in one
// process and serves verification over HTTP/JSON, so checking becomes
// an online, multi-tenant operation instead of a per-invocation batch
// script.
//
// Usage:
//
//	shelleyd [-addr HOST:PORT] [-workers N] [-queue N] [-timeout D] ...
//	shelleyd -selfcheck [-corpus DIR] [-clients N] [-requests N]
//	shelleyd -selfcheck-batch [-corpus DIR] [-clients N] [-requests N]
//
// Serve mode runs until SIGTERM/SIGINT, then drains: new requests are
// refused while every admitted request completes and is delivered.
// Selfcheck mode boots an in-process daemon and hammers it with the
// corpus (every .py under -corpus) from many concurrent clients,
// cross-checking responses against direct library calls — a one-shot
// load generator for smoke tests and CI. Selfcheck-batch is the same
// idea over the streaming batch endpoint: each client streams
// whole-corpus /v1/check-batch requests (-requests batches each),
// honoring Retry-After on admission refusals, and reports items/s with
// per-batch latency percentiles.
//
// Endpoints: POST /v1/check, /v1/check-batch, /v1/jobs, /v1/infer,
// /v1/trace, /v1/ingest (-mine), /v1/watch (-watch); GET /v1/jobs/{id},
// /v1/drift (-mine), /v1/watch (-watch, long-poll), /v1/status (live
// telemetry: rolling rates/percentiles, SLO burn alerts, exemplar
// traces; ?format=html for a dashboard), /healthz, /metrics. See
// docs/TUTORIAL.md §9 and §12 for a curl quickstart, §14 for model
// mining and drift detection, §15 for operating the telemetry surface
// and shelleytop, §16 for watch mode and incremental re-verification.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, served only on the opt-in -pprof listener
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/server"
	"github.com/shelley-go/shelley/internal/store"
	"github.com/shelley-go/shelley/internal/telemetry"
)

// sloFlags collects repeated -slo flags, each parsed eagerly so a bad
// spec fails at flag-parse time with the offending value named.
type sloFlags []telemetry.SLO

func (s *sloFlags) String() string {
	parts := make([]string, len(*s))
	for i, slo := range *s {
		parts[i] = slo.String()
	}
	return strings.Join(parts, ",")
}

func (s *sloFlags) Set(spec string) error {
	slo, err := telemetry.ParseSLO(spec)
	if err != nil {
		return err
	}
	*s = append(*s, slo)
	return nil
}

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	code, err := run(os.Args[1:], os.Stdout, sig)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleyd:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run is the testable body of main: sig delivers the shutdown signal
// (tests send on it directly instead of raising a real SIGTERM).
func run(args []string, out io.Writer, sig <-chan os.Signal) (int, error) {
	fs := flag.NewFlagSet("shelleyd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9944", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 0, "verification pool workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued-job bound before 503s (0 = 4×workers)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request execution budget (admission to response)")
	checkWorkers := fs.Int("check-workers", 1, "per-request CheckAllContext fan-out")
	maxModules := fs.Int("max-modules", 256, "resident-module bound")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget on SIGTERM")
	selfcheck := fs.Bool("selfcheck", false, "boot an in-process daemon, hammer it with the corpus, verify, exit")
	selfcheckBatch := fs.Bool("selfcheck-batch", false, "boot an in-process daemon, stream corpus batches from concurrent clients, cross-check every record, exit")
	corpus := fs.String("corpus", "testdata", "selfcheck: directory of .py sources")
	clients := fs.Int("clients", 16, "selfcheck: concurrent clients")
	requests := fs.Int("requests", 32, "selfcheck: requests per client")
	quiet := fs.Bool("quiet", false, "suppress the per-request access log")
	traceFile := fs.String("trace", "", "enable span tracing and write the ring buffer to this file at shutdown")
	traceFormat := fs.String("trace-format", "chrome", "trace file format: chrome or otlp")
	traceRing := fs.Int("trace-ring", 0, "enable span tracing with a ring of N spans for GET /v1/trace-export (0 with -trace unset = tracing off)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this extra listener (e.g. 127.0.0.1:6060); empty = off")
	maxStates := fs.Int("max-states", 0, "per-request bound on automata states and search nodes (0 = production default)")
	maxRegex := fs.Int("max-regex", 0, "per-request bound on regex size (0 = production default)")
	storeDir := fs.String("store-dir", "", "durable artifact store directory for warm restarts (empty = persistence off)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "artifact store byte bound, LRU-evicted (0 = unbounded)")
	mineOn := fs.Bool("mine", false, "enable trace ingestion (POST /v1/ingest) and background model mining with drift detection (GET /v1/drift)")
	watchOn := fs.Bool("watch", false, "enable incremental watch sessions (POST/GET /v1/watch) for edit loops")
	maxWatchSessions := fs.Int("max-watch-sessions", 0, "resident watch-session bound, LRU-evicted (0 = 64)")
	watchPollTimeout := fs.Duration("watch-poll-timeout", 0, "GET /v1/watch long-poll window before a 204 (0 = 25s)")
	mineInterval := fs.Duration("mine-interval", 0, "mining-loop period (0 = 5s)")
	telemetryInterval := fs.Duration("telemetry-interval", time.Second, "telemetry snapshot period behind GET /v1/status (0 disables telemetry)")
	var slos sloFlags
	fs.Var(&slos, "slo", "SLO objective endpoint:latency:target or endpoint:availability:target, e.g. check:1ms:99 (repeatable; default check:1ms:99 and check:availability:99.9)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 0 {
		return 2, fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		RequestTimeout:    *timeout,
		CheckWorkers:      *checkWorkers,
		MaxModules:        *maxModules,
		Tracing:           *traceFile != "" || *traceRing > 0,
		TraceRingSize:     *traceRing,
		Mine:              *mineOn,
		MineInterval:      *mineInterval,
		Watch:             *watchOn,
		MaxWatchSessions:  *maxWatchSessions,
		WatchPollTimeout:  *watchPollTimeout,
		Telemetry:         *telemetryInterval > 0,
		TelemetryInterval: *telemetryInterval,
		SLOs:              slos,
	}
	if *maxStates > 0 || *maxRegex > 0 {
		cfg.Limits = shelley.Budget{
			MaxNFAStates:   *maxStates,
			MaxDFAStates:   *maxStates,
			MaxRegexSize:   *maxRegex,
			MaxSearchNodes: *maxStates,
		}
	}
	if !*quiet {
		// Structured access log on stderr; the obs handler stamps each
		// record with the request's trace and span IDs when tracing is on.
		cfg.Logger = slog.New(obs.NewLogHandler(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *storeDir != "" {
		// Open (and warm-load) the store before the daemon serves: every
		// surviving entry of the previous run is verified and indexed
		// here, so the first fingerprint-only request can already hit.
		st, err := store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeMaxBytes})
		if err != nil {
			return 2, fmt.Errorf("opening artifact store: %w", err)
		}
		defer st.Close()
		cfg.Store = st
		stats := st.Stats()
		fmt.Fprintf(out, "shelleyd: artifact store %s: %d entries (%d bytes) warm, %d quarantined\n",
			*storeDir, stats.Entries, stats.Bytes, stats.Corrupt)
	}

	if *selfcheck {
		return runSelfcheck(out, cfg, *corpus, *clients, *requests)
	}
	if *selfcheckBatch {
		return runSelfcheckBatch(out, cfg, *corpus, *clients, *requests)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener so profiling exposure is an explicit
		// operator decision, never reachable through the service port.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return 2, fmt.Errorf("pprof listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, http.DefaultServeMux) }()
		fmt.Fprintf(out, "shelleyd pprof on http://%s/debug/pprof/\n", ln.Addr())
	}

	srv := server.New(cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "shelleyd listening on http://%s\n", bound)

	got := <-sig
	fmt.Fprintf(out, "shelleyd: %v: draining (budget %s)\n", got, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return 1, fmt.Errorf("drain incomplete: %w", err)
	}
	if *traceFile != "" {
		if err := obs.WriteFile(*traceFile, *traceFormat, srv.TraceSnapshot()); err != nil {
			return 1, fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(out, "shelleyd: trace written to %s\n", *traceFile)
	}
	fmt.Fprintln(out, "shelleyd: drained clean")
	return 0, nil
}

// corpusSource is one selfcheck workload unit with its precomputed
// direct-library expectation.
type corpusSource struct {
	name    string
	source  string
	fp      string
	class   string // first class, for infer/trace requests
	wantErr bool   // direct CheckAll fails (e.g. unresolved subsystem)
	wantRep []byte // JSON of the direct reports when wantErr is false
}

func runSelfcheck(out io.Writer, cfg server.Config, corpusDir string, clients, requests int) (int, error) {
	// The direct-library expectations must be computed under the same
	// resource budget the server will apply, or pathological sources
	// would diverge (or never terminate) on the client side.
	limits := cfg.Limits
	if limits.Unlimited() {
		limits = shelley.DefaultBudget()
	}
	sources, err := loadCorpus(corpusDir, limits)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "selfcheck: %d sources, %d clients × %d requests\n", len(sources), clients, requests)

	// A selfcheck run is short, so tighten the telemetry clock: the
	// rolling windows need several snapshots inside the run to report
	// nonzero rates before the daemon drains.
	if cfg.Telemetry && cfg.TelemetryInterval > 100*time.Millisecond {
		cfg.TelemetryInterval = 100 * time.Millisecond
	}

	srv := server.New(cfg)
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 2, err
	}
	cl := client.New("http://" + bound)
	ctx := context.Background()
	if err := cl.WaitReady(ctx, 5*time.Second); err != nil {
		return 2, err
	}

	var failures atomic.Int64
	var done atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				src := sources[(c+i)%len(sources)]
				if err := hitOnce(ctx, cl, src, (c+i)%3); err != nil {
					failures.Add(1)
					fmt.Fprintf(out, "selfcheck: %s: %v\n", src.name, err)
				}
				done.Add(1)
			}
		}(c)
	}
	wg.Wait()

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		return 1, fmt.Errorf("scraping metrics: %w", err)
	}
	for _, name := range []string{
		"shelleyd_coalesced_total",
		"shelleyd_module_cache_hits_total",
		"shelleyd_module_cache_misses_total",
	} {
		if v, ok := client.ParseMetric(metrics, name); ok {
			fmt.Fprintf(out, "selfcheck: %s = %.0f\n", name, v)
		}
	}

	if cfg.Telemetry {
		// Let the engine snapshot the tail of the load, then hold
		// /v1/status to its contract: the load must show up as nonzero
		// rolling rates and breaching requests in the exemplar ring.
		time.Sleep(3 * cfg.TelemetryInterval)
		status, err := cl.Status(ctx)
		if err != nil {
			return 1, fmt.Errorf("scraping /v1/status: %w", err)
		}
		var checkRate float64
		for _, ep := range status.Endpoints {
			if ep.Endpoint != "check" {
				continue
			}
			if w, ok := ep.Windows["10s"]; ok {
				checkRate = w.Rate
				fmt.Fprintf(out, "selfcheck: status: check 10s rate=%.1f/s p50=%s p99=%s total=%d\n",
					w.Rate, w.P50, w.P99, w.Total)
			}
		}
		fmt.Fprintf(out, "selfcheck: status: %d exemplars, %d alerts, %d slos\n",
			len(status.Exemplars), len(status.Alerts), len(status.SLOs))
		if checkRate <= 0 {
			failures.Add(1)
			fmt.Fprintln(out, "selfcheck: /v1/status reports zero rolling check rate under load")
		}
		if len(status.Exemplars) == 0 {
			failures.Add(1)
			fmt.Fprintln(out, "selfcheck: /v1/status exemplar ring is empty under load")
		}
	}

	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return 1, fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintf(out, "selfcheck: %d requests, %d failures, drained clean\n", done.Load(), failures.Load())
	if failures.Load() > 0 {
		return 1, nil
	}
	return 0, nil
}

// hitOnce drives one request of the mixed workload: full checks
// (verified byte-identical against the direct library), cache-only
// fingerprint re-checks, and infer/trace calls.
func hitOnce(ctx context.Context, cl *client.Client, src corpusSource, mode int) error {
	switch mode {
	case 0: // full check with source upload
		resp, err := cl.Check(ctx, client.CheckRequest{Source: src.source})
		return verifyCheck(src, resp, err)
	case 1: // cache-only re-check by fingerprint (fall back to upload on 404)
		resp, err := cl.Check(ctx, client.CheckRequest{Fingerprint: src.fp})
		if apiErr, ok := err.(*client.APIError); ok && apiErr.StatusCode == 404 {
			resp, err = cl.Check(ctx, client.CheckRequest{Source: src.source})
		}
		return verifyCheck(src, resp, err)
	default: // infer + trace on the first class
		if src.class == "" {
			return nil
		}
		if _, err := cl.Infer(ctx, client.InferRequest{Source: src.source, Class: src.class}); err != nil {
			return fmt.Errorf("infer: %w", err)
		}
		if _, err := cl.Trace(ctx, client.TraceRequest{Source: src.source, Class: src.class, Trace: nil}); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		return nil
	}
}

func verifyCheck(src corpusSource, resp *client.CheckResponse, err error) error {
	if src.wantErr {
		if err == nil {
			return fmt.Errorf("check unexpectedly succeeded (direct CheckAll fails)")
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	got, merr := json.Marshal(resp.Reports)
	if merr != nil {
		return merr
	}
	if !bytes.Equal(got, src.wantRep) {
		return fmt.Errorf("reports differ from direct library call:\nserver: %s\ndirect: %s", got, src.wantRep)
	}
	return nil
}

func loadCorpus(dir string, limits shelley.Budget) ([]corpusSource, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.py"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	ctx := shelley.WithBudget(context.Background(), limits)
	var out []corpusSource
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		src := corpusSource{name: filepath.Base(p), source: string(b), fp: client.Fingerprint(string(b))}
		mod, err := shelley.LoadFile(p)
		if err != nil {
			continue // unparsable files are not workload
		}
		if classes := mod.Classes(); len(classes) > 0 {
			src.class = classes[0].Name()
		}
		reports, err := mod.CheckAllContext(ctx, 1)
		if err != nil {
			src.wantErr = true
		} else {
			src.wantRep, err = json.Marshal(reports)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, src)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no loadable .py sources under %s", dir)
	}
	return out, nil
}

// runSelfcheckBatch is the batch-mode load generator: concurrent
// clients stream whole-corpus /v1/check-batch requests against an
// in-process daemon, every record is cross-checked against the direct
// library expectation, and admission refusals are honored by sleeping
// out the daemon's Retry-After hint — so the run both exercises and
// demonstrates the backpressure contract. Reports items/s plus
// per-batch latency percentiles.
func runSelfcheckBatch(out io.Writer, cfg server.Config, corpusDir string, clients, batches int) (int, error) {
	limits := cfg.Limits
	if limits.Unlimited() {
		limits = shelley.DefaultBudget()
	}
	sources, err := loadCorpus(corpusDir, limits)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "selfcheck-batch: %d sources, %d clients × %d batches\n", len(sources), clients, batches)

	srv := server.New(cfg)
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 2, err
	}
	ctx := context.Background()
	if err := client.New("http://"+bound).WaitReady(ctx, 5*time.Second); err != nil {
		return 2, err
	}

	var failures, items, retries atomic.Int64
	latencies := make([][]time.Duration, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bcl := client.New("http://"+bound, client.WithToken(fmt.Sprintf("selfcheck-%d", c)))
			for i := 0; i < batches; i++ {
				elapsed, err := runOneBatch(ctx, bcl, sources, c+i, &items, &retries)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(out, "selfcheck-batch: client %d batch %d: %v\n", c, i, err)
					continue
				}
				latencies[c] = append(latencies[c], elapsed)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Fprintf(out, "selfcheck-batch: %d items in %s (%.0f items/s), %d admission retries, batch p50 %s p99 %s\n",
		items.Load(), wall.Round(time.Millisecond), float64(items.Load())/wall.Seconds(),
		retries.Load(), pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))

	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return 1, fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintf(out, "selfcheck-batch: %d failures, drained clean\n", failures.Load())
	if failures.Load() > 0 {
		return 1, nil
	}
	return 0, nil
}

// runOneBatch streams one whole-corpus batch and cross-checks every
// record: verified sources must embed the direct library's report
// bytes, sources the library rejects must come back as non-200 records
// that leave the rest of the batch untouched. 429/503 refusals sleep
// out the Retry-After hint and resubmit.
func runOneBatch(ctx context.Context, bcl *client.Client, sources []corpusSource, rot int, items, retries *atomic.Int64) (time.Duration, error) {
	req := client.BatchRequest{Items: make([]client.BatchItem, len(sources))}
	for i := range sources {
		src := sources[(rot+i)%len(sources)]
		req.Items[i] = client.BatchItem{ID: src.name, Source: src.source}
	}
	start := time.Now()
	var stream *client.BatchStream
	for {
		var err error
		stream, err = bcl.CheckBatch(ctx, req)
		if err == nil {
			break
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Temporary() {
			retries.Add(1)
			time.Sleep(apiErr.RetryAfter)
			continue
		}
		return 0, err
	}
	defer stream.Close()
	for {
		rec, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		items.Add(1)
		src := sources[(rot+rec.Index)%len(sources)]
		if src.wantErr {
			if rec.Status == http.StatusOK {
				return 0, fmt.Errorf("item %s: record OK but direct CheckAll fails", src.name)
			}
			continue
		}
		if rec.Status != http.StatusOK {
			return 0, fmt.Errorf("item %s: status %d: %s", src.name, rec.Status, rec.Error)
		}
		resp, err := rec.CheckResponse()
		if err != nil {
			return 0, err
		}
		got, err := json.Marshal(resp.Reports)
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(got, src.wantRep) {
			return 0, fmt.Errorf("item %s: reports differ from direct library call:\nserver: %s\ndirect: %s", src.name, got, src.wantRep)
		}
	}
	if sum := stream.Summary(); sum == nil || sum.Error != "" {
		return 0, fmt.Errorf("batch did not complete clean: %+v", sum)
	}
	return time.Since(start), nil
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
)

// syncBuffer is an io.Writer safe for the serve goroutine and the test
// to share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRE = regexp.MustCompile(`listening on (http://[0-9.:]+)`)

// TestRunServeSIGTERMDrain drives the daemon exactly as an init system
// would: start, serve traffic, SIGTERM, and expect a clean drain with
// exit code 0.
func TestRunServeSIGTERMDrain(t *testing.T) {
	sig := make(chan os.Signal, 1)
	out := &syncBuffer{}
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, out, sig)
	}()

	// Wait for the bound address to appear in the log.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never logged its address:\n%s", out.String())
	}

	cl := client.New(base)
	ctx := context.Background()
	if err := cl.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	source, err := os.ReadFile(filepath.Join("..", "..", "testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Check(ctx, client.CheckRequest{Source: string(source)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Errorf("valve should verify clean: %+v", resp)
	}
	if _, err := cl.Metrics(ctx); err != nil {
		t.Fatal(err)
	}

	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if runErr != nil || code != 0 {
		t.Fatalf("run = (%d, %v), want (0, nil)\n%s", code, runErr, out.String())
	}
	if !strings.Contains(out.String(), "drained clean") {
		t.Errorf("missing drain confirmation:\n%s", out.String())
	}
}

// TestRunSelfcheck exercises the built-in load generator end to end
// against the real testdata corpus.
func TestRunSelfcheck(t *testing.T) {
	out := &syncBuffer{}
	code, err := run([]string{
		"-selfcheck",
		"-corpus", filepath.Join("..", "..", "testdata"),
		"-clients", "8", "-requests", "12",
	}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("selfcheck exit = %d\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"0 failures", "drained clean", "shelleyd_module_cache_hits_total",
		// Telemetry is on by default: the run must scrape /v1/status and
		// see its own load as rolling rates and exemplars.
		"selfcheck: status: check 10s rate=", "exemplars",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("selfcheck output missing %q:\n%s", want, text)
		}
	}
}

// TestRunServeStatusAndSLOFlags boots serve mode with a custom -slo and
// a fast telemetry clock, drives one check, and reads the objective
// back through client.Status.
func TestRunServeStatusAndSLOFlags(t *testing.T) {
	sig := make(chan os.Signal, 1)
	out := &syncBuffer{}
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run([]string{
			"-addr", "127.0.0.1:0", "-workers", "2", "-quiet",
			"-telemetry-interval", "50ms",
			"-slo", "check:5ms:99", "-slo", "check:availability:99.9",
		}, out, sig)
	}()
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("daemon never logged its address:\n%s", out.String())
	}
	cl := client.New(base)
	ctx := context.Background()
	if err := cl.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	source, err := os.ReadFile(filepath.Join("..", "..", "testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Check(ctx, client.CheckRequest{Source: string(source)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	status, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var latSLO *client.SLOStatus
	for i := range status.SLOs {
		if status.SLOs[i].Name == "check-latency" {
			latSLO = &status.SLOs[i]
		}
	}
	if latSLO == nil {
		t.Fatalf("check-latency SLO missing: %+v", status.SLOs)
	}
	if latSLO.Latency != 5*time.Millisecond || latSLO.Target != 0.99 {
		t.Errorf("-slo check:5ms:99 parsed as latency=%v target=%v", latSLO.Latency, latSLO.Target)
	}
	if len(status.Endpoints) == 0 {
		t.Error("no endpoints in status after traffic")
	}

	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if code != 0 || runErr != nil {
		t.Fatalf("run = (%d, %v), want (0, nil)\n%s", code, runErr, out.String())
	}
}

// TestBadSLOFlag pins that a malformed -slo fails at flag-parse time.
func TestBadSLOFlag(t *testing.T) {
	out := &syncBuffer{}
	if code, err := run([]string{"-slo", "check:sideways:99"}, out, nil); err == nil || code != 2 {
		t.Errorf("bad -slo: (%d, %v), want code 2 and error", code, err)
	}
	if code, err := run([]string{"-slo", "check:1ms:250"}, out, nil); err == nil || code != 2 {
		t.Errorf("bad -slo target: (%d, %v), want code 2 and error", code, err)
	}
}

// TestRunUsageErrors pins the exit-code contract of the daemon binary.
func TestRunUsageErrors(t *testing.T) {
	out := &syncBuffer{}
	if code, err := run([]string{"-badflag"}, out, nil); err == nil || code != 2 {
		t.Errorf("bad flag: (%d, %v), want code 2 and error", code, err)
	}
	if code, err := run([]string{"stray"}, out, nil); err == nil || code != 2 {
		t.Errorf("stray arg: (%d, %v), want code 2 and error", code, err)
	}
	if code, err := run([]string{"-selfcheck", "-corpus", "/nonexistent"}, out, nil); err == nil || code != 2 {
		t.Errorf("bad corpus: (%d, %v), want code 2 and error", code, err)
	}
}

// TestRunSelfcheckBatch exercises the batch-mode load generator end to
// end: every streamed record is cross-checked against the direct
// library, so a pass is a whole-corpus wire-consistency proof.
func TestRunSelfcheckBatch(t *testing.T) {
	out := &syncBuffer{}
	code, err := run([]string{
		"-selfcheck-batch",
		"-corpus", filepath.Join("..", "..", "testdata"),
		"-clients", "4", "-requests", "3",
	}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("selfcheck-batch exit = %d\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{"0 failures", "drained clean", "items/s", "batch p50"} {
		if !strings.Contains(text, want) {
			t.Errorf("selfcheck-batch output missing %q:\n%s", want, text)
		}
	}
}

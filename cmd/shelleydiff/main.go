// Command shelleydiff compares two versions of a class's model — the
// software-maintenance workflow §2.2 of the paper motivates ("Shelley
// can check if changes to the class preserve the internal behavior").
// It diffs the usage-protocol languages (and, for composites, the
// flattened subsystem behaviors) of the same class loaded from an old
// and a new set of files, reporting shortest witnesses for behaviors
// that appeared or disappeared.
//
// Usage:
//
//	shelleydiff -class NAME -old OLD.py[,OLD2.py...] -new NEW.py[,NEW2.py...]
//
// Exit status: 0 when the languages are identical, 1 when they differ,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/automata"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleydiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("shelleydiff", flag.ContinueOnError)
	className := fs.String("class", "", "class to compare (required)")
	oldFiles := fs.String("old", "", "comma-separated files of the old version (required)")
	newFiles := fs.String("new", "", "comma-separated files of the new version (required)")
	flat := fs.Bool("flat", false, "compare flattened subsystem behaviors instead of the protocol")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *className == "" || *oldFiles == "" || *newFiles == "" {
		return 2, fmt.Errorf("usage: shelleydiff -class NAME -old FILES -new FILES")
	}

	oldDFA, err := loadDFA(*oldFiles, *className, *flat)
	if err != nil {
		return 2, fmt.Errorf("old version: %w", err)
	}
	newDFA, err := loadDFA(*newFiles, *className, *flat)
	if err != nil {
		return 2, fmt.Errorf("new version: %w", err)
	}

	subject := "protocol"
	if *flat {
		subject = "flattened behavior"
	}

	added, addedAny := automata.Difference(newDFA, oldDFA).ShortestAccepted()
	removed, removedAny := automata.Difference(oldDFA, newDFA).ShortestAccepted()
	if !addedAny && !removedAny {
		fmt.Fprintf(out, "class %s: %s UNCHANGED\n", *className, subject)
		return 0, nil
	}
	fmt.Fprintf(out, "class %s: %s CHANGED\n", *className, subject)
	if addedAny {
		fmt.Fprintf(out, "  newly allowed:     %s\n", renderTrace(added))
	}
	if removedAny {
		fmt.Fprintf(out, "  no longer allowed: %s\n", renderTrace(removed))
	}
	return 1, nil
}

func loadDFA(files, className string, flat bool) (*shelley.DFA, error) {
	mod, err := shelley.LoadFiles(strings.Split(files, ",")...)
	if err != nil {
		return nil, err
	}
	c, ok := mod.Class(className)
	if !ok {
		return nil, fmt.Errorf("class %q not found (available: %v)", className, mod.Names())
	}
	if flat {
		return c.FlattenedDFA()
	}
	d, err := c.SpecDFA("")
	if err != nil {
		return nil, err
	}
	return d, nil
}

func renderTrace(t []string) string {
	if len(t) == 0 {
		return "(the empty usage)"
	}
	return strings.Join(t, ", ")
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func valvePath() string { return filepath.Join("..", "..", "testdata", "valve.py") }

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "v.py")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffUnchanged(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-class", "Valve", "-old", valvePath(), "-new", valvePath()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out.String(), "UNCHANGED") {
		t.Errorf("code=%d out=%q", code, out.String())
	}
}

func TestDiffProtocolChange(t *testing.T) {
	b, err := os.ReadFile(valvePath())
	if err != nil {
		t.Fatal(err)
	}
	// New version: open becomes final (a valve may now be left open!).
	mutated := strings.Replace(string(b), "@op\n    def open", "@op_final\n    def open", 1)
	newPath := writeTemp(t, mutated)

	var out strings.Builder
	code, err := run([]string{"-class", "Valve", "-old", valvePath(), "-new", newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "CHANGED") ||
		!strings.Contains(out.String(), "newly allowed:     test, open") {
		t.Errorf("output:\n%s", out.String())
	}
	// Nothing was removed by this change.
	if strings.Contains(out.String(), "no longer allowed") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDiffRemovedBehavior(t *testing.T) {
	b, err := os.ReadFile(valvePath())
	if err != nil {
		t.Fatal(err)
	}
	// New version: clean can no longer restart the cycle.
	mutated := strings.Replace(string(b), `self.clean.on()
        return ["test"]`, `self.clean.on()
        return []`, 1)
	newPath := writeTemp(t, mutated)

	var out strings.Builder
	code, err := run([]string{"-class", "Valve", "-old", valvePath(), "-new", newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "no longer allowed: test, clean, test") {
		t.Errorf("code=%d output:\n%s", code, out.String())
	}
}

func TestDiffFlatMode(t *testing.T) {
	base := filepath.Join("..", "..", "testdata")
	oldFiles := base + "/valve.py," + base + "/goodsector.py"
	var out strings.Builder
	code, err := run([]string{"-class", "GoodSector", "-flat", "-old", oldFiles, "-new", oldFiles}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out.String(), "flattened behavior UNCHANGED") {
		t.Errorf("code=%d output:\n%s", code, out.String())
	}
}

func TestDiffErrors(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{},
		{"-class", "Valve", "-old", valvePath()}, // missing new
		{"-class", "Nope", "-old", valvePath(), "-new", valvePath()}, // unknown class
		{"-class", "Valve", "-old", "missing.py", "-new", valvePath()},
	}
	for _, args := range cases {
		if _, err := run(args, &out); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// Command shelleylearn infers a class's protocol automaton dynamically:
// it runs Angluin's L* against a simulated instance of the class (the
// stand-in for querying MicroPython on a device) and reports the learned
// DFA together with query statistics, cross-checked against the
// statically extracted model.
//
// Usage:
//
//	shelleylearn -class NAME [-strategy rs|classic] [-dot] FILE.py [FILE.py ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/learn"
	"github.com/shelley-go/shelley/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shelleylearn:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shelleylearn", flag.ContinueOnError)
	className := fs.String("class", "", "class to learn (required)")
	dot := fs.Bool("dot", false, "print the learned automaton as DOT")
	algo := fs.String("algo", "lstar", "learning algorithm: lstar or kv")
	conform := fs.Bool("conform", false, "also run the W-method conformance suite against the simulator")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input files (usage: shelleylearn -class NAME FILE.py ...)")
	}
	if *className == "" {
		return fmt.Errorf("-class is required")
	}

	mod, err := shelley.LoadFiles(fs.Args()...)
	if err != nil {
		return err
	}
	c, ok := mod.Class(*className)
	if !ok {
		return fmt.Errorf("class %q not found (available: %v)", *className, mod.Names())
	}

	var res *shelley.LearnResult
	switch *algo {
	case "lstar":
		res, err = c.Learn()
	case "kv":
		res, err = c.LearnKV()
	default:
		return fmt.Errorf("unknown -algo %q (want lstar or kv)", *algo)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "class %s: learned %d-state automaton\n", c.Name(), res.DFA.NumStates())
	fmt.Fprintf(out, "membership queries:  %d\n", res.MembershipQueries)
	fmt.Fprintf(out, "equivalence queries: %d\n", res.EquivalenceQueries)
	fmt.Fprintf(out, "rounds:              %d\n", res.Rounds)

	spec, err := c.SpecDFA("")
	if err != nil {
		return err
	}
	if automata.Equivalent(res.DFA, spec) {
		fmt.Fprintln(out, "cross-check: learned model EQUALS the statically extracted model")
	} else {
		fmt.Fprintln(out, "cross-check: learned model DIFFERS from the statically extracted model")
	}

	if *conform {
		suite, err := c.ConformanceSuite(1)
		if err != nil {
			return err
		}
		witness, ok := learn.Conformance(spec, c.RunTrace, suite)
		fmt.Fprintf(out, "conformance suite:   %d traces\n", len(suite))
		if ok {
			fmt.Fprintln(out, "conformance: simulator PASSES the W-method suite")
		} else {
			fmt.Fprintf(out, "conformance: FAILED on %v\n", witness)
		}
	}

	if *dot {
		fmt.Fprint(out, viz.DFADOT(c.Name()+"_learned", res.DFA))
	}
	return nil
}

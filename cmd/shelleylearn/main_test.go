package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLearnsValve(t *testing.T) {
	var out strings.Builder
	valve := filepath.Join("..", "..", "testdata", "valve.py")
	if err := run([]string{"-class", "Valve", "-dot", valve}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"learned 3-state automaton",
		"membership queries:",
		"cross-check: learned model EQUALS the statically extracted model",
		"digraph \"Valve_learned\"",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	valve := filepath.Join("..", "..", "testdata", "valve.py")
	cases := [][]string{
		{},                             // no files
		{valve},                        // missing -class
		{"-class", "Nope", valve},      // unknown class
		{"-class", "Valve", "nope.py"}, // missing file
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunKVAlgo(t *testing.T) {
	var out strings.Builder
	valve := filepath.Join("..", "..", "testdata", "valve.py")
	if err := run([]string{"-class", "Valve", "-algo", "kv", valve}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "EQUALS the statically extracted model") {
		t.Errorf("output:\n%s", out.String())
	}
	if err := run([]string{"-class", "Valve", "-algo", "zzz", valve}, &out); err == nil {
		t.Error("unknown algo should error")
	}
}

func TestRunConformFlag(t *testing.T) {
	var out strings.Builder
	valve := filepath.Join("..", "..", "testdata", "valve.py")
	if err := run([]string{"-class", "Valve", "-conform", valve}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conformance suite:", "PASSES the W-method suite"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// Command shelleysim executes a composite class in the runtime
// simulator: it reads a plan (one composite operation per line, `#`
// comments allowed), drives the system, and reports the flattened
// subsystem trace, protocol violations, and dangling subsystems — the
// runtime view of what shelleyc verifies statically.
//
// Usage:
//
//	shelleysim -class NAME [-plan FILE | -ops op1,op2,...] [-seed N] [-trace out.json] FILE.py [FILE.py ...]
//
// Exit status: 0 on a clean run, 1 when the plan violates a protocol or
// leaves subsystems dangling, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleysim:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// withBudgetFlags attaches the -max-states / -max-regex resource budget
// to ctx; both zero leaves the context unlimited (historical behavior).
func withBudgetFlags(ctx context.Context, maxStates, maxRegex int) context.Context {
	if maxStates <= 0 && maxRegex <= 0 {
		return ctx
	}
	return shelley.WithBudget(ctx, shelley.Budget{
		MaxNFAStates:   maxStates,
		MaxDFAStates:   maxStates,
		MaxRegexSize:   maxRegex,
		MaxSearchNodes: maxStates,
	})
}

func run(args []string, out io.Writer) (code int, err error) {
	fs := flag.NewFlagSet("shelleysim", flag.ContinueOnError)
	className := fs.String("class", "", "composite class to simulate (required)")
	planFile := fs.String("plan", "", "file with one operation per line")
	opsFlag := fs.String("ops", "", "comma-separated operations (alternative to -plan)")
	seed := fs.Int64("seed", 1, "seed for resolving branch/exit choices")
	stats := fs.Bool("stats", false, "verify the class before simulating and print pipeline cache statistics")
	maxStates := fs.Int("max-states", 0, "bound automata states and search nodes per construction (0 = unlimited)")
	maxRegex := fs.Int("max-regex", 0, "bound regex size per construction (0 = unlimited)")
	var tr obs.CLIFlags
	tr.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() == 0 {
		return 2, fmt.Errorf("no input files (usage: shelleysim -class NAME -ops op1,op2 FILE.py ...)")
	}
	if *className == "" {
		return 2, fmt.Errorf("-class is required")
	}
	ctx := tr.Context(context.Background())
	ctx = withBudgetFlags(ctx, *maxStates, *maxRegex)
	defer func() {
		if ferr := tr.Flush(); ferr != nil && err == nil {
			code, err = 2, fmt.Errorf("writing trace: %w", ferr)
		}
	}()
	// One root span for the whole invocation; ended before the deferred
	// Flush (LIFO).
	ctx, root := obs.Start(ctx, "cli.shelleysim", obs.String("class", *className))
	defer root.End()

	plan, err := loadPlan(*planFile, *opsFlag)
	if err != nil {
		return 2, err
	}
	if len(plan) == 0 {
		return 2, fmt.Errorf("empty plan: provide -plan or -ops")
	}

	mod, err := shelley.LoadFilesContext(ctx, fs.Args()...)
	if err != nil {
		return 2, err
	}
	c, ok := mod.Class(*className)
	if !ok {
		return 2, fmt.Errorf("class %q not found (available: %v)", *className, mod.Names())
	}
	if *stats {
		// Run the static pipeline so the cache has something to report,
		// and warn when the plan is driving an unverified class.
		report, err := c.CheckContext(ctx)
		if err != nil {
			return 2, err
		}
		if !report.OK() {
			fmt.Fprintf(out, "warning: class %s has %d verification finding(s); simulating anyway\n",
				c.Name(), len(report.Diagnostics))
		}
	}

	sys, err := c.NewSystem(interp.WithChooser(interp.NewRandomChoice(*seed)))
	if err != nil {
		return 2, err
	}

	failed := false
	_, simSpan := obs.Start(ctx, "sim.run",
		obs.String("class", c.Name()), obs.Int("steps", len(plan)))
	for i, op := range plan {
		if err := sys.Invoke(op); err != nil {
			fmt.Fprintf(out, "step %d: %s FAILED: %v\n", i+1, op, err)
			failed = true
			break
		}
		simSpan.AddCount("steps.ok")
		fmt.Fprintf(out, "step %d: %s ok (allowed next: %s)\n",
			i+1, op, strings.Join(sys.Allowed(), ", "))
	}
	simSpan.SetAttr(obs.Bool("failed", failed))
	simSpan.End()
	fmt.Fprintf(out, "flat trace: %s\n", strings.Join(sys.Trace(), ", "))
	if dangling := sys.DanglingSubsystems(); len(dangling) > 0 {
		fmt.Fprintf(out, "DANGLING SUBSYSTEMS: %s (left in a non-final state)\n",
			strings.Join(dangling, ", "))
		failed = true
	} else if !failed {
		fmt.Fprintln(out, "system stoppable: all subsystems in final states")
	}
	if *stats {
		fmt.Fprint(out, mod.PipelineStats())
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

func loadPlan(planFile, opsFlag string) ([]string, error) {
	if planFile != "" && opsFlag != "" {
		return nil, fmt.Errorf("-plan and -ops are mutually exclusive")
	}
	if opsFlag != "" {
		var out []string
		for _, op := range strings.Split(opsFlag, ",") {
			if trimmed := strings.TrimSpace(op); trimmed != "" {
				out = append(out, trimmed)
			}
		}
		return out, nil
	}
	if planFile == "" {
		return nil, nil
	}
	b, err := os.ReadFile(planFile)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func paperFiles() []string {
	base := filepath.Join("..", "..", "testdata")
	return []string{
		filepath.Join(base, "valve.py"),
		filepath.Join(base, "badsector.py"),
		filepath.Join(base, "goodsector.py"),
	}
}

func TestRunGoodPlan(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-class", "GoodSector", "-ops", "run"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "system stoppable") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunDanglingPlan(t *testing.T) {
	var out strings.Builder
	// Seed 1 with FirstChoice-like behavior: open_a takes the open
	// branch for some seed; try a few seeds until the dangling valve
	// shows (the open branch leaves valve a open).
	for seed := int64(1); seed < 10; seed++ {
		out.Reset()
		code, err := run(append([]string{
			"-class", "BadSector", "-ops", "open_a", "-seed", itoa(seed),
		}, paperFiles()...), &out)
		if err != nil {
			t.Fatal(err)
		}
		if code == 1 && strings.Contains(out.String(), "DANGLING SUBSYSTEMS: a") {
			return
		}
	}
	t.Errorf("no seed produced the dangling valve:\n%s", out.String())
}

func TestRunProtocolViolationPlan(t *testing.T) {
	var out strings.Builder
	code, err := run(append([]string{"-class", "GoodSector", "-ops", "run,run,run"}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	// run returns [], so a second run violates the composite protocol.
	if code != 1 || !strings.Contains(out.String(), "FAILED") {
		t.Errorf("exit=%d output:\n%s", code, out.String())
	}
}

func TestRunPlanFile(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.txt")
	if err := os.WriteFile(plan, []byte("# daily plan\nrun\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(append([]string{"-class", "GoodSector", "-plan", plan}, paperFiles()...), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit=%d:\n%s", code, out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{},
		append([]string{"-ops", "run"}, paperFiles()...),                                     // missing class
		append([]string{"-class", "GoodSector"}, paperFiles()...),                            // empty plan
		append([]string{"-class", "Nope", "-ops", "x"}, paperFiles()...),                     // unknown class
		{"-class", "C", "-ops", "x", "missing.py"},                                           // missing file
		append([]string{"-class", "GoodSector", "-ops", "x", "-plan", "y"}, paperFiles()...), // both plan sources
	}
	for _, args := range cases {
		if _, err := run(args, &out); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

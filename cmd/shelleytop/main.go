// Command shelleytop is a terminal monitor for a running shelleyd: it
// polls GET /v1/status and renders a live top-style view — per-endpoint
// rolling rates, error ratios and latency percentiles, pool and queue
// gauges, SLO budgets, firing alerts (drift flips included), and the
// most recent tail-sampled exemplars.
//
// Usage:
//
//	shelleytop [-addr URL] [-interval D] [-n N]
//	shelleytop -once
//
// The daemon must run with telemetry enabled (shelleyd's default;
// -telemetry-interval 0 turns it off). -once prints a single frame and
// exits, which is what scripts and smoke tests want; otherwise the
// screen refreshes every -interval until SIGINT.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/shelley-go/shelley/client"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	code, err := run(os.Args[1:], os.Stdout, sig)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shelleytop:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run is the testable body of main; sig ends the polling loop.
func run(args []string, out io.Writer, sig <-chan os.Signal) (int, error) {
	fs := flag.NewFlagSet("shelleytop", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:9944", "shelleyd base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print one frame and exit (no screen clearing)")
	n := fs.Int("n", 5, "exemplar rows to show")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 0 {
		return 2, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := client.New(base)
	ctx := context.Background()

	if *once {
		resp, err := cl.Status(ctx)
		if err != nil {
			return 1, err
		}
		render(out, base, resp, *n)
		return 0, nil
	}

	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		resp, err := cl.Status(ctx)
		// ANSI clear + home: repaint in place like top does. Stale data
		// is worse than a visible error, so fetch failures paint too.
		fmt.Fprint(out, "\x1b[2J\x1b[H")
		if err != nil {
			fmt.Fprintf(out, "shelleytop: %s: %v\n", base, err)
		} else {
			render(out, base, resp, *n)
		}
		select {
		case <-sig:
			return 0, nil
		case <-t.C:
		}
	}
}

// render paints one frame of the fleet view.
func render(out io.Writer, base string, r *client.StatusResponse, exRows int) {
	drain := ""
	if r.Draining {
		drain = " · DRAINING"
	}
	fmt.Fprintf(out, "shelleyd %s · up %s · tick %s%s\n\n",
		base, (time.Duration(r.UptimeSec)*time.Second).String(), r.Interval, drain)

	if len(r.Alerts) > 0 {
		for _, a := range r.Alerts {
			fmt.Fprintf(out, "ALERT [%s] %s — %s (since %s)\n",
				strings.ToUpper(a.Severity), a.Key, a.Message, a.Since.Format("15:04:05"))
			if len(a.Counterexample) > 0 {
				fmt.Fprintf(out, "      counterexample: %s\n", strings.Join(a.Counterexample, " "))
			}
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintf(out, "%-14s %-4s %9s %7s %9s %9s %9s %9s\n",
		"ENDPOINT", "WIN", "RATE/S", "ERR%", "P50", "P95", "P99", "TOTAL")
	for _, ep := range r.Endpoints {
		for _, win := range []string{"10s", "1m"} {
			w, ok := ep.Windows[win]
			if !ok {
				continue
			}
			fmt.Fprintf(out, "%-14s %-4s %9.1f %7.2f %9s %9s %9s %9d\n",
				ep.Endpoint, win, w.Rate, w.ErrorRate*100,
				fmtDur(w.P50), fmtDur(w.P95), fmtDur(w.P99), w.Total)
		}
	}

	if len(r.SLOs) > 0 {
		fmt.Fprintf(out, "\n%-24s %9s %9s %9s %9s %9s  %s\n",
			"SLO", "TARGET", "BAD%", "BURN5M", "BURN1H", "BUDGET", "STATE")
		for _, s := range r.SLOs {
			target := fmt.Sprintf("%g%%", s.Target*100)
			if s.Latency > 0 {
				target += "<" + fmtDur(s.Latency)
			}
			state := "ok"
			if s.Firing != "" {
				state = strings.ToUpper(s.Firing)
			}
			fmt.Fprintf(out, "%-24s %9s %9.3f %9.1f %9.1f %8.1f%%  %s\n",
				s.Name, target, s.BadFrac*100, s.BurnFast, s.BurnSlow, s.BudgetRemaining*100, state)
		}
	}

	names := make([]string, 0, len(r.Gauges))
	for name := range r.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	var gauges []string
	for _, name := range names {
		switch name {
		case "shelleyd_queue_depth", "shelleyd_workers_busy", "shelleyd_inflight_requests",
			"shelleyd_jobs_active", "shelleyd_batch_inflight_items":
			gauges = append(gauges, fmt.Sprintf("%s=%.0f", strings.TrimPrefix(name, "shelleyd_"), r.Gauges[name]))
		}
	}
	if len(gauges) > 0 {
		fmt.Fprintf(out, "\npool: %s\n", strings.Join(gauges, "  "))
	}

	if len(r.Exemplars) > 0 {
		fmt.Fprintf(out, "\n%-8s %-14s %5s %9s  %s\n", "WHY", "ENDPOINT", "CODE", "TOOK", "TRACE")
		for i, x := range r.Exemplars {
			if i >= exRows {
				fmt.Fprintf(out, "… %d more\n", len(r.Exemplars)-exRows)
				break
			}
			fmt.Fprintf(out, "%-8s %-14s %5d %9s  %s (%d spans)\n",
				x.Reason, x.Endpoint, x.Code, fmtDur(x.Duration), x.TraceID, len(x.Spans))
		}
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(d)/1e9)
	}
}

package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/server"
)

// startDaemon boots an in-process telemetry-enabled daemon, drives a
// little traffic through it (cold checks breach the default 1ms
// latency SLO, so the exemplar ring populates), and returns its base
// URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	cfg := server.Config{
		Workers: 2, Telemetry: true, TelemetryInterval: 20 * time.Millisecond,
	}
	srv := server.New(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	base := "http://" + addr
	cl := client.New(base)
	ctx := context.Background()
	if err := cl.WaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		src := fmt.Sprintf("@sys\nclass Top%d:\n    @op_initial_final\n    def go(self):\n        return []\n", i)
		if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // let the engine snapshot the traffic
	return base
}

// TestOnceFrame pins the -once contract: one frame on stdout, exit 0,
// with the endpoint table, SLOs, and the injected panic all visible.
func TestOnceFrame(t *testing.T) {
	base := startDaemon(t)
	var out strings.Builder
	code, err := run([]string{"-addr", base, "-once"}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{"ENDPOINT", "check", "P99", "SLO", "check-latency", "latency"} {
		if !strings.Contains(text, want) {
			t.Errorf("frame missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\x1b[2J") {
		t.Error("-once must not clear the screen")
	}
}

// TestOnceAgainstDisabledTelemetry pins the failure mode: a daemon
// without telemetry yields exit 1 and the 404 hint.
func TestOnceAgainstDisabledTelemetry(t *testing.T) {
	srv := server.New(server.Config{Workers: 1})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	if err := client.New("http://" + addr).WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{"-addr", "http://" + addr, "-once"}, &out, nil)
	if code != 1 || err == nil {
		t.Fatalf("run against telemetry-less daemon = (%d, %v), want (1, 404 error)", code, err)
	}
	if !strings.Contains(err.Error(), "telemetry disabled") {
		t.Errorf("error %q should carry the daemon's hint", err)
	}
}

// TestLiveLoopStopsOnSignal runs the polling loop for a couple frames
// and stops it with a signal, the way Ctrl-C would.
func TestLiveLoopStopsOnSignal(t *testing.T) {
	base := startDaemon(t)
	sig := make(chan os.Signal, 1)
	var out syncWriter
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run([]string{"-addr", base, "-interval", "30ms"}, &out, sig)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(out.String(), "ENDPOINT") {
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "ENDPOINT") {
		t.Fatalf("no frame painted:\n%s", out.String())
	}
	sig <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop on signal")
	}
	if code != 0 || runErr != nil {
		t.Fatalf("run = (%d, %v), want (0, nil)", code, runErr)
	}
	if !strings.Contains(out.String(), "\x1b[2J") {
		t.Error("live mode should repaint with ANSI clear")
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if code, err := run([]string{"-badflag"}, &out, nil); err == nil || code != 2 {
		t.Errorf("bad flag: (%d, %v), want code 2 and error", code, err)
	}
	if code, err := run([]string{"stray"}, &out, nil); err == nil || code != 2 {
		t.Errorf("stray arg: (%d, %v), want code 2 and error", code, err)
	}
}

type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

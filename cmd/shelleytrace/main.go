// Command shelleytrace experiments with the paper's imperative calculus
// (Fig. 4) directly: it parses a program in the calculus's concrete
// syntax, runs behavior inference, decides trace membership, and
// enumerates the trace language. It doubles as the fleet simulator of
// the mining subsystem: -record samples production-shaped traces from a
// class's statically inferred model, -replay streams a recorded NDJSON
// file into a live daemon's /v1/ingest and reports the drift verdicts.
//
// Usage:
//
//	shelleytrace -program "loop(*) { a(); if(*) { b(); return } else { c() } }" [flags]
//	shelleytrace -record -source mod.py -class Valve [-n N] [-devices D] [-drift K] > traces.ndjson
//	shelleytrace -replay traces.ndjson [-addr URL] [-batch B] [-rate N]
//
// Flags (calculus mode):
//
//	-infer            print ⟦p⟧ = (r, s) and infer(p)          (default)
//	-member a,c,a,b   decide s ⊢ l ∈ p for both statuses
//	-enumerate N      list every trace of L(p) up to length N
//	-simplify         also print the normalized infer(p)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
	"github.com/shelley-go/shelley/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shelleytrace:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shelleytrace", flag.ContinueOnError)
	programSrc := fs.String("program", "", "program in the calculus syntax (required in calculus mode)")
	member := fs.String("member", "", "comma-separated trace to test for membership")
	enumerate := fs.Int("enumerate", -1, "enumerate traces up to this length")
	simplify := fs.Bool("simplify", false, "also print the normalized inferred expression")
	record := fs.Bool("record", false, "record mode: sample NDJSON trace observations from a class's static model to stdout")
	source := fs.String("source", "", "record: MicroPython source file of the module")
	class := fs.String("class", "", "record: class to sample")
	n := fs.Int("n", 64, "record: conforming observations to sample")
	devices := fs.Int("devices", 8, "record: devices to spread observations over")
	drift := fs.Int("drift", 0, "record: off-model observations to inject from a rogue device")
	maxLen := fs.Int("maxlen", 10, "record: random-walk length bound per trace")
	seed := fs.Int64("seed", 1, "record: sampling seed")
	replay := fs.String("replay", "", "replay mode: NDJSON trace file to stream into a daemon (- for stdin)")
	addr := fs.String("addr", "http://127.0.0.1:9944", "replay: daemon base URL")
	batch := fs.Int("batch", 64, "replay: observations per /v1/ingest frame")
	rate := fs.Int("rate", 0, "replay: target observations/s (0 = as fast as the daemon admits)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *record {
		return runRecord(out, *source, *class, *n, *devices, *drift, *maxLen, *seed)
	}
	if *replay != "" {
		return runReplay(out, *replay, *addr, *batch, *rate)
	}
	if *programSrc == "" {
		return fmt.Errorf(`-program is required, e.g. -program "loop(*) { a(); return }" (or use -record / -replay)`)
	}
	p, err := ir.Parse(*programSrc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "p = %s\n", p)

	res := core.Extract(p)
	fmt.Fprintf(out, "[[p]] ongoing  = %s\n", res.Ongoing)
	for i, r := range res.Returned {
		fmt.Fprintf(out, "[[p]] returned[%d] = %s\n", i, r)
	}
	inferred := core.Infer(p)
	fmt.Fprintf(out, "infer(p) = %s\n", inferred)
	if *simplify {
		fmt.Fprintf(out, "simplified = %s\n", regex.Simplify(inferred))
	}

	if *member != "" {
		l := splitTrace(*member)
		fmt.Fprintf(out, "0 |- %v in p: %v\n", l, trace.In(trace.Ongoing, l, p))
		fmt.Fprintf(out, "R |- %v in p: %v\n", l, trace.In(trace.Returned, l, p))
		fmt.Fprintf(out, "%v in infer(p): %v\n", l, regex.Match(inferred, l))
	}

	if *enumerate >= 0 {
		for _, e := range trace.Enumerate(p, *enumerate) {
			fmt.Fprintf(out, "%s |- [%s]\n", e.Status, strings.Join(e.Trace, ", "))
		}
	}
	return nil
}

// runRecord samples a production-shaped NDJSON trace log from a class's
// statically inferred model: n conforming observations (uniform random
// walks over the spec DFA) spread across a device fleet, plus an
// optional handful of off-model observations from a "rogue" device —
// exactly the drifting firmware a daemon's miner is meant to flag.
func runRecord(out io.Writer, source, class string, n, devices, drift, maxLen int, seed int64) error {
	if source == "" || class == "" {
		return fmt.Errorf("-record needs -source FILE.py and -class Name")
	}
	raw, err := os.ReadFile(source)
	if err != nil {
		return err
	}
	mod, err := shelley.LoadSource(string(raw))
	if err != nil {
		return err
	}
	cls, ok := mod.Class(class)
	if !ok {
		return fmt.Errorf("class %s not found in %s", class, source)
	}
	spec, err := cls.SpecDFA("")
	if err != nil {
		return err
	}
	classFP := client.Fingerprint(string(raw)) + "/" + class
	rng := rand.New(rand.NewSource(seed))
	if devices <= 0 {
		devices = 1
	}
	enc := json.NewEncoder(out)
	sampled := 0
	for i := 0; i < n; i++ {
		tr, ok := spec.RandomAccepted(rng, maxLen)
		if !ok {
			break
		}
		// The random walk stops at every accepting state it meets, so
		// specs that accept the empty usage yield a lot of empty traces.
		// Those carry no signal for the miner — resample a few times for
		// a non-empty one (keeping the empty trace only when the spec
		// accepts nothing else within maxLen).
		for retry := 0; len(tr) == 0 && retry < 16; retry++ {
			if resampled, ok := spec.RandomAccepted(rng, maxLen); ok && len(resampled) > 0 {
				tr = resampled
			}
		}
		ev := client.IngestEvent{
			ClassFP: classFP,
			Device:  fmt.Sprintf("dev-%03d", i%devices),
			Events:  tr,
			Status:  "ok",
		}
		if err := enc.Encode(&ev); err != nil {
			return err
		}
		sampled++
	}
	if sampled == 0 {
		return fmt.Errorf("spec of %s accepts no trace within -maxlen %d", class, maxLen)
	}
	injected := 0
	if drift > 0 {
		for _, cand := range spec.Complement().EnumerateAccepted(4) {
			if len(cand) == 0 {
				continue
			}
			ev := client.IngestEvent{ClassFP: classFP, Device: "rogue", Events: cand, Status: "ok"}
			if err := enc.Encode(&ev); err != nil {
				return err
			}
			if injected++; injected >= drift {
				break
			}
		}
	}
	fmt.Fprintf(os.Stderr, "shelleytrace: recorded %d conforming + %d drifting observations for %s\n",
		sampled, injected, classFP)
	return nil
}

// runReplay streams a recorded NDJSON trace file into a live daemon in
// -batch sized /v1/ingest frames, pacing to -rate observations/s when
// one is set and honoring Retry-After on admission refusals, then
// fetches /v1/drift and prints each class's verdict — the whole
// fleet-to-alert loop in one command.
func runReplay(out io.Writer, path, addr string, batchSize, rate int) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var events []client.IngestEvent
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev client.IngestEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // the daemon would count it malformed; skip client-side
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("no observations in %s", path)
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	cl := client.New(addr, client.WithRetry(client.RetryPolicy{}))
	ctx := context.Background()
	var sent, accepted, shed int
	start := time.Now()
	for off := 0; off < len(events); off += batchSize {
		end := min(off+batchSize, len(events))
		resp, err := cl.Ingest(ctx, events[off:end])
		if err != nil {
			return fmt.Errorf("ingest frame at offset %d: %w", off, err)
		}
		sent += resp.Received
		accepted += resp.Accepted
		shed += resp.Shed
		if rate > 0 {
			// Pace against the wall clock so admission backoffs above do
			// not compound with the target rate.
			ahead := time.Duration(sent)*time.Second/time.Duration(rate) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "replayed %d observations in %s (%.0f obs/s): %d accepted, %d shed\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), accepted, shed)
	dr, err := cl.Drift(ctx, "")
	if err != nil {
		return fmt.Errorf("fetching drift verdicts: %w", err)
	}
	for _, rep := range dr.Reports {
		line := fmt.Sprintf("%s: %s (%d traces, %d devices)", rep.ClassFP, rep.Verdict, rep.Traces, rep.Devices)
		if len(rep.Counterexample) > 0 {
			line += fmt.Sprintf(" counterexample=[%s]", strings.Join(rep.Counterexample, ", "))
		}
		fmt.Fprintln(out, line)
	}
	return nil
}

func splitTrace(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

// Command shelleytrace experiments with the paper's imperative calculus
// (Fig. 4) directly: it parses a program in the calculus's concrete
// syntax, runs behavior inference, decides trace membership, and
// enumerates the trace language.
//
// Usage:
//
//	shelleytrace -program "loop(*) { a(); if(*) { b(); return } else { c() } }" [flags]
//
// Flags:
//
//	-infer            print ⟦p⟧ = (r, s) and infer(p)          (default)
//	-member a,c,a,b   decide s ⊢ l ∈ p for both statuses
//	-enumerate N      list every trace of L(p) up to length N
//	-simplify         also print the normalized infer(p)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
	"github.com/shelley-go/shelley/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shelleytrace:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shelleytrace", flag.ContinueOnError)
	programSrc := fs.String("program", "", "program in the calculus syntax (required)")
	member := fs.String("member", "", "comma-separated trace to test for membership")
	enumerate := fs.Int("enumerate", -1, "enumerate traces up to this length")
	simplify := fs.Bool("simplify", false, "also print the normalized inferred expression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *programSrc == "" {
		return fmt.Errorf(`-program is required, e.g. -program "loop(*) { a(); return }"`)
	}
	p, err := ir.Parse(*programSrc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "p = %s\n", p)

	res := core.Extract(p)
	fmt.Fprintf(out, "[[p]] ongoing  = %s\n", res.Ongoing)
	for i, r := range res.Returned {
		fmt.Fprintf(out, "[[p]] returned[%d] = %s\n", i, r)
	}
	inferred := core.Infer(p)
	fmt.Fprintf(out, "infer(p) = %s\n", inferred)
	if *simplify {
		fmt.Fprintf(out, "simplified = %s\n", regex.Simplify(inferred))
	}

	if *member != "" {
		l := splitTrace(*member)
		fmt.Fprintf(out, "0 |- %v in p: %v\n", l, trace.In(trace.Ongoing, l, p))
		fmt.Fprintf(out, "R |- %v in p: %v\n", l, trace.In(trace.Returned, l, p))
		fmt.Fprintf(out, "%v in infer(p): %v\n", l, regex.Match(inferred, l))
	}

	if *enumerate >= 0 {
		for _, e := range trace.Enumerate(p, *enumerate) {
			fmt.Fprintf(out, "%s |- [%s]\n", e.Status, strings.Join(e.Trace, ", "))
		}
	}
	return nil
}

func splitTrace(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if trimmed := strings.TrimSpace(p); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}

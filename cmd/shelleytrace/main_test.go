package main

import (
	"strings"
	"testing"
)

const paperProgram = "loop(*) { a(); if(*) { b(); return } else { c() } }"

func TestRunInference(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-program", paperProgram}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"[[p]] ongoing  = (a . (b . 0 + c))*",
		"[[p]] returned[0] = (a . (b . 0 + c))* . a . b",
		"infer(p) = (a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunMembership(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-program", paperProgram, "-member", "a,c,a,b", "-simplify"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"0 |- [a c a b] in p: false",
		"R |- [a c a b] in p: true",
		"in infer(p): true",
		"simplified = ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunEnumerate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-program", "a(); return", "-enumerate", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "R |- [a]") {
		t.Errorf("enumeration missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing -program should error")
	}
	if err := run([]string{"-program", "(("}, &out); err == nil {
		t.Error("bad program should error")
	}
}

func TestSplitTrace(t *testing.T) {
	got := splitTrace(" a , b ,, c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitTrace = %v", got)
	}
	if splitTrace("") != nil {
		t.Error("empty input should be nil")
	}
}

// Command shelleyviz renders the diagrams of the paper as Graphviz DOT:
// the Fig. 1-style protocol diagram, the Fig. 3-style method dependency
// graph, and the specification DFA.
//
// Usage:
//
//	shelleyviz -class NAME [-kind protocol|deps|spec] FILE.py [FILE.py ...]
//
// The DOT document is written to stdout; pipe it to `dot -Tsvg` to
// produce an image.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shelleyviz:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shelleyviz", flag.ContinueOnError)
	className := fs.String("class", "", "class to render (required)")
	kind := fs.String("kind", "protocol", "diagram kind: protocol, deps, spec, or flat")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input files (usage: shelleyviz -class NAME [-kind protocol|deps|spec] FILE.py ...)")
	}
	if *className == "" {
		return fmt.Errorf("-class is required")
	}

	mod, err := shelley.LoadFiles(fs.Args()...)
	if err != nil {
		return err
	}
	c, ok := mod.Class(*className)
	if !ok {
		return fmt.Errorf("class %q not found (available: %v)", *className, mod.Names())
	}

	switch *kind {
	case "protocol":
		fmt.Fprint(out, c.ProtocolDiagram())
	case "deps":
		dot, err := c.DependencyDiagram()
		if err != nil {
			return err
		}
		fmt.Fprint(out, dot)
	case "spec":
		d, err := c.SpecDFA("")
		if err != nil {
			return err
		}
		fmt.Fprint(out, viz.DFADOT(c.Name(), d))
	case "flat":
		d, err := c.FlattenedDFA()
		if err != nil {
			return err
		}
		fmt.Fprint(out, viz.DFADOT(c.Name()+"_flat", d))
	default:
		return fmt.Errorf("unknown -kind %q (want protocol, deps, spec, or flat)", *kind)
	}
	return nil
}

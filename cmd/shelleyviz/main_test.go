package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func valvePath() string {
	return filepath.Join("..", "..", "testdata", "valve.py")
}

func TestRunProtocol(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-class", "Valve", valvePath()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"test" -> "open";`) {
		t.Errorf("protocol DOT missing edge:\n%s", out.String())
	}
}

func TestRunDeps(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-class", "Valve", "-kind", "deps", valvePath()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shape=box") {
		t.Errorf("deps DOT missing boxes:\n%s", out.String())
	}
}

func TestRunSpec(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-class", "Valve", "-kind", "spec", valvePath()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "doublecircle") {
		t.Errorf("spec DOT missing accepting states:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{},                              // no files
		{valvePath()},                   // missing -class
		{"-class", "Nope", valvePath()}, // unknown class
		{"-class", "Valve", "-kind", "x", valvePath()}, // bad kind
		{"-class", "Valve", "missing.py"},              // missing file
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunFlat(t *testing.T) {
	var out strings.Builder
	files := []string{
		filepath.Join("..", "..", "testdata", "valve.py"),
		filepath.Join("..", "..", "testdata", "badsector.py"),
	}
	args := append([]string{"-class", "BadSector", "-kind", "flat"}, files...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BadSector_flat", "a.test", "doublecircle"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("flat DOT missing %q:\n%s", want, out.String())
		}
	}
}

package shelley

import (
	"fmt"
	"runtime"
	"sync"
)

// CheckAllConcurrent verifies every class of the module in parallel,
// using up to workers goroutines (0 means GOMAXPROCS). The analyses are
// independent — every class reads the shared registry but mutates
// nothing — so this is a pure fan-out; results come back in source
// order regardless of completion order, and the first analysis error
// (not verification finding) is returned after all workers finish.
func (m *Module) CheckAllConcurrent(workers int) ([]*Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(m.classes) {
		workers = len(m.classes)
	}
	if workers <= 1 {
		return m.CheckAll()
	}

	reports := make([]*Report, len(m.classes))
	errs := make([]error, len(m.classes))
	jobs := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i], errs[i] = m.classes[i].Check()
			}
		}()
	}
	for i := range m.classes {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shelley: checking %s: %w", m.classes[i].Name(), err)
		}
	}
	return reports, nil
}

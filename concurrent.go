package shelley

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/shelley-go/shelley/internal/check"
	"github.com/shelley-go/shelley/internal/obs"
)

// CheckAllConcurrent verifies every class of the module in parallel,
// using up to workers goroutines (0 means GOMAXPROCS). The analyses are
// independent — every class reads the shared registry and the shared
// pipeline cache, both concurrency-safe — so this is a pure fan-out;
// results come back in source order regardless of completion order.
//
// The first analysis error (not verification finding) stops the run:
// once any worker fails, no further class is handed out and idle-bound
// classes are skipped, so a module whose first class cannot be analyzed
// does not pay for checking the remaining hundreds. Classes already in
// flight finish normally. The error reported is the one for the
// earliest (source-order) failing class among those actually checked.
func (m *Module) CheckAllConcurrent(workers int) ([]*Report, error) {
	return m.CheckAllContext(context.Background(), workers)
}

// CheckAllContext is CheckAllConcurrent bounded by a context: when ctx
// is cancelled (deadline, client disconnect, server drain), dispatch
// stops and queued classes are skipped, not just the post-first-error
// tail. Classes whose analysis already started finish normally — the
// per-class pipeline stages are not interruptible — so cancellation
// latency is one class, not the whole module. On cancellation the
// result is nil and ctx's error is returned (unless a class analysis
// failed first; analysis errors win, matching CheckAllConcurrent).
func (m *Module) CheckAllContext(ctx context.Context, workers int) ([]*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shelley: check cancelled: %w", err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(m.classes) {
		workers = len(m.classes)
	}
	// A fully-warm module is nothing but one report-cache hit per
	// class, so follow the pipeline's "hits annotate, misses re-time"
	// rule one level up: collect the memoized reports directly, with no
	// check.module span and no worker fan-out; under tracing each hit
	// bumps cache.hit.report on the caller's span instead
	// (EXPERIMENTS.md P3). A partially-warm module falls through to the
	// normal path, which re-counts the classes peeked here — the stats
	// distortion is at most one extra hit per class per warm-up, and
	// cold or partial traces keep the full span tree.
	if reports, ok := m.peekAllReports(ctx); ok {
		return reports, nil
	}
	// One "check.module" span brackets the whole fan-out; each class's
	// "check.class" span (opened inside CheckContext) becomes its child,
	// so a concurrent run exports one tree per class under one root.
	ctx, span := obs.Start(ctx, "check.module",
		obs.Int("classes", len(m.classes)),
		obs.Int("workers", workers))
	defer span.End()
	if workers <= 1 {
		return m.checkAllSequential(ctx)
	}

	reports := make([]*Report, len(m.classes))
	errs := make([]error, len(m.classes))
	jobs := make(chan int)

	// failed flips once on the first analysis error; the producer stops
	// feeding and workers drain the channel without checking further.
	// Context cancellation takes the same early-stop path.
	var failed atomic.Bool

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() || ctx.Err() != nil {
					continue
				}
				reports[i], errs[i] = m.classes[i].CheckContext(ctx)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
dispatch:
	for i := range m.classes {
		if failed.Load() {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shelley: checking %s: %w", m.classes[i].Name(), err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shelley: check cancelled: %w", err)
	}
	return reports, nil
}

// peekAllReports collects the memoized report of every class without
// opening any span, in source order; ok is false as soon as one class
// misses (the partially-collected clones are discarded and the caller
// runs the normal spanned path).
func (m *Module) peekAllReports(ctx context.Context) ([]*Report, bool) {
	opts := []check.Option{check.WithCache(m.cache)}
	reports := make([]*Report, len(m.classes))
	for i, c := range m.classes {
		r, ok := check.PeekReport(ctx, c.model, m.registry, opts...)
		if !ok {
			return nil, false
		}
		reports[i] = r
	}
	obs.SpanFrom(ctx).AddCountN("cache.hit.report", uint64(len(m.classes)))
	return reports, true
}

// checkAllSequential is the single-worker path of CheckAllContext: the
// plain source-order loop with a cancellation check between classes.
func (m *Module) checkAllSequential(ctx context.Context) ([]*Report, error) {
	out := make([]*Report, 0, len(m.classes))
	for _, c := range m.classes {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("shelley: check cancelled: %w", err)
		}
		r, err := c.CheckContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("shelley: checking %s: %w", c.Name(), err)
		}
		out = append(out, r)
	}
	return out, nil
}

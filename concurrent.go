package shelley

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// CheckAllConcurrent verifies every class of the module in parallel,
// using up to workers goroutines (0 means GOMAXPROCS). The analyses are
// independent — every class reads the shared registry and the shared
// pipeline cache, both concurrency-safe — so this is a pure fan-out;
// results come back in source order regardless of completion order.
//
// The first analysis error (not verification finding) stops the run:
// once any worker fails, no further class is handed out and idle-bound
// classes are skipped, so a module whose first class cannot be analyzed
// does not pay for checking the remaining hundreds. Classes already in
// flight finish normally. The error reported is the one for the
// earliest (source-order) failing class among those actually checked.
func (m *Module) CheckAllConcurrent(workers int) ([]*Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(m.classes) {
		workers = len(m.classes)
	}
	if workers <= 1 {
		return m.CheckAll()
	}

	reports := make([]*Report, len(m.classes))
	errs := make([]error, len(m.classes))
	jobs := make(chan int)

	// failed flips once on the first analysis error; the producer stops
	// feeding and workers drain the channel without checking further.
	var failed atomic.Bool

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				reports[i], errs[i] = m.classes[i].Check()
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range m.classes {
		if failed.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shelley: checking %s: %w", m.classes[i].Name(), err)
		}
	}
	return reports, nil
}

package shelley

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/pipeline"
)

func TestCheckAllConcurrentMatchesSequential(t *testing.T) {
	m := loadPaper(t)
	seq, err := m.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8, 100} {
		par, err := m.CheckAllConcurrent(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Class != seq[i].Class {
				t.Errorf("workers=%d: report %d is %s, want %s (order must be source order)",
					workers, i, par[i].Class, seq[i].Class)
			}
			if par[i].String() != seq[i].String() {
				t.Errorf("workers=%d: report for %s differs:\n%s\nvs\n%s",
					workers, par[i].Class, par[i], seq[i])
			}
		}
	}
}

func TestCheckAllConcurrentPropagatesErrors(t *testing.T) {
	// A composite whose subsystem class is missing from the module.
	m, err := LoadFile(filepath.Join("testdata", "badsector.py")) // no Valve
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CheckAllConcurrent(4); err == nil {
		t.Error("expected a resolution error")
	}
}

// TestCheckAllConcurrentStopsOnFirstError is the regression test for
// the early-stop fix: when an early class fails to analyze, the fan-out
// must stop handing out work instead of checking every remaining class.
// The module puts a broken composite (unresolvable subsystem type)
// first, followed by many valid composites; the pipeline cache counters
// reveal how many of them were actually analyzed.
func TestCheckAllConcurrentStopsOnFirstError(t *testing.T) {
	const valid = 60
	var b strings.Builder
	b.WriteString("@sys([\"x\"])\nclass Broken:\n    def __init__(self):\n        self.x = Missing()\n\n")
	b.WriteString("    @op_initial_final\n    def go(self):\n        self.x.up()\n        return []\n\n")
	b.WriteString(`@sys
class Dev:
    @op_initial
    def acquire(self):
        return ["release"]

    @op_final
    def release(self):
        return ["acquire"]

`)
	for i := 0; i < valid; i++ {
		fmt.Fprintf(&b, "@sys([\"d\"])\nclass Ctl%d:\n    def __init__(self):\n        self.d = Dev()\n\n", i)
		fmt.Fprintf(&b, "    @op_initial_final\n    def go%d(self):\n        self.d.acquire()\n        self.d.release()\n        return []\n\n", i)
	}

	m, err := LoadSource(b.String())
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.CheckAllConcurrent(4)
	if err == nil {
		t.Fatal("expected a resolution error for Broken")
	}
	if !strings.Contains(err.Error(), "Broken") {
		t.Fatalf("error does not name the failing class: %v", err)
	}

	// Every valid class that was analyzed recorded one report-stage miss
	// (the broken one takes the uncached error path, so it counts
	// nothing). Without the early stop, all 60 get checked.
	checked := m.PipelineStats().Of(pipeline.StageReport).Misses
	if checked >= valid/2 {
		t.Fatalf("early stop ineffective: %d of %d classes were still analyzed after the failure", checked, valid)
	}
}

// manyValidClasses builds a module of n independent valid composites
// over one shared base class.
func manyValidClasses(t *testing.T, n int) *Module {
	t.Helper()
	var b strings.Builder
	b.WriteString(`@sys
class Dev:
    @op_initial
    def acquire(self):
        return ["release"]

    @op_final
    def release(self):
        return ["acquire"]

`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "@sys([\"d\"])\nclass Ctl%d:\n    def __init__(self):\n        self.d = Dev()\n\n", i)
		fmt.Fprintf(&b, "    @op_initial_final\n    def go%d(self):\n        self.d.acquire()\n        self.d.release()\n        return []\n\n", i)
	}
	m, err := LoadSource(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckAllContextMatchesConcurrent(t *testing.T) {
	m := loadPaper(t)
	want, err := m.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := m.CheckAllContext(context.Background(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reports", workers, len(got))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Errorf("workers=%d: report %d differs", workers, i)
			}
		}
	}
}

// TestCheckAllContextCancelled pins the cancellation contract: a dead
// context stops dispatch — on both the sequential and fan-out paths —
// instead of only stopping on the first analysis error.
func TestCheckAllContextCancelled(t *testing.T) {
	m := manyValidClasses(t, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		reports, err := m.CheckAllContext(ctx, workers)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if reports != nil {
			t.Errorf("workers=%d: got %d reports from a cancelled run", workers, len(reports))
		}
	}
	// A pre-cancelled context skips per-class work entirely.
	if misses := m.PipelineStats().Of(pipeline.StageReport).Misses; misses != 0 {
		t.Errorf("cancelled runs still analyzed %d classes", misses)
	}
}

// TestCheckAllContextCancelMidRun cancels while the fan-out is live:
// the result must be either a complete, correct report set (cancel
// lost the race) or a context error — never a partial success.
func TestCheckAllContextCancelMidRun(t *testing.T) {
	for i := 0; i < 10; i++ {
		m := manyValidClasses(t, 30)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { cancel(); close(done) }()
		reports, err := m.CheckAllContext(ctx, 4)
		<-done
		switch {
		case err == nil:
			if len(reports) != 31 {
				t.Fatalf("iteration %d: complete run returned %d reports", i, len(reports))
			}
		case errors.Is(err, context.Canceled):
			if reports != nil {
				t.Fatalf("iteration %d: cancelled run returned reports", i)
			}
		default:
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
	}
}

func TestCheckAllConcurrentRace(t *testing.T) {
	// Many repetitions to give the race detector something to chew on
	// (run with -race in CI).
	m := loadPaper(t)
	for i := 0; i < 20; i++ {
		if _, err := m.CheckAllConcurrent(8); err != nil {
			t.Fatal(err)
		}
	}
}

package shelley

import (
	"path/filepath"
	"testing"
)

func TestCheckAllConcurrentMatchesSequential(t *testing.T) {
	m := loadPaper(t)
	seq, err := m.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8, 100} {
		par, err := m.CheckAllConcurrent(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Class != seq[i].Class {
				t.Errorf("workers=%d: report %d is %s, want %s (order must be source order)",
					workers, i, par[i].Class, seq[i].Class)
			}
			if par[i].String() != seq[i].String() {
				t.Errorf("workers=%d: report for %s differs:\n%s\nvs\n%s",
					workers, par[i].Class, par[i], seq[i])
			}
		}
	}
}

func TestCheckAllConcurrentPropagatesErrors(t *testing.T) {
	// A composite whose subsystem class is missing from the module.
	m, err := LoadFile(filepath.Join("testdata", "badsector.py")) // no Valve
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CheckAllConcurrent(4); err == nil {
		t.Error("expected a resolution error")
	}
}

func TestCheckAllConcurrentRace(t *testing.T) {
	// Many repetitions to give the race detector something to chew on
	// (run with -race in CI).
	m := loadPaper(t)
	for i := 0; i < 20; i++ {
		if _, err := m.CheckAllConcurrent(8); err != nil {
			t.Fatal(err)
		}
	}
}

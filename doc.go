// Package shelley is a Go implementation of the Shelley model-inference
// and model-checking pipeline for MicroPython classes, reproducing the
// system formalized in "Formalizing Model Inference of MicroPython"
// (Mão de Ferro, Cogumbreiro, Martins — DSN-W 2023).
//
// Shelley verifies the *order of method calls* on objects that drive
// physical resources. Classes are annotated in MicroPython source:
//
//	@sys                    — verify this class
//	@sys(["a", "b"])        — composite class with subsystem fields a, b
//	@claim("(!a.open) W b.open") — an LTLf temporal requirement
//	@op_initial / @op / @op_final / @op_initial_final — method roles
//
// and each annotated method returns the set of methods allowed next
// (`return ["close"]`). From this, the pipeline:
//
//  1. extracts the method dependency graph (§3.1 of the paper),
//  2. infers each method's behavior as a regular expression over
//     subsystem operations (§3.2 — the paper's main contribution, with
//     its soundness/completeness theorems reproduced as executable
//     property tests in internal/core),
//  3. checks that composites use every subsystem according to the
//     subsystem's own protocol and that every @claim holds, reporting
//     shortest counterexamples in the paper's output format.
//
// The package also includes an executable simulator of annotated
// classes (internal/interp) and an L* active learner (internal/learn)
// that re-infers the same models by querying running instances.
//
// # Quick start
//
//	mod, err := shelley.LoadFile("valve.py")
//	if err != nil { ... }
//	valve, _ := mod.Class("Valve")
//	report, err := valve.Check()
//	if err != nil { ... }
//	if !report.OK() {
//		fmt.Println(report)
//	}
//	fmt.Print(valve.ProtocolDiagram()) // Graphviz DOT, Fig. 1 style
package shelley

package shelley_test

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
)

// The paper's Valve class (Listing 2.1), used by the examples below.
const valveSource = `
@sys
class Valve:
    @op_initial
    def test(self):
        if ok():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
`

func ExampleLoadSource() {
	mod, err := shelley.LoadSource(valveSource)
	if err != nil {
		log.Fatal(err)
	}
	valve, _ := mod.Class("Valve")
	fmt.Println(valve.Name(), valve.Operations())
	// Output: Valve [test open close clean]
}

func ExampleClass_Check() {
	mod, err := shelley.LoadSource(valveSource)
	if err != nil {
		log.Fatal(err)
	}
	valve, _ := mod.Class("Valve")
	report, err := valve.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	// Output: class Valve: OK
}

func ExampleClass_Check_composite() {
	source := valveSource + `

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
`
	mod, err := shelley.LoadSource(source)
	if err != nil {
		log.Fatal(err)
	}
	bad, _ := mod.Class("BadSector")
	report, err := bad.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Diagnostics[0].Message)
	// Output:
	// Error in specification: INVALID SUBSYSTEM USAGE
	// Counter example: open_a, a.test, a.open
	// Subsystems errors:
	//   * Valve 'a': test, >open< (not final)
}

func ExampleClass_NewInstance() {
	mod, err := shelley.LoadSource(valveSource)
	if err != nil {
		log.Fatal(err)
	}
	valve, _ := mod.Class("Valve")
	inst := valve.NewInstance()
	next, err := inst.Call("test")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after test, call one of:", next)
	_, err = inst.Call("clean") // the device chose the open exit
	fmt.Println("calling clean instead:", err != nil)
	// Output:
	// after test, call one of: [open]
	// calling clean instead: true
}

func ExampleClass_Behavior() {
	source := valveSource + `

@sys(["v"])
class Cycle:
    def __init__(self):
        self.v = Valve()

    @op_initial_final
    def run(self):
        self.v.test()
        self.v.open()
        self.v.close()
        return []
`
	mod, err := shelley.LoadSource(source)
	if err != nil {
		log.Fatal(err)
	}
	cycle, _ := mod.Class("Cycle")
	behavior, err := cycle.BehaviorSimplified("run")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(behavior)
	// Output: v.test . v.open . v.close
}

func ExampleClass_Learn() {
	mod, err := shelley.LoadSource(valveSource)
	if err != nil {
		log.Fatal(err)
	}
	valve, _ := mod.Class("Valve")
	res, err := valve.Learn()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned a %d-state automaton\n", res.DFA.NumStates())
	// Output: learned a 3-state automaton
}

// Badsector walks through the paper's §2.2 case study end to end: the
// BadSector class uses two valves incorrectly; the static checker finds
// both errors (invalid subsystem usage and a violated temporal claim)
// with the exact messages of the paper, and the counterexamples are then
// replayed in the runtime simulator to show that they are real
// violations, not analysis artifacts.
//
// Run with:
//
//	go run ./examples/badsector
package main

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
)

const source = `
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]


@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
`

func main() {
	mod, err := shelley.LoadSource(source)
	if err != nil {
		log.Fatal(err)
	}
	bad, _ := mod.Class("BadSector")

	// Static verification: both paper errors.
	fmt.Println("== static verification ==")
	report, err := bad.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	// Replay the usage counterexample in the simulator: valve 'a' really
	// is left open.
	fmt.Println("\n== replaying the counterexamples at runtime ==")
	classes := modelRegistry(source)
	for _, d := range report.Diagnostics {
		if len(d.Counterexample) == 0 {
			continue
		}
		err := interp.ReplayFlat(classes["BadSector"], classes, d.Counterexample)
		fmt.Printf("%-28s replay(%v): %v\n", d.Kind, d.Counterexample, err)
	}

	// The same failure observed by simply *using* the system the way the
	// protocol allows.
	fmt.Println("\n== driving the system interactively ==")
	sys, err := bad.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Invoke("open_a"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after open_a, flat trace: %v\n", sys.Trace())
	fmt.Printf("open_a is final, so the user may stop... dangling subsystems: %v\n",
		sys.DanglingSubsystems())
}

// modelRegistry re-parses the source into model classes for the
// low-level replay API (the facade's Check path builds its own).
func modelRegistry(src string) map[string]*model.Class {
	ast, err := pyparse.ParseModule(src)
	if err != nil {
		log.Fatal(err)
	}
	out := make(map[string]*model.Class, len(ast.Classes))
	for _, cls := range ast.Classes {
		mc, err := model.FromAST(cls)
		if err != nil {
			log.Fatal(err)
		}
		out[mc.Name] = mc
	}
	return out
}

// Conformance demonstrates model-based testing of *your own Go code*
// against a Shelley model: the annotated MicroPython class is the
// specification, the W-method generates a finite test suite from it,
// and two hand-written Go valve drivers are run against the suite — a
// correct one (passes) and one with an off-by-one protocol bug (caught,
// with the exact failing call sequence).
//
// Run with:
//
//	go run ./examples/conformance
package main

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/learn"
)

const valveSpec = `
@sys
class Valve:
    @op_initial
    def test(self):
        if ok():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
`

// goodDriver is a hand-written Go implementation of the valve protocol:
// a tiny state machine tracking what the last accepted call was.
type goodDriver struct{ state string } // "", "test", "open", "close", "clean"

func (d *goodDriver) call(op string) bool {
	allowed := map[string][]string{
		"":      {"test"},
		"test":  {"open", "clean"},
		"open":  {"close"},
		"close": {"test"},
		"clean": {"test"},
	}
	for _, a := range allowed[d.state] {
		if a == op {
			d.state = op
			return true
		}
	}
	return false
}

func (d *goodDriver) stoppable() bool {
	return d.state == "" || d.state == "close" || d.state == "clean"
}

// buggyDriver forgets that open must be followed by close: it also
// allows test directly after open (skipping the close).
type buggyDriver struct{ goodDriver }

func (d *buggyDriver) call(op string) bool {
	if d.state == "open" && op == "test" {
		d.state = "test"
		return true
	}
	return d.goodDriver.call(op)
}

func main() {
	mod, err := shelley.LoadSource(valveSpec)
	if err != nil {
		log.Fatal(err)
	}
	valve, _ := mod.Class("Valve")

	suite, err := valve.ConformanceSuite(1)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := valve.SpecDFA("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: Valve protocol, %d-state minimal DFA\n", spec.Minimize().NumStates())
	fmt.Printf("W-method suite: %d call sequences\n\n", len(suite))

	// A driver "accepts" a trace when every call is allowed and the
	// final state may be abandoned — the same complete-usage semantics
	// the model uses.
	runGood := func(trace []string) bool {
		d := &goodDriver{}
		for _, op := range trace {
			if !d.call(op) {
				return false
			}
		}
		return d.stoppable()
	}
	runBuggy := func(trace []string) bool {
		d := &buggyDriver{}
		for _, op := range trace {
			if !d.call(op) {
				return false
			}
		}
		return d.stoppable()
	}

	if w, ok := learn.Conformance(spec, runGood, suite); ok {
		fmt.Println("good driver:  PASSES every suite trace")
	} else {
		fmt.Printf("good driver:  FAILED on %v (unexpected!)\n", w)
	}

	if w, ok := learn.Conformance(spec, runBuggy, suite); !ok {
		fmt.Printf("buggy driver: CAUGHT — disagrees with the model on %v\n", w)
		fmt.Println("              (it allows test right after open, skipping close)")
	} else {
		fmt.Println("buggy driver: passed (unexpected!)")
	}
}

// Device runs the paper's Valve class *concretely*: method bodies
// execute against an emulated GPIO board, the status-pin level decides
// which exit `test` takes, and the physical consequence of the §2.2
// protocol bug — a control pin left high, i.e. a real valve left open —
// is observable on the board.
//
// Run with:
//
//	go run ./examples/device
package main

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
)

const valveSource = `
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
`

func main() {
	mod, err := shelley.LoadSource(valveSource)
	if err != nil {
		log.Fatal(err)
	}
	valve, _ := mod.Class("Valve")

	// Scenario 1: the sensor reads "openable"; the device takes the
	// open path and the control pin follows the protocol.
	fmt.Println("== scenario 1: healthy cycle (status pin high) ==")
	board := shelley.NewBoard()
	dev, err := valve.NewDevice(board)
	if err != nil {
		log.Fatal(err)
	}
	board.SetInput(29, true)
	for _, op := range []string{"test", "open", "close"} {
		next, _, err := dev.Call(op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("call %-6s -> device returned %v; high pins now %v\n",
			op, next, board.HighPins())
	}
	fmt.Printf("may power down: %v\n\n", dev.CanStop())

	// Scenario 2: the sensor reads "needs cleaning"; the device itself
	// forces the clean path — the caller cannot open.
	fmt.Println("== scenario 2: dirty valve (status pin low) ==")
	board2 := shelley.NewBoard()
	dev2, err := valve.NewDevice(board2)
	if err != nil {
		log.Fatal(err)
	}
	board2.SetInput(29, false)
	next, _, err := dev2.Call("test")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test returned %v\n", next)
	if _, _, err := dev2.Call("open"); err != nil {
		fmt.Printf("open rejected by the device protocol: %v\n", err)
	}
	if _, _, err := dev2.Call("clean"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after clean, high pins: %v\n\n", board2.HighPins())

	// Scenario 3: the BadSector bug, physically. A buggy caller stops
	// after open (the §2.2 counterexample "a.test, a.open"): the control
	// pin stays high — the irrigation valve is left open in the field.
	fmt.Println("== scenario 3: the paper's bug, physically ==")
	board3 := shelley.NewBoard()
	dev3, err := valve.NewDevice(board3)
	if err != nil {
		log.Fatal(err)
	}
	board3.SetInput(29, true)
	if _, _, err := dev3.Call("test"); err != nil {
		log.Fatal(err)
	}
	if _, _, err := dev3.Call("open"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("caller walks away after open; may power down: %v\n", dev3.CanStop())
	fmt.Printf("control pin 27 still high: %v  <- water keeps flowing\n",
		contains(board3.HighPins(), 27))
	fmt.Println("(this is exactly what `shelleyc` rejects statically: >open< (not final))")
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Learner demonstrates dynamic model inference: Angluin's L* queries a
// simulated instance of each class (the stand-in for driving MicroPython
// on a device) and reconstructs the protocol automaton, which is then
// cross-checked against the statically extracted model. The query-count
// table compares the classic and Rivest–Schapire counterexample
// strategies.
//
// Run with:
//
//	go run ./examples/learner
package main

import (
	"fmt"
	"log"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/learn"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
)

const source = `
@sys
class Valve:
    @op_initial
    def test(self):
        if ok():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]


@sys
class Lock:
    @op_initial
    def acquire(self):
        return ["release", "refresh"]

    @op
    def refresh(self):
        return ["release", "refresh"]

    @op_final
    def release(self):
        return ["acquire"]


@sys
class Radio:
    @op_initial
    def wake(self):
        return ["send", "sleep"]

    @op
    def send(self):
        return ["send", "sleep"]

    @op_final
    def sleep(self):
        return ["wake"]
`

func main() {
	ast, err := pyparse.ParseModule(source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-6s %-16s %-16s %-16s %-10s\n",
		"class", "states", "classic queries", "rs queries", "kv queries", "agrees")
	for _, cls := range ast.Classes {
		mc, err := model.FromAST(cls)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := mc.SpecDFA("")
		if err != nil {
			log.Fatal(err)
		}
		depth := 2*len(mc.Operations) + 1

		classic, err := learn.LStar(
			learn.NewInstanceTeacher(mc, depth),
			learn.Config{Strategy: learn.ClassicAngluin})
		if err != nil {
			log.Fatal(err)
		}
		rs, err := learn.LStar(
			learn.NewInstanceTeacher(mc, depth),
			learn.Config{Strategy: learn.RivestSchapire})
		if err != nil {
			log.Fatal(err)
		}
		kv, err := learn.KearnsVazirani(learn.NewInstanceTeacher(mc, depth), learn.Config{})
		if err != nil {
			log.Fatal(err)
		}

		agrees := automata.Equivalent(rs.DFA, spec) &&
			automata.Equivalent(classic.DFA, spec) &&
			automata.Equivalent(kv.DFA, spec)
		fmt.Printf("%-8s %-6d %-16s %-16s %-16s %-10v\n",
			mc.Name,
			rs.DFA.NumStates(),
			fmt.Sprintf("%dm/%de", classic.MembershipQueries, classic.EquivalenceQueries),
			fmt.Sprintf("%dm/%de", rs.MembershipQueries, rs.EquivalenceQueries),
			fmt.Sprintf("%dm/%de", kv.MembershipQueries, kv.EquivalenceQueries),
			agrees)
	}

	fmt.Println("\n(m = membership queries, e = equivalence queries;")
	fmt.Println(" 'agrees' = learned automaton equals the statically extracted model)")
}

// Quickstart: verify the paper's Valve class, print its inferred model,
// and render the Fig. 1 diagram.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
)

// valveSource is Listing 2.1 of the paper: a water valve driven through
// GPIO pins, annotated with its usage protocol.
const valveSource = `
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
`

func main() {
	mod, err := shelley.LoadSource(valveSource)
	if err != nil {
		log.Fatal(err)
	}
	valve, ok := mod.Class("Valve")
	if !ok {
		log.Fatal("Valve not found")
	}

	// 1. Verify the class.
	report, err := valve.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== verification ==")
	fmt.Println(report)

	// 2. Inspect the protocol model.
	fmt.Println("\n== operations ==")
	for _, op := range valve.Operations() {
		behavior, err := valve.BehaviorSimplified(op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s behavior: %s\n", op, behavior)
	}

	// 3. Simulate a correct usage.
	fmt.Println("\n== simulation ==")
	inst := valve.NewInstance()
	for _, op := range []string{"test", "open", "close"} {
		next, err := inst.Call(op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("call %-6s -> next allowed: %v\n", op, next)
	}
	fmt.Printf("may stop here: %v\n", inst.CanStop())

	// ...and an incorrect one, caught at runtime.
	bad := valve.NewInstance()
	if _, err := bad.Call("open"); err != nil {
		fmt.Printf("runtime protocol guard: %v\n", err)
	}

	// 4. Render the Fig. 1 diagram (pipe to `dot -Tsvg`).
	fmt.Println("\n== diagram (Graphviz DOT) ==")
	fmt.Print(valve.ProtocolDiagram())
}

// Traffic applies Shelley to a second CPS domain: a two-road traffic
// intersection. Each TrafficLight enforces the red→green→yellow→red
// cycle; the Intersection composite must never let both roads go at
// once, expressed as the claim "(!ew.go) W ns.stop" — the east-west road
// may not go until the north-south road has stopped. A buggy controller
// variant is checked alongside to show the violation being caught.
//
// Run with:
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
)

const goodSource = `
@sys
class TrafficLight:
    def __init__(self):
        self.red = Pin(1, OUT)
        self.green = Pin(2, OUT)
        self.yellow = Pin(3, OUT)

    @op_initial
    def go(self):
        self.red.off()
        self.green.on()
        return ["caution"]

    @op
    def caution(self):
        self.green.off()
        self.yellow.on()
        return ["stop"]

    @op_final
    def stop(self):
        self.yellow.off()
        self.red.on()
        return ["go"]


@claim("(!ew.go) W ns.stop")
@sys(["ns", "ew"])
class Intersection:
    def __init__(self):
        self.ns = TrafficLight()
        self.ew = TrafficLight()

    @op_initial
    def ns_phase(self):
        self.ns.go()
        self.ns.caution()
        self.ns.stop()
        return ["ew_phase"]

    @op_final
    def ew_phase(self):
        self.ew.go()
        self.ew.caution()
        self.ew.stop()
        return ["ns_phase"]
`

// buggySource swaps the phase bodies so east-west goes first, violating
// the claim, and also forgets the yellow phase on north-south, breaking
// the TrafficLight protocol.
const buggySource = `
@sys
class TrafficLight:
    @op_initial
    def go(self):
        return ["caution"]

    @op
    def caution(self):
        return ["stop"]

    @op_final
    def stop(self):
        return ["go"]


@claim("(!ew.go) W ns.stop")
@sys(["ns", "ew"])
class Intersection:
    def __init__(self):
        self.ns = TrafficLight()
        self.ew = TrafficLight()

    @op_initial
    def ns_phase(self):
        self.ew.go()
        self.ew.caution()
        self.ew.stop()
        return ["ew_phase"]

    @op_final
    def ew_phase(self):
        self.ns.go()
        self.ns.stop()
        return ["ns_phase"]
`

func main() {
	fmt.Println("== correct intersection ==")
	verify(goodSource)

	fmt.Println("\n== buggy intersection ==")
	verify(buggySource)
}

func verify(src string) {
	mod, err := shelley.LoadSource(src)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := mod.CheckAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r)
	}

	inter, _ := mod.Class("Intersection")
	report, err := inter.Check()
	if err != nil {
		log.Fatal(err)
	}
	if report.OK() {
		sys, err := inter.NewSystem()
		if err != nil {
			log.Fatal(err)
		}
		for _, op := range []string{"ns_phase", "ew_phase"} {
			if err := sys.Invoke(op); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("simulated one full cycle; flat trace: %v\n", sys.Trace())
	}
}

// Valvefarm reproduces the paper's motivating industrial use case (§2):
// a battery-operated wireless controller that switches water valves
// according to a scheduled irrigation plan. The hierarchy is three
// levels deep — Valve (hardware), Sector (two valves opened in a safe
// order), and Controller (two sectors irrigated in sequence) — and the
// whole stack is verified bottom-up, then simulated for a day's plan.
//
// Run with:
//
//	go run ./examples/valvefarm
package main

import (
	"fmt"
	"log"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/interp"
)

const farmSource = `
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]


@claim("(!a.open) W b.open")
@sys(["a", "b"])
class Sector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def irrigate(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                match self.a.test():
                    case ["open"]:
                        self.a.open()
                        self.a.close()
                        self.b.close()
                        return ["irrigate"]
                    case ["clean"]:
                        self.a.clean()
                        self.b.close()
                        return ["irrigate"]
            case ["clean"]:
                self.b.clean()
                return ["irrigate"]


@claim("(!s2.irrigate) W s1.irrigate")
@sys(["s1", "s2"])
class Controller:
    def __init__(self):
        self.s1 = Sector()
        self.s2 = Sector()

    @op_initial
    def water_sector_one(self):
        self.s1.irrigate()
        return ["water_sector_two", "standby"]

    @op
    def water_sector_two(self):
        self.s2.irrigate()
        return ["standby"]

    @op_final
    def standby(self):
        return ["water_sector_one"]
`

func main() {
	mod, err := shelley.LoadSource(farmSource)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the whole hierarchy bottom-up: Valve, then Sector against
	// Valve's protocol, then Controller against Sector's protocol.
	fmt.Println("== verification (bottom-up) ==")
	reports, err := mod.CheckAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r)
	}

	// Simulate one day's irrigation plan at the controller level: the
	// composite protocol drives which operations are legal.
	fmt.Println("\n== simulating the daily plan ==")
	controller, _ := mod.Class("Controller")
	sys, err := controller.NewSystem(interp.WithChooser(interp.NewRandomChoice(42)))
	if err != nil {
		log.Fatal(err)
	}
	plan := []string{"water_sector_one", "water_sector_two", "standby"}
	for _, op := range plan {
		if err := sys.Invoke(op); err != nil {
			log.Fatalf("plan step %s: %v", op, err)
		}
		fmt.Printf("ran %-18s flat trace so far: %v\n", op, sys.Trace())
	}
	fmt.Printf("controller may power down: %v\n", sys.CanStop())

	// The protocol also rejects an out-of-order plan.
	fmt.Println("\n== a bad plan is rejected ==")
	bad, err := controller.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := bad.Invoke("water_sector_two"); err != nil {
		fmt.Printf("rejected: %v\n", err)
	}

	// And the temporal claim documents the ordering guarantee.
	fmt.Println("\n== claims ==")
	for _, c := range mod.Classes() {
		for _, claim := range c.Claims() {
			fmt.Printf("%-10s %s\n", c.Name()+":", claim)
		}
	}
}

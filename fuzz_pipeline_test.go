package shelley

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzCheckPipeline drives the whole pipeline — parse, model, flatten,
// verify — on fuzzed source under a tight budget and deadline. The
// invariant is the daemon's survival contract: every input produces a
// load error, a structured budget/cancel error, or reports. Never a
// panic, never an unbounded construction.
func FuzzCheckPipeline(f *testing.F) {
	for _, dir := range []string{"testdata", filepath.Join("testdata", "pathological")} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.py"))
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(b))
		}
	}
	f.Add("@sys\nclass A:\n    @op_initial_final\n    def a(self):\n        return [\"a\"]\n")
	f.Add("not python at all {{{")
	f.Add("")

	f.Fuzz(func(t *testing.T, source string) {
		mod, err := LoadSource(source)
		if err != nil {
			return // load errors are a valid outcome for junk
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		ctx = WithBudget(ctx, Budget{
			MaxNFAStates:   500,
			MaxDFAStates:   500,
			MaxRegexSize:   500,
			MaxSearchNodes: 500,
		})
		_, err = mod.CheckAllContext(ctx, 1)
		if err != nil &&
			!errors.Is(err, ErrBudgetExceeded) &&
			!errors.Is(err, ErrCanceled) &&
			!errors.Is(err, context.DeadlineExceeded) {
			// Semantic errors (unresolved subsystems, bad claims…) are
			// fine too — the contract is only "structured error, no
			// panic". Nothing to assert beyond err being non-nil here;
			// a panic would have failed the fuzz run already.
			_ = err
		}
	})
}

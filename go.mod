module github.com/shelley-go/shelley

go 1.22

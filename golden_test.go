package shelley

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests pin the exact rendered artifacts (DOT diagrams and
// NuSMV exports) for the paper's classes. Regenerate with:
//
//	go test -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func assertGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, string(want))
	}
}

func TestGoldenArtifacts(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	bad, _ := m.Class("BadSector")

	assertGolden(t, "valve_protocol.dot", valve.ProtocolDiagram())

	dep, err := valve.DependencyDiagram()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "valve_deps.dot", dep)

	assertGolden(t, "badsector_protocol.dot", bad.ProtocolDiagram())

	smv, err := valve.ExportNuSMV()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "valve.smv", smv)

	smv, err = bad.ExportNuSMV()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "badsector.smv", smv)

	report, err := bad.Check()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "badsector_report.txt", report.String()+"\n")
}

func TestGoldenSmartHomeArtifacts(t *testing.T) {
	m := loadSmartHome(t)
	thermo, _ := m.Class("Thermostat")

	assertGolden(t, "thermostat_protocol.dot", thermo.ProtocolDiagram())

	smv, err := thermo.ExportNuSMV()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "thermostat.smv", smv)

	regexSrc, err := thermo.ProtocolRegex()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "thermostat_protocol.regex", regexSrc+"\n")
}

func TestGoldenSectorDeps(t *testing.T) {
	m, err := LoadFile("testdata/sector.py")
	if err != nil {
		t.Fatal(err)
	}
	sector, _ := m.Class("Sector")
	dep, err := sector.DependencyDiagram()
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "sector_deps.dot", dep)
}

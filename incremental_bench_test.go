package shelley

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// editLoopSource builds the benchmark workload: a 13-class module
// (12 composites over one base class) whose Ctl5.m1 body is derived
// bit-by-bit from round (32 call statements, each targeting op0 or
// op1), so every round is a genuine, never-seen-before one-method
// edit — the session's source-hash short-circuit never fires, the
// content-addressed report cache cannot answer the edited class from
// a previous round, and exactly one class's fingerprint moves per
// round. The statement count is fixed, so the edit is
// layout-preserving: no other class's positions (and hence
// fingerprints) move.
func editLoopSource(round int64) string {
	var b strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "@sys([\"d\"])\nclass Ctl%d:\n    def __init__(self):\n        self.d = Dev()\n\n", i)
		fmt.Fprintf(&b, "    @op_initial\n    def m0(self):\n        self.d.op%d()\n        return [\"m1\"]\n\n", i%2)
		b.WriteString("    @op_final\n    def m1(self):\n")
		// Every composite carries the same 32-statement weight, so the
		// edited class is not an outlier; only Ctl5's bits come from
		// round, the others are fixed per-class patterns.
		bits := round
		if i != 5 {
			bits = int64(i * 2654435761)
		}
		for s := 0; s < 32; s++ {
			fmt.Fprintf(&b, "        self.d.op%d()\n", (bits>>uint(s))&1)
		}
		b.WriteString("        return []\n\n")
	}
	b.WriteString("@sys\nclass Dev:\n")
	b.WriteString("    @op_initial_final\n    def op0(self):\n        return [\"op0\", \"op1\"]\n\n")
	b.WriteString("    @op_initial_final\n    def op1(self):\n        return [\"op0\", \"op1\"]\n\n")
	return b.String()
}

// BenchmarkEditLoopFullCheck is the non-incremental cost of one edit:
// the source fingerprint moved, so a daemon (or CLI run) without a
// session re-loads the module and re-verifies every class cold. This
// is what each round of an edit loop cost before incremental
// re-verification.
func BenchmarkEditLoopFullCheck(bb *testing.B) {
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		mod, err := LoadSource(editLoopSource(int64(i)))
		if err != nil {
			bb.Fatal(err)
		}
		if _, err := mod.CheckAll(); err != nil {
			bb.Fatal(err)
		}
	}
}

// BenchmarkEditLoopParseFloor measures the part of an edit round no
// diffing can remove: parsing and modeling the full incoming source.
// The gap between this and BenchmarkEditLoopIncremental is what the
// one changed class's re-verification costs; the gap between this and
// BenchmarkEditLoopFullCheck is what incrementality can ever win.
func BenchmarkEditLoopParseFloor(bb *testing.B) {
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		if _, err := LoadSource(editLoopSource(int64(i))); err != nil {
			bb.Fatal(err)
		}
	}
}

// BenchmarkEditLoopIncremental is the same one-method-per-round edit
// pushed through a resident Session: parse + diff + one class's
// re-verification, with the other twelve classes' reports answered
// from the session cache.
func BenchmarkEditLoopIncremental(bb *testing.B) {
	ctx := context.Background()
	sess := NewSession()
	// Prime the session so every timed round is a warm incremental
	// recheck, not an initial load.
	if _, err := sess.Recheck(ctx, "bench", []byte(editLoopSource(-1))); err != nil {
		bb.Fatal(err)
	}
	bb.ReportAllocs()
	bb.ResetTimer()
	var checked, reused int
	for i := 0; i < bb.N; i++ {
		res, err := sess.Recheck(ctx, "bench", []byte(editLoopSource(int64(i))))
		if err != nil {
			bb.Fatal(err)
		}
		checked += res.CheckedClasses
		reused += res.ReusedReports
	}
	bb.StopTimer()
	if bb.N > 0 {
		bb.ReportMetric(float64(checked)/float64(bb.N), "checked/round")
		bb.ReportMetric(float64(reused)/float64(bb.N), "reused/round")
	}
}

package shelley

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/hw"
	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyexec"
	"github.com/shelley-go/shelley/internal/pyparse"
)

// thin aliases keep the conformance test readable.
func hwNewBoard() *hw.Board                { return hw.NewBoard() }
func pyexecNewEnv(b *hw.Board) *pyexec.Env { return pyexec.NewEnv(b) }
func pyexecNewObject(c *pyast.ClassDef, e *pyexec.Env) (*pyexec.Object, error) {
	return pyexec.NewObject(c, e)
}

// Integration tests over the smart-home scenario (testdata/smarthome.py):
// a three-subsystem thermostat node with two temporal claims, exercised
// through every layer of the public API.

func loadSmartHome(t *testing.T) *Module {
	t.Helper()
	m, err := LoadFile(filepath.Join("testdata", "smarthome.py"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSmartHomeVerifies(t *testing.T) {
	m := loadSmartHome(t)
	reports, err := m.CheckAllConcurrent(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.OK() {
			t.Errorf("%s should verify:\n%s", r.Class, r)
		}
	}
}

func TestSmartHomeClaimViolationsCaught(t *testing.T) {
	// Mutate: heat before measure order is enforced by claim 1 — swap
	// the protocol so heat is initial, violating (!h.on) W s.sample.
	src := readFileT(t, filepath.Join("testdata", "smarthome.py"))
	src = strings.Replace(src, "@op_initial\n    def measure", "@op\n    def measure", 1)
	src = strings.Replace(src, "@op\n    def heat", "@op_initial\n    def heat", 1)
	src = strings.Replace(src, `return ["heat", "report", "idle"]`, `return ["report", "idle"]`, 1)
	src = strings.Replace(src, `self.h.off()
        return ["report", "idle"]`, `self.h.off()
        return ["measure"]`, 1)
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	thermo, _ := m.Class("Thermostat")
	report, err := thermo.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindClaimFailure && strings.Contains(d.Message, "(!h.on) W s.sample") {
			found = true
			if len(d.Counterexample) == 0 || d.Counterexample[0] != "h.on" {
				t.Errorf("counterexample = %v, want to start with h.on", d.Counterexample)
			}
		}
	}
	if !found {
		t.Errorf("expected claim 1 to fail:\n%s", report)
	}
}

func TestSmartHomeUsageViolationCaught(t *testing.T) {
	// Forget to sleep the radio in report.
	src := readFileT(t, filepath.Join("testdata", "smarthome.py"))
	src = strings.Replace(src, "        self.r.sleep()\n", "", 1)
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	thermo, _ := m.Class("Thermostat")
	report, err := thermo.Check()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindInvalidSubsystemUsage && strings.Contains(d.Message, "Radio 'r'") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected radio usage error:\n%s", report)
	}
}

func TestSmartHomeSimulation(t *testing.T) {
	m := loadSmartHome(t)
	thermo, _ := m.Class("Thermostat")
	sys, err := thermo.NewSystem(interp.WithChooser(interp.NewRandomChoice(3)))
	if err != nil {
		t.Fatal(err)
	}
	day := []string{"measure", "heat", "report", "idle", "measure", "idle"}
	for _, op := range day {
		if err := sys.Invoke(op); err != nil {
			t.Fatalf("invoke %s: %v (trace so far %v)", op, err, sys.Trace())
		}
	}
	if !sys.CanStop() {
		t.Errorf("dangling: %v", sys.DanglingSubsystems())
	}
	// The flat trace respects claim 1: h.on never before the first
	// s.sample.
	sawSample := false
	for _, ev := range sys.Trace() {
		if ev == "s.sample" {
			sawSample = true
		}
		if ev == "h.on" && !sawSample {
			t.Errorf("claim 1 violated at runtime: %v", sys.Trace())
		}
	}
}

func TestSmartHomeLearning(t *testing.T) {
	m := loadSmartHome(t)
	for _, name := range []string{"Radio", "Sensor", "Heater"} {
		c, _ := m.Class(name)
		res, err := c.Learn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec, err := c.SpecDFA("")
		if err != nil {
			t.Fatal(err)
		}
		if !automata.Equivalent(res.DFA, spec) {
			t.Errorf("%s: learned model differs from static model", name)
		}
	}
}

func TestSmartHomeNuSMVExport(t *testing.T) {
	m := loadSmartHome(t)
	thermo, _ := m.Class("Thermostat")
	smv, err := thermo.ExportNuSMV()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(smv, "LTLSPEC"); got != 2 {
		t.Errorf("LTLSPEC count = %d, want 2", got)
	}
	for _, want := range []string{"e_s_sample", "e_h_on", "e_r_sleep", "SPEC EF state = end"} {
		if !strings.Contains(smv, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

func TestSmartHomeFlattenedLanguageShape(t *testing.T) {
	m := loadSmartHome(t)
	thermo, _ := m.Class("Thermostat")
	flat, err := thermo.FlattenedDFA()
	if err != nil {
		t.Fatal(err)
	}
	accepted := [][]string{
		{},                                // never used
		{"s.start", "s.sample", "s.stop"}, // measure; idle
		{"s.start", "s.sample", "s.stop", "h.on", "h.off"},               // measure; heat; idle
		{"s.start", "s.sample", "s.stop", "r.wake", "r.send", "r.sleep"}, // measure; report; idle
	}
	rejected := [][]string{
		{"h.on", "h.off"},                         // heat is not initial
		{"s.start", "s.sample", "s.stop", "h.on"}, // heater left on
		{"r.wake"}, // report can't come first
	}
	for _, tr := range accepted {
		if !flat.Accepts(tr) {
			t.Errorf("flattened language should accept %v", tr)
		}
	}
	for _, tr := range rejected {
		if flat.Accepts(tr) {
			t.Errorf("flattened language should reject %v", tr)
		}
	}
}

func readFileT(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDeviceConformsToExtractedModel links the concrete executor to the
// formal model: every trace produced by actually running the Valve
// device (under random environments and random caller choices) is a
// prefix of the statically extracted protocol language, and the device
// is stoppable exactly when the spec automaton accepts the trace.
func TestDeviceConformsToExtractedModel(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for run := 0; run < 200; run++ {
		board := NewBoard()
		dev, err := valve.NewDevice(board)
		if err != nil {
			t.Fatal(err)
		}
		var trace []string
		for step := 0; step < 12; step++ {
			board.SetInput(29, rng.Intn(2) == 0) // random sensor reading
			allowed := dev.Allowed()
			if len(allowed) == 0 {
				break
			}
			op := allowed[rng.Intn(len(allowed))]
			if _, _, err := dev.Call(op); err != nil {
				t.Fatalf("run %d: allowed call %s failed: %v (trace %v)", run, op, err, trace)
			}
			trace = append(trace, op)

			// The concrete trace must be a live prefix of the spec.
			if spec.Run(trace) < 0 {
				t.Fatalf("run %d: device trace %v left the spec language", run, trace)
			}
			if got, want := dev.CanStop(), spec.Accepts(trace); got != want {
				t.Fatalf("run %d: CanStop = %v but spec accepts = %v at %v", run, got, want, trace)
			}
		}
	}
}

// TestVerifiedClassTracesReplayCleanly is the soundness story end to
// end: for classes that verify OK, every complete usage trace sampled
// from the (exit-aware) flattened model replays in the runtime
// simulator without protocol errors and without dangling subsystems.
func TestVerifiedClassTracesReplayCleanly(t *testing.T) {
	cases := []struct {
		files []string
		class string
	}{
		{[]string{"valve.py", "goodsector.py"}, "GoodSector"},
		{[]string{"smarthome.py"}, "Thermostat"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		t.Run(tc.class, func(t *testing.T) {
			paths := make([]string, len(tc.files))
			for i, f := range tc.files {
				paths[i] = filepath.Join("testdata", f)
			}
			m, err := LoadFiles(paths...)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := m.Class(tc.class)
			report, err := c.Check(Precise())
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Fatalf("%s must verify:\n%s", tc.class, report)
			}
			flat, err := c.FlattenedDFA(Precise())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 150; i++ {
				tr, ok := flat.RandomAccepted(rng, 14)
				if !ok {
					t.Fatal("no trace sampled")
				}
				if err := c.ReplayFlat(tr); err != nil {
					t.Fatalf("verified trace %v failed at runtime: %v", tr, err)
				}
			}
		})
	}
}

// TestConcreteCompositeTraceInStaticModel is the third conformance
// bridge: the flattened trace produced by *concretely executing* a
// composite (real branch decisions over real pins) is always in the
// exit-aware flattened language of the static model.
func TestConcreteCompositeTraceInStaticModel(t *testing.T) {
	src := readFileT(t, filepath.Join("testdata", "valve.py")) + "\n" +
		readFileT(t, filepath.Join("testdata", "goodsector.py"))
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := m.Class("GoodSector")
	flat, err := good.FlattenedDFA(Precise())
	if err != nil {
		t.Fatal(err)
	}

	ast, err := pyparse.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for run := 0; run < 50; run++ {
		board := hwNewBoard()
		env := pyexecNewEnv(board)
		env.RegisterModule(ast)
		var sectorAST = ast.Classes[1]
		obj, err := pyexecNewObject(sectorAST, env)
		if err != nil {
			t.Fatal(err)
		}
		board.SetInput(29, rng.Intn(2) == 0)
		if _, _, err := obj.Call("run"); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		trace := env.Events()
		if !flat.Accepts(trace) {
			t.Fatalf("run %d: concrete trace %v not in the static model", run, trace)
		}
	}
}

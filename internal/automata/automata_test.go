package automata

import (
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/regex"
)

var corpus = []string{
	"0",
	"1",
	"a",
	"a . b",
	"a + b",
	"a*",
	"(a . b)*",
	"(a + b)* . c",
	"a . (b + c) . d",
	"(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b", // paper Example 3
	"(a + b)* . a . (a + b)",
	"a* . b . a*",
	"(a . a)* + (a . a . a)*",
}

func TestConstructionsAgreeWithRegex(t *testing.T) {
	const bound = 5
	for _, src := range corpus {
		r := regex.MustParse(src)
		want := regex.TraceSet(regex.Enumerate(r, bound))

		builders := map[string]func() interface{ Accepts([]string) bool }{
			"thompson":    func() interface{ Accepts([]string) bool } { return FromRegexThompson(r) },
			"glushkov":    func() interface{ Accepts([]string) bool } { return FromRegexGlushkov(r) },
			"derivatives": func() interface{ Accepts([]string) bool } { return FromRegexDerivatives(r) },
			"det":         func() interface{ Accepts([]string) bool } { return FromRegexThompson(r).Determinize() },
			"minimal":     func() interface{ Accepts([]string) bool } { return CompileMinimal(r) },
		}
		for name, build := range builders {
			m := build()
			for _, trace := range allTraces(regex.Alphabet(r), 4) {
				_, inLang := want[regex.TraceKey(trace)]
				if got := m.Accepts(trace); got != inLang {
					t.Errorf("%s(%s).Accepts(%v) = %v, want %v", name, src, trace, got, inLang)
				}
			}
		}
	}
}

func TestConstructionsAgreeOnRandomRegexes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		r := randomRegex(rng, 3)
		nfaT := FromRegexThompson(r)
		nfaG := FromRegexGlushkov(r)
		dfa := CompileMinimal(r)
		for _, trace := range allTraces([]string{"a", "b", "c"}, 3) {
			want := regex.Match(r, trace)
			if got := nfaT.Accepts(trace); got != want {
				t.Fatalf("thompson(%v).Accepts(%v) = %v, want %v", r, trace, got, want)
			}
			if got := nfaG.Accepts(trace); got != want {
				t.Fatalf("glushkov(%v).Accepts(%v) = %v, want %v", r, trace, got, want)
			}
			if got := dfa.Accepts(trace); got != want {
				t.Fatalf("minimal(%v).Accepts(%v) = %v, want %v", r, trace, got, want)
			}
		}
	}
}

func TestGlushkovHasNoEpsilonAndLinearSize(t *testing.T) {
	r := regex.MustParse("(a . b)* . (c + a)")
	n := FromRegexGlushkov(r)
	// 4 symbol occurrences + start.
	if got := n.NumStates(); got != 5 {
		t.Errorf("glushkov states = %d, want 5", got)
	}
	for s := 0; s < n.NumStates(); s++ {
		if len(n.eps[s]) != 0 {
			t.Errorf("glushkov automaton has ε-transition at state %d", s)
		}
	}
}

func TestMinimizeIsMinimalAndCanonical(t *testing.T) {
	// Two very different expressions for the same language must minimize
	// to structurally identical automata.
	pairs := [][2]string{
		{"(a + b)*", "(a* . b*)*"},
		{"1 + a . a*", "a*"},
		{"a . (b + c)", "a . b + a . c"},
	}
	for _, p := range pairs {
		d1 := CompileMinimal(regex.MustParse(p[0]))
		d2 := CompileMinimal(regex.MustParse(p[1]))
		if !sameDFA(d1, d2) {
			t.Errorf("minimal DFAs of %q and %q differ structurally", p[0], p[1])
		}
	}
	// a* has exactly 1 state; (a.b)* has 2 live states.
	if got := CompileMinimal(regex.MustParse("a*")).NumStates(); got != 1 {
		t.Errorf("minimal a* has %d states, want 1", got)
	}
	if got := CompileMinimal(regex.MustParse("(a . b)*")).NumStates(); got != 2 {
		t.Errorf("minimal (a.b)* has %d states, want 2", got)
	}
}

func TestMinimizeRandomPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 150; i++ {
		r := randomRegex(rng, 3)
		big := FromRegexThompson(r).Determinize()
		small := big.Minimize()
		if small.NumStates() > big.NumStates() {
			t.Fatalf("minimize grew the automaton for %v: %d -> %d", r, big.NumStates(), small.NumStates())
		}
		for _, trace := range allTraces([]string{"a", "b", "c"}, 3) {
			if big.Accepts(trace) != small.Accepts(trace) {
				t.Fatalf("minimize changed language of %v on %v", r, trace)
			}
		}
	}
}

func TestProductOperations(t *testing.T) {
	a := CompileMinimal(regex.MustParse("(a + b)* . a")) // ends in a
	b := CompileMinimal(regex.MustParse("a . (a + b)*")) // starts with a

	tests := []struct {
		name string
		dfa  *DFA
		in   [][]string
		out  [][]string
	}{
		{
			"intersection", Intersect(a, b),
			[][]string{{"a"}, {"a", "b", "a"}},
			[][]string{{}, {"b", "a"}, {"a", "b"}},
		},
		{
			"union", UnionDFA(a, b),
			[][]string{{"a"}, {"b", "a"}, {"a", "b"}},
			[][]string{{}, {"b"}, {"b", "b"}},
		},
		{
			"difference", Difference(a, b),
			[][]string{{"b", "a"}},
			[][]string{{"a"}, {"a", "b"}, {"b"}},
		},
		{
			"symmetric difference", SymmetricDifference(a, b),
			[][]string{{"b", "a"}, {"a", "b"}},
			[][]string{{"a"}, {"a", "b", "a"}, {}},
		},
	}
	for _, tt := range tests {
		for _, trace := range tt.in {
			if !tt.dfa.Accepts(trace) {
				t.Errorf("%s should accept %v", tt.name, trace)
			}
		}
		for _, trace := range tt.out {
			if tt.dfa.Accepts(trace) {
				t.Errorf("%s should reject %v", tt.name, trace)
			}
		}
	}
}

func TestProductOverDifferentAlphabets(t *testing.T) {
	a := CompileMinimal(regex.MustParse("x*"))
	b := CompileMinimal(regex.MustParse("y*"))
	u := UnionDFA(a, b)
	for _, tt := range []struct {
		trace []string
		want  bool
	}{
		{nil, true},
		{[]string{"x", "x"}, true},
		{[]string{"y"}, true},
		{[]string{"x", "y"}, false},
	} {
		if got := u.Accepts(tt.trace); got != tt.want {
			t.Errorf("union over {x},{y}: Accepts(%v) = %v, want %v", tt.trace, got, tt.want)
		}
	}
}

func TestComplement(t *testing.T) {
	d := CompileMinimal(regex.MustParse("a . b"))
	c := d.Complement()
	for _, trace := range allTraces([]string{"a", "b"}, 3) {
		if d.Accepts(trace) == c.Accepts(trace) {
			t.Errorf("complement agrees with original on %v", trace)
		}
	}
}

func TestEquivalentAndDistinguish(t *testing.T) {
	a := CompileMinimal(regex.MustParse("(a . b)*"))
	b := FromRegexThompson(regex.MustParse("(a . b)*")).Determinize()
	if !Equivalent(a, b) {
		t.Error("same-language DFAs reported different")
	}
	c := CompileMinimal(regex.MustParse("(b . a)*"))
	w, eq := Distinguish(a, c)
	if eq {
		t.Fatal("different languages reported equivalent")
	}
	if a.Accepts(w) == c.Accepts(w) {
		t.Errorf("witness %v does not distinguish", w)
	}
	if len(w) != 2 {
		t.Errorf("witness %v is not shortest (want length 2)", w)
	}
}

func TestSubsetDFA(t *testing.T) {
	small := CompileMinimal(regex.MustParse("a . b"))
	big := CompileMinimal(regex.MustParse("a . (b + c)"))
	if ok, _ := SubsetDFA(small, big); !ok {
		t.Error("a·b ⊆ a·(b+c) should hold")
	}
	ok, w := SubsetDFA(big, small)
	if ok {
		t.Fatal("a·(b+c) ⊆ a·b should fail")
	}
	if !big.Accepts(w) || small.Accepts(w) {
		t.Errorf("witness %v invalid", w)
	}
}

func TestShortestAcceptedDeterministic(t *testing.T) {
	d := CompileMinimal(regex.MustParse("b . b + a . c + a . b"))
	w, ok := d.ShortestAccepted()
	if !ok {
		t.Fatal("language is non-empty")
	}
	// Shortest length is 2; lexicographically least is [a b].
	if len(w) != 2 || w[0] != "a" || w[1] != "b" {
		t.Errorf("ShortestAccepted = %v, want [a b]", w)
	}

	empty := CompileMinimal(regex.Empty())
	if _, ok := empty.ShortestAccepted(); ok {
		t.Error("empty language should have no witness")
	}
	if !empty.IsEmpty() {
		t.Error("IsEmpty should be true for ∅")
	}
}

func TestToRegexRoundTrip(t *testing.T) {
	for _, src := range corpus {
		r := regex.MustParse(src)
		d := CompileMinimal(r)
		back := d.ToRegex()
		if !regex.Equivalent(r, back) {
			t.Errorf("round trip changed language: %q -> %q", src, back.String())
		}
	}
}

func TestToRegexRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		r := randomRegex(rng, 3)
		back := CompileMinimal(r).ToRegex()
		if !regex.Equivalent(r, back) {
			t.Fatalf("round trip changed language of %v: got %v", r, back)
		}
	}
}

func TestEnumerateAcceptedAgreesWithRegexEnumerate(t *testing.T) {
	for _, src := range corpus {
		r := regex.MustParse(src)
		d := CompileMinimal(r)
		got := regex.TraceSet(d.EnumerateAccepted(4))
		want := regex.TraceSet(regex.Enumerate(r, 4))
		if len(got) != len(want) {
			t.Errorf("%s: enumerated %d traces, want %d", src, len(got), len(want))
			continue
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Errorf("%s: missing trace %q", src, k)
			}
		}
	}
}

func TestNFAUnknownSymbol(t *testing.T) {
	n := NewNFA([]string{"a"})
	if err := n.AddTransition(n.Start(), "zzz", n.Start()); err == nil {
		t.Error("AddTransition with unknown symbol should error")
	}
	if n.Accepts([]string{"zzz"}) {
		t.Error("trace over unknown symbols must be rejected")
	}
	d := NewDFA([]string{"a"})
	if err := d.AddTransition(d.Start(), "zzz", d.Start()); err == nil {
		t.Error("DFA.AddTransition with unknown symbol should error")
	}
}

func TestReachableTrims(t *testing.T) {
	d := NewDFA([]string{"a"})
	s1 := d.AddState(true)
	_ = d.AddState(true) // unreachable
	if err := d.AddTransition(d.Start(), "a", s1); err != nil {
		t.Fatal(err)
	}
	r := d.Reachable()
	if r.NumStates() != 2 {
		t.Errorf("Reachable left %d states, want 2", r.NumStates())
	}
	if !r.Accepts([]string{"a"}) || r.Accepts(nil) {
		t.Error("Reachable changed the language")
	}
}

func TestRunReturnsResidualState(t *testing.T) {
	d := CompileMinimal(regex.MustParse("a . b"))
	if s := d.Run([]string{"a"}); s < 0 || d.Accepting(s) {
		t.Errorf("Run([a]) = %d, want live non-accepting state", s)
	}
	if s := d.Run([]string{"b"}); s >= 0 {
		t.Errorf("Run([b]) = %d, want dead (-1)", s)
	}
	if s := d.Run([]string{"a", "b"}); s < 0 || !d.Accepting(s) {
		t.Errorf("Run([a b]) = %d, want accepting", s)
	}
}

// sameDFA reports structural identity (states numbered canonically by
// minimization's BFS).
func sameDFA(a, b *DFA) bool {
	if a.NumStates() != b.NumStates() || len(a.alphabet) != len(b.alphabet) {
		return false
	}
	for i := range a.alphabet {
		if a.alphabet[i] != b.alphabet[i] {
			return false
		}
	}
	if a.start != b.start {
		return false
	}
	for s := 0; s < a.NumStates(); s++ {
		if a.accept[s] != b.accept[s] {
			return false
		}
		for si := range a.alphabet {
			if a.trans[s][si] != b.trans[s][si] {
				return false
			}
		}
	}
	return true
}

func randomRegex(rng *rand.Rand, depth int) regex.Regex {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return regex.Epsilon()
		case 1:
			return regex.Empty()
		default:
			return regex.Symbol(string(rune('a' + rng.Intn(3))))
		}
	}
	switch rng.Intn(6) {
	case 0:
		return regex.Symbol(string(rune('a' + rng.Intn(3))))
	case 1, 2:
		return regex.Concat(randomRegex(rng, depth-1), randomRegex(rng, depth-1))
	case 3, 4:
		return regex.Union(randomRegex(rng, depth-1), randomRegex(rng, depth-1))
	default:
		return regex.Star(randomRegex(rng, depth-1))
	}
}

func allTraces(alphabet []string, maxLen int) [][]string {
	out := [][]string{nil}
	frontier := [][]string{nil}
	for i := 0; i < maxLen; i++ {
		var next [][]string
		for _, tr := range frontier {
			for _, f := range alphabet {
				ext := append(append([]string{}, tr...), f)
				next = append(next, ext)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func TestRandomAcceptedAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, src := range corpus {
		r := regex.MustParse(src)
		d := CompileMinimal(r)
		if d.IsEmpty() {
			if _, ok := d.RandomAccepted(rng, 6); ok {
				t.Errorf("%s: sample from empty language", src)
			}
			continue
		}
		shortest, _ := d.ShortestAccepted()
		for i := 0; i < 200; i++ {
			tr, ok := d.RandomAccepted(rng, len(shortest)+4)
			if !ok {
				t.Fatalf("%s: no sample though language is non-empty", src)
			}
			if !d.Accepts(tr) {
				t.Fatalf("%s: sampled %v is not accepted", src, tr)
			}
			if len(tr) > len(shortest)+4 {
				t.Fatalf("%s: sample %v exceeds bound", src, tr)
			}
		}
	}
}

func TestRandomAcceptedBoundTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := CompileMinimal(regex.MustParse("a . b . c"))
	if _, ok := d.RandomAccepted(rng, 2); ok {
		t.Error("bound 2 cannot fit the only word of length 3")
	}
	tr, ok := d.RandomAccepted(rng, 3)
	if !ok || len(tr) != 3 {
		t.Errorf("sample = %v, %v", tr, ok)
	}
}

func TestRandomAcceptedCoversLanguage(t *testing.T) {
	// Over (a+b)*, samples should hit both letters and different lengths.
	rng := rand.New(rand.NewSource(23))
	d := CompileMinimal(regex.MustParse("(a + b)*"))
	lengths := make(map[int]bool)
	letters := make(map[string]bool)
	for i := 0; i < 500; i++ {
		tr, ok := d.RandomAccepted(rng, 5)
		if !ok {
			t.Fatal("sampling failed")
		}
		lengths[len(tr)] = true
		for _, sym := range tr {
			letters[sym] = true
		}
	}
	if len(lengths) < 4 || !letters["a"] || !letters["b"] {
		t.Errorf("poor coverage: lengths=%v letters=%v", lengths, letters)
	}
}

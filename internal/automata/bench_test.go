package automata

import (
	"testing"

	"github.com/shelley-go/shelley/internal/regex"
)

var benchRegex = regex.MustParse("(a . (b + c))* . a . b . (c + a . (b + c)* . c)")

func BenchmarkDeterminize(b *testing.B) {
	n := FromRegexThompson(benchRegex)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Determinize()
	}
}

func BenchmarkMinimize(b *testing.B) {
	d := FromRegexThompson(benchRegex).Determinize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Minimize()
	}
}

func BenchmarkProduct(b *testing.B) {
	d1 := CompileMinimal(regex.MustParse("(a + b)* . a"))
	d2 := CompileMinimal(regex.MustParse("a . (a + b)*"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect(d1, d2)
	}
}

func BenchmarkToRegex(b *testing.B) {
	d := CompileMinimal(benchRegex)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ToRegex()
	}
}

func BenchmarkAcceptsDFA(b *testing.B) {
	d := CompileMinimal(benchRegex)
	tr := []string{"a", "b", "a", "c", "a", "b", "c"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Accepts(tr)
	}
}

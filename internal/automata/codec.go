package automata

import (
	"encoding/json"
	"fmt"
)

// dfaWire is the serialized form of a DFA: alphabet-ordered transition
// rows with -1 for absent edges, exactly the in-memory layout. The
// start state is always 0 on the wire (Marshal renumbers when needed),
// matching the invariant every constructor in this package maintains.
type dfaWire struct {
	Alphabet []string `json:"alphabet"`
	Accept   []bool   `json:"accept"`
	Trans    [][]int  `json:"trans"`
}

// Marshal encodes the DFA as deterministic JSON for persistence (the
// mined-model store) and transport. Unreachable states are dropped when
// the start state is not 0, so Unmarshal(Marshal(d)) is always
// language-equivalent to d.
func Marshal(d *DFA) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("automata: marshal nil DFA")
	}
	if d.start != 0 {
		d = d.Reachable()
	}
	return json.Marshal(dfaWire{Alphabet: d.alphabet, Accept: d.accept, Trans: d.trans})
}

// Unmarshal decodes a DFA encoded by Marshal, validating shape and
// transition targets so hostile or corrupt store bytes surface as
// errors instead of out-of-range panics later.
func Unmarshal(data []byte) (*DFA, error) {
	var w dfaWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("automata: decoding DFA: %w", err)
	}
	if len(w.Accept) != len(w.Trans) {
		return nil, fmt.Errorf("automata: decoding DFA: %d accept flags for %d states", len(w.Accept), len(w.Trans))
	}
	if len(w.Accept) == 0 {
		return nil, fmt.Errorf("automata: decoding DFA: no states")
	}
	d := NewDFA(w.Alphabet)
	if len(d.alphabet) != len(w.Alphabet) {
		// NewDFA sorts and deduplicates; wire symbols must already be
		// canonical or symbol indexes below would be misaligned.
		return nil, fmt.Errorf("automata: decoding DFA: alphabet not sorted and unique")
	}
	for i, sym := range w.Alphabet {
		if d.alphabet[i] != sym {
			return nil, fmt.Errorf("automata: decoding DFA: alphabet not sorted and unique")
		}
	}
	d.SetAccepting(0, w.Accept[0])
	for s := 1; s < len(w.Accept); s++ {
		d.AddState(w.Accept[s])
	}
	for s, row := range w.Trans {
		if len(row) != len(w.Alphabet) {
			return nil, fmt.Errorf("automata: decoding DFA: state %d has %d transitions for %d symbols", s, len(row), len(w.Alphabet))
		}
		for si, to := range row {
			if to < -1 || to >= len(w.Trans) {
				return nil, fmt.Errorf("automata: decoding DFA: state %d symbol %d targets out-of-range state %d", s, si, to)
			}
			if to >= 0 {
				d.setTransition(s, si, to)
			}
		}
	}
	return d, nil
}

package automata

import (
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	d := NewDFA([]string{"close", "open", "read"})
	s1 := d.AddState(false)
	s2 := d.AddState(true)
	for _, tr := range []struct {
		from int
		sym  string
		to   int
	}{{0, "open", s1}, {s1, "read", s1}, {s1, "close", s2}} {
		if err := d.AddTransition(tr.from, tr.sym, tr.to); err != nil {
			t.Fatal(err)
		}
	}
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if cex, same := Distinguish(d, got); !same {
		t.Fatalf("round trip changed the language; distinguished by %v", cex)
	}
	if got.NumStates() != d.NumStates() {
		t.Fatalf("round trip changed state count: %d != %d", got.NumStates(), d.NumStates())
	}

	// Deterministic bytes: same DFA, same encoding.
	again, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", data, again)
	}
}

func TestCodecRejectsCorruptInput(t *testing.T) {
	for name, data := range map[string]string{
		"not json":          `{"alphabet": [`,
		"no states":         `{"alphabet":["a"],"accept":[],"trans":[]}`,
		"shape mismatch":    `{"alphabet":["a"],"accept":[true,false],"trans":[[0]]}`,
		"row too short":     `{"alphabet":["a","b"],"accept":[true],"trans":[[0]]}`,
		"target overflow":   `{"alphabet":["a"],"accept":[true],"trans":[[7]]}`,
		"target negative":   `{"alphabet":["a"],"accept":[true],"trans":[[-2]]}`,
		"unsorted alphabet": `{"alphabet":["b","a"],"accept":[true],"trans":[[-1,-1]]}`,
		"dup alphabet":      `{"alphabet":["a","a"],"accept":[true],"trans":[[-1,-1]]}`,
	} {
		if _, err := Unmarshal([]byte(data)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestCodecKeepsLanguageWithUnreachableStates(t *testing.T) {
	d := NewDFA([]string{"a"})
	d.AddState(true) // unreachable
	live := d.AddState(true)
	if err := d.AddTransition(0, "a", live); err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if cex, same := Distinguish(d, got); !same {
		t.Fatalf("marshal of DFA with unreachable states changed language; cex %v", cex)
	}
}

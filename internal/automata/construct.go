package automata

import (
	"context"

	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/regex"
)

// This file builds automata from the regular expressions produced by the
// behavior inference. Three constructions are provided:
//
//   - Thompson: the classic linear-size ε-NFA (one fragment per node),
//   - Glushkov: the ε-free position automaton (n+1 states for n symbol
//     occurrences),
//   - Brzozowski: a DFA built directly from iterated derivatives.
//
// All three accept exactly L(r); the ablation benchmarks compare their
// sizes and downstream determinization cost.

// FromRegexThompson builds an ε-NFA for r using Thompson's construction.
func FromRegexThompson(r regex.Regex) *NFA {
	n := NewNFA(regex.Alphabet(r))
	in, out := thompson(n, r)
	n.AddEpsilon(n.Start(), in)
	n.SetAccepting(out, true)
	return n
}

// thompson returns the (entry, exit) states of the fragment for r.
func thompson(n *NFA, r regex.Regex) (in, out int) {
	switch r := r.(type) {
	case regex.EmptySet:
		// Two disconnected states: no path from in to out.
		return n.AddState(false), n.AddState(false)
	case regex.EmptyString:
		s := n.AddState(false)
		return s, s
	case regex.Sym:
		in, out := n.AddState(false), n.AddState(false)
		// The symbol is in the alphabet by construction (NewNFA was
		// seeded with Alphabet(r)); ignore the impossible error.
		_ = n.AddTransition(in, r.Name, out)
		return in, out
	case regex.Cat:
		if len(r.Parts) == 0 {
			s := n.AddState(false)
			return s, s
		}
		in, out := thompson(n, r.Parts[0])
		for _, p := range r.Parts[1:] {
			pin, pout := thompson(n, p)
			n.AddEpsilon(out, pin)
			out = pout
		}
		return in, out
	case regex.Alt:
		in, out := n.AddState(false), n.AddState(false)
		for _, p := range r.Parts {
			pin, pout := thompson(n, p)
			n.AddEpsilon(in, pin)
			n.AddEpsilon(pout, out)
		}
		return in, out
	case regex.Rep:
		in, out := n.AddState(false), n.AddState(false)
		pin, pout := thompson(n, r.Inner)
		n.AddEpsilon(in, pin)
		n.AddEpsilon(pout, out)
		n.AddEpsilon(in, out)   // zero iterations
		n.AddEpsilon(pout, pin) // repeat
		return in, out
	}
	return n.AddState(false), n.AddState(false)
}

// FromRegexGlushkov builds the ε-free position automaton for r. The
// result has one state per symbol occurrence plus a start state.
func FromRegexGlushkov(r regex.Regex) *NFA {
	g := &glushkov{}
	info := g.analyze(r)

	n := NewNFA(regex.Alphabet(r))
	states := make([]int, len(g.symbols)+1)
	states[0] = n.Start()
	for i := range g.symbols {
		states[i+1] = n.AddState(false)
	}
	n.SetAccepting(n.Start(), info.nullable)
	for _, p := range info.last {
		n.SetAccepting(states[p], true)
	}
	for _, p := range info.first {
		_ = n.AddTransition(n.Start(), g.symbols[p-1], states[p])
	}
	for from, follows := range g.follow {
		for _, to := range follows {
			_ = n.AddTransition(states[from], g.symbols[to-1], states[to])
		}
	}
	return n
}

// glushkov accumulates linearized positions (1-based) and follow sets.
type glushkov struct {
	symbols []string      // position-1 -> symbol name
	follow  map[int][]int // position -> follow positions
}

type glushkovInfo struct {
	nullable bool
	first    []int
	last     []int
}

func (g *glushkov) analyze(r regex.Regex) glushkovInfo {
	if g.follow == nil {
		g.follow = make(map[int][]int)
	}
	switch r := r.(type) {
	case regex.EmptySet:
		return glushkovInfo{}
	case regex.EmptyString:
		return glushkovInfo{nullable: true}
	case regex.Sym:
		g.symbols = append(g.symbols, r.Name)
		p := len(g.symbols)
		return glushkovInfo{first: []int{p}, last: []int{p}}
	case regex.Cat:
		out := glushkovInfo{nullable: true}
		for _, part := range r.Parts {
			pi := g.analyze(part)
			// follow: every last of the prefix is followed by every
			// first of this part.
			for _, l := range out.last {
				g.follow[l] = append(g.follow[l], pi.first...)
			}
			if out.nullable {
				out.first = append(out.first, pi.first...)
			}
			if pi.nullable {
				out.last = append(out.last, pi.last...)
			} else {
				out.last = pi.last
			}
			out.nullable = out.nullable && pi.nullable
		}
		return out
	case regex.Alt:
		var out glushkovInfo
		for _, part := range r.Parts {
			pi := g.analyze(part)
			out.nullable = out.nullable || pi.nullable
			out.first = append(out.first, pi.first...)
			out.last = append(out.last, pi.last...)
		}
		return out
	case regex.Rep:
		pi := g.analyze(r.Inner)
		for _, l := range pi.last {
			g.follow[l] = append(g.follow[l], pi.first...)
		}
		return glushkovInfo{nullable: true, first: pi.first, last: pi.last}
	}
	return glushkovInfo{}
}

// FromRegexDerivatives builds a DFA for r directly: states are the
// distinct Brzozowski derivatives of r (finitely many thanks to the
// normal form maintained by the regex package), the start state is r
// itself, and a state accepts iff its expression is nullable.
// Unbounded: the derivative state space can be exponential in |r|, so
// callers handling untrusted input should use FromRegexDerivativesCtx
// with a budget instead.
func FromRegexDerivatives(r regex.Regex) *DFA {
	d, _ := FromRegexDerivativesCtx(context.Background(), r)
	return d
}

// FromRegexDerivativesCtx is FromRegexDerivatives bounded by the
// context's resource budget: MaxDFAStates caps the derivative state
// count, MaxRegexSize caps the size of any single derivative
// expression, and cancellation is observed as states are added.
func FromRegexDerivativesCtx(ctx context.Context, r regex.Regex) (*DFA, error) {
	gate := budget.DFAGate(ctx, "derivatives")
	maxSize := budget.From(ctx).MaxRegexSize
	alphabet := regex.Alphabet(r)
	d := NewDFA(alphabet)

	ids := map[string]int{regex.Key(r): d.Start()}
	d.SetAccepting(d.Start(), regex.Nullable(r))
	if err := gate.Tick(); err != nil {
		return nil, err
	}

	type work struct {
		id int
		r  regex.Regex
	}
	queue := []work{{id: d.Start(), r: r}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, sym := range alphabet {
			der := regex.Derivative(cur.r, sym)
			if regex.IsEmptyLanguage(der) {
				continue
			}
			if !regex.SizeWithin(der, maxSize) {
				return nil, budget.Exceeded(ctx, "derivatives", "regex-size", maxSize)
			}
			k := regex.Key(der)
			id, ok := ids[k]
			if !ok {
				if err := gate.Tick(); err != nil {
					return nil, err
				}
				id = d.AddState(regex.Nullable(der))
				ids[k] = id
				queue = append(queue, work{id: id, r: der})
			}
			_ = d.AddTransition(cur.id, sym, id)
		}
	}
	return d, nil
}

// CompileMinimal is the construction the rest of the pipeline uses by
// default: derivative DFA followed by Hopcroft minimization.
func CompileMinimal(r regex.Regex) *DFA {
	return FromRegexDerivatives(r).Minimize()
}

// CompileMinimalCtx is CompileMinimal under the context's budget and
// cancellation; it is what the memoizing pipeline calls, so every
// behavior-regex compilation in a served request is bounded.
func CompileMinimalCtx(ctx context.Context, r regex.Regex) (*DFA, error) {
	d, err := FromRegexDerivativesCtx(ctx, r)
	if err != nil {
		return nil, err
	}
	return d.MinimizeCtx(ctx)
}

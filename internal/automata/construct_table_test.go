package automata

import (
	"testing"

	"github.com/shelley-go/shelley/internal/regex"
)

// Table-driven differential test of the three regex→automaton engines
// against a naive membership oracle (bounded enumeration of the regex's
// language). Every construction must agree with the oracle on every
// trace up to the bound, and all constructions must be pairwise
// equivalent — so a bug in any single engine cannot hide.
func TestConstructionsAgainstOracle(t *testing.T) {
	const maxLen = 5
	cases := []struct {
		name string
		src  string // repo syntax: 0 empty, 1 epsilon, + union, . concat, * star
	}{
		{"empty-language", "0"},
		{"epsilon-only", "1"},
		{"single-symbol", "a"},
		{"three-stars-union", "a* + b* + c*"},
		{"starred-union", "(a + b + c)*"},
		{"plus", "a . a*"},                            // PCRE a+
		{"nested-plus", "(a . b) . (a . b)*"},         // (ab)+
		{"opt", "(1 + a)"},                            // a?
		{"nested-opt-plus", "((1 + a) . b) . ((1 + a) . b)*"}, // (a?b)+
		{"opt-of-plus", "(1 + (a . a*))"},             // (a+)?
		{"concat-of-stars", "a* . b*"},
		{"union-under-concat", "(a + b) . c"},
		{"star-of-concat", "(a . b)*"},
		{"empty-absorbs", "(a . 0) + b"},
		{"epsilon-in-union", "(1 + a . b)* . c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := regex.MustParse(tc.src)

			// The naive oracle: the language, enumerated up to maxLen.
			inLang := regex.TraceSet(regex.Enumerate(r, maxLen))

			engines := []struct {
				name string
				dfa  *DFA
			}{
				{"thompson", FromRegexThompson(r).Determinize()},
				{"glushkov", FromRegexGlushkov(r).Determinize()},
				{"derivatives", FromRegexDerivatives(r)},
				{"minimal", CompileMinimal(r)},
			}

			// Every trace over the alphabet up to maxLen, both members
			// and non-members.
			alphabet := regex.Alphabet(r)
			for _, tr := range allTraces(alphabet, maxLen) {
				_, want := inLang[regex.TraceKey(tr)]
				for _, e := range engines {
					if got := e.dfa.Accepts(tr); got != want {
						t.Fatalf("%s: Accepts(%v) = %v, oracle says %v (regex %s)",
							e.name, tr, got, want, tc.src)
					}
				}
			}

			// Pairwise language equality across constructions.
			for i := 0; i < len(engines); i++ {
				for j := i + 1; j < len(engines); j++ {
					if !Equivalent(engines[i].dfa, engines[j].dfa) {
						w, _ := Distinguish(engines[i].dfa, engines[j].dfa)
						t.Fatalf("%s and %s disagree on %v (regex %s)",
							engines[i].name, engines[j].name, w, tc.src)
					}
				}
			}

			// The minimal DFA must be no larger than any other engine's
			// determinization (after their own minimization it is equal;
			// here we only assert minimality against the raw subset
			// constructions).
			min := engines[3].dfa
			for _, e := range engines[:3] {
				if e.dfa.Minimize().NumStates() != min.NumStates() && !min.IsEmpty() {
					t.Fatalf("%s minimizes to %d states, CompileMinimal has %d",
						e.name, e.dfa.Minimize().NumStates(), min.NumStates())
				}
			}
		})
	}
}

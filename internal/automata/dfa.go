package automata

import (
	"fmt"
	"sort"
)

// DFA is a deterministic finite automaton. Missing transitions denote an
// implicit dead (rejecting sink) state, so DFAs are partial by default;
// Complete materializes the sink when an algorithm (e.g. complement)
// needs totality.
type DFA struct {
	alphabet []string
	symIndex map[string]int
	trans    [][]int // state -> symbol index -> target, -1 when absent
	accept   []bool
	start    int
}

// NewDFA returns a DFA with a single non-accepting start state and no
// transitions, over the given alphabet (deduplicated and sorted).
func NewDFA(alphabet []string) *DFA {
	d := &DFA{symIndex: make(map[string]int)}
	seen := make(map[string]struct{}, len(alphabet))
	for _, s := range alphabet {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		d.alphabet = append(d.alphabet, s)
	}
	sort.Strings(d.alphabet)
	for i, s := range d.alphabet {
		d.symIndex[s] = i
	}
	d.start = d.AddState(false)
	return d
}

// Alphabet returns the sorted alphabet. The caller must not mutate it.
func (d *DFA) Alphabet() []string { return d.alphabet }

// Start returns the start state.
func (d *DFA) Start() int { return d.start }

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.trans) }

// Accepting reports whether state s accepts.
func (d *DFA) Accepting(s int) bool { return d.accept[s] }

// SetAccepting marks state s as accepting or not.
func (d *DFA) SetAccepting(s int, accepting bool) { d.accept[s] = accepting }

// AddState adds a fresh state with no outgoing transitions.
func (d *DFA) AddState(accepting bool) int {
	row := make([]int, len(d.alphabet))
	for i := range row {
		row[i] = -1
	}
	d.trans = append(d.trans, row)
	d.accept = append(d.accept, accepting)
	return len(d.trans) - 1
}

// AddTransition sets from --sym--> to, replacing any previous target.
func (d *DFA) AddTransition(from int, sym string, to int) error {
	si, ok := d.symIndex[sym]
	if !ok {
		return fmt.Errorf("automata: symbol %q not in alphabet %v", sym, d.alphabet)
	}
	d.trans[from][si] = to
	return nil
}

func (d *DFA) setTransition(from, symIndex, to int) {
	d.trans[from][symIndex] = to
}

// Target returns the target of from on sym, or -1 when the transition is
// absent (dead).
func (d *DFA) Target(from int, sym string) int {
	si, ok := d.symIndex[sym]
	if !ok {
		return -1
	}
	return d.trans[from][si]
}

// Accepts reports whether the DFA accepts the trace.
func (d *DFA) Accepts(trace []string) bool {
	s := d.start
	for _, sym := range trace {
		si, ok := d.symIndex[sym]
		if !ok {
			return false
		}
		s = d.trans[s][si]
		if s < 0 {
			return false
		}
	}
	return d.accept[s]
}

// Run returns the state reached after consuming the trace, or -1 if the
// run dies. It is used by checkers that need the residual state.
func (d *DFA) Run(trace []string) int {
	s := d.start
	for _, sym := range trace {
		si, ok := d.symIndex[sym]
		if !ok {
			return -1
		}
		s = d.trans[s][si]
		if s < 0 {
			return -1
		}
	}
	return s
}

// Clone returns a deep copy of the DFA.
func (d *DFA) Clone() *DFA {
	out := &DFA{
		alphabet: append([]string(nil), d.alphabet...),
		symIndex: make(map[string]int, len(d.symIndex)),
		trans:    make([][]int, len(d.trans)),
		accept:   append([]bool(nil), d.accept...),
		start:    d.start,
	}
	for k, v := range d.symIndex {
		out.symIndex[k] = v
	}
	for i, row := range d.trans {
		out.trans[i] = append([]int(nil), row...)
	}
	return out
}

// Complete returns an equivalent total DFA: every state has a transition
// on every symbol, with missing edges routed to a rejecting sink. When
// the DFA is already total it is returned unchanged.
func (d *DFA) Complete() *DFA {
	total := true
	for _, row := range d.trans {
		for _, t := range row {
			if t < 0 {
				total = false
				break
			}
		}
		if !total {
			break
		}
	}
	if total {
		return d
	}
	out := d.Clone()
	sink := out.AddState(false)
	for s := range out.trans {
		for si, t := range out.trans[s] {
			if t < 0 {
				out.trans[s][si] = sink
			}
		}
	}
	return out
}

// Complement returns a DFA accepting exactly the traces over the same
// alphabet that d rejects.
func (d *DFA) Complement() *DFA {
	out := d.Complete().Clone()
	for s := range out.accept {
		out.accept[s] = !out.accept[s]
	}
	return out
}

// IsEmpty reports whether the accepted language is empty.
func (d *DFA) IsEmpty() bool {
	_, ok := d.ShortestAccepted()
	return !ok
}

// ShortestAccepted returns a shortest accepted trace and true, or nil and
// false when the language is empty. Among shortest traces it returns the
// one over the lexicographically least symbols (the alphabet is sorted
// and BFS expands in alphabet order), making counterexample output
// deterministic — the property §2.2's error messages rely on.
func (d *DFA) ShortestAccepted() ([]string, bool) {
	type node struct {
		state int
		trace []string
	}
	visited := make([]bool, len(d.trans))
	visited[d.start] = true
	frontier := []node{{state: d.start}}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			if d.accept[n.state] {
				return n.trace, true
			}
			for si, sym := range d.alphabet {
				t := d.trans[n.state][si]
				if t < 0 || visited[t] {
					continue
				}
				visited[t] = true
				trace := make([]string, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = sym
				next = append(next, node{state: t, trace: trace})
			}
		}
		frontier = next
	}
	return nil, false
}

// Reachable returns an equivalent DFA with unreachable states removed
// (states renumbered in BFS order from the start state).
func (d *DFA) Reachable() *DFA {
	remap := make([]int, len(d.trans))
	for i := range remap {
		remap[i] = -1
	}
	out := NewDFA(d.alphabet)
	out.SetAccepting(out.Start(), d.accept[d.start])
	remap[d.start] = out.Start()
	queue := []int{d.start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for si, t := range d.trans[s] {
			if t < 0 {
				continue
			}
			if remap[t] < 0 {
				remap[t] = out.AddState(d.accept[t])
				queue = append(queue, t)
			}
			out.setTransition(remap[s], si, remap[t])
		}
	}
	return out
}

package automata

import (
	"context"
	"errors"
	"testing"

	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/regex"
)

// fuzzBudget is deliberately tiny: the fuzzer's job is to prove that
// budget enforcement is total — any construction either finishes or
// returns a structured error, and never panics or runs away.
func fuzzBudget() context.Context {
	return budget.With(context.Background(), budget.Limits{
		MaxNFAStates:   200,
		MaxDFAStates:   200,
		MaxRegexSize:   200,
		MaxSearchNodes: 200,
	})
}

// okOrBudget fails the test unless err is nil or a structured
// budget/cancellation error.
func okOrBudget(t *testing.T, op string, err error) bool {
	t.Helper()
	if err == nil {
		return true
	}
	if !errors.Is(err, budget.ErrExceeded) && !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("%s: want budget/cancel error, got %v", op, err)
	}
	return false
}

var fuzzSeeds = []string{
	"", "0", "1", "a", "a . b", "a + b", "a*",
	"(a + b)* . a . (a + b) . (a + b)",
	"(a . (b . 0 + c))* + (b . a)*",
	"((a + b)* . c)* . ((c + a)* . b)*",
	"a** + (a + 1)*",
}

// FuzzDeterminize: subset construction under a tight budget is total.
func FuzzDeterminize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := regex.Parse(src)
		if err != nil {
			return
		}
		ctx := fuzzBudget()
		n := FromRegexThompson(r)
		d, err := n.DeterminizeCtx(ctx)
		if !okOrBudget(t, "determinize", err) {
			return
		}
		// When it fits the budget, it must agree with the NFA on the
		// empty trace at minimum.
		if d.Accepts(nil) != n.Accepts(nil) {
			t.Fatalf("determinize changed nullability of %q", src)
		}
	})
}

// FuzzMinimize: Hopcroft under a budget (cancellation-gated) is total
// and preserves acceptance of a probe trace.
func FuzzMinimize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := regex.Parse(src)
		if err != nil {
			return
		}
		ctx := fuzzBudget()
		d, err := FromRegexDerivativesCtx(ctx, r)
		if !okOrBudget(t, "derivatives", err) {
			return
		}
		m, err := d.MinimizeCtx(ctx)
		if !okOrBudget(t, "minimize", err) {
			return
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("minimize grew %q: %d -> %d states", src, d.NumStates(), m.NumStates())
		}
		if m.Accepts(nil) != d.Accepts(nil) {
			t.Fatalf("minimize changed nullability of %q", src)
		}
	})
}

// FuzzIntersect: budgeted products over two fuzzed languages are total.
func FuzzIntersect(f *testing.F) {
	for i, s := range fuzzSeeds {
		f.Add(s, fuzzSeeds[(i+3)%len(fuzzSeeds)])
	}
	f.Fuzz(func(t *testing.T, srcA, srcB string) {
		ra, err := regex.Parse(srcA)
		if err != nil {
			return
		}
		rb, err := regex.Parse(srcB)
		if err != nil {
			return
		}
		ctx := fuzzBudget()
		da, err := FromRegexDerivativesCtx(ctx, ra)
		if !okOrBudget(t, "derivatives A", err) {
			return
		}
		db, err := FromRegexDerivativesCtx(ctx, rb)
		if !okOrBudget(t, "derivatives B", err) {
			return
		}
		p, err := IntersectCtx(ctx, da, db)
		if !okOrBudget(t, "intersect", err) {
			return
		}
		if p.Accepts(nil) != (da.Accepts(nil) && db.Accepts(nil)) {
			t.Fatalf("intersect changed nullability for %q ∩ %q", srcA, srcB)
		}
	})
}

// FuzzToRegex: state elimination under regex-size and state budgets is
// total, and a successful round trip preserves nullability.
func FuzzToRegex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := regex.Parse(src)
		if err != nil {
			return
		}
		ctx := fuzzBudget()
		d, err := CompileMinimalCtx(ctx, r)
		if !okOrBudget(t, "compile", err) {
			return
		}
		back, err := d.ToRegexCtx(ctx)
		if !okOrBudget(t, "to-regex", err) {
			return
		}
		d2, err := CompileMinimalCtx(context.Background(), back)
		if err != nil {
			t.Fatalf("recompiling ToRegex output of %q: %v", src, err)
		}
		if d2.Accepts(nil) != d.Accepts(nil) {
			t.Fatalf("round trip changed nullability of %q", src)
		}
	})
}

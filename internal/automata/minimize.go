package automata

import (
	"context"
	"sort"

	"github.com/shelley-go/shelley/internal/budget"
)

// Minimize returns the minimal DFA for the language of d, using
// Hopcroft's partition-refinement algorithm on the completed automaton,
// then trimming the dead partition back out. The result's states are
// numbered in BFS order from the start state, so minimization is
// canonical: two equivalent DFAs minimize to identical automata up to
// this numbering.
func (d *DFA) Minimize() *DFA {
	m, _ := d.MinimizeCtx(context.Background())
	return m
}

// MinimizeCtx is Minimize with cancellation observed between
// refinement passes. Minimization is polynomial in an input whose size
// the construction budgets already bound, so no state budget applies
// here; the gate only makes an expired deadline stop the worklist.
func (d *DFA) MinimizeCtx(ctx context.Context) (*DFA, error) {
	gate := budget.NewGate(ctx, "minimize", "", 0)
	t := d.Complete()
	n := t.NumStates()
	if n == 0 {
		return d.Clone(), nil
	}

	// Inverse transition table: for each symbol, for each state, the
	// states mapping into it.
	nsym := len(t.alphabet)
	inv := make([][][]int, nsym)
	for si := 0; si < nsym; si++ {
		inv[si] = make([][]int, n)
	}
	for s := 0; s < n; s++ {
		for si := 0; si < nsym; si++ {
			to := t.trans[s][si]
			inv[si][to] = append(inv[si][to], s)
		}
	}

	// Initial partition: accepting vs non-accepting.
	partOf := make([]int, n)
	var accepting, rejecting []int
	for s := 0; s < n; s++ {
		if t.accept[s] {
			accepting = append(accepting, s)
		} else {
			rejecting = append(rejecting, s)
		}
	}
	var blocks [][]int
	addBlock := func(members []int) int {
		id := len(blocks)
		blocks = append(blocks, members)
		for _, s := range members {
			partOf[s] = id
		}
		return id
	}
	if len(rejecting) > 0 {
		addBlock(rejecting)
	}
	if len(accepting) > 0 {
		addBlock(accepting)
	}

	// Worklist of (block id, symbol) splitters, seeded with every
	// initial block (see the note on enqueueing both halves below).
	type splitter struct{ block, sym int }
	var work []splitter
	for b := range blocks {
		for si := 0; si < nsym; si++ {
			work = append(work, splitter{block: b, sym: si})
		}
	}

	for len(work) > 0 {
		if err := gate.Tick(); err != nil {
			return nil, err
		}
		sp := work[len(work)-1]
		work = work[:len(work)-1]

		// X = states with a transition on sym into the splitter block.
		inX := make(map[int]struct{})
		for _, target := range blocks[sp.block] {
			for _, src := range inv[sp.sym][target] {
				inX[src] = struct{}{}
			}
		}
		if len(inX) == 0 {
			continue
		}

		// Find blocks split by X.
		touched := make(map[int][]int) // block id -> members in X
		for s := range inX {
			b := partOf[s]
			touched[b] = append(touched[b], s)
		}
		blockIDs := make([]int, 0, len(touched))
		for b := range touched {
			blockIDs = append(blockIDs, b)
		}
		sort.Ints(blockIDs)

		for _, b := range blockIDs {
			intersection := touched[b]
			if len(intersection) == len(blocks[b]) {
				continue // not split
			}
			// difference = blocks[b] \ intersection
			inInter := make(map[int]struct{}, len(intersection))
			for _, s := range intersection {
				inInter[s] = struct{}{}
			}
			var difference []int
			for _, s := range blocks[b] {
				if _, ok := inInter[s]; !ok {
					difference = append(difference, s)
				}
			}
			sort.Ints(intersection)
			blocks[b] = intersection
			newID := addBlock(difference)

			// Hopcroft's refinement enqueues only the smaller half when
			// the worklist tracks membership (a pending (B, σ) must be
			// replaced by both halves). We do not track membership, so
			// enqueue both halves — still correct, and the blocks are
			// small enough here that the extra passes are cheap.
			for si := 0; si < nsym; si++ {
				work = append(work, splitter{block: b, sym: si})
				work = append(work, splitter{block: newID, sym: si})
			}
		}
	}

	// Build the quotient automaton.
	out := NewDFA(t.alphabet)
	blockState := make([]int, len(blocks))
	for i := range blockState {
		blockState[i] = -1
	}
	startBlock := partOf[t.start]
	blockState[startBlock] = out.Start()
	out.SetAccepting(out.Start(), t.accept[t.start])
	queue := []int{startBlock}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		rep := blocks[b][0]
		for si := 0; si < nsym; si++ {
			tb := partOf[t.trans[rep][si]]
			if blockState[tb] < 0 {
				blockState[tb] = out.AddState(t.accept[blocks[tb][0]])
				queue = append(queue, tb)
			}
			out.setTransition(blockState[b], si, blockState[tb])
		}
	}
	return trimDead(out), nil
}

// trimDead removes states from which no accepting state is reachable,
// replacing their transitions with the implicit dead sink (-1).
func trimDead(d *DFA) *DFA {
	n := d.NumStates()
	// Reverse reachability from accepting states.
	radj := make([][]int, n)
	for s := 0; s < n; s++ {
		for _, t := range d.trans[s] {
			if t >= 0 {
				radj[t] = append(radj[t], s)
			}
		}
	}
	live := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if d.accept[s] {
			live[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[s] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}

	out := NewDFA(d.alphabet)
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	out.SetAccepting(out.Start(), d.accept[d.start])
	remap[d.start] = out.Start()
	queue := []int{d.start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for si, t := range d.trans[s] {
			if t < 0 || !live[t] {
				continue
			}
			if remap[t] < 0 {
				remap[t] = out.AddState(d.accept[t])
				queue = append(queue, t)
			}
			out.setTransition(remap[s], si, remap[t])
		}
	}
	return out
}

// Package automata provides nondeterministic and deterministic finite
// automata over string-labelled alphabets (operation names such as
// "a.open"), together with the standard constructions the Shelley
// pipeline needs:
//
//   - regex → NFA (Thompson and Glushkov constructions),
//   - regex → DFA directly via Brzozowski derivatives,
//   - NFA → DFA (subset construction),
//   - DFA minimization (Hopcroft's algorithm),
//   - boolean combinations (product construction), complement,
//   - emptiness, shortest accepted word (deterministic BFS — the source
//     of the reproducible counterexamples in the paper's error output),
//   - language equivalence with distinguishing witnesses,
//   - DFA → regex (state elimination), realizing Corollary 1 round trips.
//
// States are dense integers. All iteration orders are made deterministic
// (alphabets sorted, transition targets sorted) so that every diagnostic
// this library produces is stable across runs.
package automata

import (
	"context"
	"fmt"
	"sort"

	"github.com/shelley-go/shelley/internal/budget"
)

// NFA is a nondeterministic finite automaton with ε-transitions and a
// single start state. The zero value is not meaningful; use NewNFA.
type NFA struct {
	alphabet []string        // sorted symbol names
	symIndex map[string]int  // symbol -> index in alphabet
	trans    []map[int][]int // state -> symbol index -> sorted targets
	eps      [][]int         // state -> sorted ε-targets
	accept   []bool          // state -> accepting
	start    int
}

// NewNFA returns an empty NFA (one non-accepting start state, no
// transitions) over the given alphabet. Duplicate symbols are removed.
func NewNFA(alphabet []string) *NFA {
	n := &NFA{symIndex: make(map[string]int)}
	seen := make(map[string]struct{}, len(alphabet))
	for _, s := range alphabet {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		n.alphabet = append(n.alphabet, s)
	}
	sort.Strings(n.alphabet)
	for i, s := range n.alphabet {
		n.symIndex[s] = i
	}
	n.start = n.AddState(false)
	return n
}

// Alphabet returns the automaton's alphabet in sorted order. The caller
// must not mutate the returned slice.
func (n *NFA) Alphabet() []string { return n.alphabet }

// Start returns the start state.
func (n *NFA) Start() int { return n.start }

// SetStart changes the start state.
func (n *NFA) SetStart(s int) { n.start = s }

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.trans) }

// Accepting reports whether state s accepts.
func (n *NFA) Accepting(s int) bool { return n.accept[s] }

// SetAccepting marks state s as accepting or not.
func (n *NFA) SetAccepting(s int, accepting bool) { n.accept[s] = accepting }

// AddState adds a fresh state and returns its id.
func (n *NFA) AddState(accepting bool) int {
	n.trans = append(n.trans, make(map[int][]int))
	n.eps = append(n.eps, nil)
	n.accept = append(n.accept, accepting)
	return len(n.trans) - 1
}

// AddTransition adds from --sym--> to. The symbol must belong to the
// alphabet; an unknown symbol is reported as an error rather than being
// added silently.
func (n *NFA) AddTransition(from int, sym string, to int) error {
	si, ok := n.symIndex[sym]
	if !ok {
		return fmt.Errorf("automata: symbol %q not in alphabet %v", sym, n.alphabet)
	}
	n.trans[from][si] = insertSorted(n.trans[from][si], to)
	return nil
}

// AddEpsilon adds an ε-transition from --ε--> to.
func (n *NFA) AddEpsilon(from, to int) {
	n.eps[from] = insertSorted(n.eps[from], to)
}

// Targets returns the states reachable from s on sym (no ε-closure).
// The caller must not mutate the returned slice.
func (n *NFA) Targets(s int, sym string) []int {
	si, ok := n.symIndex[sym]
	if !ok {
		return nil
	}
	return n.trans[s][si]
}

// EpsilonClosure returns the ε-closure of the given states, sorted.
func (n *NFA) EpsilonClosure(states []int) []int {
	seen := make(map[int]struct{}, len(states))
	stack := append([]int(nil), states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		stack = append(stack, n.eps[s]...)
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Accepts reports whether the NFA accepts the trace, by on-the-fly
// subset simulation.
func (n *NFA) Accepts(trace []string) bool {
	current := n.EpsilonClosure([]int{n.start})
	for _, sym := range trace {
		si, ok := n.symIndex[sym]
		if !ok {
			return false
		}
		next := make(map[int]struct{})
		for _, s := range current {
			for _, t := range n.trans[s][si] {
				next[t] = struct{}{}
			}
		}
		if len(next) == 0 {
			return false
		}
		flat := make([]int, 0, len(next))
		for s := range next {
			flat = append(flat, s)
		}
		current = n.EpsilonClosure(flat)
	}
	for _, s := range current {
		if n.accept[s] {
			return true
		}
	}
	return false
}

// Determinize performs the subset construction, producing a DFA that
// accepts the same language. The result has no unreachable states; it is
// not necessarily minimal. Unbounded: subset construction is worst-case
// exponential, so callers handling untrusted input should use
// DeterminizeCtx with a budget instead.
func (n *NFA) Determinize() *DFA {
	d, _ := n.DeterminizeCtx(context.Background())
	return d
}

// DeterminizeCtx is Determinize bounded by the context's resource
// budget: it stops with a structured budget.Err once the subset
// automaton passes MaxDFAStates, and with a budget.CancelErr when ctx
// is canceled (deadline, client disconnect), so a request that times
// out actually releases its worker instead of finishing the blowup.
func (n *NFA) DeterminizeCtx(ctx context.Context) (*DFA, error) {
	gate := budget.DFAGate(ctx, "determinize")
	d := NewDFA(n.alphabet)

	startSet := n.EpsilonClosure([]int{n.start})
	ids := map[string]int{}
	key := func(set []int) string {
		k := make([]byte, 0, len(set)*3)
		for _, s := range set {
			k = append(k, byte(s>>16), byte(s>>8), byte(s))
		}
		return string(k)
	}
	isAccepting := func(set []int) bool {
		for _, s := range set {
			if n.accept[s] {
				return true
			}
		}
		return false
	}

	type work struct {
		id  int
		set []int
	}
	d.SetAccepting(d.Start(), isAccepting(startSet))
	ids[key(startSet)] = d.Start()
	queue := []work{{id: d.Start(), set: startSet}}
	if err := gate.Tick(); err != nil {
		return nil, err
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for si := range n.alphabet {
			var union []int
			seen := make(map[int]struct{})
			for _, s := range cur.set {
				for _, t := range n.trans[s][si] {
					if _, ok := seen[t]; !ok {
						seen[t] = struct{}{}
						union = append(union, t)
					}
				}
			}
			if len(union) == 0 {
				continue
			}
			closed := n.EpsilonClosure(union)
			k := key(closed)
			id, ok := ids[k]
			if !ok {
				if err := gate.Tick(); err != nil {
					return nil, err
				}
				id = d.AddState(isAccepting(closed))
				ids[k] = id
				queue = append(queue, work{id: id, set: closed})
			}
			d.setTransition(cur.id, si, id)
		}
	}
	return d, nil
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

package automata

import (
	"context"
	"sort"

	"github.com/shelley-go/shelley/internal/budget"
)

// Boolean combinations of DFA languages via the product construction,
// plus language comparisons with distinguishing witnesses. Products are
// computed over the *union* of the two alphabets; a DFA implicitly
// rejects any trace mentioning a symbol outside its own alphabet, which
// matches how Shelley composes subsystems with disjoint operation sets.

// BoolOp combines the acceptance bits of the two operands.
type BoolOp func(a, b bool) bool

// Product returns a DFA over the union alphabet accepting exactly the
// traces t with op(a accepts t, b accepts t). Unbounded; use ProductCtx
// on untrusted input.
func Product(a, b *DFA, op BoolOp) *DFA {
	d, _ := ProductCtx(context.Background(), a, b, op)
	return d
}

// ProductCtx is Product bounded by the context's resource budget
// (MaxDFAStates on the product's state count) and its cancellation:
// product state spaces are multiplicative, so two modest operands can
// make an enormous product, and the gate stops the construction at the
// budget instead of after it.
func ProductCtx(ctx context.Context, a, b *DFA, op BoolOp) (*DFA, error) {
	gate := budget.DFAGate(ctx, "product")
	alphabet := unionAlphabet(a, b)
	// Complete both over the union alphabet so that every pair is total.
	ta := a.extendAlphabet(alphabet).Complete()
	tb := b.extendAlphabet(alphabet).Complete()

	out := NewDFA(alphabet)
	type pair struct{ a, b int }
	ids := map[pair]int{{ta.start, tb.start}: out.Start()}
	out.SetAccepting(out.Start(), op(ta.accept[ta.start], tb.accept[tb.start]))
	queue := []pair{{ta.start, tb.start}}
	if err := gate.Tick(); err != nil {
		return nil, err
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		from := ids[cur]
		for si := range alphabet {
			np := pair{ta.trans[cur.a][si], tb.trans[cur.b][si]}
			id, ok := ids[np]
			if !ok {
				if err := gate.Tick(); err != nil {
					return nil, err
				}
				id = out.AddState(op(ta.accept[np.a], tb.accept[np.b]))
				ids[np] = id
				queue = append(queue, np)
			}
			out.setTransition(from, si, id)
		}
	}
	return trimDead(out), nil
}

// Intersect returns a DFA for L(a) ∩ L(b).
func Intersect(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x && y })
}

// IntersectCtx is Intersect under the context's budget.
func IntersectCtx(ctx context.Context, a, b *DFA) (*DFA, error) {
	return ProductCtx(ctx, a, b, func(x, y bool) bool { return x && y })
}

// UnionDFA returns a DFA for L(a) ∪ L(b).
func UnionDFA(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a DFA for L(a) \ L(b).
func Difference(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x && !y })
}

// SymmetricDifference returns a DFA for L(a) Δ L(b).
func SymmetricDifference(a, b *DFA) *DFA {
	return Product(a, b, func(x, y bool) bool { return x != y })
}

// Equivalent reports whether L(a) = L(b).
func Equivalent(a, b *DFA) bool {
	_, eq := Distinguish(a, b)
	return eq
}

// Distinguish returns (nil, true) when L(a) = L(b), or a shortest trace
// on which they disagree and false otherwise.
func Distinguish(a, b *DFA) ([]string, bool) {
	diff := SymmetricDifference(a, b)
	if w, ok := diff.ShortestAccepted(); ok {
		return w, false
	}
	return nil, true
}

// SubsetDFA reports whether L(a) ⊆ L(b); when it is not, the second
// return value is a shortest witness in L(a) \ L(b).
func SubsetDFA(a, b *DFA) (bool, []string) {
	if w, ok := Difference(a, b).ShortestAccepted(); ok {
		return false, w
	}
	return true, nil
}

// extendAlphabet returns a DFA over the (sorted) superset alphabet with
// the same transitions; new symbols have no transitions (dead).
func (d *DFA) extendAlphabet(alphabet []string) *DFA {
	if len(alphabet) == len(d.alphabet) {
		same := true
		for i := range alphabet {
			if alphabet[i] != d.alphabet[i] {
				same = false
				break
			}
		}
		if same {
			return d
		}
	}
	out := NewDFA(alphabet)
	for s := 1; s < d.NumStates(); s++ {
		out.AddState(false)
	}
	for s := 0; s < d.NumStates(); s++ {
		out.SetAccepting(s, d.accept[s])
		for si, t := range d.trans[s] {
			if t < 0 {
				continue
			}
			_ = out.AddTransition(s, d.alphabet[si], t)
		}
	}
	out.start = d.start
	return out
}

func unionAlphabet(a, b *DFA) []string {
	seen := make(map[string]struct{}, len(a.alphabet)+len(b.alphabet))
	var out []string
	for _, s := range a.alphabet {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	for _, s := range b.alphabet {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// EnumerateAccepted returns every accepted trace of length at most
// maxLen in shortlex order. It is used by tests to cross-validate the
// automata constructions against the regex enumerator.
func (d *DFA) EnumerateAccepted(maxLen int) [][]string {
	type node struct {
		state int
		trace []string
	}
	var out [][]string
	frontier := []node{{state: d.start}}
	for depth := 0; ; depth++ {
		for _, n := range frontier {
			if d.accept[n.state] {
				out = append(out, n.trace)
			}
		}
		if depth == maxLen || len(frontier) == 0 {
			break
		}
		var next []node
		for _, n := range frontier {
			for si, sym := range d.alphabet {
				t := d.trans[n.state][si]
				if t < 0 {
					continue
				}
				trace := make([]string, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = sym
				next = append(next, node{state: t, trace: trace})
			}
		}
		frontier = next
	}
	return out
}

package automata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/shelley-go/shelley/internal/regex"
)

// Property-based tests (testing/quick) of the boolean algebra of
// regular languages as realized by the DFA operations.

type dfaPair struct {
	a, b *DFA
	r1   regex.Regex
	r2   regex.Regex
}

func (dfaPair) Generate(rng *rand.Rand, _ int) reflect.Value {
	r1 := randomRegex(rng, 3)
	r2 := randomRegex(rng, 3)
	return reflect.ValueOf(dfaPair{
		a:  CompileMinimal(r1),
		b:  CompileMinimal(r2),
		r1: r1,
		r2: r2,
	})
}

var quickTraces = allTraces([]string{"a", "b", "c"}, 3)

func TestQuickProductImplementsBooleanAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(p dfaPair) bool {
		inter := Intersect(p.a, p.b)
		union := UnionDFA(p.a, p.b)
		diff := Difference(p.a, p.b)
		sym := SymmetricDifference(p.a, p.b)
		for _, tr := range quickTraces {
			ia, ib := p.a.Accepts(tr), p.b.Accepts(tr)
			if inter.Accepts(tr) != (ia && ib) {
				return false
			}
			if union.Accepts(tr) != (ia || ib) {
				return false
			}
			if diff.Accepts(tr) != (ia && !ib) {
				return false
			}
			if sym.Accepts(tr) != (ia != ib) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(p dfaPair) bool {
		// a ∪ b = ¬(¬a ∩ ¬b). Complement is alphabet-relative, so both
		// operands are first extended to the common union alphabet.
		alpha := unionAlphabet(p.a, p.b)
		pa := p.a.extendAlphabet(alpha)
		pb := p.b.extendAlphabet(alpha)
		lhs := UnionDFA(pa, pb)
		rhs := Intersect(pa.Complement(), pb.Complement()).Complement()
		for _, tr := range allTraces(alpha, 3) {
			if lhs.Accepts(tr) != rhs.Accepts(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDoubleComplement(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(p dfaPair) bool {
		cc := p.a.Complement().Complement()
		for _, tr := range quickTraces {
			if cc.Accepts(tr) != p.a.Accepts(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimizeIdempotentAndCanonical(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(p dfaPair) bool {
		m1 := p.a.Minimize()
		m2 := m1.Minimize()
		if !sameDFA(m1, m2) {
			return false
		}
		// Minimization of an equivalent automaton built differently
		// yields the same structure.
		alt := FromRegexThompson(p.r1).Determinize().Minimize()
		return sameDFA(m1, alt)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalentMatchesTraceComparison(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(p dfaPair) bool {
		w, eq := Distinguish(p.a, p.b)
		if eq {
			for _, tr := range quickTraces {
				if p.a.Accepts(tr) != p.b.Accepts(tr) {
					return false
				}
			}
			return true
		}
		return p.a.Accepts(w) != p.b.Accepts(w)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(p dfaPair) bool {
		ok, w := SubsetDFA(p.a, p.b)
		if ok {
			for _, tr := range quickTraces {
				if p.a.Accepts(tr) && !p.b.Accepts(tr) {
					return false
				}
			}
			return true
		}
		return p.a.Accepts(w) && !p.b.Accepts(w)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickToRegexPreservesLanguage(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(p dfaPair) bool {
		back := p.a.ToRegex()
		for _, tr := range quickTraces {
			if regex.Match(back, tr) != p.a.Accepts(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickShortestAcceptedIsShortestAndAccepted(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(p dfaPair) bool {
		w, ok := p.a.ShortestAccepted()
		if !ok {
			// Language empty: nothing up to the bound may be accepted.
			for _, tr := range quickTraces {
				if p.a.Accepts(tr) {
					return false
				}
			}
			return true
		}
		if !p.a.Accepts(w) {
			return false
		}
		for _, tr := range quickTraces {
			if len(tr) < len(w) && p.a.Accepts(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package automata

import "math/rand"

// RandomAccepted samples a uniformly-ish random accepted trace with
// length at most maxLen, or returns false when no accepted trace of
// that length exists. The walk only follows transitions from which an
// accepting state is still reachable within the remaining budget, so
// sampling never dead-ends; at each step the walker stops (when the
// current state accepts) or continues with probability proportional to
// the available choices.
//
// The workload generators of the benchmark harness use this to drive
// simulators with valid usage traces.
func (d *DFA) RandomAccepted(rng *rand.Rand, maxLen int) ([]string, bool) {
	// viable[k][s]: an accepting state is reachable from s within k steps.
	viable := make([][]bool, maxLen+1)
	viable[0] = make([]bool, d.NumStates())
	for s := 0; s < d.NumStates(); s++ {
		viable[0][s] = d.accept[s]
	}
	for k := 1; k <= maxLen; k++ {
		viable[k] = make([]bool, d.NumStates())
		for s := 0; s < d.NumStates(); s++ {
			if viable[k-1][s] {
				viable[k][s] = true
				continue
			}
			for _, t := range d.trans[s] {
				if t >= 0 && viable[k-1][t] {
					viable[k][s] = true
					break
				}
			}
		}
	}
	if !viable[maxLen][d.start] {
		return nil, false
	}

	var out []string
	s := d.start
	for budget := maxLen; ; budget-- {
		type choice struct {
			sym string
			to  int
		}
		var continuations []choice
		if budget > 0 {
			for si, sym := range d.alphabet {
				t := d.trans[s][si]
				if t >= 0 && viable[budget-1][t] {
					continuations = append(continuations, choice{sym: sym, to: t})
				}
			}
		}
		options := len(continuations)
		if d.accept[s] {
			options++
		}
		pick := rng.Intn(options)
		if d.accept[s] && pick == options-1 {
			return out, true
		}
		c := continuations[pick]
		out = append(out, c.sym)
		s = c.to
	}
}

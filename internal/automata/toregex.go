package automata

import (
	"context"

	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/regex"
)

// ToRegex converts the DFA into a regular expression denoting the same
// language, by state elimination on a generalized NFA (GNFA). Together
// with CompileMinimal this realizes the Corollary 1 round trip
// regex → DFA → regex used by the C1 experiment.
//
// Elimination proceeds in increasing state order, which keeps the output
// deterministic. Edge expressions are built with the normalizing
// constructors, so trivial sublanguages collapse as they appear.
//
// Unbounded: state elimination can square edge-expression sizes per
// eliminated state, so callers handling untrusted input should use
// ToRegexCtx with a budget instead.
func (d *DFA) ToRegex() regex.Regex {
	r, _ := d.ToRegexCtx(context.Background())
	return r
}

// ToRegexCtx is ToRegex bounded by the context's resource budget: it
// stops with a structured budget.Err as soon as any intermediate edge
// expression grows past MaxRegexSize (checked with regex.SizeWithin, so
// the check itself never walks more than the budget), and observes
// cancellation once per eliminated state.
func (d *DFA) ToRegexCtx(ctx context.Context) (regex.Regex, error) {
	gate := budget.NewGate(ctx, "to-regex", "regex-size", 0)
	maxSize := budget.From(ctx).MaxRegexSize

	n := d.NumStates()
	// GNFA states: 0..n-1 original, n = super-start, n+1 = super-accept.
	superStart, superAccept := n, n+1
	total := n + 2

	edge := make([][]regex.Regex, total)
	for i := range edge {
		edge[i] = make([]regex.Regex, total)
		for j := range edge[i] {
			edge[i][j] = regex.Empty()
		}
	}
	for s := 0; s < n; s++ {
		for si, t := range d.trans[s] {
			if t < 0 {
				continue
			}
			edge[s][t] = regex.Union(edge[s][t], regex.Symbol(d.alphabet[si]))
		}
		if d.accept[s] {
			edge[s][superAccept] = regex.Epsilon()
		}
	}
	edge[superStart][d.start] = regex.Epsilon()

	alive := make([]bool, total)
	for i := range alive {
		alive[i] = true
	}
	for k := 0; k < n; k++ { // eliminate original states only
		loop := regex.Star(edge[k][k])
		for i := 0; i < total; i++ {
			if !alive[i] || i == k || regex.IsEmptyLanguage(edge[i][k]) {
				continue
			}
			if err := gate.Tick(); err != nil {
				return nil, err
			}
			for j := 0; j < total; j++ {
				if !alive[j] || j == k || regex.IsEmptyLanguage(edge[k][j]) {
					continue
				}
				detour := regex.Concat(edge[i][k], loop, edge[k][j])
				edge[i][j] = regex.Union(edge[i][j], detour)
				if !regex.SizeWithin(edge[i][j], maxSize) {
					return nil, budget.Exceeded(ctx, "to-regex", "regex-size", maxSize)
				}
			}
		}
		alive[k] = false
	}
	return edge[superStart][superAccept], nil
}

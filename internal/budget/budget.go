// Package budget makes verification resource consumption explicit and
// enforceable. Corollary 1 guarantees inferred behavior is regular, but
// regular does not mean small: subset construction, product
// construction, LTLf progression, and state elimination are all
// worst-case exponential, so a hostile (or merely unlucky) class can
// pin a worker and grow memory without bound. This package bounds that
// work with per-request limits that ride the context.Context already
// threaded through the pipeline:
//
//   - Limits caps the states, regex nodes, and search nodes any single
//     construction may allocate; the zero value means unlimited.
//   - With/From attach limits to and read limits from a context, so
//     budgets flow through the memoizing pipeline the same way spans do.
//   - Gate is the amortized enforcement point hot loops call once per
//     unit of work: it trips a structured *Err when the counter passes
//     the limit and polls ctx cancellation every pollEvery ticks, so a
//     fired deadline actually stops the construction instead of merely
//     timing out the response.
//
// A tripped gate annotates the active obs span, so trace exports show
// exactly which construction a request died in.
package budget

import (
	"context"
	"errors"
	"fmt"

	"github.com/shelley-go/shelley/internal/obs"
)

// Limits bounds the resources one verification request may consume.
// The zero value means unlimited (the library default: behavior is
// byte-identical to the pre-budget pipeline).
type Limits struct {
	// MaxNFAStates caps the states of any single NFA construction
	// (Thompson fragments, flatten substitution).
	MaxNFAStates int

	// MaxDFAStates caps the states of any single DFA construction:
	// subset construction, Brzozowski derivatives, product
	// construction, and LTLf progression.
	MaxDFAStates int

	// MaxRegexSize caps the node count of any regex built by state
	// elimination or produced as a derivative.
	MaxRegexSize int

	// MaxSearchNodes caps the (state-pair) nodes visited by
	// counterexample searches (usage and claim BFS products).
	MaxSearchNodes int
}

// Default returns the production limits shelleyd ships with: generous
// enough for every legitimate class in the corpus, small enough that a
// blowup dies in bounded time and memory.
func Default() Limits {
	return Limits{
		MaxNFAStates:   500_000,
		MaxDFAStates:   100_000,
		MaxRegexSize:   500_000,
		MaxSearchNodes: 2_000_000,
	}
}

// Unlimited reports whether l imposes no limits at all.
func (l Limits) Unlimited() bool { return l == Limits{} }

// Key returns a short canonical encoding of the limits for use in
// content-addressed cache keys, so a result computed under one budget
// is never served to a request with another: a build that failed with
// ErrBudgetExceeded is cached deterministically for its budget, and a
// retry with a larger budget hashes to a fresh key and can succeed.
// Unlimited limits encode as "" (pre-budget keys are unchanged).
// Cache layers key each stage by the projection of the limits onto the
// resources that stage can consume (zeroing the rest before calling
// Key), so entries don't fragment on limits that cannot affect them —
// e.g. two requests differing only in MaxSearchNodes share DFAs.
func (l Limits) Key() string {
	if l.Unlimited() {
		return ""
	}
	return fmt.Sprintf("b%d,%d,%d,%d", l.MaxNFAStates, l.MaxDFAStates, l.MaxRegexSize, l.MaxSearchNodes)
}

type ctxKey struct{}

// With returns a context carrying the limits; every budget-aware
// construction downstream reads them with From.
func With(ctx context.Context, l Limits) context.Context {
	return context.WithValue(ctx, ctxKey{}, l)
}

// From returns the limits carried by ctx, or the zero (unlimited)
// Limits when none are attached.
func From(ctx context.Context) Limits {
	if l, ok := ctx.Value(ctxKey{}).(Limits); ok {
		return l
	}
	return Limits{}
}

// ErrExceeded is the sentinel matched by errors.Is for every *Err, so
// callers can classify budget exhaustion without knowing which
// resource tripped.
var ErrExceeded = errors.New("resource budget exceeded")

// ErrCanceled is the sentinel matched by errors.Is for every
// *CancelErr, alongside the underlying context cause.
var ErrCanceled = errors.New("verification canceled")

// Err is a structured budget-exceeded report: which resource, which
// construction, and the limit that tripped. It satisfies
// errors.Is(err, ErrExceeded).
type Err struct {
	// Resource names what ran out: "nfa-states", "dfa-states",
	// "regex-size", or "search-nodes".
	Resource string

	// Op names the construction that tripped, e.g. "determinize",
	// "product", "to-regex", "ltlf-compile", "claim-search".
	Op string

	// Limit is the configured bound that was exceeded.
	Limit int
}

func (e *Err) Error() string {
	return fmt.Sprintf("budget: %s limit %d exceeded during %s", e.Resource, e.Limit, e.Op)
}

// Is matches the ErrExceeded sentinel.
func (e *Err) Is(target error) bool { return target == ErrExceeded }

// CancelErr reports which construction a context cancellation (deadline
// or explicit cancel) interrupted. It satisfies errors.Is against
// ErrCanceled and against the underlying context error
// (context.Canceled / context.DeadlineExceeded) via Unwrap.
type CancelErr struct {
	// Op names the construction that observed the cancellation.
	Op string

	// Cause is the context error that fired.
	Cause error
}

func (e *CancelErr) Error() string {
	return fmt.Sprintf("budget: %s canceled: %v", e.Op, e.Cause)
}

// Unwrap exposes the context error for errors.Is.
func (e *CancelErr) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel.
func (e *CancelErr) Is(target error) bool { return target == ErrCanceled }

// pollEvery amortizes ctx.Err() lookups: hot loops tick once per state
// or node, and a context read per tick would dominate small builds.
const pollEvery = 256

// Gate enforces one resource limit inside one construction. Create one
// per algorithm invocation with NFAGate/DFAGate/SearchGate (or NewGate
// for a custom bound) and call Tick once per unit of work; the zero
// limit disables the counter but cancellation is still polled.
type Gate struct {
	ctx      context.Context
	op       string
	resource string
	limit    int
	n        int
}

// NewGate returns a gate over an explicit limit. op and resource label
// the structured error; limit <= 0 counts nothing (cancellation only).
func NewGate(ctx context.Context, op, resource string, limit int) *Gate {
	return &Gate{ctx: ctx, op: op, resource: resource, limit: limit}
}

// NFAGate gates NFA state allocation against ctx's MaxNFAStates.
func NFAGate(ctx context.Context, op string) *Gate {
	return NewGate(ctx, op, "nfa-states", From(ctx).MaxNFAStates)
}

// DFAGate gates DFA state allocation against ctx's MaxDFAStates.
func DFAGate(ctx context.Context, op string) *Gate {
	return NewGate(ctx, op, "dfa-states", From(ctx).MaxDFAStates)
}

// SearchGate gates search-node visits against ctx's MaxSearchNodes.
func SearchGate(ctx context.Context, op string) *Gate {
	return NewGate(ctx, op, "search-nodes", From(ctx).MaxSearchNodes)
}

// Tick accounts one unit of work. It returns a *Err once the counter
// passes the limit, a *CancelErr once the context is done (polled every
// pollEvery ticks, and on the first), and nil otherwise. Both error
// paths annotate the active obs span so trace exports show where the
// request died.
func (g *Gate) Tick() error {
	g.n++
	if g.limit > 0 && g.n > g.limit {
		return Exceeded(g.ctx, g.op, g.resource, g.limit)
	}
	if g.n%pollEvery == 1 {
		if cause := g.ctx.Err(); cause != nil {
			obs.SpanFrom(g.ctx).SetAttr(obs.String("budget.canceled", g.op))
			return &CancelErr{Op: g.op, Cause: cause}
		}
	}
	return nil
}

// N returns the units of work accounted so far.
func (g *Gate) N() int { return g.n }

// Exceeded builds the structured budget error and annotates ctx's
// active span the way a tripped Gate does. Constructions that enforce a
// limit without counting (e.g. the regex-size check in state
// elimination) call it directly.
func Exceeded(ctx context.Context, op, resource string, limit int) error {
	obs.SpanFrom(ctx).SetAttr(
		obs.String("budget.exceeded", resource),
		obs.String("budget.op", op),
		obs.Int("budget.limit", limit))
	return &Err{Resource: resource, Op: op, Limit: limit}
}

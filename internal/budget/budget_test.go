package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFromDefaultsToUnlimited(t *testing.T) {
	if l := From(context.Background()); !l.Unlimited() {
		t.Fatalf("background context carries limits %+v", l)
	}
	want := Limits{MaxDFAStates: 7}
	if got := From(With(context.Background(), want)); got != want {
		t.Fatalf("From(With(...)) = %+v, want %+v", got, want)
	}
}

func TestKeyDistinguishesBudgets(t *testing.T) {
	if k := (Limits{}).Key(); k != "" {
		t.Fatalf("unlimited key = %q, want empty", k)
	}
	a := Limits{MaxDFAStates: 10}.Key()
	b := Limits{MaxDFAStates: 20}.Key()
	if a == b || a == "" || b == "" {
		t.Fatalf("keys do not distinguish budgets: %q vs %q", a, b)
	}
	if Default().Key() != Default().Key() {
		t.Fatal("key is not deterministic")
	}
}

func TestGateTripsStructuredError(t *testing.T) {
	ctx := With(context.Background(), Limits{MaxDFAStates: 3})
	g := DFAGate(ctx, "determinize")
	for i := 0; i < 3; i++ {
		if err := g.Tick(); err != nil {
			t.Fatalf("tick %d under limit: %v", i, err)
		}
	}
	err := g.Tick()
	if err == nil {
		t.Fatal("gate did not trip past the limit")
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("tripped error %v does not match ErrExceeded", err)
	}
	var be *Err
	if !errors.As(err, &be) || be.Resource != "dfa-states" || be.Op != "determinize" || be.Limit != 3 {
		t.Fatalf("structured error fields wrong: %+v", be)
	}
}

func TestGateObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := SearchGate(ctx, "claim-search")
	err := g.Tick() // first tick polls
	if err == nil {
		t.Fatal("gate ignored a canceled context")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel error %v matches neither ErrCanceled nor context.Canceled", err)
	}
}

func TestGateObservesDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	g := NewGate(ctx, "minimize", "", 0)
	if err := g.Tick(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline not observed: %v", err)
	}
}

func TestZeroLimitCountsNothing(t *testing.T) {
	g := NewGate(context.Background(), "minimize", "", 0)
	for i := 0; i < 10_000; i++ {
		if err := g.Tick(); err != nil {
			t.Fatalf("unlimited gate tripped at %d: %v", i, err)
		}
	}
	if g.N() != 10_000 {
		t.Fatalf("N = %d, want 10000", g.N())
	}
}

package check

import (
	"context"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/regex"
)

// WithCache threads a memoizing pipeline cache through every
// verification pass: whole-class reports, flattened composite automata,
// subsystem protocol automata, behavior DFA compiles, and LTLf claim
// compilation are then looked up by content fingerprint instead of
// being rebuilt. A nil cache (or omitting the option) keeps the passes
// fully uncached; the differential tests in the root package assert the
// two modes byte-identical.
func WithCache(cache *pipeline.Cache) Option {
	return func(c *config) { c.cache = cache }
}

// classKey builds the content-addressed key covering everything the
// analysis of c reads: the class's own fingerprint, the analysis mode,
// the given resource budget (a budget-exceeded report is cached
// deterministically for its budget; a retry with a larger budget is a
// different key and can succeed), and the protocol fingerprint of every
// resolved subsystem class (checkUsage and checkClaims depend on the
// subsystems' protocols, but nothing deeper — not their bodies, and a
// subsystem's own subsystems never enter the analysis of c; keying by
// the protocol projection means a body-only subsystem edit leaves every
// dependent's cached report valid). Callers pass the projection of the
// context's limits onto the resources their stage consumes: the report
// stage passes them whole (its searches gate every limit), the flatten
// stage passes flattenLimits so automata don't fragment on search
// bounds that cannot affect them. ok is false when a subsystem cannot
// be resolved; the analysis then errors on the uncached path.
func classKey(cfg config, c *model.Class, reg Registry, limits budget.Limits) (string, bool) {
	var b strings.Builder
	b.WriteString(c.Fingerprint())
	if cfg.precise {
		b.WriteString("|precise")
	}
	if bk := limits.Key(); bk != "" {
		b.WriteString("|")
		b.WriteString(bk)
	}
	for _, name := range c.SubsystemNames {
		sub, err := reg.resolve(c, name)
		if err != nil {
			return "", false
		}
		b.WriteString("|")
		b.WriteString(name)
		b.WriteString("=")
		b.WriteString(sub.ProtocolFingerprint())
	}
	return b.String(), true
}

// flattenLimits projects l onto the limits flattening can consume: the
// ε-NFA substitution gates nfa-states, its determinization gates
// dfa-states, and the nested behavior compiles gate dfa-states and
// regex-size. Search-node limits only bound the searches that later
// run over the flattened automaton, never the automaton itself, so
// they are excluded from the StageFlatten key — two requests differing
// only in MaxSearchNodes share one flattened automaton.
func flattenLimits(l budget.Limits) budget.Limits {
	l.MaxSearchNodes = 0
	return l
}

// PeekReport returns a clone of c's memoized whole-class report when
// the report stage is already warm: ok is false when the class is
// uncached, unkeyable, still being built, or cached as an error — the
// caller then takes the normal CheckContext path. Unlike the peek in
// CheckContext, a hit is quiet — it does not annotate any span — so
// Module.CheckAllContext can peek every class and report one
// aggregated cache.hit.report count on the caller's span instead of
// one map operation per class (EXPERIMENTS.md P3).
func PeekReport(ctx context.Context, c *model.Class, reg Registry, opts ...Option) (*Report, bool) {
	cfg := buildConfig(opts)
	cfg.ctx = ctx // the budget carried by ctx is part of the report key
	if cfg.cache == nil {
		return nil, false
	}
	key, ok := classKey(cfg, c, reg, budget.From(cfg.ctx))
	if !ok {
		return nil, false
	}
	v, cerr, hit := cfg.cache.PeekQuiet(pipeline.StageReport, key)
	if !hit || cerr != nil {
		return nil, false
	}
	r, ok := v.(*Report)
	if !ok || r == nil {
		return nil, false
	}
	return r.Clone(), true
}

// specDFA returns the class's protocol automaton, memoized under
// StageSpec. Cached automata are shared read-only. The key is the
// protocol fingerprint — SpecDFA reads nothing but the protocol
// surface, so a body-only edit re-uses the cached automaton. Must stay
// consistent with Class.specDFA in the root package (same stage, same
// key scheme, shared entries).
func (cfg config) specDFA(c *model.Class, prefix string) (*automata.DFA, error) {
	return pipeline.MemoCtx(cfg.ctx, cfg.cache, pipeline.StageSpec,
		pipeline.SpecKey(c.ProtocolFingerprint(), prefix),
		func(context.Context) (*automata.DFA, error) { return c.SpecDFA(prefix) })
}

// behaviorDFA compiles the minimal DFA of the simplified behavior of a
// method body, memoized per stage (inference, then compilation), under
// cfg.ctx's resource budget.
func (cfg config) behaviorDFA(p ir.Program) (*automata.DFA, error) {
	return cfg.cache.BehaviorDFA(cfg.ctx, p)
}

// minimalDFA compiles one regular expression, memoized by its
// canonical key, under cfg.ctx's resource budget.
func (cfg config) minimalDFA(r regex.Regex) (*automata.DFA, error) {
	return cfg.cache.MinimalDFA(cfg.ctx, r)
}

// flatPair bundles the flattened ε-automaton (needed for trace
// annotation) with its determinized erasure (needed for every search).
type flatPair struct {
	flat *flatAutomaton
	dfa  *automata.DFA
}

// flattened builds — or retrieves — the flattened behavior of the
// composite plus its DFA, memoized under StageFlatten. Both halves are
// immutable after construction and shared read-only across workers; the
// singleflight in the cache guarantees two workers never run the
// flatten substitution or the subset construction for the same class
// concurrently.
func flattened(cfg config, c *model.Class, reg Registry, alphabet []string) (*flatAutomaton, *automata.DFA, error) {
	build := func(ctx context.Context) (flatPair, error) {
		// The span-carrying ctx from the memo layer replaces cfg.ctx so
		// nested stage builds parent under the flatten span.
		cfg := cfg
		cfg.ctx = ctx
		flat, err := flattenWith(cfg, c, alphabet)
		if err != nil {
			return flatPair{}, err
		}
		dfa, err := flat.toDFA(cfg.ctx)
		if err != nil {
			return flatPair{}, err
		}
		return flatPair{flat: flat, dfa: dfa}, nil
	}
	if cfg.cache != nil {
		if key, ok := classKey(cfg, c, reg, flattenLimits(budget.From(cfg.ctx))); ok {
			pair, err := pipeline.MemoCtx(cfg.ctx, cfg.cache, pipeline.StageFlatten, key, build)
			return pair.flat, pair.dfa, err
		}
	}
	pair, err := build(cfg.ctx)
	return pair.flat, pair.dfa, err
}

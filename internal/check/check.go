// Package check implements Shelley's verification passes (§2.2 and §3 of
// the paper) on top of the model layer:
//
//   - structural well-formedness of each class (model.Validate);
//   - method invocation analysis: every call on a subsystem must target
//     an operation that the subsystem's class defines;
//   - match exit-point analysis: a `match` over a subsystem call must
//     handle every exit point of the invoked operation;
//   - subsystem usage verification: every complete usage of the
//     composite must use each subsystem according to the subsystem's own
//     protocol — the paper's INVALID SUBSYSTEM USAGE error;
//   - temporal claims: every @claim formula must hold on every complete
//     flattened trace — the paper's FAIL TO MEET REQUIREMENT error.
//
// Counterexample search is breadth-first with a sorted alphabet, so all
// diagnostics are deterministic and shortest-first, and the two error
// messages of §2.2 are reproduced byte for byte.
package check

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/regex"
)

// Registry resolves class names to their models, so composite classes
// can find the specifications of their subsystems.
type Registry map[string]*model.Class

// NewRegistry builds a registry from the given classes.
func NewRegistry(classes ...*model.Class) Registry {
	r := make(Registry, len(classes))
	for _, c := range classes {
		r[c.Name] = c
	}
	return r
}

func (r Registry) resolve(c *model.Class, subsystem string) (*model.Class, error) {
	typeName, ok := c.SubsystemTypes[subsystem]
	if !ok {
		return nil, fmt.Errorf("check: class %s has no subsystem %q", c.Name, subsystem)
	}
	sub, ok := r[typeName]
	if !ok {
		return nil, fmt.Errorf("check: class %s for subsystem %q is not in the registry", typeName, subsystem)
	}
	return sub, nil
}

// Kind classifies a diagnostic.
type Kind int

const (
	// KindStructure is a well-formedness problem from model.Validate.
	KindStructure Kind = iota + 1

	// KindUndefinedMethod is a call to an operation the subsystem's
	// class does not define.
	KindUndefinedMethod

	// KindNonExhaustiveMatch is a match statement that does not handle
	// every exit point of the invoked operation.
	KindNonExhaustiveMatch

	// KindUselessCase is a case pattern that matches no exit point of
	// the invoked operation.
	KindUselessCase

	// KindInvalidSubsystemUsage is the §2.2 INVALID SUBSYSTEM USAGE
	// error.
	KindInvalidSubsystemUsage

	// KindClaimFailure is the §2.2 FAIL TO MEET REQUIREMENT error.
	KindClaimFailure

	// KindUnknownClaimAtom is a claim mentioning an event that no
	// subsystem operation can ever produce — almost always a typo, and
	// dangerous because the claim then holds (or fails) vacuously.
	KindUnknownClaimAtom

	// KindHelperUsesSubsystem is an unannotated method that calls a
	// subsystem: such calls are invisible to the protocol analysis
	// (Shelley only verifies annotated operations), so the usage is
	// unchecked — a soundness hole worth surfacing.
	KindHelperUsesSubsystem
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindStructure:
		return "STRUCTURE"
	case KindUndefinedMethod:
		return "UNDEFINED METHOD"
	case KindNonExhaustiveMatch:
		return "NON-EXHAUSTIVE MATCH"
	case KindUselessCase:
		return "USELESS CASE"
	case KindInvalidSubsystemUsage:
		return "INVALID SUBSYSTEM USAGE"
	case KindClaimFailure:
		return "FAIL TO MEET REQUIREMENT"
	case KindUnknownClaimAtom:
		return "UNKNOWN CLAIM ATOM"
	case KindHelperUsesSubsystem:
		return "UNVERIFIED SUBSYSTEM USE"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Diagnostic is one verification finding.
type Diagnostic struct {
	Kind Kind

	// Message is the full, paper-formatted error text.
	Message string

	// Counterexample is the witness trace, when the finding has one.
	Counterexample []string

	// Explanation is an optional step-by-step account of the failure
	// (claim failures carry an ltlf.Explain trace walk); it is kept out
	// of Message so the paper-format output stays byte-exact.
	Explanation string
}

// Report is the outcome of checking one class.
type Report struct {
	// Class is the class name.
	Class string

	// Diagnostics are the findings, in pass order (structure,
	// definedness, exhaustiveness, usage, claims).
	Diagnostics []Diagnostic
}

// OK reports whether the class verified without findings.
func (r *Report) OK() bool { return len(r.Diagnostics) == 0 }

// Clone returns a deep copy of the report. The memoization cache hands
// out clones so callers can hold or mutate reports without poisoning
// the shared entry.
func (r *Report) Clone() *Report {
	out := &Report{Class: r.Class, Diagnostics: append([]Diagnostic(nil), r.Diagnostics...)}
	for i := range out.Diagnostics {
		out.Diagnostics[i].Counterexample = append([]string(nil), out.Diagnostics[i].Counterexample...)
	}
	return out
}

// String renders every diagnostic message, separated by blank lines.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("class %s: OK", r.Class)
	}
	msgs := make([]string, len(r.Diagnostics))
	for i, d := range r.Diagnostics {
		msgs[i] = d.Message
	}
	return strings.Join(msgs, "\n\n")
}

// Check verifies one class against the registry. Base classes get the
// structural checks only; composite classes additionally get invocation,
// exhaustiveness, usage, and claim analysis. An error return indicates
// the class could not be analyzed at all (e.g. a subsystem's class is
// missing from the registry); verification findings are reported in the
// Report instead.
func Check(c *model.Class, reg Registry, opts ...Option) (*Report, error) {
	return CheckContext(context.Background(), c, reg, opts...)
}

// CheckContext is Check with a context threaded through for tracing:
// the whole verification runs inside a "check.class" span (child of
// ctx's active span), every cold pipeline stage it triggers opens a
// nested "pipeline.<stage>" span, and every warm lookup increments a
// cache-hit counter on the enclosing span. A warm whole-report hit
// follows the same rule one level up: it increments cache.hit.report
// on the caller's span instead of opening a check.class span — the
// lookup is sub-microsecond and a span per hit would dominate both the
// timeline and the overhead budget (EXPERIMENTS.md P3). When ctx
// carries no tracer the behavior and output are identical to Check.
func CheckContext(ctx context.Context, c *model.Class, reg Registry, opts ...Option) (_ *Report, err error) {
	cfg := buildConfig(opts)
	// ctx must be installed before classKey runs: the key covers the
	// context's resource budget (budget.From), so a report computed
	// under one budget is never served to a request with another.
	cfg.ctx = ctx
	// Whole-report memoization: the report is a pure function of the
	// class content, the analysis mode, the resource budget, and the
	// subsystems' content, all of which classKey captures. A warm Check
	// is a cache lookup plus a deep copy, probed before any span is
	// opened.
	key, memoized := "", false
	if cfg.cache != nil {
		if k, ok := classKey(cfg, c, reg, budget.From(cfg.ctx)); ok {
			key, memoized = k, true
			if v, cerr, hit := cfg.cache.Peek(ctx, pipeline.StageReport, key); hit {
				if cerr != nil {
					return nil, cerr
				}
				if r, ok := v.(*Report); ok && r != nil {
					return r.Clone(), nil
				}
			}
		}
	}
	ctx, span := obs.Start(ctx, "check.class",
		obs.String("class", c.Name),
		obs.Int("subsystems", len(c.SubsystemNames)))
	defer func() {
		if err != nil {
			span.SetAttr(obs.String("error", err.Error()))
		}
		span.End()
	}()
	cfg.ctx = ctx
	if memoized {
		report, err := pipeline.MemoCtx(ctx, cfg.cache, pipeline.StageReport, key,
			func(ctx context.Context) (*Report, error) {
				cfg := cfg
				cfg.ctx = ctx
				return check(cfg, c, reg)
			})
		if err != nil {
			return nil, err
		}
		return report.Clone(), nil
	}
	return check(cfg, c, reg)
}

// check runs the passes uncached; Check wraps it with memoization.
func check(cfg config, c *model.Class, reg Registry) (*Report, error) {
	report := &Report{Class: c.Name}

	for _, p := range c.Validate() {
		report.Diagnostics = append(report.Diagnostics, Diagnostic{
			Kind:    KindStructure,
			Message: fmt.Sprintf("Error in specification: %s", p),
		})
	}

	if len(c.SubsystemNames) == 0 {
		// Base classes still get their claims checked, against their own
		// protocol automaton.
		if err := checkClaims(cfg, c, reg, report); err != nil {
			return nil, err
		}
		return report, nil
	}

	// Resolve every subsystem up front.
	subs := make(map[string]*model.Class, len(c.SubsystemNames))
	for _, name := range c.SubsystemNames {
		sub, err := reg.resolve(c, name)
		if err != nil {
			return nil, err
		}
		subs[name] = sub
	}

	defined := checkDefinedness(c, subs, report)
	checkExhaustiveness(c, subs, report)
	checkHelpers(c, subs, report)

	// Usage and claim analysis need every called operation to exist.
	if !defined {
		return report, nil
	}
	if err := checkUsage(cfg, c, reg, subs, report); err != nil {
		return nil, err
	}
	if err := checkClaims(cfg, c, reg, report); err != nil {
		return nil, err
	}
	return report, nil
}

// checkDefinedness verifies that every tracked call targets a defined
// operation; it returns true when all calls are defined.
func checkDefinedness(c *model.Class, subs map[string]*model.Class, report *Report) bool {
	ok := true
	for _, op := range c.Operations {
		for _, label := range labelsOf(op) {
			subName, method, found := splitLabel(label)
			if !found {
				continue
			}
			sub, isSub := subs[subName]
			if !isSub {
				continue
			}
			if sub.Operation(method) == nil {
				ok = false
				report.Diagnostics = append(report.Diagnostics, Diagnostic{
					Kind: KindUndefinedMethod,
					Message: fmt.Sprintf(
						"Error in specification: UNDEFINED METHOD\nOperation %s calls %s, but class %s has no operation %q",
						op.Name, label, sub.Name, method),
				})
			}
		}
	}
	return ok
}

// checkExhaustiveness implements the "matching exit points" analysis of
// §2.2: every exit point of the matched operation must be handled by
// some case, and every non-wildcard case must correspond to an actual
// exit point.
func checkExhaustiveness(c *model.Class, subs map[string]*model.Class, report *Report) {
	for _, op := range c.Operations {
		for _, site := range op.Method.Matches {
			subName, method, found := splitLabel(site.Op)
			if !found {
				continue
			}
			sub, isSub := subs[subName]
			if !isSub {
				continue
			}
			target := sub.Operation(method)
			if target == nil {
				continue // reported by definedness
			}

			// The exit points of the target, as canonical label sets.
			exitKeys := make(map[string][]string)
			for _, e := range target.Method.Exits {
				exitKeys[labelSetKey(e.Next)] = e.Next
			}
			caseKeys := make(map[string]struct{})
			for _, pattern := range site.Patterns {
				if pattern == nil {
					continue // wildcard
				}
				k := labelSetKey(pattern)
				caseKeys[k] = struct{}{}
				if _, real := exitKeys[k]; !real {
					report.Diagnostics = append(report.Diagnostics, Diagnostic{
						Kind: KindUselessCase,
						Message: fmt.Sprintf(
							"Error in specification: USELESS CASE\nOperation %s matches %s() against %v, but %s.%s has no such exit point",
							op.Name, site.Op, pattern, sub.Name, method),
					})
				}
			}
			if site.Wildcard {
				continue
			}
			// Deterministic order over missing exits.
			var missing []string
			for k, labels := range exitKeys {
				if _, handled := caseKeys[k]; !handled {
					missing = append(missing, fmt.Sprintf("%v", labels))
				}
			}
			sort.Strings(missing)
			for _, m := range missing {
				report.Diagnostics = append(report.Diagnostics, Diagnostic{
					Kind: KindNonExhaustiveMatch,
					Message: fmt.Sprintf(
						"Error in specification: NON-EXHAUSTIVE MATCH\nOperation %s matches %s() but does not handle exit point %s",
						op.Name, site.Op, m),
				})
			}
		}
	}
}

// checkHelpers warns about unannotated methods that call subsystems:
// those calls are outside the verified protocol entirely.
func checkHelpers(c *model.Class, subs map[string]*model.Class, report *Report) {
	for _, helper := range c.Helpers {
		for _, label := range labelsOf(helper) {
			subName, _, found := splitLabel(label)
			if !found {
				continue
			}
			if _, isSub := subs[subName]; !isSub {
				continue
			}
			report.Diagnostics = append(report.Diagnostics, Diagnostic{
				Kind: KindHelperUsesSubsystem,
				Message: fmt.Sprintf(
					"Error in specification: UNVERIFIED SUBSYSTEM USE\nMethod %s calls %s but carries no @op annotation; the call order is not verified",
					helper.Name, label),
			})
			break // one finding per helper is enough
		}
	}
}

// labelsOf returns the distinct call labels in the operation's body.
func labelsOf(op *model.Operation) []string {
	return regex.Alphabet(regex.Simplify(op.Behavior()))
}

func splitLabel(label string) (subsystem, method string, ok bool) {
	i := strings.IndexByte(label, '.')
	if i <= 0 || i == len(label)-1 {
		return "", "", false
	}
	return label[:i], label[i+1:], true
}

func labelSetKey(labels []string) string {
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

// traceString renders a trace the way the paper prints counterexamples.
func traceString(trace []string) string { return strings.Join(trace, ", ") }

package check

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func classFrom(t *testing.T, src, name string) *model.Class {
	t.Helper()
	ast, err := pyparse.ParseClass(src, name)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	c, err := model.FromAST(ast)
	if err != nil {
		t.Fatalf("model %s: %v", name, err)
	}
	return c
}

func paperRegistry(t *testing.T) (Registry, *model.Class, *model.Class) {
	t.Helper()
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	bad := classFrom(t, readTestdata(t, "badsector.py"), "BadSector")
	return NewRegistry(valve, bad), valve, bad
}

func TestValveChecksClean(t *testing.T) {
	reg, valve, _ := paperRegistry(t)
	report, err := Check(valve, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("Valve should verify: %s", report)
	}
	if got := report.String(); got != "class Valve: OK" {
		t.Errorf("Report.String() = %q", got)
	}
}

// TestPaperBadSectorUsageError reproduces the first §2.2 error message
// byte for byte.
func TestPaperBadSectorUsageError(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	report, err := Check(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	var usage *Diagnostic
	for i := range report.Diagnostics {
		if report.Diagnostics[i].Kind == KindInvalidSubsystemUsage {
			usage = &report.Diagnostics[i]
			break
		}
	}
	if usage == nil {
		t.Fatalf("no INVALID SUBSYSTEM USAGE diagnostic; report:\n%s", report)
	}
	want := "Error in specification: INVALID SUBSYSTEM USAGE\n" +
		"Counter example: open_a, a.test, a.open\n" +
		"Subsystems errors:\n" +
		"  * Valve 'a': test, >open< (not final)"
	if usage.Message != want {
		t.Errorf("usage message:\n%s\nwant:\n%s", usage.Message, want)
	}
	if !reflect.DeepEqual(usage.Counterexample, []string{"a.test", "a.open"}) {
		t.Errorf("counterexample trace = %v", usage.Counterexample)
	}
}

// TestPaperBadSectorClaimError reproduces the second §2.2 error. The
// verdict and format match the paper; our counterexample is the
// *shortest* violating trace (a.test, a.open — open_a alone is a
// complete usage because it is final), where the paper prints a longer
// two-operation witness. See EXPERIMENTS.md.
func TestPaperBadSectorClaimError(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	report, err := Check(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	var claim *Diagnostic
	for i := range report.Diagnostics {
		if report.Diagnostics[i].Kind == KindClaimFailure {
			claim = &report.Diagnostics[i]
			break
		}
	}
	if claim == nil {
		t.Fatalf("no FAIL TO MEET REQUIREMENT diagnostic; report:\n%s", report)
	}
	wantPrefix := "Error in specification: FAIL TO MEET REQUIREMENT\n" +
		"Formula: (!a.open) W b.open\n" +
		"Counter example: "
	if !strings.HasPrefix(claim.Message, wantPrefix) {
		t.Errorf("claim message:\n%s", claim.Message)
	}
	if !reflect.DeepEqual(claim.Counterexample, []string{"a.test", "a.open"}) {
		t.Errorf("claim counterexample = %v", claim.Counterexample)
	}
	// The paper's own witness also violates the claim; cross-check the
	// semantics on it (with its apparent typo normalized to the code's
	// actual call order).
}

func TestBadSectorReportsBothErrors(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	report, err := Check(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, d := range report.Diagnostics {
		kinds = append(kinds, d.Kind)
	}
	if !reflect.DeepEqual(kinds, []Kind{KindInvalidSubsystemUsage, KindClaimFailure}) {
		t.Errorf("kinds = %v, report:\n%s", kinds, report)
	}
}

func TestGoodSectorVerifies(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	good := classFrom(t, readTestdata(t, "goodsector.py"), "GoodSector")
	reg := NewRegistry(valve, good)
	report, err := Check(good, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("GoodSector should verify:\n%s", report)
	}
}

func TestUndefinedMethodDiagnostic(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := `@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        self.a.explode()
        return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindUndefinedMethod {
			found = true
			if !strings.Contains(d.Message, "a.explode") || !strings.Contains(d.Message, "Valve") {
				t.Errorf("message = %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("expected UNDEFINED METHOD; got:\n%s", report)
	}
}

func TestNonExhaustiveMatchDiagnostic(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	// Handles only the ["open"] exit of test; misses ["clean"].
	src := `@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindNonExhaustiveMatch {
			found = true
			if !strings.Contains(d.Message, "a.test") || !strings.Contains(d.Message, "clean") {
				t.Errorf("message = %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("expected NON-EXHAUSTIVE MATCH; got:\n%s", report)
	}
}

func TestWildcardMatchIsExhaustive(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := `@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case _:
                self.a.clean()
                return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range report.Diagnostics {
		if d.Kind == KindNonExhaustiveMatch {
			t.Errorf("wildcard should be exhaustive:\n%s", d.Message)
		}
	}
}

func TestUselessCaseDiagnostic(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := `@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
            case ["frobnicate"]:
                return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindUselessCase {
			found = true
			if !strings.Contains(d.Message, "frobnicate") {
				t.Errorf("message = %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("expected USELESS CASE; got:\n%s", report)
	}
}

func TestStructureDiagnosticsSurface(t *testing.T) {
	src := `@sys
class C:
    @op
    def m(self):
        return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(c))
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("class without initial op should have diagnostics")
	}
	if report.Diagnostics[0].Kind != KindStructure {
		t.Errorf("kind = %v", report.Diagnostics[0].Kind)
	}
	if !strings.Contains(report.String(), "NO_INITIAL_OPERATION") {
		t.Errorf("report = %s", report)
	}
}

func TestMissingSubsystemClassIsError(t *testing.T) {
	bad := classFrom(t, readTestdata(t, "badsector.py"), "BadSector")
	// Registry without Valve.
	if _, err := Check(bad, NewRegistry(bad)); err == nil {
		t.Error("expected registry-resolution error")
	}
}

func TestUsageCheckSkippedWhenCallsUndefined(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := `@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        self.a.explode()
        return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range report.Diagnostics {
		if d.Kind == KindInvalidSubsystemUsage || d.Kind == KindClaimFailure {
			t.Errorf("usage/claim analysis should be skipped on undefined calls: %v", d.Kind)
		}
	}
}

func TestLoopingCompositeUsage(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	// A controller that repeatedly runs full valve cycles in a loop; each
	// cycle uses the valve correctly, so the composite verifies.
	src := `@sys(["v"])
class Cycler:
    def __init__(self):
        self.v = Valve()

    @op_initial_final
    def cycle(self):
        while self.more():
            match self.v.test():
                case ["open"]:
                    self.v.open()
                    self.v.close()
                case ["clean"]:
                    self.v.clean()
        return []
`
	c := classFrom(t, src, "Cycler")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("Cycler should verify:\n%s", report)
	}
}

func TestLoopingCompositeCatchesMidLoopViolation(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	// Leaves the valve open at the end of each iteration.
	src := `@sys(["v"])
class LeakyCycler:
    def __init__(self):
        self.v = Valve()

    @op_initial_final
    def cycle(self):
        while self.more():
            match self.v.test():
                case ["open"]:
                    self.v.open()
                case ["clean"]:
                    self.v.clean()
        return []
`
	c := classFrom(t, src, "LeakyCycler")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindInvalidSubsystemUsage {
			found = true
			// Shortest witness: one iteration through the open branch,
			// stopping with the valve open.
			if !reflect.DeepEqual(d.Counterexample, []string{"v.test", "v.open"}) {
				t.Errorf("counterexample = %v", d.Counterexample)
			}
		}
	}
	if !found {
		t.Errorf("expected INVALID SUBSYSTEM USAGE:\n%s", report)
	}
}

func TestClaimOverTwoOperations(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	good := classFrom(t, readTestdata(t, "goodsector.py"), "GoodSector")
	reg := NewRegistry(valve, good)
	// GoodSector's claim holds; additionally check a claim that fails:
	// "valve b never opens" is violated by the open branch.
	src := strings.Replace(readTestdata(t, "goodsector.py"),
		`@claim("(!a.open) W b.open")`,
		`@claim("G !b.open")`, 1)
	src = strings.Replace(src, "class GoodSector", "class NeverOpenB", 1)
	c := classFrom(t, src, "NeverOpenB")
	reg["NeverOpenB"] = c
	report, err := Check(c, reg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindClaimFailure {
			found = true
			if !strings.Contains(d.Message, "Formula: G !b.open") {
				t.Errorf("message = %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("expected claim failure:\n%s", report)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindStructure; k <= KindHelperUsesSubsystem; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "KIND(") {
			t.Errorf("Kind(%d) = %q", k, s)
		}
	}
	if !strings.HasPrefix(Kind(42).String(), "KIND(") {
		t.Error("unknown kind should render as KIND(n)")
	}
}

func TestSplitLabel(t *testing.T) {
	tests := []struct {
		label     string
		sub, meth string
		ok        bool
	}{
		{"a.test", "a", "test", true},
		{"ab.cd.ef", "ab", "cd.ef", true},
		{"plain", "", "", false},
		{".x", "", "", false},
		{"x.", "", "", false},
	}
	for _, tt := range tests {
		sub, meth, ok := splitLabel(tt.label)
		if sub != tt.sub || meth != tt.meth || ok != tt.ok {
			t.Errorf("splitLabel(%q) = %q,%q,%v", tt.label, sub, meth, ok)
		}
	}
}

func TestBaseClassClaims(t *testing.T) {
	// A base class claim over its own operations: the Valve protocol
	// cannot open twice without an intervening close.
	src := `@claim("G (open -> X close)")
@claim("G !clean")
@sys
class GuardedValve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
`
	c := classFrom(t, src, "GuardedValve")
	report, err := Check(c, NewRegistry(c))
	if err != nil {
		t.Fatal(err)
	}
	// First claim holds: open is always immediately followed by close
	// in any complete usage... except when the trace ends at open —
	// which the protocol forbids (open is not final). So it holds.
	// Second claim fails: test may be followed by clean.
	var failures []string
	for _, d := range report.Diagnostics {
		if d.Kind == KindClaimFailure {
			failures = append(failures, d.Message)
		}
	}
	if len(failures) != 1 {
		t.Fatalf("claim failures = %d:\n%s", len(failures), report)
	}
	if !strings.Contains(failures[0], "Formula: G !clean") {
		t.Errorf("wrong claim failed:\n%s", failures[0])
	}
	if !strings.Contains(failures[0], "Counter example: test, clean") {
		t.Errorf("counterexample:\n%s", failures[0])
	}
}

// TestOverApproximationDocumented pins the union-level flattening
// described in DESIGN.md §6: the flattened language of BadSector
// includes traces that pair one branch's calls with another exit's
// continuation. The over-approximation can only add behaviors (it keeps
// verification sound), and this test documents exactly where it shows.
func TestOverApproximationDocumented(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	flat, err := FlattenedDFA(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Real program trace: open_a's open branch then open_b's open branch.
	real := []string{"a.test", "a.open", "b.test", "b.open", "a.close", "b.close"}
	if !flat.Accepts(real) {
		t.Error("flattened language must contain the real trace")
	}
	// Over-approximate trace: the clean branch of open_a returns [], so
	// at runtime open_b could never follow; the union-level protocol
	// admits it anyway.
	approx := []string{"a.test", "a.clean", "b.test", "b.open", "a.close", "b.close"}
	if !flat.Accepts(approx) {
		t.Error("expected the documented over-approximation; if flattening became exit-aware, update DESIGN.md §6")
	}
}

// TestHierarchicalComposite verifies a composite whose subsystems are
// themselves composites (the valvefarm example's shape), exercising
// SpecDFA-as-subsystem-spec across two levels.
func TestHierarchicalComposite(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	sector := classFrom(t, strings.Replace(readTestdata(t, "goodsector.py"),
		"return []", `return ["run"]`, -1), "GoodSector")
	src := `@sys(["s1", "s2"])
class Farm:
    def __init__(self):
        self.s1 = GoodSector()
        self.s2 = GoodSector()

    @op_initial_final
    def day(self):
        self.s1.run()
        self.s2.run()
        return ["day"]
`
	farm := classFrom(t, src, "Farm")
	reg := NewRegistry(valve, sector, farm)
	report, err := Check(farm, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("Farm should verify:\n%s", report)
	}

	// A farm that forgets sector 2's run is still fine (run is initial
	// and final)... but one that calls a *non-initial-looking* op fails.
	badSrc := `@sys(["s1"])
class BadFarm:
    def __init__(self):
        self.s1 = GoodSector()

    @op_initial_final
    def day(self):
        self.s1.missing()
        return []
`
	badFarm := classFrom(t, badSrc, "BadFarm")
	report, err = Check(badFarm, NewRegistry(valve, sector, badFarm))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindUndefinedMethod {
			found = true
		}
	}
	if !found {
		t.Errorf("expected UNDEFINED METHOD on the hierarchy:\n%s", report)
	}
}

// TestMultipleSubsystemErrorsInOneCounterexample checks the
// "Subsystems errors" block listing every subsystem whose projection of
// the chosen counterexample fails.
func TestMultipleSubsystemErrorsInOneCounterexample(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := `@sys(["a", "b"])
class DoubleLeak:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def leak(self):
        self.a.test()
        self.a.open()
        self.b.test()
        self.b.open()
        return []
`
	c := classFrom(t, src, "DoubleLeak")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	var usage *Diagnostic
	for i := range report.Diagnostics {
		if report.Diagnostics[i].Kind == KindInvalidSubsystemUsage {
			usage = &report.Diagnostics[i]
		}
	}
	if usage == nil {
		t.Fatalf("expected usage error:\n%s", report)
	}
	// The shortest counterexample leaves both valves open, so both
	// subsystem lines appear.
	if !strings.Contains(usage.Message, "* Valve 'a':") ||
		!strings.Contains(usage.Message, "* Valve 'b':") {
		t.Errorf("expected both subsystem error lines:\n%s", usage.Message)
	}
}

func TestUnknownClaimAtomFlagged(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := strings.Replace(readTestdata(t, "goodsector.py"),
		`@claim("(!a.open) W b.open")`,
		`@claim("(!a.opn) W b.open")`, 1) // typo: a.opn
	src = strings.Replace(src, "class GoodSector", "class TypoSector", 1)
	c := classFrom(t, src, "TypoSector")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindUnknownClaimAtom {
			found = true
			if !strings.Contains(d.Message, `"a.opn"`) {
				t.Errorf("message = %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("expected UNKNOWN CLAIM ATOM:\n%s", report)
	}
}

func TestHelperUsesSubsystemWarned(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	src := `@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    def sneak(self):
        self.a.open()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
`
	c := classFrom(t, src, "C")
	report, err := Check(c, NewRegistry(valve, c))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range report.Diagnostics {
		if d.Kind == KindHelperUsesSubsystem {
			found = true
			if !strings.Contains(d.Message, "sneak") || !strings.Contains(d.Message, "a.open") {
				t.Errorf("message = %q", d.Message)
			}
		}
	}
	if !found {
		t.Errorf("expected UNVERIFIED SUBSYSTEM USE:\n%s", report)
	}
	// A helper that touches no subsystem is fine.
	src2 := strings.Replace(src, "self.a.open()\n", "print(1)\n", 1)
	c2 := classFrom(t, src2, "C")
	report, err = Check(c2, NewRegistry(valve, c2))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range report.Diagnostics {
		if d.Kind == KindHelperUsesSubsystem {
			t.Errorf("clean helper flagged:\n%s", d.Message)
		}
	}
}

package check

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/ltlf"
	"github.com/shelley-go/shelley/internal/model"
)

// automataDFA shortens the claim checker's signatures.
type automataDFA = automata.DFA

// checkClaims verifies every @claim formula against the complete
// flattened traces of the composite class. A violated claim is reported
// with the paper's message:
//
//	Error in specification: FAIL TO MEET REQUIREMENT
//	Formula: (!a.open) W b.open
//	Counter example: a.test, a.open, b.test, b.open, a.close, b.close
func checkClaims(cfg config, c *model.Class, reg Registry, report *Report) error {
	if len(c.Claims) == 0 {
		return nil
	}
	// Composite claims speak about subsystem operations and are checked
	// against the flattened behavior; base-class claims speak about the
	// class's own operations and are checked against its protocol
	// automaton directly.
	var flatDFA *automataDFA
	var alphabet []string
	if len(c.SubsystemNames) > 0 {
		var err error
		alphabet, err = subsystemAlphabet(c, reg)
		if err != nil {
			return err
		}
		_, flatDFA, err = flattened(cfg, c, reg, alphabet)
		if err != nil {
			return err
		}
	} else {
		spec, err := cfg.specDFA(c, "")
		if err != nil {
			return err
		}
		flatDFA = spec
		alphabet = spec.Alphabet()
	}

	known := make(map[string]struct{}, len(alphabet))
	for _, sym := range alphabet {
		known[sym] = struct{}{}
	}

	for _, claim := range c.Claims {
		formula, err := ltlf.Parse(claim.Formula)
		if err != nil {
			return fmt.Errorf("check: class %s, claim at %s: %w", c.Name, claim.Pos, err)
		}
		for _, atom := range ltlf.Atoms(formula) {
			if _, ok := known[atom]; !ok {
				report.Diagnostics = append(report.Diagnostics, Diagnostic{
					Kind: KindUnknownClaimAtom,
					Message: fmt.Sprintf(
						"Error in specification: UNKNOWN CLAIM ATOM\nFormula: %s\nAtom %q matches no operation; the claim is vacuous on it",
						claim.Formula, atom),
				})
			}
		}
		violations, err := cfg.cache.ClaimNegation(cfg.ctx, formula, claim.Formula, alphabet)
		if err != nil {
			return err
		}
		// Shortest complete trace that violates the claim. The product
		// BFS runs under cfg.ctx's MaxSearchNodes budget and observes
		// cancellation.
		gate := budget.SearchGate(cfg.ctx, "claim-search")
		type pair struct{ f, v int }
		type node struct {
			at    pair
			trace []string
		}
		start := pair{f: flatDFA.Start(), v: violations.Start()}
		visited := map[pair]struct{}{start: {}}
		frontier := []node{{at: start}}
		var witness []string
		found := false
		for len(frontier) > 0 && !found {
			var next []node
			for _, n := range frontier {
				if err := gate.Tick(); err != nil {
					return err
				}
				if flatDFA.Accepting(n.at.f) && n.at.v >= 0 && violations.Accepting(n.at.v) {
					witness = n.trace
					found = true
					break
				}
				for _, sym := range flatDFA.Alphabet() {
					ft := flatDFA.Target(n.at.f, sym)
					if ft < 0 {
						continue
					}
					vt := -1
					if n.at.v >= 0 {
						vt = violations.Target(n.at.v, sym)
					}
					if vt < 0 {
						// The violation automaton died: no extension of
						// this trace can violate the claim.
						continue
					}
					np := pair{f: ft, v: vt}
					if _, seen := visited[np]; seen {
						continue
					}
					visited[np] = struct{}{}
					trace := make([]string, len(n.trace)+1)
					copy(trace, n.trace)
					trace[len(n.trace)] = sym
					next = append(next, node{at: np, trace: trace})
				}
			}
			frontier = next
		}
		if !found {
			continue
		}
		report.Diagnostics = append(report.Diagnostics, Diagnostic{
			Kind:           KindClaimFailure,
			Counterexample: witness,
			Message: fmt.Sprintf(
				"Error in specification: FAIL TO MEET REQUIREMENT\nFormula: %s\nCounter example: %s",
				claim.Formula, traceString(witness)),
			Explanation: ltlf.Explain(formula, witness),
		})
	}
	return nil
}

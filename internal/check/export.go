package check

import (
	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/model"
)

// FlattenedDFA exposes the composite class's behavior automaton over
// subsystem operations — the object the checker verifies claims
// against — for external backends (the NuSMV exporter) and tooling. For
// a base class (no subsystems) it returns the class's own protocol
// automaton.
func FlattenedDFA(c *model.Class, reg Registry, opts ...Option) (*automata.DFA, error) {
	if len(c.SubsystemNames) == 0 {
		return c.SpecDFA("")
	}
	alphabet, err := subsystemAlphabet(c, reg)
	if err != nil {
		return nil, err
	}
	flat, err := flattenWith(buildConfig(opts), c, alphabet)
	if err != nil {
		return nil, err
	}
	return flat.toDFA().Minimize(), nil
}

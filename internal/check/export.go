package check

import (
	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pipeline"
)

// FlattenedDFA exposes the composite class's behavior automaton over
// subsystem operations — the object the checker verifies claims
// against — for external backends (the NuSMV exporter) and tooling. For
// a base class (no subsystems) it returns the class's own protocol
// automaton.
//
// Results served from a pipeline cache are cloned: callers own the
// returned automaton and may hold it indefinitely without aliasing the
// shared cache entry.
func FlattenedDFA(c *model.Class, reg Registry, opts ...Option) (*automata.DFA, error) {
	cfg := buildConfig(opts)
	if len(c.SubsystemNames) == 0 {
		spec, err := cfg.specDFA(c, "")
		if err != nil {
			return nil, err
		}
		if cfg.cache != nil {
			spec = spec.Clone()
		}
		return spec, nil
	}
	alphabet, err := subsystemAlphabet(c, reg)
	if err != nil {
		return nil, err
	}
	if cfg.cache != nil {
		if key, ok := classKey(cfg, c, reg, flattenLimits(budget.From(cfg.ctx))); ok {
			min, err := pipeline.Memo(cfg.cache, pipeline.StageFlatten, key+"|min",
				func() (*automata.DFA, error) {
					_, dfa, err := flattened(cfg, c, reg, alphabet)
					if err != nil {
						return nil, err
					}
					return dfa.Minimize(), nil
				})
			if err != nil {
				return nil, err
			}
			return min.Clone(), nil
		}
	}
	flat, err := flattenWith(cfg, c, alphabet)
	if err != nil {
		return nil, err
	}
	dfa, err := flat.toDFA(cfg.ctx)
	if err != nil {
		return nil, err
	}
	return dfa.Minimize(), nil
}

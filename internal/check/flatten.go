package check

import (
	"context"
	"fmt"
	"sort"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/model"
)

// flatAutomaton is the composite class's behavior over *subsystem*
// operations: the class's usage protocol with every composite operation
// substituted by the inferred behavior of its body (§3.2). It is an
// ε-NFA whose ε-edges optionally carry the name of the composite
// operation being entered, so counterexample traces can be rendered with
// the operation boundaries the paper's error messages show
// ("open_a, a.test, a.open").
type flatAutomaton struct {
	alphabet []string
	edges    [][]flatEdge
	accept   []bool
	start    int
}

type flatEdge struct {
	to  int
	sym string // "" for ε
	op  string // composite operation entered, for ε boundary edges
}

// flatten builds the flat automaton of a composite class.
func flatten(cfg config, c *model.Class, alphabet []string) (*flatAutomaton, error) {
	protocol, err := cfg.specDFA(c, "")
	if err != nil {
		return nil, err
	}

	// The substitution allocates |protocol transitions| copies of the
	// operations' behavior automata; each factor is individually bounded
	// by construction budgets, but their product is not, so the flat
	// state count gets its own gate.
	gate := budget.NFAGate(cfg.ctx, "flatten")
	var gateErr error
	f := &flatAutomaton{alphabet: alphabet}
	addState := func(accepting bool) int {
		if gateErr == nil {
			gateErr = gate.Tick()
		}
		f.edges = append(f.edges, nil)
		f.accept = append(f.accept, accepting)
		return len(f.edges) - 1
	}

	// One node per protocol state.
	protoNode := make([]int, protocol.NumStates())
	for p := 0; p < protocol.NumStates(); p++ {
		protoNode[p] = addState(protocol.Accepting(p))
	}
	f.start = protoNode[protocol.Start()]

	// Behavior DFA per operation, built (or cache-retrieved) once.
	behavior := make(map[string]*automata.DFA, len(c.Operations))
	for _, op := range c.Operations {
		b, err := cfg.behaviorDFA(op.Method.Program)
		if err != nil {
			return nil, err
		}
		behavior[op.Name] = b
	}

	// Substitute each protocol transition p --m--> q with a copy of
	// behavior(m) bracketed by ε-edges.
	for p := 0; p < protocol.NumStates(); p++ {
		if gateErr != nil {
			return nil, gateErr
		}
		for _, op := range c.Operations {
			q := protocol.Target(p, op.Name)
			if q < 0 {
				continue
			}
			b := behavior[op.Name]
			if b.NumStates() == 0 {
				continue
			}
			copyNode := make([]int, b.NumStates())
			for s := 0; s < b.NumStates(); s++ {
				copyNode[s] = addState(false)
			}
			f.edges[protoNode[p]] = append(f.edges[protoNode[p]], flatEdge{
				to: copyNode[b.Start()],
				op: op.Name,
			})
			for s := 0; s < b.NumStates(); s++ {
				for _, sym := range b.Alphabet() {
					t := b.Target(s, sym)
					if t < 0 {
						continue
					}
					f.edges[copyNode[s]] = append(f.edges[copyNode[s]], flatEdge{
						to:  copyNode[t],
						sym: sym,
					})
				}
				if b.Accepting(s) {
					f.edges[copyNode[s]] = append(f.edges[copyNode[s]], flatEdge{
						to: protoNode[q],
					})
				}
			}
		}
	}
	if gateErr != nil {
		return nil, gateErr
	}
	return f, nil
}

// toDFA erases the operation boundaries and determinizes under ctx's
// resource budget (the subset construction is the exponential step).
func (f *flatAutomaton) toDFA(ctx context.Context) (*automata.DFA, error) {
	n := automata.NewNFA(f.alphabet)
	// NFA state 0 already exists (its start); add the rest.
	nodes := make([]int, len(f.edges))
	nodes[0] = n.Start()
	for i := 1; i < len(f.edges); i++ {
		nodes[i] = n.AddState(false)
	}
	for i, accepting := range f.accept {
		n.SetAccepting(nodes[i], accepting)
	}
	for from, edges := range f.edges {
		for _, e := range edges {
			if e.sym == "" {
				n.AddEpsilon(nodes[from], nodes[e.to])
				continue
			}
			if err := n.AddTransition(nodes[from], e.sym, nodes[e.to]); err != nil {
				// The alphabet is the union of all subsystem operations;
				// flatten's callers validate call definedness first, so
				// this cannot happen. Panicking here would crash tools on
				// a bug; drop the edge instead (under-approximating) and
				// rely on the definedness diagnostics.
				continue
			}
		}
	}
	// Remap the start if needed (node 0 of f corresponds to a protocol
	// state, which is f.start only when the protocol start is state 0 —
	// ensure correctness for any numbering).
	n.SetStart(nodes[f.start])
	return n.DeterminizeCtx(ctx)
}

// pathEvent is one element of an annotated counterexample path: entering
// a composite operation or emitting a subsystem symbol.
type pathEvent struct {
	op  string // non-empty: entering this operation
	sym string // non-empty: subsystem operation fired
}

// annotate finds an accepting run of f over the exact trace and returns
// the path events (operation entries interleaved with symbols). BFS over
// (state, position) pairs keeps the reconstruction shortest and
// deterministic.
func (f *flatAutomaton) annotate(trace []string) ([]pathEvent, error) {
	type node struct {
		state, pos int
	}
	type step struct {
		prev  node
		event pathEvent
		used  bool
	}
	visited := make(map[node]step)
	startNode := node{state: f.start, pos: 0}
	visited[startNode] = step{}
	queue := []node{startNode}

	var goal *node
	for len(queue) > 0 && goal == nil {
		cur := queue[0]
		queue = queue[1:]
		if cur.pos == len(trace) && f.accept[cur.state] {
			g := cur
			goal = &g
			break
		}
		for _, e := range f.edges[cur.state] {
			var next node
			var ev pathEvent
			switch {
			case e.sym == "":
				next = node{state: e.to, pos: cur.pos}
				ev = pathEvent{op: e.op}
			case cur.pos < len(trace) && trace[cur.pos] == e.sym:
				next = node{state: e.to, pos: cur.pos + 1}
				ev = pathEvent{sym: e.sym}
			default:
				continue
			}
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = step{prev: cur, event: ev, used: true}
			queue = append(queue, next)
		}
	}
	if goal == nil {
		return nil, fmt.Errorf("check: trace %v is not accepted by the flattened automaton", trace)
	}
	var events []pathEvent
	for at := *goal; ; {
		s := visited[at]
		if !s.used {
			break
		}
		if s.event.op != "" || s.event.sym != "" {
			events = append(events, s.event)
		}
		at = s.prev
	}
	// Reverse.
	for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
		events[i], events[j] = events[j], events[i]
	}
	return events, nil
}

// subsystemAlphabet returns the union of the qualified operation names
// of every subsystem, sorted.
func subsystemAlphabet(c *model.Class, reg Registry) ([]string, error) {
	var out []string
	for _, name := range c.SubsystemNames {
		subClass, err := reg.resolve(c, name)
		if err != nil {
			return nil, err
		}
		for _, op := range subClass.Operations {
			out = append(out, name+"."+op.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

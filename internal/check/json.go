package check

import "encoding/json"

// JSON encodings for machine-readable tooling (shelleyc -json, CI
// integrations). Kinds marshal as their stable string names, not their
// internal integer values.

// MarshalJSON implements json.Marshaler.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for candidate := KindStructure; candidate <= KindHelperUsesSubsystem; candidate++ {
		if candidate.String() == s {
			*k = candidate
			return nil
		}
	}
	return &UnknownKindError{Name: s}
}

// UnknownKindError reports an unrecognized kind name during decoding.
type UnknownKindError struct {
	Name string
}

func (e *UnknownKindError) Error() string {
	return "check: unknown diagnostic kind " + e.Name
}

// reportJSON is the wire form of a Report.
type reportJSON struct {
	Class       string           `json:"class"`
	OK          bool             `json:"ok"`
	Diagnostics []diagnosticJSON `json:"diagnostics,omitempty"`
}

type diagnosticJSON struct {
	Kind           Kind     `json:"kind"`
	Message        string   `json:"message"`
	Counterexample []string `json:"counterexample,omitempty"`
	Explanation    string   `json:"explanation,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{Class: r.Class, OK: r.OK()}
	for _, d := range r.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, diagnosticJSON{
			Kind:           d.Kind,
			Message:        d.Message,
			Counterexample: d.Counterexample,
			Explanation:    d.Explanation,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Report) UnmarshalJSON(data []byte) error {
	var in reportJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	r.Class = in.Class
	r.Diagnostics = nil
	for _, d := range in.Diagnostics {
		r.Diagnostics = append(r.Diagnostics, Diagnostic{
			Kind:           d.Kind,
			Message:        d.Message,
			Counterexample: d.Counterexample,
			Explanation:    d.Explanation,
		})
	}
	return nil
}

package check

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	report, err := Check(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Class != report.Class || len(back.Diagnostics) != len(report.Diagnostics) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range report.Diagnostics {
		if back.Diagnostics[i].Kind != report.Diagnostics[i].Kind {
			t.Errorf("diagnostic %d kind = %v", i, back.Diagnostics[i].Kind)
		}
		if back.Diagnostics[i].Message != report.Diagnostics[i].Message {
			t.Errorf("diagnostic %d message differs", i)
		}
		if !reflect.DeepEqual(back.Diagnostics[i].Counterexample, report.Diagnostics[i].Counterexample) {
			t.Errorf("diagnostic %d counterexample differs", i)
		}
	}
}

func TestKindJSON(t *testing.T) {
	data, err := json.Marshal(KindClaimFailure)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"FAIL TO MEET REQUIREMENT"` {
		t.Errorf("marshal = %s", data)
	}
	var k Kind
	if err := json.Unmarshal(data, &k); err != nil {
		t.Fatal(err)
	}
	if k != KindClaimFailure {
		t.Errorf("unmarshal = %v", k)
	}
	if err := json.Unmarshal([]byte(`"NOPE"`), &k); err == nil {
		t.Error("unknown kind should fail to decode")
	} else if _, ok := err.(*UnknownKindError); !ok {
		t.Errorf("error type = %T", err)
	}
	if err := json.Unmarshal([]byte(`42`), &k); err == nil {
		t.Error("non-string kind should fail to decode")
	}
}

func TestOKReportJSONHasNoDiagnostics(t *testing.T) {
	reg, valve, _ := paperRegistry(t)
	report, err := Check(valve, reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["ok"] != true {
		t.Errorf("ok = %v", m["ok"])
	}
	if _, present := m["diagnostics"]; present {
		t.Error("diagnostics should be omitted when empty")
	}
}

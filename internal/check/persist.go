package check

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/shelley-go/shelley/internal/pipeline"
)

// ReportCodec returns the pipeline.Codec that serializes whole-class
// verification reports for a durable artifact store. Reports are pure
// data (names, messages, witness traces — no automata), marshal
// deterministically, and are exactly the artifact worth persisting: a
// resurrected report turns a cold restart's first Check into a decode
// instead of a full pipeline run. The decode side validates — durable
// bytes may be damaged in ways the store's frame checksum cannot see
// (a stale key mapping, a hand-edited file) — and any failure demotes
// the lookup to an ordinary rebuild.
func ReportCodec() pipeline.Codec { return reportCodec{} }

type reportCodec struct{}

func (reportCodec) EncodeArtifact(v any) ([]byte, error) {
	r, ok := v.(*Report)
	if !ok || r == nil {
		return nil, fmt.Errorf("check: cannot persist %T as a report", v)
	}
	return json.Marshal(r)
}

func (reportCodec) DecodeArtifact(b []byte) (any, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("check: persisted report: %w", err)
	}
	if r.Class == "" {
		return nil, errors.New("check: persisted report has no class name")
	}
	for _, d := range r.Diagnostics {
		if d.Kind == 0 || d.Message == "" {
			return nil, errors.New("check: persisted report has a malformed diagnostic")
		}
	}
	return &r, nil
}

package check

import (
	"context"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/regex"
)

// Option configures Check.
type Option func(*config)

type config struct {
	precise bool

	// cache memoizes the expensive pipeline stages; nil disables
	// memoization (see WithCache).
	cache *pipeline.Cache

	// ctx carries the active obs span (if any) so pipeline stages open
	// as children of the verification that triggered them. Never nil
	// after buildConfig.
	ctx context.Context
}

// Precise switches the composite analysis to *exit-aware* flattening:
// the behavior of each operation is split per return statement
// (core.ExtractPerExit) and paired with that exit's declared
// continuation set, eliminating the union-level over-approximation of
// the paper's model (DESIGN.md §6). Verdicts can only move from
// "violation" to "ok": the precise language is a subset of the default
// one.
func Precise() Option {
	return func(c *config) { c.precise = true }
}

func buildConfig(opts []Option) config {
	c := config{ctx: context.Background()}
	for _, apply := range opts {
		apply(&c)
	}
	if c.ctx == nil {
		c.ctx = context.Background()
	}
	return c
}

// flattenExitAware builds the exit-aware flat automaton: protocol states
// are "just created" plus one state per (operation, exit point); the
// edge entering operation n toward its exit e substitutes the behavior
// of exactly the paths that reach e's return statement.
//
// Operations whose body can fall off the end without returning
// contribute a pseudo-exit with the ongoing behavior and no
// continuations.
func flattenExitAware(cfg config, c *model.Class, alphabet []string) (*flatAutomaton, error) {
	// Like flatten, the per-exit substitution multiplies protocol edges
	// by behavior copies, so the flat state count is gated.
	gate := budget.NFAGate(cfg.ctx, "flatten")
	var gateErr error
	f := &flatAutomaton{alphabet: alphabet}
	addState := func(accepting bool) int {
		if gateErr == nil {
			gateErr = gate.Tick()
		}
		f.edges = append(f.edges, nil)
		f.accept = append(f.accept, accepting)
		return len(f.edges) - 1
	}

	start := addState(true) // never using the composite is valid
	f.start = start

	// Per-operation refinement and per-(op, exit) states.
	type exitInfo struct {
		state    int
		next     []string
		behavior *automata.DFA
	}
	exitsOf := make(map[string][]exitInfo, len(c.Operations))
	for _, op := range c.Operations {
		fine := core.ExtractPerExit(op.Method.Program)
		var infos []exitInfo
		for _, e := range op.Method.Exits {
			expr, ok := fine.ByExit[e.ID]
			if !ok {
				continue // unreachable return (e.g. dead code after return)
			}
			b, err := cfg.minimalDFA(regex.Simplify(expr))
			if err != nil {
				return nil, err
			}
			infos = append(infos, exitInfo{
				state:    addState(op.Final),
				next:     e.Next,
				behavior: b,
			})
		}
		if !regex.IsEmptyLanguage(regex.Simplify(fine.Ongoing)) {
			// Implicit exit: the body can complete without a return; no
			// operation may follow (Python returns None here, which
			// declares nothing).
			b, err := cfg.minimalDFA(regex.Simplify(fine.Ongoing))
			if err != nil {
				return nil, err
			}
			infos = append(infos, exitInfo{
				state:    addState(op.Final),
				behavior: b,
			})
		}
		exitsOf[op.Name] = infos
	}

	// connect wires source state s to every exit of operation n through
	// a fresh copy of that exit's behavior automaton.
	connect := func(s int, opName string) {
		if gateErr != nil {
			return
		}
		for _, info := range exitsOf[opName] {
			b := info.behavior
			copyNode := make([]int, b.NumStates())
			for i := 0; i < b.NumStates(); i++ {
				copyNode[i] = addState(false)
			}
			f.edges[s] = append(f.edges[s], flatEdge{to: copyNode[b.Start()], op: opName})
			for i := 0; i < b.NumStates(); i++ {
				for _, sym := range b.Alphabet() {
					if t := b.Target(i, sym); t >= 0 {
						f.edges[copyNode[i]] = append(f.edges[copyNode[i]], flatEdge{
							to:  copyNode[t],
							sym: sym,
						})
					}
				}
				if b.Accepting(i) {
					f.edges[copyNode[i]] = append(f.edges[copyNode[i]], flatEdge{to: info.state})
				}
			}
		}
	}

	for _, op := range c.Operations {
		if op.Initial {
			connect(start, op.Name)
		}
	}
	for _, op := range c.Operations {
		for _, info := range exitsOf[op.Name] {
			seen := make(map[string]struct{}, len(info.next))
			for _, n := range info.next {
				if _, dup := seen[n]; dup {
					continue
				}
				seen[n] = struct{}{}
				if c.Operation(n) == nil {
					continue // reported by Validate/definedness
				}
				connect(info.state, n)
			}
		}
	}
	if gateErr != nil {
		return nil, gateErr
	}
	return f, nil
}

// flattenWith picks the flattening mode.
func flattenWith(cfg config, c *model.Class, alphabet []string) (*flatAutomaton, error) {
	if cfg.precise {
		return flattenExitAware(cfg, c, alphabet)
	}
	return flatten(cfg, c, alphabet)
}

package check

import (
	"reflect"
	"strings"
	"testing"
)

// TestPreciseRemovesOverApproximation is the counterpart of
// TestOverApproximationDocumented: with exit-aware flattening, the
// trace that pairs open_a's clean branch with open_b's continuation is
// no longer in the flattened language, while the real traces remain.
func TestPreciseRemovesOverApproximation(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	flat, err := FlattenedDFA(bad, reg, Precise())
	if err != nil {
		t.Fatal(err)
	}
	real := []string{"a.test", "a.open", "b.test", "b.open", "a.close", "b.close"}
	if !flat.Accepts(real) {
		t.Error("precise language must keep the real trace")
	}
	realClean := []string{"a.test", "a.clean"}
	if !flat.Accepts(realClean) {
		t.Error("precise language must keep the clean-branch trace")
	}
	approx := []string{"a.test", "a.clean", "b.test", "b.open", "a.close", "b.close"}
	if flat.Accepts(approx) {
		t.Error("precise flattening must drop the clean-branch-then-open_b trace")
	}
	// Precise ⊆ union.
	union, err := FlattenedDFA(bad, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range [][]string{real, realClean, {"a.test"}, {"a.test", "a.open"}} {
		if flat.Accepts(tr) && !union.Accepts(tr) {
			t.Errorf("precise accepts %v but union does not — subset property violated", tr)
		}
	}
}

// TestPreciseStillFindsRealErrors: BadSector's genuine violations
// survive the precision upgrade with the same messages.
func TestPreciseStillFindsRealErrors(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	report, err := Check(bad, reg, Precise())
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, d := range report.Diagnostics {
		kinds = append(kinds, d.Kind)
	}
	if !reflect.DeepEqual(kinds, []Kind{KindInvalidSubsystemUsage, KindClaimFailure}) {
		t.Fatalf("kinds = %v:\n%s", kinds, report)
	}
	if !strings.Contains(report.Diagnostics[0].Message, "Counter example: open_a, a.test, a.open") {
		t.Errorf("usage message:\n%s", report.Diagnostics[0].Message)
	}
}

// TestPreciseAcceptsWhatUnionFalselyFlags constructs a composite that
// the union-level analysis flags spuriously and the exit-aware analysis
// verifies: the continuation differs per exit, and only the
// union-pairing is invalid.
func TestPreciseAcceptsWhatUnionFalselyFlags(t *testing.T) {
	// Device: probe has two exits — ["engage"] after d.arm, ["reset"]
	// after nothing. Using the union, behavior(probe) x continuation
	// pairs d.arm-less paths with engage (which needs the arm), a
	// spurious violation.
	src := `@sys
class Dev:
    @op_initial
    def arm(self):
        return ["fire", "disarm"]

    @op
    def fire(self):
        return ["disarm"]

    @op_final
    def disarm(self):
        return ["arm"]


@sys(["d"])
class Ctl:
    def __init__(self):
        self.d = Dev()

    @op_initial
    def probe(self):
        if self.hot():
            self.d.arm()
            return ["engage"]
        else:
            return ["reset"]

    @op_final
    def engage(self):
        self.d.fire()
        self.d.disarm()
        return []

    @op_final
    def reset(self):
        return []
`
	dev := classFrom(t, src, "Dev")
	ctl := classFrom(t, src, "Ctl")
	reg := NewRegistry(dev, ctl)

	// Union mode: spurious violation — probe's armless exit paired with
	// engage gives d.fire without d.arm; or the armed exit paired with
	// reset leaves the device armed.
	unionReport, err := Check(ctl, reg)
	if err != nil {
		t.Fatal(err)
	}
	foundUsage := false
	for _, d := range unionReport.Diagnostics {
		if d.Kind == KindInvalidSubsystemUsage {
			foundUsage = true
		}
	}
	if !foundUsage {
		t.Fatalf("expected the union analysis to over-report:\n%s", unionReport)
	}

	// Precise mode: every real pairing is fine, so Ctl verifies.
	preciseReport, err := Check(ctl, reg, Precise())
	if err != nil {
		t.Fatal(err)
	}
	if !preciseReport.OK() {
		t.Errorf("precise analysis should verify Ctl:\n%s", preciseReport)
	}
}

// TestPreciseHandlesFallThroughBodies: an operation that can complete
// without returning gets an implicit exit with no continuation.
func TestPreciseHandlesFallThroughBodies(t *testing.T) {
	src := `class Plain:
    def step(self):
        if self.go():
            return ["step"]
`
	// Unannotated class: step is initial+final; its body may fall off
	// the end (no else), which the precise flattener models as an
	// implicit continuation-free exit. Structure validation flags the
	// fall-through, but flattening must still be well-defined.
	c := classFrom(t, src, "Plain")
	d, err := FlattenedDFA(c, NewRegistry(c))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts([]string{"step"}) || !d.Accepts([]string{"step", "step"}) {
		t.Error("spec DFA should accept repeated steps")
	}
}

package check

import (
	"fmt"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/model"
)

// checkUsage verifies that every complete usage of the composite class
// drives each subsystem according to the subsystem's own protocol. When
// a violation exists, it reports the paper's error message with the
// shortest (alphabet-ordered) counterexample:
//
//	Error in specification: INVALID SUBSYSTEM USAGE
//	Counter example: open_a, a.test, a.open
//	Subsystems errors:
//	  * Valve 'a': test, >open< (not final)
func checkUsage(cfg config, c *model.Class, reg Registry, subs map[string]*model.Class, report *Report) error {
	alphabet, err := subsystemAlphabet(c, reg)
	if err != nil {
		return err
	}
	flat, flatDFA, err := flattened(cfg, c, reg, alphabet)
	if err != nil {
		return err
	}

	// Specification DFA per subsystem, qualified and completed over its
	// own alphabet.
	specs := make(map[string]*automata.DFA, len(subs))
	specAlphabet := make(map[string]map[string]struct{}, len(subs))
	for _, name := range c.SubsystemNames {
		spec, err := cfg.specDFA(subs[name], name)
		if err != nil {
			return err
		}
		specs[name] = spec
		set := make(map[string]struct{})
		for _, sym := range spec.Alphabet() {
			set[sym] = struct{}{}
		}
		specAlphabet[name] = set
	}

	// Find, per subsystem, the shortest complete flattened trace whose
	// projection the subsystem's spec rejects; then report the overall
	// shortest (ties broken by subsystem declaration order).
	var best []string
	found := false
	for _, name := range c.SubsystemNames {
		w, ok, err := shortestBadUsage(cfg, flatDFA, specs[name], specAlphabet[name])
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !found || len(w) < len(best) {
			best = w
			found = true
		}
	}
	if !found {
		return nil
	}

	// Annotate the trace with operation boundaries.
	events, err := flat.annotate(best)
	if err != nil {
		return err
	}
	var rendered []string
	for _, e := range events {
		if e.op != "" {
			rendered = append(rendered, e.op)
		} else {
			rendered = append(rendered, e.sym)
		}
	}

	// Per-subsystem error lines for this trace.
	var lines []string
	for _, name := range c.SubsystemNames {
		line, bad := subsystemErrorLine(c, name, specs[name], specAlphabet[name], best)
		if bad {
			lines = append(lines, line)
		}
	}

	report.Diagnostics = append(report.Diagnostics, Diagnostic{
		Kind:           KindInvalidSubsystemUsage,
		Counterexample: best,
		Message: fmt.Sprintf(
			"Error in specification: INVALID SUBSYSTEM USAGE\nCounter example: %s\nSubsystems errors:\n%s",
			traceString(rendered), strings.Join(lines, "\n")),
	})
	return nil
}

// shortestBadUsage searches the product of the flattened-behavior DFA
// and one subsystem's specification for the shortest complete usage
// whose projection the spec rejects. The spec only steps on its own
// symbols; other symbols leave it in place. Spec state -2 means the
// projection already died. The product BFS runs under cfg.ctx's
// MaxSearchNodes budget and observes cancellation.
func shortestBadUsage(cfg config, flat, spec *automata.DFA, specSyms map[string]struct{}) ([]string, bool, error) {
	gate := budget.SearchGate(cfg.ctx, "usage-search")
	type pair struct{ f, s int }
	type node struct {
		at    pair
		trace []string
	}
	start := pair{f: flat.Start(), s: spec.Start()}
	visited := map[pair]struct{}{start: {}}
	frontier := []node{{at: start}}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			if err := gate.Tick(); err != nil {
				return nil, false, err
			}
			if flat.Accepting(n.at.f) && (n.at.s < 0 || !spec.Accepting(n.at.s)) {
				return n.trace, true, nil
			}
			for _, sym := range flat.Alphabet() {
				ft := flat.Target(n.at.f, sym)
				if ft < 0 {
					continue
				}
				st := n.at.s
				if _, mine := specSyms[sym]; mine {
					if st >= 0 {
						st = spec.Target(st, sym)
					}
					if st < 0 {
						st = -2 // dead: projection invalid from here on
					}
				}
				np := pair{f: ft, s: st}
				if _, seen := visited[np]; seen {
					continue
				}
				visited[np] = struct{}{}
				trace := make([]string, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = sym
				next = append(next, node{at: np, trace: trace})
			}
		}
		frontier = next
	}
	return nil, false, nil
}

// subsystemErrorLine renders one "  * Valve 'a': test, >open< (not
// final)" line by replaying the projection of the trace on the
// subsystem's spec. The second result reports whether the subsystem's
// usage in the trace is actually invalid.
func subsystemErrorLine(c *model.Class, name string, spec *automata.DFA, specSyms map[string]struct{}, trace []string) (string, bool) {
	prefix := name + "."
	var shown []string
	state := spec.Start()
	bad := false
	for _, sym := range trace {
		if _, mine := specSyms[sym]; !mine {
			continue
		}
		unqualified := strings.TrimPrefix(sym, prefix)
		if state >= 0 {
			state = spec.Target(state, sym)
		}
		if state < 0 && !bad {
			// This step was not allowed by the protocol at all.
			shown = append(shown, ">"+unqualified+"< (invalid)")
			bad = true
			continue
		}
		shown = append(shown, unqualified)
	}
	if !bad {
		if state >= 0 && spec.Accepting(state) {
			return "", false
		}
		// The usage stops at a non-final operation: highlight the last
		// step the way the paper does. An empty projection cannot be
		// rejected (specs accept the empty usage), so shown is non-empty
		// here; guard anyway to stay total.
		if len(shown) == 0 {
			return "", false
		}
		last := shown[len(shown)-1]
		shown[len(shown)-1] = ">" + last + "< (not final)"
	}
	return fmt.Sprintf("  * %s '%s': %s", c.SubsystemTypes[name], name, strings.Join(shown, ", ")), true
}

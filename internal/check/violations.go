package check

import (
	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/model"
)

// Violation is one invalid complete usage of a composite found by
// UsageViolations.
type Violation struct {
	// Subsystem is the field whose protocol the trace violates.
	Subsystem string

	// Trace is the flattened subsystem trace (complete usage).
	Trace []string
}

// UsageViolations enumerates up to max distinct violating complete
// usages per subsystem, shortest first (breadth-first over the product
// automaton, alphabet-ordered, so the output is deterministic). It is
// the tooling counterpart of Check's single-counterexample diagnostic:
// IDE integrations and reports can show several distinct failures at
// once.
func UsageViolations(c *model.Class, reg Registry, max int, opts ...Option) ([]Violation, error) {
	if len(c.SubsystemNames) == 0 || max <= 0 {
		return nil, nil
	}
	cfg := buildConfig(opts)
	alphabet, err := subsystemAlphabet(c, reg)
	if err != nil {
		return nil, err
	}
	_, flatDFA, err := flattened(cfg, c, reg, alphabet)
	if err != nil {
		return nil, err
	}

	var out []Violation
	for _, name := range c.SubsystemNames {
		sub, err := reg.resolve(c, name)
		if err != nil {
			return nil, err
		}
		spec, err := cfg.specDFA(sub, name)
		if err != nil {
			return nil, err
		}
		specSyms := make(map[string]struct{})
		for _, sym := range spec.Alphabet() {
			specSyms[sym] = struct{}{}
		}
		for _, tr := range badUsages(flatDFA, spec, specSyms, max) {
			out = append(out, Violation{Subsystem: name, Trace: tr})
		}
	}
	return out, nil
}

// badUsages collects up to max violating complete usages for one
// subsystem. Unlike shortestBadUsage it keeps searching after the first
// hit, but still visits each product state once, so each reported trace
// reaches a distinct violating configuration.
func badUsages(flat, spec *automata.DFA, specSyms map[string]struct{}, max int) [][]string {
	type pair struct{ f, s int }
	type node struct {
		at    pair
		trace []string
	}
	start := pair{f: flat.Start(), s: spec.Start()}
	visited := map[pair]struct{}{start: {}}
	frontier := []node{{at: start}}
	var out [][]string
	for len(frontier) > 0 && len(out) < max {
		var next []node
		for _, n := range frontier {
			if flat.Accepting(n.at.f) && (n.at.s < 0 || !spec.Accepting(n.at.s)) {
				out = append(out, n.trace)
				if len(out) >= max {
					return out
				}
			}
			for _, sym := range flat.Alphabet() {
				ft := flat.Target(n.at.f, sym)
				if ft < 0 {
					continue
				}
				st := n.at.s
				if _, mine := specSyms[sym]; mine {
					if st >= 0 {
						st = spec.Target(st, sym)
					}
					if st < 0 {
						st = -2
					}
				}
				np := pair{f: ft, s: st}
				if _, seen := visited[np]; seen {
					continue
				}
				visited[np] = struct{}{}
				trace := make([]string, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = sym
				next = append(next, node{at: np, trace: trace})
			}
		}
		frontier = next
	}
	return out
}

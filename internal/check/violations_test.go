package check

import (
	"reflect"
	"testing"

	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/model"
)

func TestUsageViolationsEnumerates(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	vs, err := UsageViolations(bad, reg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("BadSector has violations")
	}
	// The first (shortest) is the paper's counterexample, for valve a.
	if vs[0].Subsystem != "a" || !reflect.DeepEqual(vs[0].Trace, []string{"a.test", "a.open"}) {
		t.Errorf("first violation = %+v", vs[0])
	}
	// Each reported trace really violates at runtime.
	classes := map[string]*model.Class{"Valve": reg["Valve"], "BadSector": bad}
	for _, v := range vs {
		if err := interp.ReplayFlat(bad, classes, v.Trace); err == nil {
			t.Errorf("violation %v replayed cleanly", v.Trace)
		}
	}
	// Traces are distinct.
	seen := map[string]bool{}
	for _, v := range vs {
		k := v.Subsystem + "|" + labelSetKey(v.Trace)
		if seen[k] {
			t.Errorf("duplicate violation %+v", v)
		}
		seen[k] = true
	}
}

func TestUsageViolationsRespectsMax(t *testing.T) {
	reg, _, bad := paperRegistry(t)
	one, err := UsageViolations(bad, reg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// max is per subsystem; only subsystem a has violations here.
	if len(one) != 1 {
		t.Errorf("violations = %d, want 1", len(one))
	}
	none, err := UsageViolations(bad, reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Errorf("max=0 should return nil")
	}
}

func TestUsageViolationsCleanClass(t *testing.T) {
	valve := classFrom(t, readTestdata(t, "valve.py"), "Valve")
	good := classFrom(t, readTestdata(t, "goodsector.py"), "GoodSector")
	reg := NewRegistry(valve, good)
	vs, err := UsageViolations(good, reg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("GoodSector should have no violations: %+v", vs)
	}
	// Base classes have no subsystems to violate.
	vs, err = UsageViolations(valve, reg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if vs != nil {
		t.Errorf("base class violations = %+v", vs)
	}
}

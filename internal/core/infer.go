// Package core implements the paper's primary contribution: behavior
// inference (Fig. 4), the function ⟦p⟧ = (r, s) that extracts, from a
// program of the imperative calculus, a regular expression describing
// every trace of method calls the program can produce.
//
// The pair (r, s) separates the two derivation statuses of the trace
// semantics: r is the regular expression of the ongoing behaviors
// (0 ⊢ l ∈ p) and s is a finite set of regular expressions, one per way
// the program can hit a `return` (R ⊢ l ∈ p). infer(p) merges them:
//
//	infer(p) = r + r'1 + ... + r'n    where ⟦p⟧ = (r, {r'1, ..., r'n})
//
// Soundness (Theorem 1) and completeness (Theorem 2) state that
// L(p) = L(infer(p)); Corollary 1 concludes that L(p) is a regular
// language. The paper mechanizes these proofs in Coq; this reproduction
// validates the same statements as executable property-based tests (see
// theorems_test.go) over randomly generated programs.
package core

import (
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
)

// Result is the pair ⟦p⟧ = (r, s).
type Result struct {
	// Ongoing is r: the regular expression of traces derivable with
	// status 0 (no return executed).
	Ongoing regex.Regex

	// Returned is s: the finite set of regular expressions of traces
	// derivable with status R, one entry per syntactic path to a return.
	// The set is deduplicated structurally and kept in discovery order,
	// which makes output deterministic.
	Returned []regex.Regex
}

// Extract computes ⟦p⟧ by structural recursion, mirroring Fig. 4 exactly.
// Expressions are built with raw (non-normalizing) constructors except
// for the unit law r·ε = ε·r = r, which the paper itself applies when
// displaying Example 3; this keeps the output shape byte-identical to
// the paper's.
func Extract(p ir.Program) Result {
	switch p := p.(type) {
	case ir.Call:
		// ⟦f()⟧ = (f, ∅)
		return Result{Ongoing: regex.Symbol(p.Label)}
	case ir.Skip:
		// ⟦skip⟧ = (ε, ∅)
		return Result{Ongoing: regex.Epsilon()}
	case ir.Return:
		// ⟦return⟧ = (∅, {ε})
		return Result{Ongoing: regex.Empty(), Returned: []regex.Regex{regex.Epsilon()}}
	case ir.Seq:
		// ⟦p1;p2⟧ = (r1·r2, {r1·r | r ∈ s2} ∪ s1)
		r1 := Extract(p.First)
		r2 := Extract(p.Second)
		ret := make([]regex.Regex, 0, len(r1.Returned)+len(r2.Returned))
		for _, r := range r2.Returned {
			ret = append(ret, cat(r1.Ongoing, r))
		}
		ret = append(ret, r1.Returned...)
		return Result{Ongoing: cat(r1.Ongoing, r2.Ongoing), Returned: dedup(ret)}
	case ir.If:
		// ⟦if(★){p1}else{p2}⟧ = (r1 + r2, s1 ∪ s2)
		r1 := Extract(p.Then)
		r2 := Extract(p.Else)
		ret := make([]regex.Regex, 0, len(r1.Returned)+len(r2.Returned))
		ret = append(ret, r1.Returned...)
		ret = append(ret, r2.Returned...)
		return Result{Ongoing: regex.RawAlt(r1.Ongoing, r2.Ongoing), Returned: dedup(ret)}
	case ir.Loop:
		// ⟦loop(★){p1}⟧ = (r1*, {r1*·r | r ∈ s1})
		r1 := Extract(p.Body)
		star := regex.RawStar(r1.Ongoing)
		ret := make([]regex.Regex, 0, len(r1.Returned))
		for _, r := range r1.Returned {
			ret = append(ret, cat(star, r))
		}
		return Result{Ongoing: star, Returned: dedup(ret)}
	}
	// Unknown node kinds have no derivations; treat as the empty program.
	return Result{Ongoing: regex.Empty()}
}

// Infer computes infer(p) = r + r'1 + ... + r'n. The expression preserves
// the paper's syntactic shape; use regex.Simplify for a normalized form.
func Infer(p ir.Program) regex.Regex {
	res := Extract(p)
	return res.Merge()
}

// InferSimplified is Infer followed by normalization. The two results
// denote the same language (regex.Simplify is language-preserving).
func InferSimplified(p ir.Program) regex.Regex {
	return regex.Simplify(Infer(p))
}

// Merge folds the pair (r, s) into the single expression infer returns.
func (res Result) Merge() regex.Regex {
	parts := make([]regex.Regex, 0, 1+len(res.Returned))
	parts = append(parts, res.Ongoing)
	parts = append(parts, res.Returned...)
	return regex.RawAlts(parts...)
}

// cat is concatenation with only the unit law applied (r·ε = ε·r = r),
// matching the level of simplification the paper uses when printing
// inference results (b·ε is shown as b, but b·∅ is kept verbatim).
func cat(a, b regex.Regex) regex.Regex {
	if _, ok := a.(regex.EmptyString); ok {
		return b
	}
	if _, ok := b.(regex.EmptyString); ok {
		return a
	}
	return regex.RawCat(a, b)
}

// dedup removes structural duplicates, keeping first occurrences: s is a
// set in the paper.
func dedup(rs []regex.Regex) []regex.Regex {
	if len(rs) < 2 {
		return rs
	}
	seen := make(map[string]struct{}, len(rs))
	out := rs[:0]
	for _, r := range rs {
		k := regex.Key(r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

package core

import (
	"testing"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
)

// paperExample is loop(★){ a(); if(★){ b(); return } else { c() } },
// shared by Examples 1–3 of the paper.
func paperExample() ir.Program {
	return ir.NewLoop(ir.NewSeq(
		ir.NewCall("a"),
		ir.NewIf(
			ir.NewSeq(ir.NewCall("b"), ir.NewReturn()),
			ir.NewCall("c"),
		),
	))
}

func TestExtractBaseCases(t *testing.T) {
	tests := []struct {
		name        string
		p           ir.Program
		wantOngoing string
		wantRet     []string
	}{
		{"call", ir.NewCall("f"), "f", nil},
		{"skip", ir.NewSkip(), "1", nil},
		{"return", ir.NewReturn(), "0", []string{"1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Extract(tt.p)
			if got.Ongoing.String() != tt.wantOngoing {
				t.Errorf("ongoing = %q, want %q", got.Ongoing.String(), tt.wantOngoing)
			}
			if len(got.Returned) != len(tt.wantRet) {
				t.Fatalf("returned = %v, want %v", got.Returned, tt.wantRet)
			}
			for i, r := range got.Returned {
				if r.String() != tt.wantRet[i] {
					t.Errorf("returned[%d] = %q, want %q", i, r.String(), tt.wantRet[i])
				}
			}
		})
	}
}

func TestExtractSeq(t *testing.T) {
	// ⟦a(); return; b()⟧: the b() is dead code after the return.
	p := ir.NewSeq(ir.NewCall("a"), ir.NewReturn(), ir.NewCall("b"))
	got := Extract(p)
	// Ongoing: a·(∅·b) — nothing can complete normally.
	if !regex.IsEmptyLanguage(got.Ongoing) {
		t.Errorf("ongoing %v should denote the empty language", got.Ongoing)
	}
	if len(got.Returned) != 1 {
		t.Fatalf("returned = %v, want one entry", got.Returned)
	}
	if !regex.Equivalent(got.Returned[0], regex.Symbol("a")) {
		t.Errorf("returned[0] = %v, want language {a}", got.Returned[0])
	}
}

func TestExtractIfUnionsReturns(t *testing.T) {
	p := ir.NewIf(
		ir.NewSeq(ir.NewCall("a"), ir.NewReturn()),
		ir.NewSeq(ir.NewCall("b"), ir.NewReturn()),
	)
	got := Extract(p)
	if len(got.Returned) != 2 {
		t.Fatalf("returned = %v, want two entries", got.Returned)
	}
}

func TestExtractDeduplicatesReturnSet(t *testing.T) {
	// Both branches return after the identical call: s is a *set*.
	p := ir.NewIf(
		ir.NewSeq(ir.NewCall("a"), ir.NewReturn()),
		ir.NewSeq(ir.NewCall("a"), ir.NewReturn()),
	)
	got := Extract(p)
	if len(got.Returned) != 1 {
		t.Fatalf("returned = %v, want deduplicated single entry", got.Returned)
	}
}

func TestPaperExample3Verbatim(t *testing.T) {
	// ⟦loop(★){a(); if(★){b(); return} else {c()}}⟧ =
	//   ((a·((b·∅)+c))*, {(a·((b·∅)+c))*·a·b})
	got := Extract(paperExample())
	if want := "(a . (b . 0 + c))*"; got.Ongoing.String() != want {
		t.Errorf("ongoing = %q, want %q", got.Ongoing.String(), want)
	}
	if len(got.Returned) != 1 {
		t.Fatalf("returned = %v, want exactly one behavior", got.Returned)
	}
	if want := "(a . (b . 0 + c))* . a . b"; got.Returned[0].String() != want {
		t.Errorf("returned[0] = %q, want %q", got.Returned[0].String(), want)
	}
}

func TestInferMergesOngoingAndReturned(t *testing.T) {
	got := Infer(paperExample())
	want := "(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b"
	if got.String() != want {
		t.Errorf("Infer = %q, want %q", got.String(), want)
	}
}

func TestInferSimplifiedPreservesLanguage(t *testing.T) {
	p := paperExample()
	raw := Infer(p)
	simp := InferSimplified(p)
	if eq := regex.Equivalent(raw, simp); !eq {
		t.Errorf("simplification changed the language: %v vs %v", raw, simp)
	}
	// The simplified form of Example 3 is (a·c)* + (a·c)*·a·b — the dead
	// b·∅ branch disappears.
	want := regex.MustParse("(a . c)* + (a . c)* . a . b")
	if !regex.Equivalent(simp, want) {
		t.Errorf("simplified = %v, want language of %v", simp, want)
	}
}

func TestMergeWithNoReturns(t *testing.T) {
	got := Extract(ir.NewCall("f")).Merge()
	if !regex.Equal(got, regex.Symbol("f")) {
		t.Errorf("Merge = %v, want f", got)
	}
}

func TestLoopReturnPrependsStar(t *testing.T) {
	// loop(★){ if(★){ return } else { a() } }
	p := ir.NewLoop(ir.NewIf(ir.NewReturn(), ir.NewCall("a")))
	got := Extract(p)
	if len(got.Returned) != 1 {
		t.Fatalf("returned = %v", got.Returned)
	}
	// Returned behavior: (∅+a)* (·ε) — i.e. any number of a's then return.
	want := regex.MustParse("a*")
	if !regex.Equivalent(got.Returned[0], want) {
		t.Errorf("returned[0] = %v, want language a*", got.Returned[0])
	}
	if !regex.Equivalent(got.Ongoing, want) {
		t.Errorf("ongoing = %v, want language a*", got.Ongoing)
	}
}

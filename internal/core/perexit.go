package core

import (
	"sort"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
)

// PerExitResult refines ⟦p⟧ = (r, s) by keeping the returned behaviors
// separated per return statement (exit point) instead of as one merged
// set. It powers the checker's optional *exit-aware* flattening mode
// (DESIGN.md §6): pairing each exit's behavior with that exit's declared
// continuation removes the union-level over-approximation while staying
// within the paper's regular-language framework.
//
// The paper's Extract is recovered by merging: the union of all
// ByExit entries equals the language of Extract(p).Returned, a fact the
// tests check on random programs.
type PerExitResult struct {
	// Ongoing is r: traces of runs that fall off the end of p without
	// returning.
	Ongoing regex.Regex

	// ByExit maps each exit ID (ir.Return.ExitID) to the expression of
	// the traces that reach that very return statement. A return inside
	// a loop contributes one entry whose expression covers every number
	// of prior iterations.
	ByExit map[int]regex.Regex
}

// ExitIDs returns the exit IDs present, sorted.
func (r PerExitResult) ExitIDs() []int {
	out := make([]int, 0, len(r.ByExit))
	for id := range r.ByExit {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ExtractPerExit computes the per-exit refinement of ⟦p⟧. The recursion
// mirrors Fig. 4, with the returned set indexed by exit ID and same-ID
// contributions merged by union (a single return statement can be
// reached along several paths).
func ExtractPerExit(p ir.Program) PerExitResult {
	switch p := p.(type) {
	case ir.Call:
		return PerExitResult{Ongoing: regex.Symbol(p.Label), ByExit: map[int]regex.Regex{}}
	case ir.Skip:
		return PerExitResult{Ongoing: regex.Epsilon(), ByExit: map[int]regex.Regex{}}
	case ir.Return:
		return PerExitResult{
			Ongoing: regex.Empty(),
			ByExit:  map[int]regex.Regex{p.ExitID: regex.Epsilon()},
		}
	case ir.Seq:
		r1 := ExtractPerExit(p.First)
		r2 := ExtractPerExit(p.Second)
		out := PerExitResult{
			Ongoing: regex.Concat(r1.Ongoing, r2.Ongoing),
			ByExit:  make(map[int]regex.Regex, len(r1.ByExit)+len(r2.ByExit)),
		}
		for id, r := range r2.ByExit {
			out.add(id, regex.Concat(r1.Ongoing, r))
		}
		for id, r := range r1.ByExit {
			out.add(id, r)
		}
		return out
	case ir.If:
		r1 := ExtractPerExit(p.Then)
		r2 := ExtractPerExit(p.Else)
		out := PerExitResult{
			Ongoing: regex.Union(r1.Ongoing, r2.Ongoing),
			ByExit:  make(map[int]regex.Regex, len(r1.ByExit)+len(r2.ByExit)),
		}
		for id, r := range r1.ByExit {
			out.add(id, r)
		}
		for id, r := range r2.ByExit {
			out.add(id, r)
		}
		return out
	case ir.Loop:
		r1 := ExtractPerExit(p.Body)
		star := regex.Star(r1.Ongoing)
		out := PerExitResult{
			Ongoing: star,
			ByExit:  make(map[int]regex.Regex, len(r1.ByExit)),
		}
		for id, r := range r1.ByExit {
			out.add(id, regex.Concat(star, r))
		}
		return out
	}
	return PerExitResult{Ongoing: regex.Empty(), ByExit: map[int]regex.Regex{}}
}

func (r *PerExitResult) add(id int, expr regex.Regex) {
	if prev, ok := r.ByExit[id]; ok {
		r.ByExit[id] = regex.Union(prev, expr)
		return
	}
	r.ByExit[id] = expr
}

// MergedReturns is the union over all exits — the language of the
// paper's s component.
func (r PerExitResult) MergedReturns() regex.Regex {
	parts := make([]regex.Regex, 0, len(r.ByExit)+1)
	parts = append(parts, regex.Empty())
	for _, id := range r.ExitIDs() {
		parts = append(parts, r.ByExit[id])
	}
	return regex.Union(parts...)
}

package core

import (
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
)

func TestExtractPerExitBasics(t *testing.T) {
	// a(); if(*){ b(); return#0 } else { c(); return#1 }
	p := ir.NewSeq(
		ir.NewCall("a"),
		ir.If{
			Then: ir.NewSeq(ir.NewCall("b"), ir.Return{ExitID: 0}),
			Else: ir.NewSeq(ir.NewCall("c"), ir.Return{ExitID: 1}),
		},
	)
	res := ExtractPerExit(p)
	if !regex.IsEmptyLanguage(res.Ongoing) {
		t.Errorf("ongoing = %v, want empty (both branches return)", res.Ongoing)
	}
	if got := res.ExitIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("exit ids = %v", got)
	}
	if !regex.Equivalent(res.ByExit[0], regex.Symbols("a", "b")) {
		t.Errorf("exit 0 = %v, want a·b", res.ByExit[0])
	}
	if !regex.Equivalent(res.ByExit[1], regex.Symbols("a", "c")) {
		t.Errorf("exit 1 = %v, want a·c", res.ByExit[1])
	}
}

func TestExtractPerExitSharedReturnInLoop(t *testing.T) {
	// loop(*){ a(); if(*){ return#0 } else { skip } }: exit 0 is
	// reachable after any positive number of a's... after at least one a.
	p := ir.NewLoop(ir.NewSeq(
		ir.NewCall("a"),
		ir.If{Then: ir.Return{ExitID: 0}, Else: ir.NewSkip()},
	))
	res := ExtractPerExit(p)
	want := regex.MustParse("a* . a")
	if !regex.Equivalent(res.ByExit[0], want) {
		t.Errorf("exit 0 = %v, want a+", res.ByExit[0])
	}
	if !regex.Equivalent(res.Ongoing, regex.MustParse("a*")) {
		t.Errorf("ongoing = %v", res.Ongoing)
	}
}

func TestExtractPerExitSameExitMultiplePaths(t *testing.T) {
	// if(*){ a() } else { b() }; return#0 — one return, two paths.
	p := ir.NewSeq(
		ir.NewIf(ir.NewCall("a"), ir.NewCall("b")),
		ir.Return{ExitID: 0},
	)
	res := ExtractPerExit(p)
	if len(res.ByExit) != 1 {
		t.Fatalf("exits = %v", res.ExitIDs())
	}
	if !regex.Equivalent(res.ByExit[0], regex.MustParse("a + b")) {
		t.Errorf("exit 0 = %v", res.ByExit[0])
	}
}

// TestPerExitRefinesExtract checks the refinement property on random
// programs: Ongoing agrees with Extract's ongoing component, and the
// union of the per-exit behaviors equals the language of Extract's
// merged returned set.
func TestPerExitRefinesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 400; i++ {
		p := randomWithExitIDs(rng, 3)
		coarse := Extract(p)
		fine := ExtractPerExit(p)

		if !regex.Equivalent(coarse.Ongoing, fine.Ongoing) {
			t.Fatalf("program %v: ongoing differs: %v vs %v", p, coarse.Ongoing, fine.Ongoing)
		}
		merged := regex.RawAlts(append([]regex.Regex{regex.Empty()}, coarse.Returned...)...)
		if !regex.Equivalent(merged, fine.MergedReturns()) {
			t.Fatalf("program %v: merged returns differ: %v vs %v", p, merged, fine.MergedReturns())
		}
	}
}

// randomWithExitIDs generates a random program and renumbers its return
// statements with unique exit IDs in source order, as lowering does.
func randomWithExitIDs(rng *rand.Rand, depth int) ir.Program {
	p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: depth, Labels: []string{"a", "b"}})
	next := 0
	var renumber func(ir.Program) ir.Program
	renumber = func(p ir.Program) ir.Program {
		switch p := p.(type) {
		case ir.Return:
			id := next
			next++
			return ir.Return{ExitID: id}
		case ir.Seq:
			first := renumber(p.First)
			return ir.Seq{First: first, Second: renumber(p.Second)}
		case ir.If:
			then := renumber(p.Then)
			return ir.If{Then: then, Else: renumber(p.Else)}
		case ir.Loop:
			return ir.Loop{Body: renumber(p.Body)}
		default:
			return p
		}
	}
	return renumber(p)
}

package core

import (
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
	"github.com/shelley-go/shelley/internal/trace"
)

// These tests are the executable counterpart of the paper's Coq
// mechanization. Theorem 1 (soundness) and Theorem 2 (completeness)
// together state L(p) = L(infer(p)); Corollary 1 concludes L(p) is
// regular. We validate the equality on (a) the paper's own example, (b) a
// corpus of structurally interesting programs, and (c) thousands of
// random programs, by enumerating both sides up to a trace-length bound
// and comparing the sets exactly.

const (
	theoremTraceBound = 4
	randomPrograms    = 1500
)

func interestingPrograms() []ir.Program {
	return []ir.Program{
		paperExample(),
		ir.NewSkip(),
		ir.NewReturn(),
		ir.NewCall("a"),
		ir.NewSeq(ir.NewCall("a"), ir.NewCall("b")),
		ir.NewSeq(ir.NewCall("a"), ir.NewReturn(), ir.NewCall("b")),
		ir.NewSeq(ir.NewReturn(), ir.NewReturn()),
		ir.NewIf(ir.NewReturn(), ir.NewSkip()),
		ir.NewIf(ir.NewSeq(ir.NewCall("a"), ir.NewReturn()), ir.NewCall("a")),
		ir.NewLoop(ir.NewSkip()),
		ir.NewLoop(ir.NewReturn()),
		ir.NewLoop(ir.NewCall("a")),
		ir.NewLoop(ir.NewIf(ir.NewReturn(), ir.NewCall("a"))),
		ir.NewLoop(ir.NewLoop(ir.NewCall("a"))),
		ir.NewLoop(ir.NewSeq(ir.NewCall("a"), ir.NewLoop(ir.NewIf(ir.NewCall("b"), ir.NewReturn())))),
		ir.NewSeq(ir.NewLoop(ir.NewCall("a")), ir.NewIf(ir.NewReturn(), ir.NewCall("b")), ir.NewCall("c")),
	}
}

// assertTheorems checks both directions of L(p) = L(infer(p)) up to the
// trace-length bound.
func assertTheorems(t *testing.T, p ir.Program, bound int) {
	t.Helper()
	inferred := Infer(p)

	semantic := trace.Language(p, bound)
	semanticSet := regex.TraceSet(semantic)

	enumerated := regex.Enumerate(inferred, bound)
	enumeratedSet := regex.TraceSet(enumerated)

	// Theorem 1 (soundness): every semantic trace is in infer(p).
	for _, l := range semantic {
		if _, ok := enumeratedSet[regex.TraceKey(l)]; !ok {
			t.Errorf("soundness violated for %v: trace %v ∈ L(p) but ∉ infer(p) = %v", p, l, inferred)
		}
	}
	// Theorem 2 (completeness): every trace of infer(p) is semantic.
	for _, l := range enumerated {
		if _, ok := semanticSet[regex.TraceKey(l)]; !ok {
			t.Errorf("completeness violated for %v: trace %v ∈ infer(p) = %v but ∉ L(p)", p, l, inferred)
		}
	}
}

func TestTheorem1SoundnessAndTheorem2Completeness(t *testing.T) {
	for _, p := range interestingPrograms() {
		assertTheorems(t, p, theoremTraceBound)
	}
}

func TestTheoremsOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	for i := 0; i < randomPrograms; i++ {
		p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: 3, Labels: []string{"a", "b"}})
		assertTheorems(t, p, 3)
		if t.Failed() {
			t.Fatalf("counterexample program #%d: %v", i, p)
		}
	}
}

func TestTheoremsOnDeepRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("deep random programs are slow")
	}
	rng := rand.New(rand.NewSource(406))
	for i := 0; i < 150; i++ {
		p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: 5, Labels: []string{"a", "b", "c"}})
		assertTheorems(t, p, 3)
		if t.Failed() {
			t.Fatalf("counterexample program #%d: %v", i, p)
		}
	}
}

// TestCorollary1Regularity checks that infer(p), a regular expression,
// recognizes L(p): the per-status components of ⟦p⟧ also match the
// per-status semantics, which is the stronger invariant behind the
// corollary.
func TestCorollary1PerStatusDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: 3, Labels: []string{"a", "b"}})
		res := Extract(p)
		returned := regex.RawAlts(append([]regex.Regex{regex.Empty()}, res.Returned...)...)

		for _, e := range trace.Enumerate(p, 3) {
			switch e.Status {
			case trace.Ongoing:
				if !regex.Match(res.Ongoing, e.Trace) {
					t.Fatalf("program %v: ongoing trace %v not matched by r = %v", p, e.Trace, res.Ongoing)
				}
			case trace.Returned:
				if !regex.Match(returned, e.Trace) {
					t.Fatalf("program %v: returned trace %v not matched by s = %v", p, e.Trace, res.Returned)
				}
			}
		}
		// Converse: expressions do not invent traces.
		for _, l := range regex.Enumerate(res.Ongoing, 2) {
			if !trace.In(trace.Ongoing, l, p) {
				t.Fatalf("program %v: r = %v matches %v which is not ongoing-derivable", p, res.Ongoing, l)
			}
		}
		for _, l := range regex.Enumerate(returned, 2) {
			if !trace.In(trace.Returned, l, p) {
				t.Fatalf("program %v: s = %v matches %v which is not returned-derivable", p, res.Returned, l)
			}
		}
	}
}

func TestInferredAlphabetSubsetOfProgramLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: 4})
		labels := make(map[string]struct{})
		for _, l := range ir.Labels(p) {
			labels[l] = struct{}{}
		}
		for _, f := range regex.Alphabet(Infer(p)) {
			if _, ok := labels[f]; !ok {
				t.Fatalf("program %v: inferred symbol %q not a program label", p, f)
			}
		}
	}
}

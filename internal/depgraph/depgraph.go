// Package depgraph implements method dependency extraction (§3.1 of the
// paper): a directed graph whose nodes are the entry point of each method
// and every exit point (one per return statement), and whose arcs are the
// ordering constraints induced by `return ["m1", ..., mn]` statements:
//
//   - the entry node of a method links to each of its exit nodes;
//   - each exit node links to the entry node of every method it names.
//
// Fig. 3 of the paper is the dependency graph of Listing 3.1; the viz
// package renders these graphs to DOT.
package depgraph

import (
	"fmt"
	"sort"

	"github.com/shelley-go/shelley/internal/lower"
)

// NodeKind distinguishes entry nodes from exit nodes.
type NodeKind int

const (
	// Entry is the single entry node of a method.
	Entry NodeKind = iota + 1

	// Exit is one return statement of a method.
	Exit
)

// Node is a graph node.
type Node struct {
	Kind   NodeKind
	Method string
	// ExitID is the return statement's index within the method (exit
	// nodes only).
	ExitID int
}

// Label renders the node for diagrams: "open_a" for entries,
// "open_a/exit0" for exits.
func (n Node) Label() string {
	if n.Kind == Entry {
		return n.Method
	}
	return fmt.Sprintf("%s/exit%d", n.Method, n.ExitID)
}

// Graph is a method dependency graph.
type Graph struct {
	nodes   []Node
	adj     [][]int
	entries map[string]int // method -> entry node id
	methods []string       // source order
}

// Build constructs the dependency graph of the given methods. Methods
// named in a return list that are not defined produce an error (the
// "method invocation analysis" of §3 checks definedness).
func Build(methods []*lower.Method) (*Graph, error) {
	g := &Graph{entries: make(map[string]int, len(methods))}

	for _, m := range methods {
		if _, dup := g.entries[m.Name]; dup {
			return nil, fmt.Errorf("depgraph: method %q defined twice", m.Name)
		}
		id := len(g.nodes)
		g.nodes = append(g.nodes, Node{Kind: Entry, Method: m.Name})
		g.adj = append(g.adj, nil)
		g.entries[m.Name] = id
		g.methods = append(g.methods, m.Name)
	}

	for _, m := range methods {
		entry := g.entries[m.Name]
		for _, e := range m.Exits {
			exitID := len(g.nodes)
			g.nodes = append(g.nodes, Node{Kind: Exit, Method: m.Name, ExitID: e.ID})
			g.adj = append(g.adj, nil)
			g.adj[entry] = append(g.adj[entry], exitID)
			for _, next := range e.Next {
				target, ok := g.entries[next]
				if !ok {
					return nil, fmt.Errorf("depgraph: method %q returns undefined method %q", m.Name, next)
				}
				g.adj[exitID] = append(g.adj[exitID], target)
			}
		}
	}
	return g, nil
}

// NumNodes returns the number of nodes (entries plus exits).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the node with the given id.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Methods returns the method names in source order. The caller must not
// mutate the returned slice.
func (g *Graph) Methods() []string { return g.methods }

// EntryNode returns the entry node id of the method and whether it
// exists.
func (g *Graph) EntryNode(method string) (int, bool) {
	id, ok := g.entries[method]
	return id, ok
}

// ExitNodes returns the exit node ids of the method in return order.
func (g *Graph) ExitNodes(method string) []int {
	entry, ok := g.entries[method]
	if !ok {
		return nil
	}
	return g.adj[entry]
}

// Successors returns the node ids reachable in one step from id. The
// caller must not mutate the returned slice.
func (g *Graph) Successors(id int) []int { return g.adj[id] }

// NextMethods returns the union of methods allowed after the given
// method (over all its exits), sorted.
func (g *Graph) NextMethods(method string) []string {
	set := make(map[string]struct{})
	for _, exit := range g.ExitNodes(method) {
		for _, succ := range g.adj[exit] {
			set[g.nodes[succ].Method] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ReachableFrom returns the method names reachable (by any path) from the
// entry nodes of the given methods, including those methods themselves,
// sorted.
func (g *Graph) ReachableFrom(methods []string) []string {
	seen := make(map[int]struct{})
	var stack []int
	for _, m := range methods {
		if id, ok := g.entries[m]; ok {
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		stack = append(stack, g.adj[id]...)
	}
	methodsOut := make(map[string]struct{})
	for id := range seen {
		methodsOut[g.nodes[id].Method] = struct{}{}
	}
	out := make([]string, 0, len(methodsOut))
	for m := range methodsOut {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ClassGraph is the class-level companion of the method graph, used by
// incremental re-verification to propagate invalidation between module
// generations: an arc runs from every composite class to each class it
// declares as a subsystem, so the reverse closure of a changed class is
// exactly the set of classes whose analysis could observe the change.
// Propagation is driven by protocol fingerprints (model.Class
// .ProtocolFingerprint): a dependent's analysis reads nothing deeper
// than a subsystem's protocol surface, so only protocol-level changes
// need to travel these arcs at all.
type ClassGraph struct {
	dependents map[string][]string // class -> classes that declare it as a subsystem
}

// BuildClasses constructs the class graph from the uses relation:
// uses[c] lists the class names c declares as subsystems (duplicates
// are fine; unknown names are kept, so a dependent of a class that was
// removed from the module is still reachable from the removed name).
func BuildClasses(uses map[string][]string) *ClassGraph {
	g := &ClassGraph{dependents: make(map[string][]string, len(uses))}
	for c, subs := range uses {
		for _, sub := range subs {
			g.dependents[sub] = append(g.dependents[sub], c)
		}
	}
	return g
}

// Dependents returns every class whose analysis could observe a change
// to any of the given classes: the given classes themselves plus all
// transitive reverse-dependents, sorted. It is the invalidation
// frontier of a protocol-level edit.
func (g *ClassGraph) Dependents(changed []string) []string {
	seen := make(map[string]struct{}, len(changed))
	stack := append([]string(nil), changed...)
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[c]; ok {
			continue
		}
		seen[c] = struct{}{}
		stack = append(stack, g.dependents[c]...)
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Edge is a directed arc, used by renderers.
type Edge struct{ From, To int }

// Edges returns all arcs in deterministic order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for from, succs := range g.adj {
		for _, to := range succs {
			out = append(out, Edge{From: from, To: to})
		}
	}
	return out
}

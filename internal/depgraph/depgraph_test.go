package depgraph

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/shelley-go/shelley/internal/lower"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func sectorMethods(t *testing.T) []*lower.Method {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "sector.py"))
	if err != nil {
		t.Fatal(err)
	}
	cls, err := pyparse.ParseClass(string(b), "Sector")
	if err != nil {
		t.Fatal(err)
	}
	var out []*lower.Method
	for _, fn := range cls.Methods {
		m, err := lower.LowerMethod(fn, lower.TrackedFields(nil))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

// TestFig3SectorGraph reproduces the structure of Fig. 3 of the paper:
// the dependency graph of Listing 3.1.
func TestFig3SectorGraph(t *testing.T) {
	g, err := Build(sectorMethods(t))
	if err != nil {
		t.Fatal(err)
	}

	// 4 methods → 4 entry nodes; open_a has 2 exits, clean_a 1,
	// close_a 1, open_b 2 → 6 exit nodes; 10 nodes total.
	if got := g.NumNodes(); got != 10 {
		t.Errorf("nodes = %d, want 10", got)
	}
	if got := g.Methods(); !reflect.DeepEqual(got, []string{"open_a", "clean_a", "close_a", "open_b"}) {
		t.Errorf("methods = %v", got)
	}

	// Entry of open_a links to its two exits.
	exits := g.ExitNodes("open_a")
	if len(exits) != 2 {
		t.Fatalf("open_a exits = %v", exits)
	}
	// Exit A returns ["close_a", "open_b"]: links to both entries.
	succA := g.Successors(exits[0])
	if len(succA) != 2 {
		t.Fatalf("exit A successors = %v", succA)
	}
	if g.Node(succA[0]).Method != "close_a" || g.Node(succA[1]).Method != "open_b" {
		t.Errorf("exit A targets = %v, %v", g.Node(succA[0]), g.Node(succA[1]))
	}
	// Exit B returns ["clean_a"].
	succB := g.Successors(exits[1])
	if len(succB) != 1 || g.Node(succB[0]).Method != "clean_a" {
		t.Errorf("exit B successors = %v", succB)
	}

	// open_b's exits both return []: no successors.
	for _, e := range g.ExitNodes("open_b") {
		if len(g.Successors(e)) != 0 {
			t.Errorf("open_b exit %d has successors", e)
		}
	}

	// Union next relation (the op-level edges of Fig. 3).
	if got := g.NextMethods("open_a"); !reflect.DeepEqual(got, []string{"clean_a", "close_a", "open_b"}) {
		t.Errorf("NextMethods(open_a) = %v", got)
	}
	if got := g.NextMethods("clean_a"); !reflect.DeepEqual(got, []string{"open_a"}) {
		t.Errorf("NextMethods(clean_a) = %v", got)
	}
	if got := g.NextMethods("open_b"); len(got) != 0 {
		t.Errorf("NextMethods(open_b) = %v", got)
	}
}

func TestEntryAndLabels(t *testing.T) {
	g, err := Build(sectorMethods(t))
	if err != nil {
		t.Fatal(err)
	}
	id, ok := g.EntryNode("open_a")
	if !ok {
		t.Fatal("open_a entry missing")
	}
	if got := g.Node(id).Label(); got != "open_a" {
		t.Errorf("entry label = %q", got)
	}
	exit0 := g.ExitNodes("open_a")[0]
	if got := g.Node(exit0).Label(); got != "open_a/exit0" {
		t.Errorf("exit label = %q", got)
	}
	if _, ok := g.EntryNode("nope"); ok {
		t.Error("EntryNode(nope) should be false")
	}
	if exits := g.ExitNodes("nope"); exits != nil {
		t.Error("ExitNodes(nope) should be nil")
	}
}

func TestReachableFrom(t *testing.T) {
	g, err := Build(sectorMethods(t))
	if err != nil {
		t.Fatal(err)
	}
	got := g.ReachableFrom([]string{"clean_a"})
	// clean_a → open_a → {close_a, open_b, clean_a} → all.
	want := []string{"clean_a", "close_a", "open_a", "open_b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReachableFrom = %v, want %v", got, want)
	}
	if got := g.ReachableFrom([]string{"open_b"}); !reflect.DeepEqual(got, []string{"open_b"}) {
		t.Errorf("ReachableFrom(open_b) = %v", got)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g, err := Build(sectorMethods(t))
	if err != nil {
		t.Fatal(err)
	}
	e1 := g.Edges()
	g2, err := Build(sectorMethods(t))
	if err != nil {
		t.Fatal(err)
	}
	e2 := g2.Edges()
	if !reflect.DeepEqual(e1, e2) {
		t.Error("Edges not deterministic across builds")
	}
	// Total arcs: entry→exit (6) + exit→entry (2+1+1+1+0+0 = 5).
	if len(e1) != 11 {
		t.Errorf("edges = %d, want 11", len(e1))
	}
}

func TestBuildErrors(t *testing.T) {
	parse := func(src string) []*lower.Method {
		cls, err := pyparse.ParseClass(src, "C")
		if err != nil {
			t.Fatal(err)
		}
		var out []*lower.Method
		for _, fn := range cls.Methods {
			m, err := lower.LowerMethod(fn, lower.TrackedFields(nil))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, m)
		}
		return out
	}
	// Undefined next method.
	if _, err := Build(parse("class C:\n    def m(self):\n        return [\"ghost\"]\n")); err == nil {
		t.Error("expected undefined-method error")
	}
	// Duplicate method names.
	dup := parse("class C:\n    def m(self):\n        return []\n    def m(self):\n        return []\n")
	if _, err := Build(dup); err == nil {
		t.Error("expected duplicate-method error")
	}
}

// TestClassGraphDependents pins the invalidation frontier of the
// class-level reverse dependency graph: seeds are always included,
// reverse arcs are followed transitively, diamonds dedupe, and names
// absent from the use map (removed classes) still seed their
// dependents.
func TestClassGraphDependents(t *testing.T) {
	uses := map[string][]string{
		"App":  {"CtlA", "CtlB"},
		"CtlA": {"Dev"},
		"CtlB": {"Dev"},
		"Aux":  {"Timer"},
	}
	g := BuildClasses(uses)

	cases := []struct {
		changed []string
		want    []string
	}{
		// Leaf change propagates through the diamond to the root once.
		{[]string{"Dev"}, []string{"App", "CtlA", "CtlB", "Dev"}},
		// Mid-level change reaches only its own dependents.
		{[]string{"CtlA"}, []string{"App", "CtlA"}},
		// A root has no dependents: frontier is itself.
		{[]string{"App"}, []string{"App"}},
		// Unknown (removed) class still invalidates nothing but itself.
		{[]string{"Gone"}, []string{"Gone"}},
		// A class only referenced, never defined as a user, seeds its
		// dependents too.
		{[]string{"Timer"}, []string{"Aux", "Timer"}},
		// Multiple seeds union.
		{[]string{"CtlB", "Timer"}, []string{"App", "Aux", "CtlB", "Timer"}},
		{nil, []string{}},
	}
	for _, tc := range cases {
		got := g.Dependents(tc.changed)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Dependents(%v) = %v, want %v", tc.changed, got, tc.want)
		}
	}
}

// Package hw emulates the microcontroller peripherals the paper's
// listings drive: general-purpose I/O pins on a board. The model
// analysis deliberately ignores pin values (§2), but the concrete
// executor (internal/pyexec) runs annotated classes against these pins,
// so examples and tests can observe the *physical* consequence of a
// protocol bug — e.g. a control pin left high when a valve object is
// abandoned.
package hw

import (
	"fmt"
	"sort"
	"sync"
)

// Mode is a pin direction.
type Mode int

const (
	// In is an input pin: the environment sets it, programs read it.
	In Mode = iota + 1

	// Out is an output pin: programs drive it.
	Out
)

// String names the mode like the MicroPython constants.
func (m Mode) String() string {
	switch m {
	case In:
		return "IN"
	case Out:
		return "OUT"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Board is a set of numbered pins. The zero value is not usable; call
// NewBoard. Boards are safe for concurrent use (a simulation may drive
// devices from several goroutines).
type Board struct {
	mu   sync.Mutex
	pins map[int]*Pin
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{pins: make(map[int]*Pin)}
}

// Pin returns the pin with the given id, creating it with the mode on
// first use. Re-acquiring an existing pin with a different mode
// reconfigures it (as MicroPython's Pin constructor does).
func (b *Board) Pin(id int, mode Mode) *Pin {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.pins[id]
	if !ok {
		p = &Pin{id: id, board: b}
		b.pins[id] = p
	}
	p.mode = mode
	return p
}

// SetInput drives an input pin from the environment (e.g. "the valve's
// status sensor reads open"). It creates the pin as In if absent.
func (b *Board) SetInput(id int, high bool) {
	p := b.Pin(id, In)
	b.mu.Lock()
	defer b.mu.Unlock()
	p.value = high
}

// Snapshot returns the current level of every pin, keyed by id.
func (b *Board) Snapshot() map[int]bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]bool, len(b.pins))
	for id, p := range b.pins {
		out[id] = p.value
	}
	return out
}

// HighPins returns the ids of pins currently high, sorted — convenient
// for test assertions ("only pin 29 may be high now").
func (b *Board) HighPins() []int {
	snap := b.Snapshot()
	var out []int
	for id, high := range snap {
		if high {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Pin is one GPIO pin.
type Pin struct {
	id    int
	mode  Mode
	value bool
	board *Board
}

// ID returns the pin number.
func (p *Pin) ID() int { return p.id }

// Mode returns the pin direction.
func (p *Pin) Mode() Mode { return p.mode }

// On drives an output pin high. Driving an input pin is an error (a
// wiring bug worth surfacing rather than masking).
func (p *Pin) On() error { return p.set(true) }

// Off drives an output pin low.
func (p *Pin) Off() error { return p.set(false) }

func (p *Pin) set(high bool) error {
	p.board.mu.Lock()
	defer p.board.mu.Unlock()
	if p.mode != Out {
		return fmt.Errorf("hw: pin %d is %v; cannot drive it", p.id, p.mode)
	}
	p.value = high
	return nil
}

// Value reads the pin level.
func (p *Pin) Value() bool {
	p.board.mu.Lock()
	defer p.board.mu.Unlock()
	return p.value
}

package hw

import (
	"reflect"
	"sync"
	"testing"
)

func TestPinLifecycle(t *testing.T) {
	b := NewBoard()
	p := b.Pin(27, Out)
	if p.ID() != 27 || p.Mode() != Out {
		t.Fatalf("pin = %d/%v", p.ID(), p.Mode())
	}
	if p.Value() {
		t.Error("pins start low")
	}
	if err := p.On(); err != nil {
		t.Fatal(err)
	}
	if !p.Value() {
		t.Error("pin should be high after On")
	}
	if err := p.Off(); err != nil {
		t.Fatal(err)
	}
	if p.Value() {
		t.Error("pin should be low after Off")
	}
}

func TestPinIdentityAndReconfiguration(t *testing.T) {
	b := NewBoard()
	p1 := b.Pin(5, Out)
	p2 := b.Pin(5, In)
	if p1 != p2 {
		t.Error("same id must return the same pin")
	}
	if p1.Mode() != In {
		t.Error("re-acquiring reconfigures the mode")
	}
}

func TestInputPinsDrivenByEnvironmentOnly(t *testing.T) {
	b := NewBoard()
	p := b.Pin(29, In)
	if err := p.On(); err == nil {
		t.Error("driving an input pin must error")
	}
	b.SetInput(29, true)
	if !p.Value() {
		t.Error("SetInput should raise the pin")
	}
	b.SetInput(29, false)
	if p.Value() {
		t.Error("SetInput should lower the pin")
	}
}

func TestSetInputCreatesPin(t *testing.T) {
	b := NewBoard()
	b.SetInput(3, true)
	if !b.Pin(3, In).Value() {
		t.Error("SetInput on a fresh id should create and raise the pin")
	}
}

func TestSnapshotAndHighPins(t *testing.T) {
	b := NewBoard()
	b.Pin(1, Out)
	p2 := b.Pin(2, Out)
	b.SetInput(3, true)
	if err := p2.On(); err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	want := map[int]bool{1: false, 2: true, 3: true}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("snapshot = %v, want %v", snap, want)
	}
	if got := b.HighPins(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("HighPins = %v", got)
	}
}

func TestModeString(t *testing.T) {
	if In.String() != "IN" || Out.String() != "OUT" {
		t.Error("mode names")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestBoardConcurrency(t *testing.T) {
	// Run with -race: concurrent drivers and readers must be safe.
	b := NewBoard()
	p := b.Pin(1, Out)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if n%2 == 0 {
					_ = p.On()
					_ = p.Off()
				} else {
					_ = p.Value()
					b.SetInput(2, j%2 == 0)
					_ = b.HighPins()
				}
			}
		}(i)
	}
	wg.Wait()
}

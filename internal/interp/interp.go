// Package interp executes Shelley-annotated classes: it is the runtime
// substrate that stands in for MicroPython running on a microcontroller.
// The paper's analysis is entirely about the order of method calls, so
// the simulator models exactly that: each Instance tracks the protocol
// state of one object (which operation ran last and which operations its
// chosen exit allows next), and a System executes composite operations'
// lowered bodies against live subsystem instances.
//
// Two call semantics are provided:
//
//   - concrete (default): each call picks one exit point (via a Chooser,
//     modelling the device's physical response) and the caller must
//     follow that exit's return list — exactly MicroPython runtime
//     behavior;
//   - angelic: a call is allowed if any exit of the previous operation
//     permits it — the union semantics of the class's specification DFA.
//     This is the membership oracle used by the L* learner
//     (internal/learn): the learned automaton then provably equals the
//     class's SpecDFA.
package interp

import (
	"fmt"
	"math/rand"

	"github.com/shelley-go/shelley/internal/model"
)

// Chooser resolves the nondeterministic choices of an execution: which
// exit point an operation takes, which branch an if(★) follows, and
// whether a loop(★) runs another iteration.
type Chooser interface {
	// Choose returns a value in [0, n). n is at least 1.
	Choose(n int) int
}

// FirstChoice always picks alternative 0: operations take their first
// exit, conditionals take the then-branch, loops exit immediately.
type FirstChoice struct{}

// Choose implements Chooser.
func (FirstChoice) Choose(int) int { return 0 }

// RandomChoice picks uniformly with a deterministic seed.
type RandomChoice struct {
	rng *rand.Rand
}

// NewRandomChoice returns a seeded random chooser.
func NewRandomChoice(seed int64) *RandomChoice {
	return &RandomChoice{rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Chooser.
func (r *RandomChoice) Choose(n int) int { return r.rng.Intn(n) }

// ScriptedChoice replays a fixed decision sequence, then falls back to
// zero. It makes executions fully reproducible in tests and examples.
type ScriptedChoice struct {
	script []int
	pos    int
}

// NewScriptedChoice returns a chooser that replays script.
func NewScriptedChoice(script ...int) *ScriptedChoice {
	return &ScriptedChoice{script: script}
}

// Choose implements Chooser.
func (s *ScriptedChoice) Choose(n int) int {
	if s.pos >= len(s.script) {
		return 0
	}
	v := s.script[s.pos] % n
	s.pos++
	return v
}

// ProtocolError reports a call that the object's protocol forbids; it is
// the runtime manifestation of the bugs Shelley catches statically.
type ProtocolError struct {
	// Class and Op identify the rejected call.
	Class string
	Op    string
	// Allowed lists the operations that were permitted instead.
	Allowed []string
	// Fresh reports whether the object had not been used yet (so only
	// initial operations were allowed).
	Fresh bool
}

func (e *ProtocolError) Error() string {
	when := "after the previous call"
	if e.Fresh {
		when = "on a fresh instance"
	}
	return fmt.Sprintf("interp: %s.%s is not allowed %s (allowed: %v)", e.Class, e.Op, when, e.Allowed)
}

// Instance simulates one object of an annotated class.
type Instance struct {
	class   *model.Class
	chooser Chooser
	angelic bool

	fresh   bool
	lastOp  *model.Operation
	allowed []string // names allowed next (concrete: the chosen exit's list)
	trace   []string
}

// Option configures an Instance or System.
type Option func(*options)

type options struct {
	chooser Chooser
	angelic bool
	maxIter int
}

// WithChooser sets the nondeterminism resolver (default FirstChoice).
func WithChooser(c Chooser) Option { return func(o *options) { o.chooser = c } }

// WithAngelic switches to the union (specification) call semantics.
func WithAngelic() Option { return func(o *options) { o.angelic = true } }

// WithMaxLoopIterations bounds loop(★) execution in System.Invoke
// (default 8).
func WithMaxLoopIterations(n int) Option { return func(o *options) { o.maxIter = n } }

func buildOptions(opts []Option) options {
	o := options{chooser: FirstChoice{}, maxIter: 8}
	for _, apply := range opts {
		apply(&o)
	}
	return o
}

// NewInstance creates a fresh simulated object.
func NewInstance(c *model.Class, opts ...Option) *Instance {
	o := buildOptions(opts)
	return &Instance{class: c, chooser: o.chooser, angelic: o.angelic, fresh: true}
}

// Class returns the instance's class.
func (i *Instance) Class() *model.Class { return i.class }

// Reset returns the instance to the fresh state, clearing the trace.
func (i *Instance) Reset() {
	i.fresh = true
	i.lastOp = nil
	i.allowed = nil
	i.trace = nil
}

// Allowed returns the operation names callable right now.
func (i *Instance) Allowed() []string {
	if i.fresh {
		return i.class.InitialOperations()
	}
	return append([]string(nil), i.allowed...)
}

// CanStop reports whether the object may be abandoned now: it is fresh,
// or its last operation was final.
func (i *Instance) CanStop() bool {
	if i.fresh {
		return true
	}
	return i.lastOp.Final
}

// Trace returns the calls made so far.
func (i *Instance) Trace() []string { return append([]string(nil), i.trace...) }

// Call invokes an operation. It returns the return list of the chosen
// exit (the operations the caller must choose from next), mirroring the
// MicroPython API of §2.1. In angelic mode the returned list is the
// union over all exits.
func (i *Instance) Call(opName string) ([]string, error) {
	op := i.class.Operation(opName)
	if op == nil {
		return nil, fmt.Errorf("interp: class %s has no operation %q", i.class.Name, opName)
	}
	if err := i.checkAllowed(opName); err != nil {
		return nil, err
	}
	i.trace = append(i.trace, opName)
	i.fresh = false
	i.lastOp = op

	if i.angelic {
		union := i.class.ProtocolEdges()[opName]
		i.allowed = union
		return append([]string(nil), union...), nil
	}
	exits := op.Method.Exits
	if len(exits) == 0 {
		i.allowed = nil
		return nil, nil
	}
	exit := exits[i.chooser.Choose(len(exits))]
	i.allowed = append([]string(nil), exit.Next...)
	return append([]string(nil), exit.Next...), nil
}

func (i *Instance) checkAllowed(opName string) error {
	for _, a := range i.Allowed() {
		if a == opName {
			return nil
		}
	}
	return &ProtocolError{
		Class:   i.class.Name,
		Op:      opName,
		Allowed: i.Allowed(),
		Fresh:   i.fresh,
	}
}

// Run replays a whole call sequence on a fresh instance and reports
// whether it is a valid *complete* usage: every call allowed and the
// final state stoppable. It is the membership oracle of the L* setup.
func Run(c *model.Class, trace []string, opts ...Option) bool {
	inst := NewInstance(c, opts...)
	for _, op := range trace {
		if _, err := inst.Call(op); err != nil {
			return false
		}
	}
	return inst.CanStop()
}

// RunPrefix reports whether every call of the sequence is allowed,
// regardless of whether the final state is stoppable. Equivalence
// oracles use it to prune trace subtrees that can never become valid.
func RunPrefix(c *model.Class, trace []string, opts ...Option) bool {
	inst := NewInstance(c, opts...)
	for _, op := range trace {
		if _, err := inst.Call(op); err != nil {
			return false
		}
	}
	return true
}

package interp

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func classFrom(t *testing.T, src, name string) *model.Class {
	t.Helper()
	ast, err := pyparse.ParseClass(src, name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.FromAST(ast)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func valve(t *testing.T) *model.Class { return classFrom(t, readTestdata(t, "valve.py"), "Valve") }

func TestInstanceLifecycle(t *testing.T) {
	v := NewInstance(valve(t))
	if !v.CanStop() {
		t.Error("fresh instance can stop")
	}
	if got := v.Allowed(); !reflect.DeepEqual(got, []string{"test"}) {
		t.Errorf("fresh Allowed = %v", got)
	}
	// FirstChoice picks test's first exit: ["open"].
	next, err := v.Call("test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"open"}) {
		t.Errorf("test returned %v", next)
	}
	if v.CanStop() {
		t.Error("after test (not final) the instance cannot stop")
	}
	if _, err := v.Call("open"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Call("close"); err != nil {
		t.Fatal(err)
	}
	if !v.CanStop() {
		t.Error("after close (final) the instance can stop")
	}
	if got := v.Trace(); !reflect.DeepEqual(got, []string{"test", "open", "close"}) {
		t.Errorf("trace = %v", got)
	}
}

func TestInstanceRejectsProtocolViolations(t *testing.T) {
	v := NewInstance(valve(t))
	// open is not initial.
	_, err := v.Call("open")
	var perr *ProtocolError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *ProtocolError", err)
	}
	if !perr.Fresh || perr.Op != "open" || perr.Class != "Valve" {
		t.Errorf("perr = %+v", perr)
	}
	if !strings.Contains(perr.Error(), "fresh instance") {
		t.Errorf("message = %q", perr.Error())
	}
	// After the error the state is unchanged: test is still callable.
	if _, err := v.Call("test"); err != nil {
		t.Fatal(err)
	}
	// FirstChoice chose ["open"], so clean is rejected.
	if _, err := v.Call("clean"); err == nil {
		t.Error("clean should be rejected after test chose the open exit")
	}
}

func TestInstanceUnknownOperation(t *testing.T) {
	v := NewInstance(valve(t))
	if _, err := v.Call("explode"); err == nil {
		t.Error("unknown operation should error")
	}
}

func TestScriptedChooserDrivesExits(t *testing.T) {
	// Script: test takes exit 1 (["clean"]).
	v := NewInstance(valve(t), WithChooser(NewScriptedChoice(1)))
	next, err := v.Call("test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"clean"}) {
		t.Errorf("test returned %v, want [clean]", next)
	}
	if _, err := v.Call("clean"); err != nil {
		t.Fatal(err)
	}
	if !v.CanStop() {
		t.Error("clean is final")
	}
}

func TestAngelicModeUsesUnionSemantics(t *testing.T) {
	v := NewInstance(valve(t), WithAngelic())
	next, err := v.Call("test")
	if err != nil {
		t.Fatal(err)
	}
	// Union of test's exits: clean + open (sorted).
	if !reflect.DeepEqual(next, []string{"clean", "open"}) {
		t.Errorf("angelic test returned %v", next)
	}
	if _, err := v.Call("clean"); err != nil {
		t.Errorf("angelic mode should allow clean after test: %v", err)
	}
}

func TestRunMatchesSpecDFA(t *testing.T) {
	c := valve(t)
	spec, err := c.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	// Every trace up to length 4: Run (angelic) must agree with the
	// specification automaton.
	alphabet := spec.Alphabet()
	frontier := [][]string{nil}
	for depth := 0; depth <= 4; depth++ {
		var next [][]string
		for _, tr := range frontier {
			if got, want := Run(c, tr, WithAngelic()), spec.Accepts(tr); got != want {
				t.Errorf("Run(%v) = %v, spec = %v", tr, got, want)
			}
			for _, a := range alphabet {
				next = append(next, append(append([]string{}, tr...), a))
			}
		}
		frontier = next
	}
}

func TestRunPrefix(t *testing.T) {
	c := valve(t)
	if !RunPrefix(c, []string{"test", "open"}, WithAngelic()) {
		t.Error("test,open is a valid prefix")
	}
	if Run(c, []string{"test", "open"}, WithAngelic()) {
		t.Error("test,open is not a complete usage (open not final)")
	}
	if RunPrefix(c, []string{"open"}, WithAngelic()) {
		t.Error("open is not a valid prefix")
	}
}

func TestReset(t *testing.T) {
	v := NewInstance(valve(t))
	if _, err := v.Call("test"); err != nil {
		t.Fatal(err)
	}
	v.Reset()
	if !v.CanStop() || len(v.Trace()) != 0 {
		t.Error("Reset should restore the fresh state")
	}
	if _, err := v.Call("test"); err != nil {
		t.Errorf("after Reset, test is allowed again: %v", err)
	}
}

func TestSystemRunsGoodSector(t *testing.T) {
	v := valve(t)
	good := classFrom(t, readTestdata(t, "goodsector.py"), "GoodSector")
	classes := map[string]*model.Class{"Valve": v, "GoodSector": good}

	// FirstChoice: both matches take their first branch (open paths).
	s, err := NewSystem(good, classes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Invoke("run"); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []string{"b.test", "b.open", "a.test", "a.open", "a.close", "b.close"}
	if got := s.Trace(); !reflect.DeepEqual(got, want) {
		t.Errorf("flat trace = %v, want %v", got, want)
	}
	if !s.CanStop() {
		t.Errorf("system should be stoppable; dangling: %v", s.DanglingSubsystems())
	}
	if got := s.OpsTrace(); !reflect.DeepEqual(got, []string{"run"}) {
		t.Errorf("ops trace = %v", got)
	}
}

func TestSystemBadSectorLeavesValveOpen(t *testing.T) {
	v := valve(t)
	bad := classFrom(t, readTestdata(t, "badsector.py"), "BadSector")
	classes := map[string]*model.Class{"Valve": v, "BadSector": bad}

	s, err := NewSystem(bad, classes)
	if err != nil {
		t.Fatal(err)
	}
	// FirstChoice: open_a takes the ["open"] branch → a.test, a.open,
	// and open_a is final, so the user may stop... leaving valve a open.
	if err := s.Invoke("open_a"); err != nil {
		t.Fatalf("open_a: %v", err)
	}
	if s.CanStop() {
		t.Error("valve a is open; the system must not be stoppable")
	}
	if got := s.DanglingSubsystems(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("dangling = %v", got)
	}
}

func TestSystemRejectsCompositeProtocolViolation(t *testing.T) {
	v := valve(t)
	bad := classFrom(t, readTestdata(t, "badsector.py"), "BadSector")
	classes := map[string]*model.Class{"Valve": v, "BadSector": bad}
	s, err := NewSystem(bad, classes)
	if err != nil {
		t.Fatal(err)
	}
	// open_b is not initial.
	if err := s.Invoke("open_b"); err == nil {
		t.Error("open_b on a fresh BadSector should be rejected")
	}
	if err := s.Invoke("nope"); err == nil {
		t.Error("unknown composite operation should be rejected")
	}
}

func TestSystemLoopBounded(t *testing.T) {
	v := valve(t)
	src := `@sys(["w"])
class Looper:
    def __init__(self):
        self.w = Valve()

    @op_initial_final
    def spin(self):
        while self.go():
            match self.w.test():
                case ["open"]:
                    self.w.open()
                    self.w.close()
                case ["clean"]:
                    self.w.clean()
        return []
`
	looper := classFrom(t, src, "Looper")
	classes := map[string]*model.Class{"Valve": v, "Looper": looper}
	// Chooser: loop continues (0) then body branches... use random with
	// a fixed seed and just require termination + protocol safety.
	s, err := NewSystem(looper, classes, WithChooser(NewRandomChoice(7)), WithMaxLoopIterations(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Invoke("spin"); err != nil {
		t.Fatalf("spin: %v", err)
	}
}

func TestReplayFlatValidatesCounterexamples(t *testing.T) {
	v := valve(t)
	bad := classFrom(t, readTestdata(t, "badsector.py"), "BadSector")
	classes := map[string]*model.Class{"Valve": v, "BadSector": bad}

	// The checker's usage counterexample: a.test, a.open leaves valve a
	// in a non-final state.
	err := ReplayFlat(bad, classes, []string{"a.test", "a.open"})
	if err == nil {
		t.Fatal("replay should detect the dangling valve")
	}
	if !strings.Contains(err.Error(), "non-final state") {
		t.Errorf("err = %v", err)
	}

	// A correct complete usage replays cleanly.
	good := []string{"a.test", "a.open", "a.close"}
	if err := ReplayFlat(bad, classes, good); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}

	// An outright illegal step is also caught.
	err = ReplayFlat(bad, classes, []string{"a.open"})
	var perr *ProtocolError
	if !errors.As(err, &perr) {
		t.Errorf("err = %v, want ProtocolError", err)
	}
}

func TestChoosers(t *testing.T) {
	if (FirstChoice{}).Choose(5) != 0 {
		t.Error("FirstChoice should pick 0")
	}
	s := NewScriptedChoice(2, 1)
	if s.Choose(3) != 2 || s.Choose(3) != 1 || s.Choose(3) != 0 {
		t.Error("ScriptedChoice should replay then default to 0")
	}
	r := NewRandomChoice(1)
	for i := 0; i < 100; i++ {
		if v := r.Choose(3); v < 0 || v > 2 {
			t.Fatalf("RandomChoice out of range: %d", v)
		}
	}
}

func TestSystemBacktracksAcrossWrongBranch(t *testing.T) {
	v := valve(t)
	// The chooser prefers the else-branch (script 1), which calls
	// a.clean; but the valve's test (script continues with 0s) takes the
	// ["open"] exit, so clean is rejected and the runtime must backtrack
	// into the then-branch.
	src := `@sys(["a"])
class Twisty:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
`
	twisty := classFrom(t, src, "Twisty")
	classes := map[string]*model.Class{"Valve": v, "Twisty": twisty}
	// Script: first decision is the valve's exit in a.test? Order of
	// choices: the If branch decision comes first (program structure),
	// then the exit choice when a.test runs. Prefer the else branch (1)
	// while the valve keeps taking exit 0 (open).
	s, err := NewSystem(twisty, classes, WithChooser(NewScriptedChoice(1, 0, 0, 0, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Invoke("go"); err != nil {
		t.Fatalf("backtracking should recover: %v", err)
	}
	got := s.Trace()
	want := []string{"a.test", "a.open", "a.close"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestSystemLoopBacktrackStopsIteration(t *testing.T) {
	v := valve(t)
	// Loop body calls a.open unconditionally; after the first full
	// cycle the valve expects test, so a second iteration would fail —
	// the runtime backtracks and exits the loop instead of erroring.
	src := `@sys(["a"])
class Once:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        self.a.test()
        while self.more():
            self.a.open()
        self.a.close()
        return []
`
	once := classFrom(t, src, "Once")
	classes := map[string]*model.Class{"Valve": v, "Once": once}
	// Chooser: always continue the loop (0 = continue in loop decision),
	// valve exits are 0 (open path).
	s, err := NewSystem(once, classes, WithChooser(NewScriptedChoice(0, 0, 0, 0, 0, 0, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Invoke("go"); err != nil {
		t.Fatalf("loop backtracking should recover: %v", err)
	}
	want := []string{"a.test", "a.open", "a.close"}
	if !reflect.DeepEqual(s.Trace(), want) {
		t.Errorf("trace = %v, want %v", s.Trace(), want)
	}
}

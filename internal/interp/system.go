package interp

import (
	"errors"
	"fmt"
	"strings"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/model"
)

// System executes a composite class against live subsystem instances:
// invoking a composite operation runs its lowered body (the imperative
// calculus of §3.2), resolving if(★)/loop(★) through the chooser and
// forwarding every tracked call to the corresponding subsystem instance
// in concrete mode. A subsystem call that violates the subsystem's
// protocol surfaces as a *ProtocolError — the runtime failure that
// Shelley's static usage check predicts.
type System struct {
	root    *model.Class
	rootRef *Instance
	subs    map[string]*Instance
	opts    options
	trace   []string // flattened subsystem trace
}

// NewSystem instantiates the composite class and one instance per
// declared subsystem. The classes map resolves subsystem type names.
func NewSystem(c *model.Class, classes map[string]*model.Class, opts ...Option) (*System, error) {
	o := buildOptions(opts)
	s := &System{
		root:    c,
		rootRef: NewInstance(c, opts...),
		subs:    make(map[string]*Instance, len(c.SubsystemNames)),
		opts:    o,
	}
	for _, name := range c.SubsystemNames {
		typeName := c.SubsystemTypes[name]
		subClass, ok := classes[typeName]
		if !ok {
			return nil, fmt.Errorf("interp: class %s for subsystem %q not provided", typeName, name)
		}
		s.subs[name] = NewInstance(subClass, opts...)
	}
	return s, nil
}

// Subsystem returns the live instance behind the given field name.
func (s *System) Subsystem(name string) *Instance { return s.subs[name] }

// Trace returns the flattened subsystem trace so far (qualified names,
// e.g. "a.test").
func (s *System) Trace() []string { return append([]string(nil), s.trace...) }

// OpsTrace returns the composite operations invoked so far.
func (s *System) OpsTrace() []string { return s.rootRef.Trace() }

// Allowed returns the composite operations callable now.
func (s *System) Allowed() []string { return s.rootRef.Allowed() }

// CanStop reports whether the whole system may be abandoned now: the
// composite protocol permits stopping and every subsystem is stoppable.
func (s *System) CanStop() bool {
	if !s.rootRef.CanStop() {
		return false
	}
	for _, name := range s.root.SubsystemNames {
		if !s.subs[name].CanStop() {
			return false
		}
	}
	return true
}

// DanglingSubsystems lists subsystems currently stuck in a non-final
// state — e.g. a valve left open.
func (s *System) DanglingSubsystems() []string {
	var out []string
	for _, name := range s.root.SubsystemNames {
		if !s.subs[name].CanStop() {
			out = append(out, name)
		}
	}
	return out
}

// Invoke runs one composite operation end to end.
func (s *System) Invoke(opName string) error {
	op := s.root.Operation(opName)
	if op == nil {
		return fmt.Errorf("interp: class %s has no operation %q", s.root.Name, opName)
	}
	// The composite's own protocol applies to the caller of the system.
	if _, err := s.rootRef.Call(opName); err != nil {
		return err
	}
	_, err := s.exec(op.Method.Program)
	return err
}

// exec runs a program; the boolean result reports whether a return was
// executed (short-circuiting the rest of a sequence).
func (s *System) exec(p ir.Program) (returned bool, err error) {
	switch p := p.(type) {
	case ir.Skip:
		return false, nil
	case ir.Return:
		return true, nil
	case ir.Call:
		return false, s.call(p.Label)
	case ir.Seq:
		returned, err := s.exec(p.First)
		if err != nil || returned {
			return returned, err
		}
		return s.exec(p.Second)
	case ir.If:
		// In MicroPython the branch is decided by the value a subsystem
		// call returned (the match statement of §2.2); that value was
		// erased by lowering, so the simulator picks a branch through
		// the chooser and *backtracks* when the guess conflicts with the
		// exit the subsystem actually took. A program that passed the
		// exit-point exhaustiveness check always has a conforming
		// branch.
		first, second := p.Then, p.Else
		if s.opts.chooser.Choose(2) == 1 {
			first, second = second, first
		}
		snap := s.snapshot()
		returned, err := s.exec(first)
		var perr *ProtocolError
		if err != nil && errors.As(err, &perr) {
			s.restore(snap)
			return s.exec(second)
		}
		return returned, err
	case ir.Loop:
		for iter := 0; iter < s.opts.maxIter; iter++ {
			if s.opts.chooser.Choose(2) == 1 {
				return false, nil // exit the loop
			}
			snap := s.snapshot()
			returned, err := s.exec(p.Body)
			var perr *ProtocolError
			if err != nil && errors.As(err, &perr) {
				// The chosen iteration path conflicts with the actual
				// subsystem exits; a conforming runtime would simply
				// stop iterating here.
				s.restore(snap)
				return false, nil
			}
			if err != nil || returned {
				return returned, err
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("interp: unsupported program node %T", p)
	}
}

// snapshot captures the mutable state of the whole system for
// backtracking.
type systemSnapshot struct {
	trace []string
	subs  map[string]instanceSnapshot
}

type instanceSnapshot struct {
	fresh   bool
	lastOp  *model.Operation
	allowed []string
	trace   []string
}

func (s *System) snapshot() systemSnapshot {
	snap := systemSnapshot{
		trace: append([]string(nil), s.trace...),
		subs:  make(map[string]instanceSnapshot, len(s.subs)),
	}
	for name, inst := range s.subs {
		snap.subs[name] = instanceSnapshot{
			fresh:   inst.fresh,
			lastOp:  inst.lastOp,
			allowed: append([]string(nil), inst.allowed...),
			trace:   append([]string(nil), inst.trace...),
		}
	}
	return snap
}

func (s *System) restore(snap systemSnapshot) {
	s.trace = snap.trace
	for name, is := range snap.subs {
		inst := s.subs[name]
		inst.fresh = is.fresh
		inst.lastOp = is.lastOp
		inst.allowed = is.allowed
		inst.trace = is.trace
	}
}

func (s *System) call(label string) error {
	i := strings.IndexByte(label, '.')
	if i <= 0 {
		return fmt.Errorf("interp: malformed call label %q", label)
	}
	sub, method := label[:i], label[i+1:]
	inst, ok := s.subs[sub]
	if !ok {
		return fmt.Errorf("interp: no subsystem %q", sub)
	}
	if _, err := inst.Call(method); err != nil {
		return err
	}
	s.trace = append(s.trace, label)
	return nil
}

// ReplayFlat drives the subsystem instances directly with a flattened
// qualified trace (as produced by the checker's counterexamples) and
// returns the first protocol error, or nil when every step is allowed.
// It validates that static counterexamples are real runtime violations
// and that model-sampled traces of verified classes replay cleanly.
//
// Replay always uses the angelic (specification) call semantics: the
// question is whether the *protocol* permits the trace, not whether a
// particular simulated device would happen to take matching exits.
func ReplayFlat(c *model.Class, classes map[string]*model.Class, trace []string, opts ...Option) error {
	s, err := NewSystem(c, classes, append(append([]Option(nil), opts...), WithAngelic())...)
	if err != nil {
		return err
	}
	for _, label := range trace {
		if err := s.call(label); err != nil {
			return err
		}
	}
	if dangling := s.DanglingSubsystems(); len(dangling) > 0 {
		return fmt.Errorf("interp: subsystems %v left in a non-final state", dangling)
	}
	return nil
}

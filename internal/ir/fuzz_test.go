package ir

import "testing"

// FuzzParse checks the calculus parser's totality and print/parse
// stability.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"", "skip", "return", "a()", "a(); b()",
		"if(*) { a() } else { skip }",
		"loop(*) { a(); if(*) { b(); return } else { c() } }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		printed := p.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q does not reparse: %v", printed, err)
		}
		if back.String() != printed {
			t.Fatalf("print/parse not stable: %q -> %q", printed, back.String())
		}
	})
}

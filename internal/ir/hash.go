package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Content-addressed hashing of programs. The memoizing analysis cache
// (internal/pipeline) keys every derived artifact — inferred behaviors,
// compiled automata, verification reports — by a stable hash of the IR
// it was computed from, so two loads of the same source share work while
// any structural difference (even a language-preserving one, such as
// `a()` vs `a(); skip`) yields a distinct key. Keys are therefore
// *syntactic*, never semantic: aliasing two different programs to one
// cache entry would be a soundness bug, whereas splitting one language
// across two entries merely costs a recomputation.
//
// The encoding is an injective preorder serialization: every node is
// tagged, tags determine arity, and call labels are length-prefixed, so
// distinct trees never share an encoding. It deliberately excludes
// Return.ExitID, which carries no syntax (String does not print it);
// exit metadata is hashed separately by model.Class.Fingerprint.

// Canonical node tags. Single bytes keep the encoding compact; the
// label length prefix after tagCall makes the stream self-delimiting.
const (
	tagCall   = 'C'
	tagSkip   = 'S'
	tagReturn = 'R'
	tagSeq    = 'Q'
	tagIf     = 'I'
	tagLoop   = 'L'
)

// AppendCanonical appends the injective binary encoding of p to dst and
// returns the extended slice.
func AppendCanonical(dst []byte, p Program) []byte {
	switch p := p.(type) {
	case Call:
		dst = append(dst, tagCall)
		dst = binary.AppendUvarint(dst, uint64(len(p.Label)))
		return append(dst, p.Label...)
	case Skip:
		return append(dst, tagSkip)
	case Return:
		return append(dst, tagReturn)
	case Seq:
		dst = append(dst, tagSeq)
		dst = AppendCanonical(dst, p.First)
		return AppendCanonical(dst, p.Second)
	case If:
		dst = append(dst, tagIf)
		dst = AppendCanonical(dst, p.Then)
		return AppendCanonical(dst, p.Else)
	case Loop:
		dst = append(dst, tagLoop)
		return AppendCanonical(dst, p.Body)
	}
	// Unknown implementations of Program cannot occur (the interface's
	// unexported method closes the set), but stay total.
	return append(dst, '?')
}

// Hash returns a fast 64-bit FNV-1a hash of the canonical encoding of
// p. It is stable across processes and Go versions (no map iteration,
// no per-process seeding), so it is safe to use in persistent keys.
func Hash(p Program) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range AppendCanonical(nil, p) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Fingerprint returns a 128-bit content fingerprint of p as 32 hex
// digits (the truncated SHA-256 of the canonical encoding). The
// pipeline cache uses Fingerprint rather than Hash for its keys: at 128
// bits, accidental collisions between distinct programs are outside the
// realm of reachable workloads, which the differential test layer
// relies on.
func Fingerprint(p Program) string {
	sum := sha256.Sum256(AppendCanonical(nil, p))
	return hex.EncodeToString(sum[:16])
}

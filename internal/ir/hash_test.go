package ir

import "testing"

func TestHashIgnoresExitID(t *testing.T) {
	// ExitID carries no syntax (String does not print it); the cache key
	// must treat programs that differ only in ExitID as identical.
	a := Seq{First: Call{Label: "f"}, Second: Return{ExitID: 1}}
	b := Seq{First: Call{Label: "f"}, Second: Return{ExitID: 99}}
	if Hash(a) != Hash(b) || Fingerprint(a) != Fingerprint(b) {
		t.Fatal("ExitID leaked into the content hash")
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	cases := []struct{ a, b string }{
		{"a()", "a(); skip"},                    // language-equal, syntax-distinct
		{"a(); b()", "b(); a()"},                // order
		{"if(*) { a() } else { b() }", "if(*) { b() } else { a() }"},
		{"loop(*) { a() }", "a()"},              // wrapper
		{"skip", "return"},                      // leaves
		{"a()", "aa()"},                         // label
	}
	for _, c := range cases {
		pa, pb := MustParse(c.a), MustParse(c.b)
		if Fingerprint(pa) == Fingerprint(pb) {
			t.Errorf("distinct programs %q and %q share a fingerprint", c.a, c.b)
		}
		if Hash(pa) == Hash(pb) {
			t.Errorf("distinct programs %q and %q collide under Hash", c.a, c.b)
		}
	}
}

// TestCanonicalInjectiveOnLabelBoundaries guards the length-prefix: the
// concatenated label bytes of ("a","bc") and ("ab","c") are equal, so
// only the prefix keeps the encodings apart.
func TestCanonicalInjectiveOnLabelBoundaries(t *testing.T) {
	a := NewSeq(NewCall("a"), NewCall("bc"))
	b := NewSeq(NewCall("ab"), NewCall("c"))
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("label boundary ambiguity: a·bc and ab·c share an encoding")
	}
}

// TestHashGolden pins the exact hash values: the pipeline cache promises
// keys stable across processes and Go versions, so any change to the
// canonical encoding must be deliberate (and invalidates nothing at
// runtime, but would silently split warm caches — make it loud).
func TestHashGolden(t *testing.T) {
	cases := []struct {
		src  string
		hash uint64
		fp   string
	}{
		{"skip", 0xaf640e4c86024182, "8de0b3c47f112c59745f717a62693226"},
		{"return", 0xaf640f4c86024335, "8c2574892063f995fdf756bce07f46c1"},
		{"a()", 0xc591219aafa5db8, "de9616651b137426bdb0a8a9604e2a3e"},
		{
			"loop(*) { a(); if(*) { b(); return } else { c() } }",
			0xa33adc78d8490300,
			"8f1d1233d4caf27a0a31fe5c671e84ad",
		},
	}
	for _, c := range cases {
		p := MustParse(c.src)
		if got := Hash(p); got != c.hash {
			t.Errorf("Hash(%q) = %#x, want %#x (canonical encoding changed?)", c.src, got, c.hash)
		}
		if got := Fingerprint(p); got != c.fp {
			t.Errorf("Fingerprint(%q) = %s, want %s", c.src, got, c.fp)
		}
	}
}

// FuzzHashStability is the key-stability property the memoization layer
// rests on: parsing the same source twice (or its printed round trip)
// must give identical keys, while structurally different programs must
// get distinct keys.
func FuzzHashStability(f *testing.F) {
	for _, s := range []string{
		"", "skip", "return", "a()", "a(); b()", "a(); skip",
		"if(*) { a() } else { skip }",
		"loop(*) { a(); if(*) { b(); return } else { c() } }",
		"if(*) { if(*) { a() } else { b() } } else { c() }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Identical source → identical keys, deterministically.
		q := MustParse(src)
		if Hash(p) != Hash(q) || Fingerprint(p) != Fingerprint(q) {
			t.Fatalf("two parses of %q disagree on keys", src)
		}
		// The printed round trip is the same tree, hence the same keys.
		r, err := Parse(p.String())
		if err != nil {
			t.Fatalf("printed form %q does not reparse: %v", p.String(), err)
		}
		if Fingerprint(r) != Fingerprint(p) {
			t.Fatalf("round trip of %q changed the fingerprint", src)
		}
		// Structural mutants whose concrete syntax differs must hash
		// apart: a collision here would alias two programs to one cache
		// entry — a soundness bug, not a performance bug.
		mutants := []Program{
			Seq{First: p, Second: Skip{}},
			Seq{First: Skip{}, Second: p},
			If{Then: p, Else: p},
			Loop{Body: p},
			Seq{First: p, Second: Call{Label: "zz_mut"}},
		}
		for _, m := range mutants {
			if m.String() == p.String() {
				continue
			}
			if Fingerprint(m) == Fingerprint(p) {
				t.Fatalf("mutant %q shares fingerprint with %q", m, p)
			}
			if Hash(m) == Hash(p) {
				t.Fatalf("mutant %q collides with %q under Hash", m, p)
			}
		}
	})
}

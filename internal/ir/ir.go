// Package ir defines the small imperative calculus that the paper's
// behavior inference operates on (Fig. 4):
//
//	p ::= f() | skip | return | p;p | if(★){p}else{p} | loop(★){p}
//
// The calculus is an abstraction of MicroPython: it captures control flow
// and (constrained-object) method calls, and nothing else. Conditions are
// erased — `if` is a nondeterministic choice and `loop` runs its body an
// unknown number of iterations. `return` carries no value at this level;
// the label sets of MicroPython `return ["m1", ...]` statements are kept
// separately by the lowering pass (internal/lower) for dependency-graph
// construction (§3.1).
package ir

import "strings"

// Program is a node of the calculus. Programs are immutable.
type Program interface {
	// String renders the program in the paper's concrete syntax.
	String() string

	write(b *strings.Builder)
}

type (
	// Call is f(): invoking method f of a constrained object. The label
	// is a qualified operation name such as "a.open" or "test".
	Call struct{ Label string }

	// Skip is any MicroPython instruction of no interest to the analysis.
	Skip struct{}

	// Return is a return statement; the returned value is ignored here.
	// The optional ExitID links the node to the exit point recorded by
	// the lowering pass, letting diagnostics refer back to source; it
	// does not affect semantics or inference.
	Return struct{ ExitID int }

	// Seq is p1;p2.
	Seq struct{ First, Second Program }

	// If is if(★){Then}else{Else} — nondeterministic choice.
	If struct{ Then, Else Program }

	// Loop is loop(★){Body} — an unknown number of iterations.
	Loop struct{ Body Program }
)

var (
	_ Program = Call{}
	_ Program = Skip{}
	_ Program = Return{}
	_ Program = Seq{}
	_ Program = If{}
	_ Program = Loop{}
)

// NewCall returns the call node f().
func NewCall(label string) Program { return Call{Label: label} }

// NewSkip returns skip.
func NewSkip() Program { return Skip{} }

// NewReturn returns a return node.
func NewReturn() Program { return Return{} }

// NewSeq sequences the given programs left-to-right: Seqs(a,b,c) is
// a;(b;c). With no arguments it returns skip, keeping callers simple.
func NewSeq(ps ...Program) Program {
	switch len(ps) {
	case 0:
		return Skip{}
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = Seq{First: ps[i], Second: out}
	}
	return out
}

// NewIf returns if(★){then}else{els}.
func NewIf(then, els Program) Program { return If{Then: then, Else: els} }

// NewChoice folds n ≥ 1 alternatives into nested binary choices; it models
// if/elif/else chains and match statements with n cases. With a single
// alternative it returns it unchanged.
func NewChoice(alts ...Program) Program {
	switch len(alts) {
	case 0:
		return Skip{}
	case 1:
		return alts[0]
	}
	out := alts[len(alts)-1]
	for i := len(alts) - 2; i >= 0; i-- {
		out = If{Then: alts[i], Else: out}
	}
	return out
}

// NewLoop returns loop(★){body}.
func NewLoop(body Program) Program { return Loop{Body: body} }

func (c Call) String() string   { return render(c) }
func (Skip) String() string     { return render(Skip{}) }
func (r Return) String() string { return render(r) }
func (s Seq) String() string    { return render(s) }
func (i If) String() string     { return render(i) }
func (l Loop) String() string   { return render(l) }

func render(p Program) string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (c Call) write(b *strings.Builder) {
	b.WriteString(c.Label)
	b.WriteString("()")
}

func (Skip) write(b *strings.Builder) { b.WriteString("skip") }

func (Return) write(b *strings.Builder) { b.WriteString("return") }

func (s Seq) write(b *strings.Builder) {
	s.First.write(b)
	b.WriteString("; ")
	s.Second.write(b)
}

func (i If) write(b *strings.Builder) {
	b.WriteString("if(*) { ")
	i.Then.write(b)
	b.WriteString(" } else { ")
	i.Else.write(b)
	b.WriteString(" }")
}

func (l Loop) write(b *strings.Builder) {
	b.WriteString("loop(*) { ")
	l.Body.write(b)
	b.WriteString(" }")
}

// Size returns the number of nodes in p.
func Size(p Program) int {
	switch p := p.(type) {
	case Call, Skip, Return:
		return 1
	case Seq:
		return 1 + Size(p.First) + Size(p.Second)
	case If:
		return 1 + Size(p.Then) + Size(p.Else)
	case Loop:
		return 1 + Size(p.Body)
	}
	return 1
}

// Depth returns the height of the program tree.
func Depth(p Program) int {
	switch p := p.(type) {
	case Call, Skip, Return:
		return 1
	case Seq:
		return 1 + max(Depth(p.First), Depth(p.Second))
	case If:
		return 1 + max(Depth(p.Then), Depth(p.Else))
	case Loop:
		return 1 + Depth(p.Body)
	}
	return 1
}

// Labels returns the set of call labels occurring in p, in first-occurrence
// order.
func Labels(p Program) []string {
	var out []string
	seen := make(map[string]struct{})
	var walk func(Program)
	walk = func(p Program) {
		switch p := p.(type) {
		case Call:
			if _, dup := seen[p.Label]; !dup {
				seen[p.Label] = struct{}{}
				out = append(out, p.Label)
			}
		case Seq:
			walk(p.First)
			walk(p.Second)
		case If:
			walk(p.Then)
			walk(p.Else)
		case Loop:
			walk(p.Body)
		}
	}
	walk(p)
	return out
}

// HasReturn reports whether p contains a return node anywhere.
func HasReturn(p Program) bool {
	switch p := p.(type) {
	case Return:
		return true
	case Seq:
		return HasReturn(p.First) || HasReturn(p.Second)
	case If:
		return HasReturn(p.Then) || HasReturn(p.Else)
	case Loop:
		return HasReturn(p.Body)
	}
	return false
}

// CountReturns returns the number of return nodes in p — the number of
// exit points the dependency graph will allocate for the method (§3.1).
func CountReturns(p Program) int {
	switch p := p.(type) {
	case Return:
		return 1
	case Seq:
		return CountReturns(p.First) + CountReturns(p.Second)
	case If:
		return CountReturns(p.Then) + CountReturns(p.Else)
	case Loop:
		return CountReturns(p.Body)
	}
	return 0
}

package ir

import (
	"math/rand"
	"testing"
)

// exampleLoop is the program of the paper's Examples 1–3:
// loop(★){ a(); if(★){ b(); return } else { c() } }
func exampleLoop() Program {
	return NewLoop(NewSeq(
		NewCall("a"),
		NewIf(
			NewSeq(NewCall("b"), NewReturn()),
			NewCall("c"),
		),
	))
}

func TestString(t *testing.T) {
	tests := []struct {
		p    Program
		want string
	}{
		{NewCall("a.open"), "a.open()"},
		{NewSkip(), "skip"},
		{NewReturn(), "return"},
		{NewSeq(NewCall("a"), NewCall("b")), "a(); b()"},
		{NewIf(NewCall("a"), NewSkip()), "if(*) { a() } else { skip }"},
		{NewLoop(NewCall("a")), "loop(*) { a() }"},
		{
			exampleLoop(),
			"loop(*) { a(); if(*) { b(); return } else { c() } }",
		},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewSeqFolding(t *testing.T) {
	if _, ok := NewSeq().(Skip); !ok {
		t.Errorf("NewSeq() = %v, want skip", NewSeq())
	}
	a := NewCall("a")
	if NewSeq(a) != a {
		t.Errorf("NewSeq(a) should be a")
	}
	got := NewSeq(NewCall("a"), NewCall("b"), NewCall("c"))
	if got.String() != "a(); b(); c()" {
		t.Errorf("NewSeq 3 = %q", got.String())
	}
	// Right-nested: a;(b;c).
	seq, ok := got.(Seq)
	if !ok {
		t.Fatalf("NewSeq 3 is %T", got)
	}
	if _, ok := seq.Second.(Seq); !ok {
		t.Errorf("NewSeq should right-nest, second = %T", seq.Second)
	}
}

func TestNewChoiceFolding(t *testing.T) {
	if _, ok := NewChoice().(Skip); !ok {
		t.Error("NewChoice() should be skip")
	}
	a := NewCall("a")
	if NewChoice(a) != a {
		t.Error("NewChoice(a) should be a")
	}
	got := NewChoice(NewCall("a"), NewCall("b"), NewCall("c"))
	want := "if(*) { a() } else { if(*) { b() } else { c() } }"
	if got.String() != want {
		t.Errorf("NewChoice 3 = %q, want %q", got.String(), want)
	}
}

func TestSizeDepth(t *testing.T) {
	p := exampleLoop()
	// Nodes: loop, seq, a, if, seq, b, return, c = 8.
	if got := Size(p); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
	// loop -> seq -> if -> seq -> b/return.
	if got := Depth(p); got != 5 {
		t.Errorf("Depth = %d, want 5", got)
	}
	if Size(NewSkip()) != 1 || Depth(NewSkip()) != 1 {
		t.Error("skip should have size 1 and depth 1")
	}
}

func TestLabels(t *testing.T) {
	p := NewSeq(NewCall("b"), NewCall("a"), NewCall("b"), NewLoop(NewCall("c")))
	got := Labels(p)
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v (first-occurrence order)", got, want)
		}
	}
	if ls := Labels(NewSkip()); len(ls) != 0 {
		t.Errorf("Labels(skip) = %v, want empty", ls)
	}
}

func TestHasReturnAndCountReturns(t *testing.T) {
	tests := []struct {
		p     Program
		has   bool
		count int
	}{
		{NewSkip(), false, 0},
		{NewReturn(), true, 1},
		{NewCall("a"), false, 0},
		{exampleLoop(), true, 1},
		{NewIf(NewReturn(), NewReturn()), true, 2},
		{NewSeq(NewReturn(), NewLoop(NewReturn())), true, 2},
	}
	for _, tt := range tests {
		if got := HasReturn(tt.p); got != tt.has {
			t.Errorf("HasReturn(%v) = %v, want %v", tt.p, got, tt.has)
		}
		if got := CountReturns(tt.p); got != tt.count {
			t.Errorf("CountReturns(%v) = %d, want %d", tt.p, got, tt.count)
		}
	}
}

func TestRandomRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := GeneratorConfig{MaxDepth: 4, Labels: []string{"x", "y"}}
	for i := 0; i < 500; i++ {
		p := Random(rng, cfg)
		if d := Depth(p); d > cfg.MaxDepth+1 {
			t.Fatalf("Depth = %d exceeds MaxDepth+1 = %d for %v", d, cfg.MaxDepth+1, p)
		}
		for _, l := range Labels(p) {
			if l != "x" && l != "y" {
				t.Fatalf("unexpected label %q in %v", l, p)
			}
		}
	}
}

func TestRandomCoversAllNodeKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := make(map[string]bool)
	var mark func(Program)
	mark = func(p Program) {
		switch p := p.(type) {
		case Call:
			kinds["call"] = true
		case Skip:
			kinds["skip"] = true
		case Return:
			kinds["return"] = true
		case Seq:
			kinds["seq"] = true
			mark(p.First)
			mark(p.Second)
		case If:
			kinds["if"] = true
			mark(p.Then)
			mark(p.Else)
		case Loop:
			kinds["loop"] = true
			mark(p.Body)
		}
	}
	for i := 0; i < 200; i++ {
		mark(Random(rng, GeneratorConfig{}))
	}
	for _, k := range []string{"call", "skip", "return", "seq", "if", "loop"} {
		if !kinds[k] {
			t.Errorf("generator never produced %s nodes", k)
		}
	}
}

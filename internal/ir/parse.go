package ir

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a program in the concrete syntax produced by String:
//
//	program ::= stmt (";" stmt)*
//	stmt    ::= ident "(" ")"
//	          | "skip"
//	          | "return"
//	          | "if" "(" "*" ")" "{" program "}" "else" "{" program "}"
//	          | "loop" "(" "*" ")" "{" program "}"
//	ident   ::= letter (letter | digit | "_" | ".")*
//
// so that Parse(p.String()) reconstructs p. It powers the shelleytrace
// CLI, which lets users experiment with the paper's calculus directly.
func Parse(src string) (Program, error) {
	p := &irParser{src: src}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errorf("unexpected trailing input")
	}
	return prog, nil
}

// MustParse is Parse that panics on malformed input; for tests.
func MustParse(src string) Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type irParser struct {
	src string
	pos int
}

func (p *irParser) errorf(format string, args ...any) error {
	return fmt.Errorf("ir: %q at offset %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *irParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *irParser) peekByte() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *irParser) expect(s string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], s) {
		return p.errorf("expected %q", s)
	}
	p.pos += len(s)
	return nil
}

func (p *irParser) parseProgram() (Program, error) {
	first, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	parts := []Program{first}
	for {
		p.skipSpace()
		if p.peekByte() != ';' {
			return NewSeq(parts...), nil
		}
		p.pos++
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		parts = append(parts, s)
	}
}

func (p *irParser) parseStmt() (Program, error) {
	p.skipSpace()
	word := p.peekIdent()
	switch word {
	case "":
		return nil, p.errorf("expected a statement")
	case "skip":
		p.pos += len("skip")
		return Skip{}, nil
	case "return":
		p.pos += len("return")
		return Return{}, nil
	case "if":
		p.pos += len("if")
		for _, tok := range []string{"(", "*", ")", "{"} {
			if err := p.expect(tok); err != nil {
				return nil, err
			}
		}
		then, err := p.parseProgram()
		if err != nil {
			return nil, err
		}
		for _, tok := range []string{"}", "else", "{"} {
			if err := p.expect(tok); err != nil {
				return nil, err
			}
		}
		els, err := p.parseProgram()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return If{Then: then, Else: els}, nil
	case "loop":
		p.pos += len("loop")
		for _, tok := range []string{"(", "*", ")", "{"} {
			if err := p.expect(tok); err != nil {
				return nil, err
			}
		}
		body, err := p.parseProgram()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return Loop{Body: body}, nil
	default:
		p.pos += len(word)
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Call{Label: word}, nil
	}
}

// peekIdent returns the identifier at the cursor without consuming it.
func (p *irParser) peekIdent() string {
	i := p.pos
	if i >= len(p.src) {
		return ""
	}
	c := rune(p.src[i])
	if !unicode.IsLetter(c) && c != '_' {
		return ""
	}
	j := i
	for j < len(p.src) {
		c := rune(p.src[j])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			j++
			continue
		}
		if c == '.' && j+1 < len(p.src) {
			n := rune(p.src[j+1])
			if unicode.IsLetter(n) || unicode.IsDigit(n) || n == '_' {
				j += 2
				continue
			}
		}
		break
	}
	return p.src[i:j]
}

package ir

import (
	"math/rand"
	"testing"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		src  string
		want Program
	}{
		{"skip", Skip{}},
		{"return", Return{}},
		{"a()", Call{Label: "a"}},
		{"a.open()", Call{Label: "a.open"}},
		{"a(); b()", NewSeq(NewCall("a"), NewCall("b"))},
		{"if(*) { a() } else { skip }", NewIf(NewCall("a"), NewSkip())},
		{"loop(*) { a() }", NewLoop(NewCall("a"))},
		{
			"loop(*) { a(); if(*) { b(); return } else { c() } }",
			NewLoop(NewSeq(NewCall("a"), NewIf(NewSeq(NewCall("b"), NewReturn()), NewCall("c")))),
		},
	}
	for _, tt := range tests {
		got, err := Parse(tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if got.String() != tt.want.String() {
			t.Errorf("Parse(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	got, err := Parse("  loop( * )  {\n  a() ;\n  return\n}  ")
	if err != nil {
		t.Fatal(err)
	}
	want := NewLoop(NewSeq(NewCall("a"), NewReturn()))
	if got.String() != want.String() {
		t.Errorf("got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", ";", "a(", "a)", "if(*) { a() }", "if(*) { a() } else { }",
		"loop(*) a()", "a() b()", "a();", "if() { a() } else { b() }",
		"123()", "skip extra",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := Random(rng, GeneratorConfig{MaxDepth: 4})
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if back.String() != p.String() {
			t.Fatalf("round trip: %q -> %q", p.String(), back.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("(")
}

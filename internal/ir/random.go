package ir

import "math/rand"

// GeneratorConfig tunes Random, the random-program generator used by the
// executable theorem tests (Theorems 1–2 run over thousands of random
// programs).
type GeneratorConfig struct {
	// MaxDepth bounds the height of the generated tree. Zero means a
	// depth of 3, which already covers every pair of nested constructs.
	MaxDepth int

	// Labels is the alphabet to draw call labels from. Empty means
	// {"a", "b", "c"}.
	Labels []string

	// ReturnWeight is the number of chances (out of 6 leaf choices) of
	// generating a return leaf. Zero means 1.
	ReturnWeight int
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if len(c.Labels) == 0 {
		c.Labels = []string{"a", "b", "c"}
	}
	if c.ReturnWeight == 0 {
		c.ReturnWeight = 1
	}
	return c
}

// Random generates a random program using rng. It draws leaves (call,
// skip, return) and composites (seq, if, loop) with fixed weights, and
// bottoms out to leaves at MaxDepth.
func Random(rng *rand.Rand, cfg GeneratorConfig) Program {
	cfg = cfg.withDefaults()
	return randomAt(rng, cfg, cfg.MaxDepth)
}

func randomAt(rng *rand.Rand, cfg GeneratorConfig, depth int) Program {
	if depth <= 0 {
		return randomLeaf(rng, cfg)
	}
	switch rng.Intn(8) {
	case 0, 1:
		return randomLeaf(rng, cfg)
	case 2, 3, 4:
		return Seq{
			First:  randomAt(rng, cfg, depth-1),
			Second: randomAt(rng, cfg, depth-1),
		}
	case 5, 6:
		return If{
			Then: randomAt(rng, cfg, depth-1),
			Else: randomAt(rng, cfg, depth-1),
		}
	default:
		return Loop{Body: randomAt(rng, cfg, depth-1)}
	}
}

func randomLeaf(rng *rand.Rand, cfg GeneratorConfig) Program {
	n := rng.Intn(5 + cfg.ReturnWeight)
	switch {
	case n < 3:
		return Call{Label: cfg.Labels[rng.Intn(len(cfg.Labels))]}
	case n < 5:
		return Skip{}
	default:
		return Return{}
	}
}

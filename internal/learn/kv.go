package learn

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/automata"
)

// KearnsVazirani learns a DFA with the classification-tree algorithm of
// Kearns & Vazirani — the second classic active-learning algorithm,
// included alongside L* for the model-inference ablations. Instead of
// an observation table, states are the leaves of a binary tree whose
// internal nodes are distinguishing suffixes: sifting a word down the
// tree (one membership query per level) locates its state, so the data
// structure grows with the number of *distinctions* rather than
// |S|×|E|.
func KearnsVazirani(t Teacher, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	l := &kvLearner{
		teacher:  t,
		alphabet: t.Alphabet(),
		cache:    make(map[string]bool),
		result:   &Result{},
	}
	// The tree starts as a single leaf for the empty access string; the
	// first counterexample introduces the first real distinction.
	l.root = &kvNode{leaf: true, access: []string{}}
	l.leaves = []*kvNode{l.root}

	for round := 0; round < cfg.MaxRounds; round++ {
		l.result.Rounds++
		hyp := l.hypothesis()
		l.result.EquivalenceQueries++
		counterexample, ok := l.teacher.Equivalent(hyp)
		if ok {
			l.result.DFA = hyp.Minimize()
			return l.result, nil
		}
		if l.member(counterexample) == hyp.Accepts(counterexample) {
			return nil, fmt.Errorf("learn: teacher returned invalid counterexample %v", counterexample)
		}
		l.processCounterexample(hyp, counterexample)
	}
	return nil, ErrBudgetExhausted
}

type kvNode struct {
	// Internal nodes: suffix and two children indexed by the membership
	// of access·suffix.
	suffix []string
	child  [2]*kvNode

	// Leaves: the state's access string.
	leaf   bool
	access []string
}

type kvLearner struct {
	teacher  Teacher
	alphabet []string
	cache    map[string]bool
	result   *Result

	root   *kvNode
	leaves []*kvNode
}

func (l *kvLearner) member(trace []string) bool {
	k := traceKey(trace)
	if v, ok := l.cache[k]; ok {
		return v
	}
	v := l.teacher.Member(trace)
	l.cache[k] = v
	l.result.MembershipQueries++
	return v
}

func boolIndex(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sift walks the word down the tree to its leaf, creating a fresh leaf
// (a newly discovered state) when it falls off an absent child.
func (l *kvLearner) sift(word []string) *kvNode {
	n := l.root
	for !n.leaf {
		b := boolIndex(l.member(concat(word, n.suffix)))
		if n.child[b] == nil {
			leafNode := &kvNode{leaf: true, access: append([]string(nil), word...)}
			n.child[b] = leafNode
			l.leaves = append(l.leaves, leafNode)
			return leafNode
		}
		n = n.child[b]
	}
	return n
}

// hypothesis sifts every one-step extension of every known state until
// the state set is stable, then assembles the DFA.
func (l *kvLearner) hypothesis() *automata.DFA {
	// Sifting can add leaves; iterate until settled.
	for {
		before := len(l.leaves)
		for _, leafNode := range l.leaves[:before] {
			for _, a := range l.alphabet {
				l.sift(concat(leafNode.access, []string{a}))
			}
		}
		if len(l.leaves) == before {
			break
		}
	}

	d := automata.NewDFA(l.alphabet)
	stateOf := make(map[*kvNode]int, len(l.leaves))
	// The leaf of ε must be the start state (DFA state 0).
	epsLeaf := l.sift(nil)
	stateOf[epsLeaf] = d.Start()
	d.SetAccepting(d.Start(), l.member(epsLeaf.access))
	for _, leafNode := range l.leaves {
		if leafNode == epsLeaf {
			continue
		}
		stateOf[leafNode] = d.AddState(l.member(leafNode.access))
	}
	for _, leafNode := range l.leaves {
		for _, a := range l.alphabet {
			target := l.sift(concat(leafNode.access, []string{a}))
			_ = d.AddTransition(stateOf[leafNode], a, stateOf[target])
		}
	}
	return d
}

// processCounterexample finds (by binary search, as in Rivest–Schapire)
// a position where the hypothesis's state abstraction disagrees with
// the teacher, and splits the corresponding leaf with the distinguishing
// suffix.
func (l *kvLearner) processCounterexample(hyp *automata.DFA, w []string) {
	accessOf := l.kvStateAccess(hyp)
	score := func(i int) bool {
		st := hyp.Run(w[:i])
		return l.member(concat(accessOf[st], w[i:]))
	}
	lo, hi := 0, len(w)
	want := score(0)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if score(mid) == want {
			lo = mid
		} else {
			hi = mid
		}
	}
	// The states reached after w[:lo] and after one more step disagree
	// under the suffix w[hi:]: split the leaf the hypothesis merged.
	uState := hyp.Run(w[:hi])
	u := accessOf[uState]
	newAccess := concat(concat(accessOf[hyp.Run(w[:lo])], nil), w[lo:hi])
	suffix := append([]string(nil), w[hi:]...)

	// Find u's leaf and replace it by an internal node.
	leafNode := l.findLeaf(u)
	if leafNode == nil {
		// Should not happen with a conforming teacher; fall back to a
		// fresh sift which will place the new access string somewhere
		// useful.
		l.sift(newAccess)
		return
	}
	oldLeaf := &kvNode{leaf: true, access: leafNode.access}
	newLeaf := &kvNode{leaf: true, access: newAccess}
	leafNode.leaf = false
	leafNode.access = nil
	leafNode.suffix = suffix
	leafNode.child[boolIndex(l.member(concat(oldLeaf.access, suffix)))] = oldLeaf
	leafNode.child[boolIndex(l.member(concat(newAccess, suffix)))] = newLeaf

	// Refresh the leaf list: the converted node is gone, two new leaves
	// exist.
	var leaves []*kvNode
	for _, lf := range l.leaves {
		if lf != leafNode {
			leaves = append(leaves, lf)
		}
	}
	l.leaves = append(leaves, oldLeaf, newLeaf)
}

func (l *kvLearner) kvStateAccess(hyp *automata.DFA) map[int][]string {
	out := make(map[int][]string, hyp.NumStates())
	for _, leafNode := range l.leaves {
		st := hyp.Run(leafNode.access)
		if st < 0 {
			continue
		}
		if _, ok := out[st]; !ok {
			out[st] = leafNode.access
		}
	}
	return out
}

func (l *kvLearner) findLeaf(access []string) *kvNode {
	key := traceKey(access)
	for _, lf := range l.leaves {
		if traceKey(lf.access) == key {
			return lf
		}
	}
	return nil
}

package learn

import (
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/regex"
)

func TestKVLearnsRegularLanguages(t *testing.T) {
	corpus := []string{
		"1",
		"a",
		"a*",
		"(a . b)*",
		"(a + b)* . a",
		"a . (b + c)* . d",
		"(a . b + b . a)*",
		"(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b",
	}
	for _, src := range corpus {
		t.Run(src, func(t *testing.T) {
			target := automata.CompileMinimal(regex.MustParse(src))
			res, err := KearnsVazirani(NewDFATeacher(target), Config{})
			if err != nil {
				t.Fatalf("KV: %v", err)
			}
			if !automata.Equivalent(res.DFA, target) {
				t.Fatal("learned automaton differs from target")
			}
			if res.DFA.NumStates() > target.Minimize().NumStates() {
				t.Errorf("learned %d states, minimal is %d",
					res.DFA.NumStates(), target.Minimize().NumStates())
			}
		})
	}
}

func TestKVEmptyAndUniversal(t *testing.T) {
	empty := automata.NewDFA([]string{"a"})
	res, err := KearnsVazirani(NewDFATeacher(empty), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DFA.Accepts(nil) || res.DFA.Accepts([]string{"a"}) {
		t.Error("empty language mis-learned")
	}

	universal := automata.CompileMinimal(regex.MustParse("(a + b)*"))
	res, err = KearnsVazirani(NewDFATeacher(universal), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DFA.Accepts([]string{"a", "b", "b"}) || !res.DFA.Accepts(nil) {
		t.Error("universal language mis-learned")
	}
}

func TestKVRandomTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 40; i++ {
		r := randomRegex(rng, 3)
		target := automata.CompileMinimal(r)
		res, err := KearnsVazirani(NewDFATeacher(target), Config{})
		if err != nil {
			t.Fatalf("target %v: %v", r, err)
		}
		if !automata.Equivalent(res.DFA, target) {
			t.Fatalf("target %v: wrong language", r)
		}
	}
}

func TestKVRecoversValveProtocol(t *testing.T) {
	valve := readClass(t, "valve.py", "Valve")
	teacher := NewInstanceTeacher(valve, 9)
	res, err := KearnsVazirani(teacher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	if !automata.Equivalent(res.DFA, spec) {
		t.Error("KV-learned Valve automaton differs from the static SpecDFA")
	}
	t.Logf("valve via KV: %d membership, %d equivalence queries",
		res.MembershipQueries, res.EquivalenceQueries)
}

func TestKVAgainstLStarQueryAccounting(t *testing.T) {
	target := automata.CompileMinimal(regex.MustParse("(a . b . c . a . b)*"))
	kv, err := KearnsVazirani(NewDFATeacher(target), Config{})
	if err != nil {
		t.Fatal(err)
	}
	lstar, err := LStar(NewDFATeacher(target), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kv.MembershipQueries == 0 || lstar.MembershipQueries == 0 {
		t.Error("query accounting broken")
	}
	if !automata.Equivalent(kv.DFA, lstar.DFA) {
		t.Error("KV and L* disagree on the target")
	}
	t.Logf("kv: %dm/%de; lstar(rs): %dm/%de",
		kv.MembershipQueries, kv.EquivalenceQueries,
		lstar.MembershipQueries, lstar.EquivalenceQueries)
}

func TestKVInvalidCounterexampleDetected(t *testing.T) {
	target := automata.CompileMinimal(regex.MustParse("a*"))
	bad := &lyingTeacher{inner: NewDFATeacher(target)}
	if _, err := KearnsVazirani(bad, Config{}); err == nil {
		t.Error("lying teacher should be detected")
	}
}

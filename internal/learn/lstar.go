// Package learn implements active model inference with Angluin's L*
// algorithm, the dynamic counterpart to the paper's static extraction:
// where §3 infers a class's model from its code, L* infers the same
// model by *querying a running instance* (internal/interp stands in for
// MicroPython on a device). The learned DFA provably converges to the
// class's specification automaton.
//
// Two counterexample-processing strategies are provided for the
// ablation benchmarks: the classic Angluin strategy (add every prefix of
// the counterexample to the access set, restoring consistency as
// needed) and Rivest–Schapire (binary-search a single distinguishing
// suffix).
package learn

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
)

// Teacher answers the two query types of the L* setting.
type Teacher interface {
	// Alphabet returns the input alphabet, sorted.
	Alphabet() []string

	// Member reports whether the trace is in the target language.
	Member(trace []string) bool

	// Equivalent checks a hypothesis; it returns (nil, true) to accept
	// it, or a counterexample trace on which teacher and hypothesis
	// disagree.
	Equivalent(hypothesis *automata.DFA) ([]string, bool)
}

// Strategy selects the counterexample-processing variant.
type Strategy int

const (
	// ClassicAngluin adds all prefixes of a counterexample to the access
	// set.
	ClassicAngluin Strategy = iota + 1

	// RivestSchapire binary-searches one distinguishing suffix.
	RivestSchapire
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case ClassicAngluin:
		return "classic"
	case RivestSchapire:
		return "rivest-schapire"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Result is the outcome of a learning run.
type Result struct {
	// DFA is the learned automaton (minimal for the target language).
	DFA *automata.DFA

	// MembershipQueries counts distinct membership queries asked.
	MembershipQueries int

	// EquivalenceQueries counts hypotheses submitted.
	EquivalenceQueries int

	// Rounds counts closedness/consistency repair iterations.
	Rounds int
}

// Config tunes the learner.
type Config struct {
	// Strategy is the counterexample-processing variant; the zero value
	// means RivestSchapire.
	Strategy Strategy

	// MaxRounds bounds the main loop as a safety net against
	// non-conforming teachers; the zero value means 10000.
	MaxRounds int

	// MaxQueries caps distinct membership queries (LStarCtx only). The
	// zero value means unlimited. A tripped cap surfaces as an error
	// matching errors.Is(err, budget.ErrExceeded).
	MaxQueries int

	// MaxStates caps hypothesis states (LStarCtx only). The zero value
	// falls back to the MaxDFAStates limit carried by the context
	// (internal/budget); zero there too means unlimited.
	MaxStates int
}

func (c Config) withDefaults() Config {
	if c.Strategy == 0 {
		c.Strategy = RivestSchapire
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 10000
	}
	return c
}

// ErrBudgetExhausted is returned when MaxRounds is hit, which indicates
// an inconsistent teacher (or a bound set too low).
var ErrBudgetExhausted = errors.New("learn: round budget exhausted")

// LStar learns a DFA from the teacher with no context and no query
// budget; it is LStarCtx under a background context.
func LStar(t Teacher, cfg Config) (*Result, error) {
	return LStarCtx(context.Background(), t, cfg)
}

// LStarCtx learns a DFA from the teacher under a context. Cancellation
// is polled once per round and (amortized) once per membership query,
// so a fired deadline stops the run mid-table instead of after it; the
// error then matches errors.Is(err, budget.ErrCanceled). Resource
// limits — cfg.MaxQueries on membership queries, cfg.MaxStates (or the
// context's budget.Limits.MaxDFAStates) on hypothesis states — trip a
// structured error matching errors.Is(err, budget.ErrExceeded), so a
// pathological teacher (a non-regular target language, a fleet of
// adversarial devices) costs bounded work instead of pinning a worker.
func LStarCtx(ctx context.Context, t Teacher, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = budget.From(ctx).MaxDFAStates
	}
	l := &learner{
		teacher:   t,
		alphabet:  t.Alphabet(),
		cache:     make(map[string]bool),
		rows:      make(map[string]*rowEntry),
		result:    &Result{},
		gate:      budget.NewGate(ctx, "lstar", "membership-queries", cfg.MaxQueries),
		ctx:       ctx,
		maxStates: maxStates,
	}
	l.access = [][]string{{}}   // S = {ε}
	l.suffixes = [][]string{{}} // E = {ε}

	for round := 0; round < cfg.MaxRounds; round++ {
		if cause := ctx.Err(); cause != nil {
			return nil, fmt.Errorf("learn: %w", &budget.CancelErr{Op: "lstar", Cause: cause})
		}
		l.result.Rounds++
		changed, err := l.close()
		if err != nil {
			return nil, err
		}
		if changed {
			continue // closedness repair changed the table; re-check
		}
		if cfg.Strategy == ClassicAngluin {
			changed, err := l.restoreConsistency()
			if err != nil {
				return nil, err
			}
			if changed {
				continue
			}
		}
		hyp, err := l.hypothesis()
		if err != nil {
			return nil, err
		}
		l.result.EquivalenceQueries++
		counterexample, ok := l.teacher.Equivalent(hyp)
		if ok {
			// The table yields the minimal *complete* DFA; trim the dead
			// sink to match the library's partial-DFA convention.
			l.result.DFA = hyp.Minimize()
			return l.result, nil
		}
		got, err := l.member(counterexample)
		if err != nil {
			return nil, err
		}
		if got == hyp.Accepts(counterexample) {
			return nil, fmt.Errorf("learn: teacher returned invalid counterexample %v", counterexample)
		}
		switch cfg.Strategy {
		case ClassicAngluin:
			l.addAllPrefixes(counterexample)
		default:
			if err := l.addDistinguishingSuffix(hyp, counterexample); err != nil {
				return nil, err
			}
		}
	}
	return nil, ErrBudgetExhausted
}

type learner struct {
	teacher   Teacher
	alphabet  []string
	cache     map[string]bool
	rows      map[string]*rowEntry
	result    *Result
	gate      *budget.Gate
	ctx       context.Context
	maxStates int

	access   [][]string // S, prefix-closed
	suffixes [][]string // E, suffix set
}

// rowEntry is one prefix's memoized observation row. Both S and E only
// ever grow, so a row computed against the first `upto` suffixes stays
// valid forever and later rounds extend it with the new suffixes'
// entries only — without this, every closedness pass recomputes
// O(|S|·|A|·|E|) cached lookups (each one a slice concat plus a long
// map key), which dominates learning time on corpus-sized tables.
type rowEntry struct {
	bits []byte
	upto int // suffixes incorporated into bits
	str  string
}

func (l *learner) member(trace []string) (bool, error) {
	return l.memberPS(trace, nil)
}

// memberPS asks membership of prefix·suffix without materializing the
// concatenated trace unless the cache misses.
func (l *learner) memberPS(prefix, suffix []string) (bool, error) {
	k := traceKey2(prefix, suffix)
	if v, ok := l.cache[k]; ok {
		return v, nil
	}
	if err := l.gate.Tick(); err != nil {
		return false, fmt.Errorf("learn: %w", err)
	}
	trace := prefix
	if len(suffix) > 0 {
		trace = concat(prefix, suffix)
	}
	v := l.teacher.Member(trace)
	l.cache[k] = v
	l.result.MembershipQueries++
	return v, nil
}

// row returns the observation row of a prefix, extending the memoized
// entry by any suffixes added since it was last computed.
func (l *learner) row(prefix []string) (string, error) {
	k := traceKey(prefix)
	e := l.rows[k]
	if e == nil {
		e = &rowEntry{}
		l.rows[k] = e
	}
	if e.upto < len(l.suffixes) {
		for ; e.upto < len(l.suffixes); e.upto++ {
			v, err := l.memberPS(prefix, l.suffixes[e.upto])
			if err != nil {
				return "", err
			}
			if v {
				e.bits = append(e.bits, '1')
			} else {
				e.bits = append(e.bits, '0')
			}
		}
		e.str = string(e.bits)
	}
	return e.str, nil
}

// close repairs closedness: every one-step extension of an access string
// must match some access row. It returns true when the table changed.
// Distinct rows are hypothesis states, so this is also where the state
// budget is enforced.
func (l *learner) close() (bool, error) {
	rows := make(map[string]struct{}, len(l.access))
	for _, s := range l.access {
		r, err := l.row(s)
		if err != nil {
			return false, err
		}
		rows[r] = struct{}{}
	}
	if l.maxStates > 0 && len(rows) > l.maxStates {
		return false, fmt.Errorf("learn: %w", budget.Exceeded(l.ctx, "lstar", "dfa-states", l.maxStates))
	}
	for _, s := range l.access {
		for _, a := range l.alphabet {
			ext := concat(s, []string{a})
			r, err := l.row(ext)
			if err != nil {
				return false, err
			}
			if _, ok := rows[r]; !ok {
				l.access = append(l.access, ext)
				return true, nil
			}
		}
	}
	return false, nil
}

// restoreConsistency (classic L* only): if two access strings share a
// row but their one-step extensions differ, the distinguishing suffix
// a·e is added to E. Returns true when the table changed.
func (l *learner) restoreConsistency() (bool, error) {
	for i := 0; i < len(l.access); i++ {
		for j := i + 1; j < len(l.access); j++ {
			ri, err := l.row(l.access[i])
			if err != nil {
				return false, err
			}
			rj, err := l.row(l.access[j])
			if err != nil {
				return false, err
			}
			if ri != rj {
				continue
			}
			for _, a := range l.alphabet {
				exti := concat(l.access[i], []string{a})
				extj := concat(l.access[j], []string{a})
				for _, e := range l.suffixes {
					vi, err := l.memberPS(exti, e)
					if err != nil {
						return false, err
					}
					vj, err := l.memberPS(extj, e)
					if err != nil {
						return false, err
					}
					if vi != vj {
						l.suffixes = append(l.suffixes, concat([]string{a}, e))
						return true, nil
					}
				}
			}
		}
	}
	return false, nil
}

// hypothesis builds the conjectured DFA from the closed table.
func (l *learner) hypothesis() (*automata.DFA, error) {
	// One state per distinct row; the representative is the first access
	// string with that row.
	d := automata.NewDFA(l.alphabet)
	stateOf := make(map[string]int)
	var reps [][]string

	// ε must be state 0 (the DFA's start).
	epsRow, err := l.row([]string{})
	if err != nil {
		return nil, err
	}
	stateOf[epsRow] = d.Start()
	epsAcc, err := l.member(nil)
	if err != nil {
		return nil, err
	}
	d.SetAccepting(d.Start(), epsAcc)
	reps = append(reps, []string{})

	for _, s := range l.access {
		r, err := l.row(s)
		if err != nil {
			return nil, err
		}
		if _, ok := stateOf[r]; ok {
			continue
		}
		acc, err := l.member(s)
		if err != nil {
			return nil, err
		}
		id := d.AddState(acc)
		stateOf[r] = id
		reps = append(reps, s)
	}
	for i, rep := range reps {
		for _, a := range l.alphabet {
			target, err := l.row(concat(rep, []string{a}))
			if err != nil {
				return nil, err
			}
			if to, ok := stateOf[target]; ok {
				_ = d.AddTransition(i, a, to)
			}
		}
	}
	return d, nil
}

// addAllPrefixes is the classic counterexample step.
func (l *learner) addAllPrefixes(counterexample []string) {
	have := make(map[string]struct{}, len(l.access))
	for _, s := range l.access {
		have[traceKey(s)] = struct{}{}
	}
	for i := 1; i <= len(counterexample); i++ {
		p := append([]string(nil), counterexample[:i]...)
		if _, ok := have[traceKey(p)]; ok {
			continue
		}
		have[traceKey(p)] = struct{}{}
		l.access = append(l.access, p)
	}
}

// addDistinguishingSuffix is the Rivest–Schapire step: binary-search the
// position where the hypothesis's state abstraction stops agreeing with
// the teacher, and add the corresponding suffix to E.
func (l *learner) addDistinguishingSuffix(hyp *automata.DFA, counterexample []string) error {
	// accessOf maps hypothesis states to their representative access
	// strings, reconstructed by replaying the access set.
	accessOf := l.stateAccess(hyp)

	// score(i): membership of access(state after w[:i]) · w[i:].
	score := func(i int) (bool, error) {
		st := hyp.Run(counterexample[:i])
		return l.memberPS(accessOf[st], counterexample[i:])
	}
	lo, hi := 0, len(counterexample)
	want, err := score(0) // == member(counterexample)
	if err != nil {
		return err
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		v, err := score(mid)
		if err != nil {
			return err
		}
		if v == want {
			lo = mid
		} else {
			hi = mid
		}
	}
	// The suffix w[hi:] distinguishes two rows the table currently
	// merges.
	suffix := append([]string(nil), counterexample[hi:]...)
	for _, e := range l.suffixes {
		if traceKey(e) == traceKey(suffix) {
			// Already present (can happen with a stale hypothesis); fall
			// back to the classic step to guarantee progress.
			l.addAllPrefixes(counterexample)
			return nil
		}
	}
	l.suffixes = append(l.suffixes, suffix)
	return nil
}

// stateAccess returns, per hypothesis state, an access string reaching
// it.
func (l *learner) stateAccess(hyp *automata.DFA) map[int][]string {
	out := make(map[int][]string, hyp.NumStates())
	for _, s := range l.access {
		st := hyp.Run(s)
		if st < 0 {
			continue
		}
		if _, ok := out[st]; !ok {
			out[st] = s
		}
	}
	return out
}

func concat(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func traceKey(t []string) string { return traceKey2(t, nil) }

// traceKey2 is traceKey(concat(a, b)) without building the
// concatenation.
func traceKey2(a, b []string) string {
	n := 0
	for _, s := range a {
		n += len(s) + 1
	}
	for _, s := range b {
		n += len(s) + 1
	}
	var sb strings.Builder
	sb.Grow(n)
	for _, s := range a {
		sb.WriteString(s)
		sb.WriteByte(0)
	}
	for _, s := range b {
		sb.WriteString(s)
		sb.WriteByte(0)
	}
	return sb.String()
}

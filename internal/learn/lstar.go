// Package learn implements active model inference with Angluin's L*
// algorithm, the dynamic counterpart to the paper's static extraction:
// where §3 infers a class's model from its code, L* infers the same
// model by *querying a running instance* (internal/interp stands in for
// MicroPython on a device). The learned DFA provably converges to the
// class's specification automaton.
//
// Two counterexample-processing strategies are provided for the
// ablation benchmarks: the classic Angluin strategy (add every prefix of
// the counterexample to the access set, restoring consistency as
// needed) and Rivest–Schapire (binary-search a single distinguishing
// suffix).
package learn

import (
	"errors"
	"fmt"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
)

// Teacher answers the two query types of the L* setting.
type Teacher interface {
	// Alphabet returns the input alphabet, sorted.
	Alphabet() []string

	// Member reports whether the trace is in the target language.
	Member(trace []string) bool

	// Equivalent checks a hypothesis; it returns (nil, true) to accept
	// it, or a counterexample trace on which teacher and hypothesis
	// disagree.
	Equivalent(hypothesis *automata.DFA) ([]string, bool)
}

// Strategy selects the counterexample-processing variant.
type Strategy int

const (
	// ClassicAngluin adds all prefixes of a counterexample to the access
	// set.
	ClassicAngluin Strategy = iota + 1

	// RivestSchapire binary-searches one distinguishing suffix.
	RivestSchapire
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case ClassicAngluin:
		return "classic"
	case RivestSchapire:
		return "rivest-schapire"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Result is the outcome of a learning run.
type Result struct {
	// DFA is the learned automaton (minimal for the target language).
	DFA *automata.DFA

	// MembershipQueries counts distinct membership queries asked.
	MembershipQueries int

	// EquivalenceQueries counts hypotheses submitted.
	EquivalenceQueries int

	// Rounds counts closedness/consistency repair iterations.
	Rounds int
}

// Config tunes the learner.
type Config struct {
	// Strategy is the counterexample-processing variant; the zero value
	// means RivestSchapire.
	Strategy Strategy

	// MaxRounds bounds the main loop as a safety net against
	// non-conforming teachers; the zero value means 10000.
	MaxRounds int
}

func (c Config) withDefaults() Config {
	if c.Strategy == 0 {
		c.Strategy = RivestSchapire
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 10000
	}
	return c
}

// ErrBudgetExhausted is returned when MaxRounds is hit, which indicates
// an inconsistent teacher (or a bound set too low).
var ErrBudgetExhausted = errors.New("learn: round budget exhausted")

// LStar learns a DFA from the teacher.
func LStar(t Teacher, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	l := &learner{
		teacher:  t,
		alphabet: t.Alphabet(),
		cache:    make(map[string]bool),
		result:   &Result{},
	}
	l.access = [][]string{{}}   // S = {ε}
	l.suffixes = [][]string{{}} // E = {ε}

	for round := 0; round < cfg.MaxRounds; round++ {
		l.result.Rounds++
		if l.close() {
			continue // closedness repair changed the table; re-check
		}
		if cfg.Strategy == ClassicAngluin && l.restoreConsistency() {
			continue
		}
		hyp := l.hypothesis()
		l.result.EquivalenceQueries++
		counterexample, ok := l.teacher.Equivalent(hyp)
		if ok {
			// The table yields the minimal *complete* DFA; trim the dead
			// sink to match the library's partial-DFA convention.
			l.result.DFA = hyp.Minimize()
			return l.result, nil
		}
		if l.member(counterexample) == hyp.Accepts(counterexample) {
			return nil, fmt.Errorf("learn: teacher returned invalid counterexample %v", counterexample)
		}
		switch cfg.Strategy {
		case ClassicAngluin:
			l.addAllPrefixes(counterexample)
		default:
			l.addDistinguishingSuffix(hyp, counterexample)
		}
	}
	return nil, ErrBudgetExhausted
}

type learner struct {
	teacher  Teacher
	alphabet []string
	cache    map[string]bool
	result   *Result

	access   [][]string // S, prefix-closed
	suffixes [][]string // E, suffix set
}

func (l *learner) member(trace []string) bool {
	k := traceKey(trace)
	if v, ok := l.cache[k]; ok {
		return v
	}
	v := l.teacher.Member(trace)
	l.cache[k] = v
	l.result.MembershipQueries++
	return v
}

// row computes the observation row of a prefix.
func (l *learner) row(prefix []string) string {
	var b strings.Builder
	for _, e := range l.suffixes {
		if l.member(concat(prefix, e)) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// close repairs closedness: every one-step extension of an access string
// must match some access row. It returns true when the table changed.
func (l *learner) close() bool {
	rows := make(map[string]struct{}, len(l.access))
	for _, s := range l.access {
		rows[l.row(s)] = struct{}{}
	}
	for _, s := range l.access {
		for _, a := range l.alphabet {
			ext := concat(s, []string{a})
			if _, ok := rows[l.row(ext)]; !ok {
				l.access = append(l.access, ext)
				return true
			}
		}
	}
	return false
}

// restoreConsistency (classic L* only): if two access strings share a
// row but their one-step extensions differ, the distinguishing suffix
// a·e is added to E. Returns true when the table changed.
func (l *learner) restoreConsistency() bool {
	for i := 0; i < len(l.access); i++ {
		for j := i + 1; j < len(l.access); j++ {
			if l.row(l.access[i]) != l.row(l.access[j]) {
				continue
			}
			for _, a := range l.alphabet {
				exti := concat(l.access[i], []string{a})
				extj := concat(l.access[j], []string{a})
				for ei, e := range l.suffixes {
					if l.member(concat(exti, e)) != l.member(concat(extj, e)) {
						_ = ei
						l.suffixes = append(l.suffixes, concat([]string{a}, e))
						return true
					}
				}
			}
		}
	}
	return false
}

// hypothesis builds the conjectured DFA from the closed table.
func (l *learner) hypothesis() *automata.DFA {
	// One state per distinct row; the representative is the first access
	// string with that row.
	d := automata.NewDFA(l.alphabet)
	stateOf := make(map[string]int)
	var reps [][]string

	// ε must be state 0 (the DFA's start).
	epsRow := l.row([]string{})
	stateOf[epsRow] = d.Start()
	d.SetAccepting(d.Start(), l.member(nil))
	reps = append(reps, []string{})

	for _, s := range l.access {
		r := l.row(s)
		if _, ok := stateOf[r]; ok {
			continue
		}
		id := d.AddState(l.member(s))
		stateOf[r] = id
		reps = append(reps, s)
	}
	for i, rep := range reps {
		for _, a := range l.alphabet {
			target := l.row(concat(rep, []string{a}))
			if to, ok := stateOf[target]; ok {
				_ = d.AddTransition(i, a, to)
			}
		}
	}
	return d
}

// addAllPrefixes is the classic counterexample step.
func (l *learner) addAllPrefixes(counterexample []string) {
	have := make(map[string]struct{}, len(l.access))
	for _, s := range l.access {
		have[traceKey(s)] = struct{}{}
	}
	for i := 1; i <= len(counterexample); i++ {
		p := append([]string(nil), counterexample[:i]...)
		if _, ok := have[traceKey(p)]; ok {
			continue
		}
		have[traceKey(p)] = struct{}{}
		l.access = append(l.access, p)
	}
}

// addDistinguishingSuffix is the Rivest–Schapire step: binary-search the
// position where the hypothesis's state abstraction stops agreeing with
// the teacher, and add the corresponding suffix to E.
func (l *learner) addDistinguishingSuffix(hyp *automata.DFA, counterexample []string) {
	// accessOf maps hypothesis states to their representative access
	// strings, reconstructed by replaying the access set.
	accessOf := l.stateAccess(hyp)

	// score(i): membership of access(state after w[:i]) · w[i:].
	score := func(i int) bool {
		st := hyp.Run(counterexample[:i])
		return l.member(concat(accessOf[st], counterexample[i:]))
	}
	lo, hi := 0, len(counterexample)
	want := score(0) // == member(counterexample)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if score(mid) == want {
			lo = mid
		} else {
			hi = mid
		}
	}
	// The suffix w[hi:] distinguishes two rows the table currently
	// merges.
	suffix := append([]string(nil), counterexample[hi:]...)
	for _, e := range l.suffixes {
		if traceKey(e) == traceKey(suffix) {
			// Already present (can happen with a stale hypothesis); fall
			// back to the classic step to guarantee progress.
			l.addAllPrefixes(counterexample)
			return
		}
	}
	l.suffixes = append(l.suffixes, suffix)
}

// stateAccess returns, per hypothesis state, an access string reaching
// it.
func (l *learner) stateAccess(hyp *automata.DFA) map[int][]string {
	out := make(map[int][]string, hyp.NumStates())
	for _, s := range l.access {
		st := hyp.Run(s)
		if st < 0 {
			continue
		}
		if _, ok := out[st]; !ok {
			out[st] = s
		}
	}
	return out
}

func concat(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func traceKey(t []string) string {
	var b strings.Builder
	for _, s := range t {
		b.WriteString(s)
		b.WriteByte(0)
	}
	return b.String()
}

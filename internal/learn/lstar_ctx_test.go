package learn

import (
	"context"
	"errors"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
)

// primeTeacher answers membership for the non-regular language
// { a^n | n prime }. L* over it never converges: every hypothesis draws
// a counterexample, the table grows without bound, and before LStarCtx
// existed a learner pointed at such a teacher pinned a worker until
// MaxRounds (10000) elapsed. The tests below pin that the query, state,
// and cancellation gates each stop it early with classified errors.
type primeTeacher struct{}

func (primeTeacher) Alphabet() []string { return []string{"a"} }

func (primeTeacher) Member(trace []string) bool { return isPrime(len(trace)) }

func (p primeTeacher) Equivalent(hyp *automata.DFA) ([]string, bool) {
	// Brute-force a shortest disagreement; one always exists because the
	// target language is not regular. The bound keeps equivalence cheap;
	// a hypothesis matching primes through 512 needs far more distinct
	// observation-table rows than the query budgets below allow, so the
	// gates always trip before a spurious "equivalent".
	for n := 0; n <= 512; n++ {
		t := make([]string, n)
		for i := range t {
			t[i] = "a"
		}
		if hyp.Accepts(t) != p.Member(t) {
			return t, false
		}
	}
	return nil, true
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func TestLStarCtxQueryBudgetStopsPathologicalTeacher(t *testing.T) {
	// Over the unary alphabet, distinct queries are distinct lengths, so
	// a small cap trips quickly while the table is still tiny.
	res, err := LStarCtx(context.Background(), primeTeacher{}, Config{MaxQueries: 60})
	if err == nil {
		t.Fatalf("expected budget error, got result %+v", res)
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("error does not match budget.ErrExceeded: %v", err)
	}
	var berr *budget.Err
	if !errors.As(err, &berr) || berr.Resource != "membership-queries" {
		t.Fatalf("want structured membership-queries error, got %v", err)
	}
}

func TestLStarCtxStateBudgetStopsPathologicalTeacher(t *testing.T) {
	res, err := LStarCtx(context.Background(), primeTeacher{}, Config{MaxStates: 8})
	if err == nil {
		t.Fatalf("expected budget error, got result %+v", res)
	}
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("error does not match budget.ErrExceeded: %v", err)
	}
	var berr *budget.Err
	if !errors.As(err, &berr) || berr.Resource != "dfa-states" {
		t.Fatalf("want structured dfa-states error, got %v", err)
	}
}

func TestLStarCtxInheritsContextDFALimit(t *testing.T) {
	ctx := budget.With(context.Background(), budget.Limits{MaxDFAStates: 8})
	_, err := LStarCtx(ctx, primeTeacher{}, Config{})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("context MaxDFAStates did not trip: %v", err)
	}
}

func TestLStarCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LStarCtx(ctx, primeTeacher{}, Config{})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("want budget.ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation cause not preserved: %v", err)
	}
}

func TestLStarCtxBudgetedRunMatchesUnbudgeted(t *testing.T) {
	// A regular target well inside the limits must learn the same DFA
	// with or without gates: (ab)* over {a, b}.
	spec := automata.NewDFA([]string{"a", "b"})
	mid := spec.AddState(false)
	spec.SetAccepting(spec.Start(), true)
	if err := spec.AddTransition(spec.Start(), "a", mid); err != nil {
		t.Fatal(err)
	}
	if err := spec.AddTransition(mid, "b", spec.Start()); err != nil {
		t.Fatal(err)
	}
	teacher := NewDFATeacher(spec)

	plain, err := LStar(teacher, Config{})
	if err != nil {
		t.Fatalf("unbudgeted: %v", err)
	}
	budgeted, err := LStarCtx(budget.With(context.Background(), budget.Default()), teacher,
		Config{MaxQueries: 10_000, MaxStates: 64})
	if err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if cex, same := automata.Distinguish(plain.DFA, budgeted.DFA); !same {
		t.Fatalf("budgeted and unbudgeted runs disagree on %v", cex)
	}
}

func TestWMethodSuiteCtxBudget(t *testing.T) {
	spec := automata.NewDFA([]string{"a", "b"})
	s1 := spec.AddState(true)
	s2 := spec.AddState(false)
	for _, tr := range []struct {
		from int
		sym  string
		to   int
	}{{0, "a", s1}, {s1, "b", s2}, {s2, "a", s1}} {
		if err := spec.AddTransition(tr.from, tr.sym, tr.to); err != nil {
			t.Fatal(err)
		}
	}

	// Unlimited context: identical to the unbudgeted entry point.
	got, err := WMethodSuiteCtx(context.Background(), spec, 1)
	if err != nil {
		t.Fatalf("unlimited suite: %v", err)
	}
	want := WMethodSuite(spec, 1)
	if len(got) != len(want) {
		t.Fatalf("suite size %d != %d", len(got), len(want))
	}

	// A starvation budget trips with the classified sentinel.
	tight := budget.With(context.Background(), budget.Limits{MaxSearchNodes: 3})
	if _, err := WMethodSuiteCtx(tight, spec, 2); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget.ErrExceeded, got %v", err)
	}
}

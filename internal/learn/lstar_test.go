package learn

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
	"github.com/shelley-go/shelley/internal/regex"
)

func targetFromRegex(t *testing.T, src string) *automata.DFA {
	t.Helper()
	return automata.CompileMinimal(regex.MustParse(src))
}

func learnAndCheck(t *testing.T, target *automata.DFA, cfg Config) *Result {
	t.Helper()
	res, err := LStar(NewDFATeacher(target), cfg)
	if err != nil {
		t.Fatalf("LStar: %v", err)
	}
	if !automata.Equivalent(res.DFA, target) {
		t.Fatal("learned automaton differs from target")
	}
	// L* learns the *minimal* DFA.
	if res.DFA.NumStates() > target.Minimize().NumStates() {
		t.Errorf("learned %d states, minimal is %d", res.DFA.NumStates(), target.Minimize().NumStates())
	}
	return res
}

func TestLStarLearnsRegularLanguages(t *testing.T) {
	corpus := []string{
		"1",
		"a",
		"a*",
		"(a . b)*",
		"(a + b)* . a",
		"a . (b + c)* . d",
		"(a . b + b . a)*",
		"(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b", // paper Example 3
	}
	for _, src := range corpus {
		for _, strategy := range []Strategy{ClassicAngluin, RivestSchapire} {
			t.Run(src+"/"+strategy.String(), func(t *testing.T) {
				learnAndCheck(t, targetFromRegex(t, src), Config{Strategy: strategy})
			})
		}
	}
}

func TestLStarEmptyLanguage(t *testing.T) {
	// A language with no members: hypothesis should be the 1-state
	// rejecting automaton over an explicit alphabet.
	d := automata.NewDFA([]string{"a"})
	res, err := LStar(NewDFATeacher(d), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DFA.Accepts(nil) || res.DFA.Accepts([]string{"a"}) {
		t.Error("learned automaton should reject everything")
	}
}

func TestLStarRandomTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		r := randomRegex(rng, 3)
		target := automata.CompileMinimal(r)
		for _, strategy := range []Strategy{ClassicAngluin, RivestSchapire} {
			res, err := LStar(NewDFATeacher(target), Config{Strategy: strategy})
			if err != nil {
				t.Fatalf("target %v (%v): %v", r, strategy, err)
			}
			if !automata.Equivalent(res.DFA, target) {
				t.Fatalf("target %v (%v): wrong language", r, strategy)
			}
		}
	}
}

func TestRivestSchapireUsesFewerMembershipQueries(t *testing.T) {
	// On a target with a long counterexample structure, RS should not do
	// worse than classic by a wide margin; typically it does better.
	// This is the X1 ablation; here we only sanity-check both converge
	// and report stats.
	target := targetFromRegex(t, "(a . b . c . a . b)* ")
	classic := learnAndCheck(t, target, Config{Strategy: ClassicAngluin})
	rs := learnAndCheck(t, target, Config{Strategy: RivestSchapire})
	if classic.MembershipQueries == 0 || rs.MembershipQueries == 0 {
		t.Error("query accounting broken")
	}
	t.Logf("classic: %d membership, %d equivalence; rs: %d membership, %d equivalence",
		classic.MembershipQueries, classic.EquivalenceQueries,
		rs.MembershipQueries, rs.EquivalenceQueries)
}

func readClass(t *testing.T, file, name string) *model.Class {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	ast, err := pyparse.ParseClass(string(b), name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.FromAST(ast)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLStarRecoversValveProtocol is the X1 experiment: learning the
// Valve model purely by executing call sequences on the simulator
// recovers exactly the specification automaton that static extraction
// produces — dynamic and static model inference agree.
func TestLStarRecoversValveProtocol(t *testing.T) {
	valve := readClass(t, "valve.py", "Valve")
	teacher := NewInstanceTeacher(valve, 9)
	res, err := LStar(teacher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	if !automata.Equivalent(res.DFA, spec) {
		t.Error("learned Valve automaton differs from the static SpecDFA")
	}
	if res.DFA.NumStates() != spec.Minimize().NumStates() {
		t.Errorf("learned %d states, spec minimal %d", res.DFA.NumStates(), spec.Minimize().NumStates())
	}
	t.Logf("valve learned with %d membership, %d equivalence queries, %d tested traces",
		res.MembershipQueries, res.EquivalenceQueries, teacher.TestedTraces)
}

func TestLStarRecoversSectorProtocol(t *testing.T) {
	sector := readClass(t, "sector.py", "Sector")
	teacher := NewInstanceTeacher(sector, 9)
	res, err := LStar(teacher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sector.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	if !automata.Equivalent(res.DFA, spec) {
		t.Error("learned Sector automaton differs from the static SpecDFA")
	}
}

func TestLStarInvalidCounterexampleDetected(t *testing.T) {
	target := targetFromRegex(t, "a*")
	bad := &lyingTeacher{inner: NewDFATeacher(target)}
	if _, err := LStar(bad, Config{}); err == nil {
		t.Error("lying teacher should be detected")
	}
}

// lyingTeacher returns a bogus counterexample on which both sides agree.
type lyingTeacher struct {
	inner Teacher
}

func (l *lyingTeacher) Alphabet() []string      { return l.inner.Alphabet() }
func (l *lyingTeacher) Member(tr []string) bool { return l.inner.Member(tr) }
func (l *lyingTeacher) Equivalent(h *automata.DFA) ([]string, bool) {
	return []string{"a"}, false // a* and any first hypothesis both contain "a"? not necessarily...
}

func TestStrategyString(t *testing.T) {
	if ClassicAngluin.String() != "classic" || RivestSchapire.String() != "rivest-schapire" {
		t.Error("strategy names")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}

func randomRegex(rng *rand.Rand, depth int) regex.Regex {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return regex.Epsilon()
		case 1:
			return regex.Empty()
		default:
			return regex.Symbol(string(rune('a' + rng.Intn(2))))
		}
	}
	switch rng.Intn(6) {
	case 0:
		return regex.Symbol(string(rune('a' + rng.Intn(2))))
	case 1, 2:
		return regex.Concat(randomRegex(rng, depth-1), randomRegex(rng, depth-1))
	case 3, 4:
		return regex.Union(randomRegex(rng, depth-1), randomRegex(rng, depth-1))
	default:
		return regex.Star(randomRegex(rng, depth-1))
	}
}

// classFromSrc builds a model class from inline source; shared with the
// W-method tests.
func classFromSrc(t *testing.T, src, name string) *model.Class {
	t.Helper()
	ast, err := pyparse.ParseClass(src, name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.FromAST(ast)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

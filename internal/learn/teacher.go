package learn

import (
	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/model"
)

// DFATeacher answers queries from a known DFA, with exact equivalence
// checking. It is the reference teacher used to validate the learner.
type DFATeacher struct {
	target *automata.DFA
}

var _ Teacher = (*DFATeacher)(nil)

// NewDFATeacher wraps a target automaton.
func NewDFATeacher(target *automata.DFA) *DFATeacher {
	return &DFATeacher{target: target}
}

// Alphabet implements Teacher.
func (t *DFATeacher) Alphabet() []string { return t.target.Alphabet() }

// Member implements Teacher.
func (t *DFATeacher) Member(trace []string) bool { return t.target.Accepts(trace) }

// Equivalent implements Teacher with an exact product-construction
// check; the returned counterexample is shortest.
func (t *DFATeacher) Equivalent(hyp *automata.DFA) ([]string, bool) {
	return automata.Distinguish(t.target, hyp)
}

// InstanceTeacher answers membership queries by *running* the annotated
// class in the simulator (angelic call semantics), the way a hardware
// harness would drive a MicroPython object. Equivalence is approximated
// by exhaustively comparing hypothesis and system on every trace up to
// Depth — the standard bounded substitute when no white-box model is
// available.
type InstanceTeacher struct {
	class *model.Class
	depth int

	// TestedTraces counts the traces executed by equivalence queries,
	// for the benchmark reports.
	TestedTraces int
}

var _ Teacher = (*InstanceTeacher)(nil)

// NewInstanceTeacher builds a teacher around the class. depth bounds the
// equivalence search; it must be at least the diameter of the protocol
// automaton for learning to be exact (the CLI uses
// 2×(number of operations)+1 by default).
func NewInstanceTeacher(c *model.Class, depth int) *InstanceTeacher {
	return &InstanceTeacher{class: c, depth: depth}
}

// Alphabet implements Teacher: the class's operation names, sorted.
func (t *InstanceTeacher) Alphabet() []string {
	ops := t.class.OperationNames()
	sorted := append([]string(nil), ops...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted
}

// Member implements Teacher by executing the call sequence on a fresh
// simulated instance.
func (t *InstanceTeacher) Member(trace []string) bool {
	return interp.Run(t.class, trace, interp.WithAngelic())
}

// Equivalent implements Teacher by breadth-first comparison up to the
// configured depth; the returned counterexample is shortest. Subtrees
// where the simulated run has already died *and* the hypothesis is in a
// dead state are pruned: no extension can disagree there, which keeps
// the search linear in the protocol graph instead of exponential in the
// alphabet.
func (t *InstanceTeacher) Equivalent(hyp *automata.DFA) ([]string, bool) {
	doomed := doomedStates(hyp)
	frontier := [][]string{nil}
	for depth := 0; depth <= t.depth; depth++ {
		var next [][]string
		for _, trace := range frontier {
			t.TestedTraces++
			if t.Member(trace) != hyp.Accepts(trace) {
				return trace, false
			}
			if depth == t.depth {
				continue
			}
			if !interp.RunPrefix(t.class, trace, interp.WithAngelic()) {
				if st := hyp.Run(trace); st < 0 || doomed[st] {
					continue
				}
			}
			for _, a := range t.Alphabet() {
				ext := append(append([]string{}, trace...), a)
				next = append(next, ext)
			}
		}
		frontier = next
	}
	return nil, true
}

// doomedStates flags hypothesis states from which no accepting state is
// reachable; extensions through them can never flip acceptance, so the
// equivalence search prunes them once the simulated run has died too.
func doomedStates(d *automata.DFA) []bool {
	n := d.NumStates()
	radj := make([][]int, n)
	for s := 0; s < n; s++ {
		for _, sym := range d.Alphabet() {
			if to := d.Target(s, sym); to >= 0 {
				radj[to] = append(radj[to], s)
			}
		}
	}
	live := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if d.Accepting(s) {
			live[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[s] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	doomed := make([]bool, n)
	for s := 0; s < n; s++ {
		doomed[s] = !live[s]
	}
	return doomed
}

package learn

import (
	"context"
	"fmt"
	"sort"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
)

// WMethodSuite generates the Chow/Vasilevski W-method conformance test
// suite for the specification automaton: a finite set of traces such
// that any implementation with at most NumStates(spec)+extraStates
// states agrees with the specification on every trace of the suite if
// and only if it implements the same language.
//
// It is the classical bridge from an inferred model back to the device:
// run the suite against an implementation (a simulator instance, or a
// concrete pyexec device) and membership mismatches pinpoint
// non-conformance. The suite is P · Σ^{≤extraStates} · W, where P is a
// transition cover and W a characterization set; everything is built
// with alphabet-ordered BFS, so suites are deterministic.
//
// WMethodSuite runs unbudgeted; suite size is exponential in
// extraStates, so anything that derives extraStates from untrusted
// input should call WMethodSuiteCtx instead.
func WMethodSuite(spec *automata.DFA, extraStates int) [][]string {
	suite, _ := WMethodSuiteCtx(context.Background(), spec, extraStates)
	return suite
}

// WMethodSuiteCtx is WMethodSuite under a context: suite candidates and
// state-pair BFS nodes tick a search gate against the context's
// budget.Limits.MaxSearchNodes, and cancellation is polled along the
// way. Errors match errors.Is against budget.ErrExceeded /
// budget.ErrCanceled. Under a background context with no limits it
// never fails.
func WMethodSuiteCtx(ctx context.Context, spec *automata.DFA, extraStates int) ([][]string, error) {
	gate := budget.SearchGate(ctx, "wmethod-suite")
	total := spec.Complete()
	alphabet := total.Alphabet()

	// State cover: a shortest access string per state.
	access := stateCover(total)

	// Transition cover: the state cover plus every one-step extension.
	var cover [][]string
	for _, p := range access {
		cover = append(cover, p)
		for _, a := range alphabet {
			cover = append(cover, concat(p, []string{a}))
		}
	}

	// Characterization set: suffixes distinguishing every state pair.
	w, err := characterizationSet(total, gate)
	if err != nil {
		return nil, err
	}

	// Middle parts: Σ^0 ... Σ^extraStates.
	middles := [][]string{{}}
	frontier := [][]string{{}}
	for i := 0; i < extraStates; i++ {
		var next [][]string
		for _, m := range frontier {
			for _, a := range alphabet {
				if err := gate.Tick(); err != nil {
					return nil, fmt.Errorf("learn: %w", err)
				}
				next = append(next, concat(m, []string{a}))
			}
		}
		middles = append(middles, next...)
		frontier = next
	}

	// Assemble and deduplicate.
	seen := make(map[string]struct{})
	var suite [][]string
	add := func(t []string) {
		k := traceKey(t)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		suite = append(suite, t)
	}
	for _, p := range cover {
		for _, m := range middles {
			for _, suffix := range w {
				if err := gate.Tick(); err != nil {
					return nil, fmt.Errorf("learn: %w", err)
				}
				add(concat(concat(p, m), suffix))
			}
		}
	}
	sort.Slice(suite, func(i, j int) bool { return lessTrace(suite[i], suite[j]) })
	return suite, nil
}

// Conformance reports whether the implementation (a membership oracle)
// agrees with the specification on every suite trace; when it does not,
// the first disagreeing trace is returned.
func Conformance(spec *automata.DFA, impl func([]string) bool, suite [][]string) ([]string, bool) {
	for _, t := range suite {
		if impl(t) != spec.Accepts(t) {
			return t, false
		}
	}
	return nil, true
}

// stateCover returns a shortest access string per reachable state of a
// complete DFA, in BFS order from the start state.
func stateCover(d *automata.DFA) [][]string {
	access := make(map[int][]string, d.NumStates())
	access[d.Start()] = []string{}
	queue := []int{d.Start()}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, a := range d.Alphabet() {
			t := d.Target(s, a)
			if t < 0 {
				continue
			}
			if _, seen := access[t]; seen {
				continue
			}
			access[t] = concat(access[s], []string{a})
			queue = append(queue, t)
		}
	}
	states := make([]int, 0, len(access))
	for s := range access {
		states = append(states, s)
	}
	sort.Ints(states)
	out := make([][]string, 0, len(states))
	for _, s := range states {
		out = append(out, access[s])
	}
	return out
}

// characterizationSet returns suffixes that pairwise distinguish every
// pair of distinct-behavior states, found by BFS over state pairs. The
// empty suffix is included when some pair differs in acceptance.
func characterizationSet(d *automata.DFA, gate *budget.Gate) ([][]string, error) {
	n := d.NumStates()
	if n <= 1 {
		return [][]string{{}}, nil
	}
	seen := make(map[string]struct{})
	var w [][]string
	add := func(t []string) {
		k := traceKey(t)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		w = append(w, t)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			suffix, ok, err := distinguishingSuffix(d, i, j, gate)
			if err != nil {
				return nil, err
			}
			if ok {
				add(suffix)
			}
		}
	}
	if len(w) == 0 {
		w = [][]string{{}}
	}
	return w, nil
}

// distinguishingSuffix finds a shortest suffix on which states i and j
// disagree, or false when they are equivalent. Every visited state pair
// ticks the gate.
func distinguishingSuffix(d *automata.DFA, i, j int, gate *budget.Gate) ([]string, bool, error) {
	type pair struct{ a, b int }
	type node struct {
		at     pair
		suffix []string
	}
	start := pair{a: i, b: j}
	visited := map[pair]struct{}{start: {}}
	frontier := []node{{at: start}}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			if err := gate.Tick(); err != nil {
				return nil, false, fmt.Errorf("learn: %w", err)
			}
			if d.Accepting(n.at.a) != d.Accepting(n.at.b) {
				return n.suffix, true, nil
			}
			for _, sym := range d.Alphabet() {
				np := pair{a: d.Target(n.at.a, sym), b: d.Target(n.at.b, sym)}
				if np.a < 0 || np.b < 0 {
					// Complete() input makes this unreachable; guard for
					// totality on arbitrary DFAs.
					continue
				}
				if _, ok := visited[np]; ok {
					continue
				}
				visited[np] = struct{}{}
				next = append(next, node{at: np, suffix: concat(n.suffix, []string{sym})})
			}
		}
		frontier = next
	}
	return nil, false, nil
}

func lessTrace(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

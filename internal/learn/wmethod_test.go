package learn

import (
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/regex"
)

func TestWMethodSelfConformance(t *testing.T) {
	for _, src := range []string{"a*", "(a . b)*", "(a + b)* . a", "a . (b + c)* . d"} {
		spec := automata.CompileMinimal(regex.MustParse(src))
		suite := WMethodSuite(spec, 1)
		if len(suite) == 0 {
			t.Fatalf("%s: empty suite", src)
		}
		if w, ok := Conformance(spec, spec.Accepts, suite); !ok {
			t.Errorf("%s: spec fails its own suite on %v", src, w)
		}
	}
}

// TestWMethodDetectsMutants: every mutated automaton within the state
// budget is caught by some suite trace.
func TestWMethodDetectsMutants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	caught, total := 0, 0
	for i := 0; i < 60; i++ {
		r := randomRegex(rng, 3)
		spec := automata.CompileMinimal(r)
		if spec.NumStates() == 0 {
			continue
		}
		mutant, changed := mutateDFA(rng, spec)
		if !changed {
			continue
		}
		// Only mutants that actually change the language must be caught.
		if automata.Equivalent(spec, mutant) {
			continue
		}
		total++
		// The mutant has at most NumStates(spec)+1 states (Complete adds
		// a sink), so extraStates=1 guarantees detection.
		suite := WMethodSuite(spec, 1)
		if _, ok := Conformance(spec, mutant.Accepts, suite); !ok {
			caught++
		}
	}
	if total == 0 {
		t.Skip("no language-changing mutants generated")
	}
	if caught != total {
		t.Errorf("caught %d of %d mutants", caught, total)
	}
}

// mutateDFA flips one acceptance bit or redirects one transition.
func mutateDFA(rng *rand.Rand, d *automata.DFA) (*automata.DFA, bool) {
	m := d.Complete().Clone()
	n := m.NumStates()
	if n == 0 {
		return m, false
	}
	if rng.Intn(2) == 0 {
		s := rng.Intn(n)
		m.SetAccepting(s, !m.Accepting(s))
		return m, true
	}
	if len(m.Alphabet()) == 0 {
		return m, false
	}
	s := rng.Intn(n)
	sym := m.Alphabet()[rng.Intn(len(m.Alphabet()))]
	_ = m.AddTransition(s, sym, rng.Intn(n))
	return m, true
}

// TestWMethodAgainstSimulator: the Valve simulator conforms to its own
// spec; a protocol-breaking source mutation is caught.
func TestWMethodAgainstSimulator(t *testing.T) {
	valve := readClass(t, "valve.py", "Valve")
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	suite := WMethodSuite(spec, 1)
	impl := func(tr []string) bool { return interp.Run(valve, tr, interp.WithAngelic()) }
	if w, ok := Conformance(spec, impl, suite); !ok {
		t.Fatalf("valve simulator fails its own suite on %v", w)
	}
	t.Logf("valve suite size: %d traces", len(suite))
}

func TestWMethodCatchesProtocolMutation(t *testing.T) {
	// A Valve whose close returns the wrong continuation set.
	valve := readClass(t, "valve.py", "Valve")
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	mutatedSrc := `
@sys
class Valve:
    @op_initial
    def test(self):
        if ok():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close", "open"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
`
	mutated := classFromSrc(t, mutatedSrc, "Valve")
	suite := WMethodSuite(spec, 1)
	impl := func(tr []string) bool { return interp.Run(mutated, tr, interp.WithAngelic()) }
	w, ok := Conformance(spec, impl, suite)
	if ok {
		t.Fatal("mutated valve should fail the suite")
	}
	// The witness exposes the illegal open-after-open.
	if len(w) == 0 {
		t.Errorf("witness = %v", w)
	}
}

func TestWMethodSuiteDeterministic(t *testing.T) {
	spec := automata.CompileMinimal(regex.MustParse("(a . b)* . a"))
	s1 := WMethodSuite(spec, 2)
	s2 := WMethodSuite(spec, 2)
	if len(s1) != len(s2) {
		t.Fatal("suite size not deterministic")
	}
	for i := range s1 {
		if traceKey(s1[i]) != traceKey(s2[i]) {
			t.Fatal("suite order not deterministic")
		}
	}
}

func TestWMethodSingleStateSpec(t *testing.T) {
	spec := automata.CompileMinimal(regex.MustParse("a*"))
	suite := WMethodSuite(spec, 0)
	if len(suite) == 0 {
		t.Fatal("suite empty")
	}
	if w, ok := Conformance(spec, spec.Accepts, suite); !ok {
		t.Errorf("self-conformance failed on %v", w)
	}
}

// Package lower translates MicroPython method bodies (pyast) into the
// imperative calculus (ir) the behavior inference runs on, implementing
// the abstraction step of §3 of the paper:
//
//   - calls on *tracked* fields (the declared subsystems of a composite
//     class) become Call nodes labelled "field.method" (e.g. "a.test");
//   - every other expression or statement of no interest becomes skip
//     (and is dropped from sequences entirely);
//   - if/elif/else chains and match statements become nested
//     nondeterministic choices;
//   - for and while loops become loop(★);
//   - return statements become Return nodes, and their `["m1", ...]`
//     label lists (Table 2 of the paper) are collected as exit points
//     for the method-dependency graph (§3.1).
//
// Tracked calls appearing inside a condition, match subject, assignment
// right-hand side or return value are emitted in evaluation order before
// the construct itself, since the calculus has no expressions. Tracked
// calls inside a loop condition are emitted at the head of the loop body
// (the calculus models a loop only as "body runs some unknown number of
// times").
package lower

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pytoken"
)

// Error is a lowering error with its source position.
type Error struct {
	Pos pytoken.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Exit describes one return statement of a method: an exit point of the
// dependency graph.
type Exit struct {
	// ID is the exit's index in source order (0-based).
	ID int

	// Next lists the methods that may be invoked after this exit, from
	// `return ["m1", ..., mn]`. Empty means no method may follow (the
	// object's lifetime ends here, `return []`).
	Next []string

	// Declared reports whether the return statement carried a
	// protocol label list at all. A bare `return` or a return of a
	// non-list value has Declared == false; annotated operations are
	// required to declare their continuations (checked downstream).
	Declared bool

	// HasValue reports whether the return also carries a user value
	// (`return ["close"], 2` — Table 2 rows 3-5).
	HasValue bool

	Pos pytoken.Pos
}

// MatchSite records a `match self.x.m():` statement over a tracked call,
// for the exit-point exhaustiveness analysis (§3, step 3).
type MatchSite struct {
	// Op is the tracked operation the subject invokes, e.g. "a.test".
	Op string

	// Patterns holds, per case clause, the label list of the pattern
	// (`case ["open"]:` → ["open"]); a nil entry denotes a wildcard or
	// unrecognized pattern, which matches anything.
	Patterns [][]string

	// Wildcard reports whether any case is a catch-all.
	Wildcard bool

	Pos pytoken.Pos
}

// Method is the lowering result for one method body.
type Method struct {
	// Name is the method name.
	Name string

	// Program is the method body in the imperative calculus.
	Program ir.Program

	// Exits are the method's return statements in source order.
	Exits []Exit

	// Matches are the match statements over tracked calls, for the
	// exhaustiveness check.
	Matches []MatchSite

	// AlwaysReturns reports whether every control path through the body
	// ends in a return statement (loops are assumed skippable, matching
	// the calculus's nondeterministic loop).
	AlwaysReturns bool
}

// Tracked decides whether a `self.<field>` receiver is a tracked
// subsystem; it returns the label prefix to use (normally the field name
// itself).
type Tracked func(field string) (label string, ok bool)

// TrackedFields builds a Tracked function from a set of field names, each
// labelled by itself. A nil or empty set tracks nothing (base classes).
func TrackedFields(fields []string) Tracked {
	set := make(map[string]struct{}, len(fields))
	for _, f := range fields {
		set[f] = struct{}{}
	}
	return func(field string) (string, bool) {
		_, ok := set[field]
		return field, ok
	}
}

// LowerMethod lowers one method body.
func LowerMethod(fn *pyast.FuncDef, tracked Tracked) (*Method, error) {
	l := &lowerer{tracked: tracked}
	prog, err := l.stmts(fn.Body)
	if err != nil {
		return nil, err
	}
	return &Method{
		Name:          fn.Name,
		Program:       prog,
		Exits:         l.exits,
		Matches:       l.matches,
		AlwaysReturns: stmtsAlwaysReturn(fn.Body),
	}, nil
}

type lowerer struct {
	tracked Tracked
	exits   []Exit
	matches []MatchSite
}

// stmts lowers a statement list to a sequence, dropping skip parts.
func (l *lowerer) stmts(body []pyast.Stmt) (ir.Program, error) {
	var parts []ir.Program
	for _, s := range body {
		p, err := l.stmt(s)
		if err != nil {
			return nil, err
		}
		if _, isSkip := p.(ir.Skip); isSkip {
			continue
		}
		parts = append(parts, p)
	}
	return ir.NewSeq(parts...), nil
}

func (l *lowerer) stmt(s pyast.Stmt) (ir.Program, error) {
	switch s := s.(type) {
	case *pyast.ExprStmt:
		return l.exprEffects(s.X)
	case *pyast.Assign:
		// Only the right-hand side can invoke tracked methods; the
		// target is a plain field reference.
		return l.exprEffects(s.Value)
	case *pyast.Return:
		return l.lowerReturn(s)
	case *pyast.If:
		return l.lowerIf(s)
	case *pyast.Match:
		return l.lowerMatch(s)
	case *pyast.While:
		cond, err := l.exprEffects(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := l.stmts(s.Body)
		if err != nil {
			return nil, err
		}
		return ir.NewLoop(seqNonSkip(cond, body)), nil
	case *pyast.For:
		iter, err := l.exprEffects(s.Iter)
		if err != nil {
			return nil, err
		}
		body, err := l.stmts(s.Body)
		if err != nil {
			return nil, err
		}
		// The iterable is evaluated once, before the loop.
		return seqNonSkip(iter, ir.NewLoop(body)), nil
	case *pyast.Pass, *pyast.Import:
		return ir.NewSkip(), nil
	case *pyast.Break:
		return nil, &Error{Pos: s.Pos(), Msg: "'break' is outside the supported subset (the calculus models loops as running an unknown number of iterations)"}
	case *pyast.Continue:
		return nil, &Error{Pos: s.Pos(), Msg: "'continue' is outside the supported subset"}
	default:
		return nil, &Error{Pos: s.Pos(), Msg: fmt.Sprintf("unsupported statement %T", s)}
	}
}

func (l *lowerer) lowerReturn(s *pyast.Return) (ir.Program, error) {
	exit := Exit{ID: len(l.exits), Pos: s.ReturnPos}
	var prefix ir.Program = ir.NewSkip()
	if len(s.Values) > 0 {
		if labels, ok := pyast.StringElements(s.Values[0]); ok {
			exit.Next = labels
			exit.Declared = true
			exit.HasValue = len(s.Values) > 1
		} else {
			exit.HasValue = true
		}
		// Tracked calls inside returned expressions still happen.
		for _, v := range s.Values {
			eff, err := l.exprEffects(v)
			if err != nil {
				return nil, err
			}
			prefix = seqNonSkip(prefix, eff)
		}
	}
	l.exits = append(l.exits, exit)
	return seqNonSkip(prefix, ir.Return{ExitID: exit.ID}), nil
}

func (l *lowerer) lowerIf(s *pyast.If) (ir.Program, error) {
	// Lower every piece in source order first, so exit IDs follow the
	// textual order of return statements.
	cond, err := l.exprEffects(s.Cond)
	if err != nil {
		return nil, err
	}
	then, err := l.stmts(s.Body)
	if err != nil {
		return nil, err
	}
	type arm struct{ cond, body ir.Program }
	arms := make([]arm, 0, len(s.Elifs))
	for _, clause := range s.Elifs {
		econd, err := l.exprEffects(clause.Cond)
		if err != nil {
			return nil, err
		}
		ebody, err := l.stmts(clause.Body)
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm{cond: econd, body: ebody})
	}
	var els ir.Program = ir.NewSkip()
	if s.Else != nil {
		els, err = l.stmts(s.Else)
		if err != nil {
			return nil, err
		}
	}
	// Assemble innermost-else outward: each elif condition is evaluated
	// before choosing between its body and the rest of the chain.
	for i := len(arms) - 1; i >= 0; i-- {
		els = seqNonSkip(arms[i].cond, ir.NewIf(arms[i].body, els))
	}
	return seqNonSkip(cond, ir.NewIf(then, els)), nil
}

func (l *lowerer) lowerMatch(s *pyast.Match) (ir.Program, error) {
	subject, err := l.exprEffects(s.Subject)
	if err != nil {
		return nil, err
	}

	// Record the match site when the subject is exactly one tracked call.
	if call, ok := s.Subject.(*pyast.CallExpr); ok {
		if label, ok := l.trackedCallLabel(call); ok {
			site := MatchSite{Op: label, Pos: s.MatchPos}
			for _, c := range s.Cases {
				if _, isWild := c.Pattern.(*pyast.WildcardExpr); isWild {
					site.Wildcard = true
					site.Patterns = append(site.Patterns, nil)
					continue
				}
				if labels, ok := pyast.StringElements(c.Pattern); ok {
					site.Patterns = append(site.Patterns, labels)
				} else {
					site.Wildcard = true
					site.Patterns = append(site.Patterns, nil)
				}
			}
			l.matches = append(l.matches, site)
		}
	}

	alts := make([]ir.Program, 0, len(s.Cases))
	for _, c := range s.Cases {
		body, err := l.stmts(c.Body)
		if err != nil {
			return nil, err
		}
		alts = append(alts, body)
	}
	return seqNonSkip(subject, ir.NewChoice(alts...)), nil
}

// exprEffects extracts the tracked calls of an expression in evaluation
// order (receivers and arguments before the call itself).
func (l *lowerer) exprEffects(e pyast.Expr) (ir.Program, error) {
	var parts []ir.Program
	var walk func(e pyast.Expr) error
	walk = func(e pyast.Expr) error {
		switch e := e.(type) {
		case *pyast.CallExpr:
			// Arguments are evaluated before the call fires.
			for _, a := range e.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
			if label, ok := l.trackedCallLabel(e); ok {
				parts = append(parts, ir.NewCall(label))
				return nil
			}
			// Untracked call: still check the receiver chain for misuse
			// of tracked fields (e.g. self.a.pin.on()).
			if err := l.checkUntrackedReceiver(e); err != nil {
				return err
			}
			return nil
		case *pyast.AttrExpr:
			return walk(e.Value)
		case *pyast.BinOpExpr:
			if err := walk(e.Left); err != nil {
				return err
			}
			return walk(e.Right)
		case *pyast.UnaryExpr:
			return walk(e.X)
		case *pyast.ListExpr:
			for _, elt := range e.Elts {
				if err := walk(elt); err != nil {
					return err
				}
			}
			return nil
		case *pyast.TupleExpr:
			for _, elt := range e.Elts {
				if err := walk(elt); err != nil {
					return err
				}
			}
			return nil
		default:
			return nil
		}
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return ir.NewSeq(parts...), nil
}

// trackedCallLabel reports whether the call is `self.<field>.<method>()`
// on a tracked field, returning the "<label>.<method>" operation name.
func (l *lowerer) trackedCallLabel(call *pyast.CallExpr) (string, bool) {
	attr, ok := call.Fn.(*pyast.AttrExpr)
	if !ok {
		return "", false
	}
	recv, ok := attr.Value.(*pyast.AttrExpr)
	if !ok {
		return "", false
	}
	if base, ok := recv.Value.(*pyast.NameExpr); !ok || base.Name != "self" {
		return "", false
	}
	label, ok := l.tracked(recv.Attr)
	if !ok {
		return "", false
	}
	return label + "." + attr.Attr, true
}

// checkUntrackedReceiver rejects calls that reach *through* a tracked
// field (self.a.pin.on()): Shelley only supports direct method
// invocation on subsystem fields, and silently skipping these would
// under-approximate the subsystem's usage.
func (l *lowerer) checkUntrackedReceiver(call *pyast.CallExpr) error {
	name, ok := pyast.DottedName(call.Fn)
	if !ok {
		return nil
	}
	parts := splitDots(name)
	if len(parts) < 4 || parts[0] != "self" {
		return nil
	}
	if _, tracked := l.tracked(parts[1]); tracked {
		return &Error{
			Pos: call.Pos(),
			Msg: fmt.Sprintf("call %s() reaches through subsystem %q; only direct method calls on subsystem fields are supported", name, parts[1]),
		}
	}
	return nil
}

// seqNonSkip sequences programs, dropping skip parts.
func seqNonSkip(ps ...ir.Program) ir.Program {
	var parts []ir.Program
	for _, p := range ps {
		if _, isSkip := p.(ir.Skip); isSkip {
			continue
		}
		parts = append(parts, p)
	}
	return ir.NewSeq(parts...)
}

// stmtsAlwaysReturn reports whether every control path through the list
// ends in a return. Loops never guarantee a return (the calculus lets
// them run zero iterations).
func stmtsAlwaysReturn(body []pyast.Stmt) bool {
	for _, s := range body {
		if stmtAlwaysReturns(s) {
			return true
		}
	}
	return false
}

func stmtAlwaysReturns(s pyast.Stmt) bool {
	switch s := s.(type) {
	case *pyast.Return:
		return true
	case *pyast.If:
		if s.Else == nil {
			return false
		}
		if !stmtsAlwaysReturn(s.Body) || !stmtsAlwaysReturn(s.Else) {
			return false
		}
		for _, e := range s.Elifs {
			if !stmtsAlwaysReturn(e.Body) {
				return false
			}
		}
		return true
	case *pyast.Match:
		for _, c := range s.Cases {
			if !stmtsAlwaysReturn(c.Body) {
				return false
			}
		}
		return len(s.Cases) > 0
	default:
		return false
	}
}

func splitDots(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

package lower

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func parseClass(t *testing.T, src, name string) *pyast.ClassDef {
	t.Helper()
	cls, err := pyparse.ParseClass(src, name)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cls
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	return string(b)
}

func lowerNamed(t *testing.T, cls *pyast.ClassDef, method string, tracked []string) *Method {
	t.Helper()
	fn := cls.Method(method)
	if fn == nil {
		t.Fatalf("method %s missing", method)
	}
	m, err := LowerMethod(fn, TrackedFields(tracked))
	if err != nil {
		t.Fatalf("lower %s: %v", method, err)
	}
	return m
}

func TestLowerValveTest(t *testing.T) {
	cls := parseClass(t, readTestdata(t, "valve.py"), "Valve")
	// Valve is a base class: no tracked fields, so pin calls are skips
	// and the body reduces to a choice between the two returns.
	m := lowerNamed(t, cls, "test", nil)
	if got, want := m.Program.String(), "if(*) { return } else { return }"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
	if len(m.Exits) != 2 {
		t.Fatalf("exits = %d, want 2", len(m.Exits))
	}
	if !m.Exits[0].Declared || len(m.Exits[0].Next) != 1 || m.Exits[0].Next[0] != "open" {
		t.Errorf("exit 0 = %+v", m.Exits[0])
	}
	if !m.Exits[1].Declared || m.Exits[1].Next[0] != "clean" {
		t.Errorf("exit 1 = %+v", m.Exits[1])
	}
	if !m.AlwaysReturns {
		t.Error("test always returns")
	}
}

func TestLowerBadSectorOpenA(t *testing.T) {
	cls := parseClass(t, readTestdata(t, "badsector.py"), "BadSector")
	m := lowerNamed(t, cls, "open_a", []string{"a", "b"})
	want := "a.test(); if(*) { a.open(); return } else { a.clean(); return }"
	if got := m.Program.String(); got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
	// Exit 0 continues to open_b; exit 1 ends the lifetime.
	if len(m.Exits) != 2 {
		t.Fatalf("exits = %+v", m.Exits)
	}
	if len(m.Exits[0].Next) != 1 || m.Exits[0].Next[0] != "open_b" {
		t.Errorf("exit 0 = %+v", m.Exits[0])
	}
	if len(m.Exits[1].Next) != 0 || !m.Exits[1].Declared {
		t.Errorf("exit 1 = %+v", m.Exits[1])
	}
	// Wait: exit 1's body is `self.a.clean(); print(...); return []`.
	// The a.clean() call must appear before the return.
	if !strings.Contains(m.Program.String(), "a.test()") {
		t.Errorf("missing a.test in %q", m.Program)
	}

	// The match site over a.test with both patterns.
	if len(m.Matches) != 1 {
		t.Fatalf("matches = %+v", m.Matches)
	}
	site := m.Matches[0]
	if site.Op != "a.test" || site.Wildcard {
		t.Errorf("site = %+v", site)
	}
	if len(site.Patterns) != 2 || site.Patterns[0][0] != "open" || site.Patterns[1][0] != "clean" {
		t.Errorf("patterns = %+v", site.Patterns)
	}
}

func TestLowerBadSectorOpenAHasCleanCall(t *testing.T) {
	cls := parseClass(t, readTestdata(t, "badsector.py"), "BadSector")
	m := lowerNamed(t, cls, "open_a", []string{"a", "b"})
	// Second case body: a.clean() then return — print() is skipped.
	want := "a.test(); if(*) { a.open(); return } else { a.clean(); return }"
	_ = want
	got := m.Program.String()
	if !strings.Contains(got, "a.clean(); return") {
		t.Errorf("program = %q, want a.clean(); return in else branch", got)
	}
}

func TestLowerBadSectorOpenB(t *testing.T) {
	cls := parseClass(t, readTestdata(t, "badsector.py"), "BadSector")
	m := lowerNamed(t, cls, "open_b", []string{"a", "b"})
	got := m.Program.String()
	want := "b.test(); if(*) { b.open(); a.close(); b.close(); return } else { b.clean(); a.close(); return }"
	if got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerUntrackedFieldsAreSkips(t *testing.T) {
	src := `class C:
    def m(self):
        self.log.write("hi")
        self.helper()
        print("x")
        x = 1 + 2
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"dev"})
	if got := m.Program.String(); got != "skip" {
		t.Errorf("program = %q, want skip", got)
	}
	if len(m.Exits) != 0 {
		t.Errorf("exits = %+v", m.Exits)
	}
	if m.AlwaysReturns {
		t.Error("m never returns")
	}
}

func TestLowerWhileLoop(t *testing.T) {
	src := `class C:
    def m(self):
        while self.busy():
            self.dev.step()
        return []
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"dev"})
	if got, want := m.Program.String(), "loop(*) { dev.step() }; return"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerWhileCondWithTrackedCall(t *testing.T) {
	src := `class C:
    def m(self):
        while self.dev.poll():
            self.dev.step()
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"dev"})
	if got, want := m.Program.String(), "loop(*) { dev.poll(); dev.step() }"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerForLoopEvaluatesIterableOnce(t *testing.T) {
	src := `class C:
    def m(self):
        for i in self.dev.items():
            self.dev.step()
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"dev"})
	if got, want := m.Program.String(), "dev.items(); loop(*) { dev.step() }"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerElifChain(t *testing.T) {
	src := `class C:
    def m(self):
        if a:
            self.d.p()
        elif b:
            self.d.q()
        else:
            self.d.r()
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	want := "if(*) { d.p() } else { if(*) { d.q() } else { d.r() } }"
	if got := m.Program.String(); got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerIfWithoutElse(t *testing.T) {
	src := `class C:
    def m(self):
        if a:
            self.d.p()
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	want := "if(*) { d.p() } else { skip }"
	if got := m.Program.String(); got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerAssignAndConditionCalls(t *testing.T) {
	src := `class C:
    def m(self):
        x = self.d.read()
        if self.d.check() == 1:
            pass
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	want := "d.read(); d.check(); if(*) { skip } else { skip }"
	if got := m.Program.String(); got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerCallArgumentsEvaluatedFirst(t *testing.T) {
	src := `class C:
    def m(self):
        self.d.write(self.d.read())
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	if got, want := m.Program.String(), "d.read(); d.write()"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerReturnWithTrackedCallInValue(t *testing.T) {
	src := `class C:
    def m(self):
        return ["n"], self.d.read()
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	if got, want := m.Program.String(), "d.read(); return"; got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
	if !m.Exits[0].HasValue || !m.Exits[0].Declared {
		t.Errorf("exit = %+v", m.Exits[0])
	}
}

func TestLowerBareReturn(t *testing.T) {
	src := `class C:
    def m(self):
        return
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", nil)
	if m.Exits[0].Declared {
		t.Error("bare return should not be Declared")
	}
	if got, want := m.Program.String(), "return"; got != want {
		t.Errorf("program = %q", got)
	}
}

func TestLowerNonProtocolReturnValue(t *testing.T) {
	src := `class C:
    def m(self):
        return 42
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", nil)
	e := m.Exits[0]
	if e.Declared || !e.HasValue {
		t.Errorf("exit = %+v, want undeclared with value", e)
	}
}

func TestLowerMatchWildcard(t *testing.T) {
	src := `class C:
    def m(self):
        match self.d.test():
            case ["ok"]:
                self.d.go()
            case _:
                pass
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	if len(m.Matches) != 1 || !m.Matches[0].Wildcard {
		t.Errorf("matches = %+v", m.Matches)
	}
	want := "d.test(); if(*) { d.go() } else { skip }"
	if got := m.Program.String(); got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerMatchOverUntrackedSubjectNotRecorded(t *testing.T) {
	src := `class C:
    def m(self):
        match self.mode:
            case ["x"]:
                pass
`
	cls := parseClass(t, src, "C")
	m := lowerNamed(t, cls, "m", []string{"d"})
	if len(m.Matches) != 0 {
		t.Errorf("matches = %+v, want none", m.Matches)
	}
}

func TestLowerBreakContinueRejected(t *testing.T) {
	for _, kw := range []string{"break", "continue"} {
		src := "class C:\n    def m(self):\n        while x:\n            " + kw + "\n"
		cls := parseClass(t, src, "C")
		if _, err := LowerMethod(cls.Method("m"), TrackedFields(nil)); err == nil {
			t.Errorf("%s should be rejected", kw)
		}
	}
}

func TestLowerReachThroughSubsystemRejected(t *testing.T) {
	src := `class C:
    def m(self):
        self.a.pin.on()
`
	cls := parseClass(t, src, "C")
	_, err := LowerMethod(cls.Method("m"), TrackedFields([]string{"a"}))
	if err == nil {
		t.Fatal("reach-through call should be rejected")
	}
	if !strings.Contains(err.Error(), "self.a.pin.on") {
		t.Errorf("error = %v", err)
	}
	// The same shape on an untracked field is fine (it's a skip).
	_, err = LowerMethod(cls.Method("m"), TrackedFields([]string{"other"}))
	if err != nil {
		t.Errorf("untracked deep call should lower to skip, got %v", err)
	}
}

func TestAlwaysReturnsAnalysis(t *testing.T) {
	src := `class C:
    def yes_if(self):
        if a:
            return ["x"]
        else:
            return []

    def no_if(self):
        if a:
            return ["x"]

    def yes_match(self):
        match self.d.m():
            case ["a"]:
                return []
            case _:
                return []

    def no_loop(self):
        while a:
            return []

    def yes_tail(self):
        self.d.m()
        return []

    def yes_elif(self):
        if a:
            return []
        elif b:
            return []
        else:
            return []
`
	cls := parseClass(t, src, "C")
	tests := map[string]bool{
		"yes_if":    true,
		"no_if":     false,
		"yes_match": true,
		"no_loop":   false,
		"yes_tail":  true,
		"yes_elif":  true,
	}
	for name, want := range tests {
		m := lowerNamed(t, cls, name, []string{"d"})
		if m.AlwaysReturns != want {
			t.Errorf("%s: AlwaysReturns = %v, want %v", name, m.AlwaysReturns, want)
		}
	}
}

func TestSubsystemTypes(t *testing.T) {
	cls := parseClass(t, readTestdata(t, "badsector.py"), "BadSector")
	types, err := SubsystemTypes(cls, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if types["a"] != "Valve" || types["b"] != "Valve" {
		t.Errorf("types = %v", types)
	}
}

func TestSubsystemTypesErrors(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		declared []string
	}{
		{
			"missing init",
			"class C:\n    def m(self):\n        pass\n",
			[]string{"a"},
		},
		{
			"field never initialized",
			"class C:\n    def __init__(self):\n        self.b = Valve()\n",
			[]string{"a"},
		},
		{
			"non-constructor",
			"class C:\n    def __init__(self):\n        self.a = 42\n",
			[]string{"a"},
		},
		{
			"double init",
			"class C:\n    def __init__(self):\n        self.a = Valve()\n        self.a = Pump()\n",
			[]string{"a"},
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cls := parseClass(t, tt.src, "C")
			if _, err := SubsystemTypes(cls, tt.declared); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSubsystemTypesNoSubsystems(t *testing.T) {
	cls := parseClass(t, readTestdata(t, "valve.py"), "Valve")
	types, err := SubsystemTypes(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 0 {
		t.Errorf("types = %v, want empty", types)
	}
}

func TestLowerReachThroughInArguments(t *testing.T) {
	// A reach-through call hidden in an argument list is also rejected.
	src := `class C:
    def m(self):
        self.log.write(self.a.pin.on())
`
	cls := parseClass(t, src, "C")
	if _, err := LowerMethod(cls.Method("m"), TrackedFields([]string{"a"})); err == nil {
		t.Error("reach-through in argument should be rejected")
	}
}

func TestLowerTrackedCallsInComparisons(t *testing.T) {
	src := `class C:
    def m(self):
        if self.d.read() == self.d.peek():
            pass
        x = not self.d.flag()
        y = [self.d.a(), self.d.b()]
        z = (self.d.c(), 1)
`
	cls := parseClass(t, src, "C")
	m, err := LowerMethod(cls.Method("m"), TrackedFields([]string{"d"}))
	if err != nil {
		t.Fatal(err)
	}
	got := m.Program.String()
	want := "d.read(); d.peek(); if(*) { skip } else { skip }; d.flag(); d.a(); d.b(); d.c()"
	if got != want {
		t.Errorf("program = %q, want %q", got, want)
	}
}

func TestLowerMatchNonListPatternsAreWildcards(t *testing.T) {
	src := `class C:
    def m(self):
        match self.d.test():
            case 5:
                self.d.go()
`
	cls := parseClass(t, src, "C")
	m, err := LowerMethod(cls.Method("m"), TrackedFields([]string{"d"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Matches) != 1 || !m.Matches[0].Wildcard {
		t.Errorf("non-list pattern should register as wildcard: %+v", m.Matches)
	}
}

func TestLowerDeeplyNestedMixedControlFlow(t *testing.T) {
	src := `class C:
    def m(self):
        while a:
            match self.d.poll():
                case ["go"]:
                    for i in items:
                        if self.d.check():
                            self.d.act()
                        return ["m"]
                case _:
                    pass
`
	cls := parseClass(t, src, "C")
	m, err := LowerMethod(cls.Method("m"), TrackedFields([]string{"d"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Exits) != 1 {
		t.Errorf("exits = %+v", m.Exits)
	}
	for _, want := range []string{"loop(*)", "d.poll()", "d.check()", "d.act()", "return"} {
		if !strings.Contains(m.Program.String(), want) {
			t.Errorf("program %q missing %q", m.Program.String(), want)
		}
	}
}

package lower

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/pyast"
)

// SubsystemTypes inspects a composite class's __init__ and maps each
// declared subsystem field to the class it is constructed from:
//
//	self.a = Valve()   →   {"a": "Valve"}
//
// Fields declared in @sys([...]) but never assigned a constructor call in
// __init__ are reported as errors, as are assignments of non-constructor
// expressions to declared fields.
func SubsystemTypes(cls *pyast.ClassDef, declared []string) (map[string]string, error) {
	want := make(map[string]struct{}, len(declared))
	for _, d := range declared {
		want[d] = struct{}{}
	}
	out := make(map[string]string, len(declared))

	init := cls.Method("__init__")
	if init == nil {
		if len(declared) == 0 {
			return out, nil
		}
		return nil, fmt.Errorf("class %s declares subsystems %v but has no __init__", cls.Name, declared)
	}
	for _, s := range init.Body {
		asg, ok := s.(*pyast.Assign)
		if !ok {
			continue
		}
		target, ok := pyast.DottedName(asg.Target)
		if !ok {
			continue
		}
		parts := splitDots(target)
		if len(parts) != 2 || parts[0] != "self" {
			continue
		}
		field := parts[1]
		if _, isDeclared := want[field]; !isDeclared {
			continue
		}
		call, ok := asg.Value.(*pyast.CallExpr)
		if !ok {
			return nil, &Error{
				Pos: asg.Pos(),
				Msg: fmt.Sprintf("subsystem field %q must be initialized with a constructor call", field),
			}
		}
		typeName, ok := pyast.DottedName(call.Fn)
		if !ok {
			return nil, &Error{
				Pos: asg.Pos(),
				Msg: fmt.Sprintf("subsystem field %q has an unsupported constructor expression", field),
			}
		}
		if prev, dup := out[field]; dup {
			return nil, &Error{
				Pos: asg.Pos(),
				Msg: fmt.Sprintf("subsystem field %q initialized twice (%s, then %s)", field, prev, typeName),
			}
		}
		out[field] = typeName
	}
	for _, d := range declared {
		if _, ok := out[d]; !ok {
			return nil, fmt.Errorf("class %s: declared subsystem %q is never initialized in __init__", cls.Name, d)
		}
	}
	return out, nil
}

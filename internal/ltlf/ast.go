// Package ltlf implements linear temporal logic on finite traces (LTLf,
// De Giacomo & Vardi 2013), the logic of Shelley's @claim annotations
// (§2.2 of the paper). A trace is a finite sequence of events (operation
// names such as "a.open"); an atom holds at an instant iff it is the
// event at that instant.
//
// The package provides a parser for the claim syntax, a direct
// finite-trace evaluator, and a compiler from formulas to DFAs via
// formula progression — realizing the paper's future-work plan of
// checking claims directly on regular languages instead of encoding
// them for NuSMV.
package ltlf

import (
	"sort"
	"strings"
)

// Formula is an LTLf formula node. Formulas are immutable.
type Formula interface {
	// String renders the formula using the claim syntax: ! & | ->
	// X N U W R G F, with atoms as dotted names.
	String() string

	precedence() int
	key() string
}

type (
	// Tru is the constant true.
	Tru struct{}

	// Fls is the constant false.
	Fls struct{}

	// Atom holds at an instant iff the event at that instant equals
	// Name.
	Atom struct{ Name string }

	// Not is logical negation.
	Not struct{ X Formula }

	// And is conjunction (n-ary, flattened and deduplicated).
	And struct{ Xs []Formula }

	// Or is disjunction (n-ary, flattened and deduplicated).
	Or struct{ Xs []Formula }

	// Implies is material implication.
	Implies struct{ L, R Formula }

	// Next is the strong next: a next instant exists and satisfies X.
	Next struct{ X Formula }

	// WeakNext is the weak next: the trace ends here, or the next
	// instant satisfies X.
	WeakNext struct{ X Formula }

	// Until is the strong until: R eventually holds, and L holds at
	// every earlier instant.
	Until struct{ L, R Formula }

	// WeakUntil is L W R = (L U R) | G L.
	WeakUntil struct{ L, R Formula }

	// Release is L R R2: R2 holds up to and including the instant where
	// L first holds; if L never holds, R2 holds forever.
	Release struct{ L, R Formula }

	// Globally is G X: X holds at every instant (vacuously true on the
	// empty trace).
	Globally struct{ X Formula }

	// Finally is F X: X holds at some instant.
	Finally struct{ X Formula }

	// nonempty is an internal pseudo-atom produced by progression of a
	// strong Next: it holds exactly on non-empty traces.
	nonempty struct{}
)

// Constructors. True/False/NewAtom are trivial; AndOf/OrOf normalize
// (flatten, drop units, deduplicate, sort) so that progression states
// have canonical keys.

// True returns the constant true.
func True() Formula { return Tru{} }

// False returns the constant false.
func False() Formula { return Fls{} }

// NewAtom returns the atom with the given event name.
func NewAtom(name string) Formula { return Atom{Name: name} }

// NotOf returns the negation of x, folding constants and double
// negation.
func NotOf(x Formula) Formula {
	switch x := x.(type) {
	case Tru:
		return Fls{}
	case Fls:
		return Tru{}
	case Not:
		return x.X
	}
	return Not{X: x}
}

// AndOf returns the conjunction of xs in normal form.
func AndOf(xs ...Formula) Formula {
	seen := make(map[string]struct{})
	var parts []Formula
	var add func(f Formula) bool // returns false on contradiction
	add = func(f Formula) bool {
		switch f := f.(type) {
		case Tru:
			return true
		case Fls:
			return false
		case And:
			for _, p := range f.Xs {
				if !add(p) {
					return false
				}
			}
			return true
		default:
			k := f.key()
			if _, dup := seen[k]; dup {
				return true
			}
			// a & !a = false
			if _, clash := seen[NotOf(f).key()]; clash {
				return false
			}
			seen[k] = struct{}{}
			parts = append(parts, f)
			return true
		}
	}
	for _, x := range xs {
		if !add(x) {
			return Fls{}
		}
	}
	switch len(parts) {
	case 0:
		return Tru{}
	case 1:
		return parts[0]
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].key() < parts[j].key() })
	return And{Xs: parts}
}

// OrOf returns the disjunction of xs in normal form.
func OrOf(xs ...Formula) Formula {
	seen := make(map[string]struct{})
	var parts []Formula
	var add func(f Formula) bool // returns false on tautology
	add = func(f Formula) bool {
		switch f := f.(type) {
		case Fls:
			return true
		case Tru:
			return false
		case Or:
			for _, p := range f.Xs {
				if !add(p) {
					return false
				}
			}
			return true
		default:
			k := f.key()
			if _, dup := seen[k]; dup {
				return true
			}
			if _, clash := seen[NotOf(f).key()]; clash {
				return false
			}
			seen[k] = struct{}{}
			parts = append(parts, f)
			return true
		}
	}
	for _, x := range xs {
		if !add(x) {
			return Tru{}
		}
	}
	switch len(parts) {
	case 0:
		return Fls{}
	case 1:
		return parts[0]
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].key() < parts[j].key() })
	return Or{Xs: parts}
}

// ImpliesOf returns l -> r.
func ImpliesOf(l, r Formula) Formula { return Implies{L: l, R: r} }

// NextOf returns X x.
func NextOf(x Formula) Formula { return Next{X: x} }

// WeakNextOf returns N x.
func WeakNextOf(x Formula) Formula { return WeakNext{X: x} }

// UntilOf returns l U r.
func UntilOf(l, r Formula) Formula { return Until{L: l, R: r} }

// WeakUntilOf returns l W r.
func WeakUntilOf(l, r Formula) Formula { return WeakUntil{L: l, R: r} }

// ReleaseOf returns l R r.
func ReleaseOf(l, r Formula) Formula { return Release{L: l, R: r} }

// GloballyOf returns G x.
func GloballyOf(x Formula) Formula { return Globally{X: x} }

// FinallyOf returns F x.
func FinallyOf(x Formula) Formula { return Finally{X: x} }

// precedence levels (looser binds lower).
const (
	precImplies = iota + 1
	precOr
	precAnd
	precTemporalBin // U, W, R
	precUnary       // !, X, N, G, F
	precAtomic
)

func (Tru) precedence() int       { return precAtomic }
func (Fls) precedence() int       { return precAtomic }
func (Atom) precedence() int      { return precAtomic }
func (nonempty) precedence() int  { return precAtomic }
func (Not) precedence() int       { return precUnary }
func (Next) precedence() int      { return precUnary }
func (WeakNext) precedence() int  { return precUnary }
func (Globally) precedence() int  { return precUnary }
func (Finally) precedence() int   { return precUnary }
func (Until) precedence() int     { return precTemporalBin }
func (WeakUntil) precedence() int { return precTemporalBin }
func (Release) precedence() int   { return precTemporalBin }
func (And) precedence() int       { return precAnd }
func (Or) precedence() int        { return precOr }
func (Implies) precedence() int   { return precImplies }

func (Tru) String() string      { return "true" }
func (Fls) String() string      { return "false" }
func (a Atom) String() string   { return a.Name }
func (nonempty) String() string { return "<nonempty>" }

func (f Not) String() string      { return "!" + child(f.X, precUnary) }
func (f Next) String() string     { return "X " + child(f.X, precUnary) }
func (f WeakNext) String() string { return "N " + child(f.X, precUnary) }
func (f Globally) String() string { return "G " + child(f.X, precUnary) }
func (f Finally) String() string  { return "F " + child(f.X, precUnary) }

func (f Until) String() string {
	return child(f.L, precUnary) + " U " + child(f.R, precTemporalBin)
}
func (f WeakUntil) String() string {
	return child(f.L, precUnary) + " W " + child(f.R, precTemporalBin)
}
func (f Release) String() string {
	return child(f.L, precUnary) + " R " + child(f.R, precTemporalBin)
}

func (f And) String() string { return joinChildren(f.Xs, " & ", precAnd) }
func (f Or) String() string  { return joinChildren(f.Xs, " | ", precOr) }

func (f Implies) String() string {
	return child(f.L, precOr) + " -> " + child(f.R, precImplies)
}

func child(f Formula, parent int) string {
	if f.precedence() < parent {
		return "(" + f.String() + ")"
	}
	return f.String()
}

func joinChildren(fs []Formula, sep string, parent int) string {
	var b strings.Builder
	for i, f := range fs {
		if i > 0 {
			b.WriteString(sep)
		}
		// Children at the same precedence level are fine (assoc), below
		// need parens.
		if f.precedence() < parent {
			b.WriteString("(")
			b.WriteString(f.String())
			b.WriteString(")")
		} else {
			b.WriteString(f.String())
		}
	}
	return b.String()
}

func (Tru) key() string        { return "T" }
func (Fls) key() string        { return "F" }
func (a Atom) key() string     { return "a(" + a.Name + ")" }
func (nonempty) key() string   { return "ne" }
func (f Not) key() string      { return "!(" + f.X.key() + ")" }
func (f Next) key() string     { return "X(" + f.X.key() + ")" }
func (f WeakNext) key() string { return "N(" + f.X.key() + ")" }
func (f Globally) key() string { return "G(" + f.X.key() + ")" }
func (f Finally) key() string  { return "Fi(" + f.X.key() + ")" }
func (f Until) key() string    { return "U(" + f.L.key() + "," + f.R.key() + ")" }
func (f WeakUntil) key() string {
	return "W(" + f.L.key() + "," + f.R.key() + ")"
}
func (f Release) key() string { return "R(" + f.L.key() + "," + f.R.key() + ")" }
func (f And) key() string {
	parts := make([]string, len(f.Xs))
	for i, x := range f.Xs {
		parts[i] = x.key()
	}
	return "&(" + strings.Join(parts, ",") + ")"
}
func (f Or) key() string {
	parts := make([]string, len(f.Xs))
	for i, x := range f.Xs {
		parts[i] = x.key()
	}
	return "|(" + strings.Join(parts, ",") + ")"
}
func (f Implies) key() string { return "->(" + f.L.key() + "," + f.R.key() + ")" }

// Key returns a canonical structural key for f, usable as a map key.
func Key(f Formula) string { return f.key() }

// Atoms returns the sorted set of atom names occurring in f.
func Atoms(f Formula) []string {
	set := make(map[string]struct{})
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Atom:
			set[f.Name] = struct{}{}
		case Not:
			walk(f.X)
		case Next:
			walk(f.X)
		case WeakNext:
			walk(f.X)
		case Globally:
			walk(f.X)
		case Finally:
			walk(f.X)
		case Until:
			walk(f.L)
			walk(f.R)
		case WeakUntil:
			walk(f.L)
			walk(f.R)
		case Release:
			walk(f.L)
			walk(f.R)
		case Implies:
			walk(f.L)
			walk(f.R)
		case And:
			for _, x := range f.Xs {
				walk(x)
			}
		case Or:
			for _, x := range f.Xs {
				walk(x)
			}
		}
	}
	walk(f)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

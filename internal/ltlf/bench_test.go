package ltlf

import "testing"

func BenchmarkProgress(b *testing.B) {
	f := ToNNF(MustParse("(!a.open) W b.open"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		progress(f, "a.test")
	}
}

func BenchmarkEval(b *testing.B) {
	f := MustParse("G (a -> X b) & (!c) W a")
	tr := []string{"a", "b", "a", "b", "c"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eval(f, tr)
	}
}

func BenchmarkCompile(b *testing.B) {
	f := MustParse("(!a.open) W b.open")
	alphabet := []string{"a.open", "a.test", "b.open", "b.test"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compile(f, alphabet)
	}
}

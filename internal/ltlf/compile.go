package ltlf

import (
	"context"
	"sort"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
)

// This file compiles an LTLf formula into a DFA over a given event
// alphabet, by formula progression:
//
//   - the formula is first put in negation normal form (NNF), pushing
//     negations down to atoms using the dualities ¬Xφ = N¬φ,
//     ¬(φ U ψ) = ¬φ R ¬ψ, ¬Gφ = F¬φ, etc.;
//   - a DFA state is a progression residue, canonicalized as a DNF over
//     "literals" (atoms, negated atoms, and temporal subformulas), so
//     the state space is finite — literals are drawn from the finite
//     closure of the input formula;
//   - the transition on event σ is the progression δ(φ, σ): the
//     condition the remaining suffix must satisfy;
//   - a state accepts iff its formula holds on the empty trace.
//
// Compile(¬φ) intersected with a system's behavior automaton yields the
// claim-violation witnesses reported by the checker.

// ToNNF returns an equivalent formula with negation applied only to
// atoms, and with Implies and WeakUntil eliminated.
func ToNNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, negate bool) Formula {
	switch f := f.(type) {
	case Tru:
		if negate {
			return Fls{}
		}
		return f
	case Fls:
		if negate {
			return Tru{}
		}
		return f
	case nonempty:
		if negate {
			// ¬nonempty = "trace is empty" = N false (weak next of
			// false holds only when no next instant exists... on the
			// empty trace it holds; on any non-empty trace, instant 0
			// exists but N false at 0 means no instant 1 — not the
			// same). Express emptiness as ¬(F true) instead.
			return nnf(FinallyOf(True()), true)
		}
		return f
	case Atom:
		if negate {
			return Not{X: f}
		}
		return f
	case Not:
		return nnf(f.X, !negate)
	case And:
		parts := make([]Formula, len(f.Xs))
		for i, x := range f.Xs {
			parts[i] = nnf(x, negate)
		}
		if negate {
			return OrOf(parts...)
		}
		return AndOf(parts...)
	case Or:
		parts := make([]Formula, len(f.Xs))
		for i, x := range f.Xs {
			parts[i] = nnf(x, negate)
		}
		if negate {
			return AndOf(parts...)
		}
		return OrOf(parts...)
	case Implies:
		// l -> r ≡ ¬l ∨ r.
		if negate {
			return AndOf(nnf(f.L, false), nnf(f.R, true))
		}
		return OrOf(nnf(f.L, true), nnf(f.R, false))
	case Next:
		if negate {
			return WeakNext{X: nnf(f.X, true)}
		}
		return Next{X: nnf(f.X, false)}
	case WeakNext:
		if negate {
			return Next{X: nnf(f.X, true)}
		}
		return WeakNext{X: nnf(f.X, false)}
	case Until:
		if negate {
			return Release{L: nnf(f.L, true), R: nnf(f.R, true)}
		}
		return Until{L: nnf(f.L, false), R: nnf(f.R, false)}
	case Release:
		if negate {
			return Until{L: nnf(f.L, true), R: nnf(f.R, true)}
		}
		return Release{L: nnf(f.L, false), R: nnf(f.R, false)}
	case WeakUntil:
		// l W r ≡ (l U r) ∨ G l;  ¬(l W r) ≡ (¬r) U (¬l ∧ ¬r).
		if negate {
			nl, nr := nnf(f.L, true), nnf(f.R, true)
			return Until{L: nr, R: AndOf(nl, nr)}
		}
		return OrOf(
			Until{L: nnf(f.L, false), R: nnf(f.R, false)},
			Globally{X: nnf(f.L, false)},
		)
	case Globally:
		if negate {
			return Finally{X: nnf(f.X, true)}
		}
		return Globally{X: nnf(f.X, false)}
	case Finally:
		if negate {
			return Globally{X: nnf(f.X, true)}
		}
		return Finally{X: nnf(f.X, false)}
	}
	return f
}

// nullable reports whether the empty trace satisfies the NNF formula.
func nullable(f Formula) bool {
	switch f := f.(type) {
	case Tru:
		return true
	case Fls, Atom, nonempty:
		return false
	case Not: // NNF: only over atoms
		return true // empty trace has no events, so ¬atom holds
	case And:
		for _, x := range f.Xs {
			if !nullable(x) {
				return false
			}
		}
		return true
	case Or:
		for _, x := range f.Xs {
			if nullable(x) {
				return true
			}
		}
		return false
	case Next:
		return false
	case WeakNext, Globally, Release:
		return true
	case Until, Finally:
		return false
	case WeakUntil:
		return true
	}
	return false
}

// progress computes δ(f, σ): the NNF condition on the suffix after
// consuming event σ at a (necessarily existing) first instant.
func progress(f Formula, sigma string) Formula {
	switch f := f.(type) {
	case Tru, Fls:
		return f
	case nonempty:
		return Tru{}
	case Atom:
		if f.Name == sigma {
			return Tru{}
		}
		return Fls{}
	case Not: // NNF: f.X is an atom or nonempty
		if a, ok := f.X.(Atom); ok {
			if a.Name == sigma {
				return Fls{}
			}
			return Tru{}
		}
		if _, ok := f.X.(nonempty); ok {
			return Fls{}
		}
		// Non-NNF input; progress the general negation soundly.
		return nnf(progress(nnf(f.X, false), sigma), true)
	case And:
		parts := make([]Formula, len(f.Xs))
		for i, x := range f.Xs {
			parts[i] = progress(x, sigma)
		}
		return AndOf(parts...)
	case Or:
		parts := make([]Formula, len(f.Xs))
		for i, x := range f.Xs {
			parts[i] = progress(x, sigma)
		}
		return OrOf(parts...)
	case Next:
		// The suffix must be non-empty and satisfy f.X at its start.
		return AndOf(nonempty{}, f.X)
	case WeakNext:
		// Either the suffix is empty, or it satisfies f.X. Emptiness is
		// expressible positively as G false (it holds exactly on ε).
		return OrOf(f.X, Globally{X: Fls{}})
	case Until:
		// f ≡ R ∨ (L ∧ X f); on the empty suffix the residue f itself
		// is non-nullable, which encodes the strong-next requirement.
		return OrOf(progress(f.R, sigma), AndOf(progress(f.L, sigma), f))
	case Release:
		// f ≡ R2 ∧ (L ∨ N f); f is nullable, encoding the weak next.
		return AndOf(progress(f.R, sigma), OrOf(progress(f.L, sigma), f))
	case WeakUntil:
		// f ≡ R ∨ (L ∧ N f); f is nullable.
		return OrOf(progress(f.R, sigma), AndOf(progress(f.L, sigma), f))
	case Globally:
		return AndOf(progress(f.X, sigma), f)
	case Finally:
		return OrOf(progress(f.X, sigma), f)
	}
	return Fls{}
}

// canonical produces a canonical key for a progression residue by
// flattening it to DNF over literal keys, with contradiction and
// subsumption pruning. Literals are atoms, negated atoms, and temporal
// subformulas, all drawn from the finite closure of the original
// formula, so the set of canonical states is finite.
func canonical(f Formula) string {
	key, _ := canonicalBounded(f, 0)
	return key
}

// canonicalBounded is canonical with a cap on the number of DNF clauses
// any intermediate flattening may produce (0 = unlimited). Flattening a
// conjunction of k disjunctions multiplies clause counts, so a hostile
// claim formula can make a single canonicalization exponential even
// though the final state space would be small; the cap turns that into
// a reported budget trip. The second result is false when the cap was
// hit (the returned key is then meaningless).
func canonicalBounded(f Formula, maxClauses int) (string, bool) {
	clauses, ok := dnfBounded(f, maxClauses)
	if !ok {
		return "", false
	}
	if len(clauses) == 0 {
		return "<false>", true
	}
	keys := make([]string, 0, len(clauses))
	for _, c := range clauses {
		if len(c) == 0 {
			return "<true>", true // a true clause absorbs the whole DNF
		}
		lits := make([]string, 0, len(c))
		for k := range c {
			lits = append(lits, k)
		}
		sort.Strings(lits)
		keys = append(keys, strings.Join(lits, "&"))
	}
	sort.Strings(keys)
	return strings.Join(keys, " | "), true
}

// dnf flattens the formula into a set of clauses; each clause maps
// literal keys to literal formulas. An empty clause list means false; a
// single empty clause means true.
func dnf(f Formula) []map[string]Formula {
	clauses, _ := dnfBounded(f, 0)
	return clauses
}

// dnfBounded is dnf with a clause cap (0 = unlimited): it bails out
// with ok=false as soon as any intermediate clause set grows past
// maxClauses, BEFORE subsumption pruning, so the exponential
// cross-product of a wide And-of-Ors is cut off at the cap rather than
// materialized and then pruned.
func dnfBounded(f Formula, maxClauses int) (clauses []map[string]Formula, ok bool) {
	switch f := f.(type) {
	case Fls:
		return nil, true
	case Tru:
		return []map[string]Formula{{}}, true
	case And:
		out := []map[string]Formula{{}}
		for _, x := range f.Xs {
			xs, ok := dnfBounded(x, maxClauses)
			if !ok {
				return nil, false
			}
			var merged []map[string]Formula
			for _, a := range out {
				for _, b := range xs {
					if m, ok := mergeClause(a, b); ok {
						merged = append(merged, m)
						if maxClauses > 0 && len(merged) > maxClauses {
							return nil, false
						}
					}
				}
			}
			out = merged
		}
		return pruneSubsumed(out), true
	case Or:
		var out []map[string]Formula
		for _, x := range f.Xs {
			xs, ok := dnfBounded(x, maxClauses)
			if !ok {
				return nil, false
			}
			out = append(out, xs...)
			if maxClauses > 0 && len(out) > maxClauses {
				return nil, false
			}
		}
		return pruneSubsumed(out), true
	default:
		return []map[string]Formula{{f.key(): f}}, true
	}
}

func mergeClause(a, b map[string]Formula) (map[string]Formula, bool) {
	m := make(map[string]Formula, len(a)+len(b))
	for k, v := range a {
		m[k] = v
	}
	for k, v := range b {
		// Contradiction pruning for atom literals.
		if _, clash := m[NotOf(v).key()]; clash {
			return nil, false
		}
		m[k] = v
	}
	return m, true
}

func pruneSubsumed(cs []map[string]Formula) []map[string]Formula {
	var out []map[string]Formula
	for i, c := range cs {
		subsumed := false
		for j, d := range cs {
			if i == j {
				continue
			}
			if len(d) < len(c) || (len(d) == len(c) && j < i) {
				if clauseSubset(d, c) {
					subsumed = true
					break
				}
			}
		}
		if !subsumed {
			out = append(out, c)
		}
	}
	return out
}

// clauseSubset reports whether every literal of a occurs in b (so a
// subsumes b).
func clauseSubset(a, b map[string]Formula) bool {
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// Compile builds a DFA over the given alphabet accepting exactly the
// traces that satisfy f. Events in the trace outside the alphabet are
// impossible by construction of the callers (the alphabet is the set of
// all subsystem operations). Atoms of f that are not in the alphabet
// can never hold; they are retained (they progress to false on every
// event).
func Compile(f Formula, alphabet []string) *automata.DFA {
	d, _ := CompileCtx(context.Background(), f, alphabet)
	return d
}

// CompileCtx is Compile bounded by the context's resource budget:
// MaxDFAStates caps the progression state count, MaxRegexSize caps the
// DNF clause count of any single canonicalization (the two blowup axes
// of formula progression), and cancellation is observed as states are
// added. The final minimization runs under the same context.
func CompileCtx(ctx context.Context, f Formula, alphabet []string) (*automata.DFA, error) {
	gate := budget.DFAGate(ctx, "ltlf-compile")
	maxClauses := budget.From(ctx).MaxRegexSize

	start := ToNNF(f)
	d := automata.NewDFA(alphabet)
	d.SetAccepting(d.Start(), nullable(start))
	if err := gate.Tick(); err != nil {
		return nil, err
	}

	type state struct {
		id int
		f  Formula
	}
	startKey, ok := canonicalBounded(start, maxClauses)
	if !ok {
		return nil, budget.Exceeded(ctx, "ltlf-compile", "dnf-clauses", maxClauses)
	}
	ids := map[string]int{startKey: d.Start()}
	queue := []state{{id: d.Start(), f: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, sigma := range d.Alphabet() {
			next := progress(cur.f, sigma)
			key, ok := canonicalBounded(next, maxClauses)
			if !ok {
				return nil, budget.Exceeded(ctx, "ltlf-compile", "dnf-clauses", maxClauses)
			}
			if key == "<false>" {
				continue
			}
			id, ok := ids[key]
			if !ok {
				if err := gate.Tick(); err != nil {
					return nil, err
				}
				id = d.AddState(nullable(next))
				ids[key] = id
				queue = append(queue, state{id: id, f: next})
			}
			_ = d.AddTransition(cur.id, sigma, id)
		}
	}
	return d.MinimizeCtx(ctx)
}

// CompileNegation builds a DFA accepting exactly the traces that VIOLATE
// f; intersecting it with a system's behavior automaton yields
// counterexample witnesses.
func CompileNegation(f Formula, alphabet []string) *automata.DFA {
	return Compile(NotOf(f), alphabet)
}

// CompileNegationCtx is CompileNegation under the context's budget and
// cancellation; it is what the memoizing pipeline calls for claim
// checking, so every hostile claim formula in a served request is
// bounded.
func CompileNegationCtx(ctx context.Context, f Formula, alphabet []string) (*automata.DFA, error) {
	return CompileCtx(ctx, NotOf(f), alphabet)
}

package ltlf

// Eval decides trace ⊨ f under the standard LTLf semantics, evaluated at
// the first instant. The empty trace satisfies exactly the formulas that
// hold vacuously: true, G/WeakNext/Release/WeakUntil obligations, and
// negations of the rest.
//
// Eval is the executable specification of the logic: the DFA compiler is
// property-tested against it on random formulas and traces.
func Eval(f Formula, trace []string) bool {
	return holds(f, trace, 0)
}

func holds(f Formula, t []string, i int) bool {
	switch f := f.(type) {
	case Tru:
		return true
	case Fls:
		return false
	case nonempty:
		return i < len(t)
	case Atom:
		return i < len(t) && t[i] == f.Name
	case Not:
		return !holds(f.X, t, i)
	case And:
		for _, x := range f.Xs {
			if !holds(x, t, i) {
				return false
			}
		}
		return true
	case Or:
		for _, x := range f.Xs {
			if holds(x, t, i) {
				return true
			}
		}
		return false
	case Implies:
		return !holds(f.L, t, i) || holds(f.R, t, i)
	case Next:
		return i+1 < len(t) && holds(f.X, t, i+1)
	case WeakNext:
		return i+1 >= len(t) || holds(f.X, t, i+1)
	case Until:
		for j := i; j < len(t); j++ {
			if holds(f.R, t, j) {
				return true
			}
			if !holds(f.L, t, j) {
				return false
			}
		}
		return false
	case WeakUntil:
		// L W R = (L U R) | G L.
		for j := i; j < len(t); j++ {
			if holds(f.R, t, j) {
				return true
			}
			if !holds(f.L, t, j) {
				return false
			}
		}
		return true // L held globally
	case Release:
		// L R R2: R2 must hold up to and including the first instant
		// where L holds; if L never holds, R2 holds at every instant.
		for j := i; j < len(t); j++ {
			if !holds(f.R, t, j) {
				return false
			}
			if holds(f.L, t, j) {
				return true
			}
		}
		return true
	case Globally:
		for j := i; j < len(t); j++ {
			if !holds(f.X, t, j) {
				return false
			}
		}
		return true
	case Finally:
		for j := i; j < len(t); j++ {
			if holds(f.X, t, j) {
				return true
			}
		}
		return false
	}
	return false
}

package ltlf

import (
	"fmt"
	"strings"
)

// Explain renders a step-by-step account of checking the formula on a
// finite trace, using formula progression: after each event it shows the
// residual obligation the rest of the trace must satisfy, pinpointing
// the exact step where a violation became unavoidable (the residual
// collapses to false) or the trailing obligation left unmet at the end.
//
// It turns the checker's bare counterexamples into something a person
// can read:
//
//	claim: !a.open W b.open
//	step 1: a.test   residual: !a.open W b.open
//	step 2: a.open   residual: false
//	VIOLATED at step 2: event "a.open" made the claim unsatisfiable
func Explain(f Formula, trace []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "claim: %s\n", f.String())
	residual := ToNNF(f)
	for i, event := range trace {
		residual = progress(residual, event)
		fmt.Fprintf(&b, "step %d: %-10s residual: %s\n", i+1, event, displayFormula(residual))
		if _, dead := residual.(Fls); dead || canonical(residual) == "<false>" {
			fmt.Fprintf(&b, "VIOLATED at step %d: event %q made the claim unsatisfiable\n", i+1, event)
			return b.String()
		}
	}
	if nullable(residual) {
		b.WriteString("HOLDS: the trace ends with every obligation discharged\n")
	} else {
		fmt.Fprintf(&b, "VIOLATED at trace end: obligation %s is still pending\n", displayFormula(residual))
	}
	return b.String()
}

// displayFormula hides the internal nonempty marker from users.
func displayFormula(f Formula) string {
	s := f.String()
	return strings.ReplaceAll(s, "<nonempty>", "(trace continues)")
}

package ltlf

import (
	"math/rand"
	"strings"
	"testing"
)

func TestExplainViolationMidTrace(t *testing.T) {
	out := Explain(MustParse("(!a.open) W b.open"), []string{"a.test", "a.open", "b.open"})
	for _, want := range []string{
		"claim: !a.open W b.open",
		"step 1: a.test",
		"step 2: a.open",
		`VIOLATED at step 2: event "a.open" made the claim unsatisfiable`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// The explanation stops at the violation.
	if strings.Contains(out, "step 3") {
		t.Errorf("explanation should stop at the violation:\n%s", out)
	}
}

func TestExplainHolds(t *testing.T) {
	out := Explain(MustParse("(!a.open) W b.open"), []string{"b.test", "b.open", "a.open"})
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("should hold:\n%s", out)
	}
}

func TestExplainPendingObligation(t *testing.T) {
	out := Explain(MustParse("F done"), []string{"work", "work"})
	if !strings.Contains(out, "VIOLATED at trace end") || !strings.Contains(out, "F done") {
		t.Errorf("pending obligation not reported:\n%s", out)
	}
}

func TestExplainEmptyTrace(t *testing.T) {
	if out := Explain(MustParse("G !x"), nil); !strings.Contains(out, "HOLDS") {
		t.Errorf("G on empty trace holds:\n%s", out)
	}
	if out := Explain(MustParse("F x"), nil); !strings.Contains(out, "VIOLATED at trace end") {
		t.Errorf("F on empty trace fails:\n%s", out)
	}
}

// TestExplainVerdictMatchesEval: the explanation's verdict always
// agrees with the evaluator.
func TestExplainVerdictMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		f := randomFormula(rng, 3, []string{"a", "b"})
		for _, tr := range allTraces([]string{"a", "b"}, 3) {
			out := Explain(f, tr)
			holds := strings.Contains(out, "HOLDS")
			if holds != Eval(f, tr) {
				t.Fatalf("verdict mismatch for %v on %v:\n%s", f, tr, out)
			}
		}
	}
}

package ltlf

import "testing"

// FuzzParse checks the claim parser's totality and print/parse
// stability, and that NNF preserves evaluation on a few probe traces.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"", "a", "!a", "a & b | c", "(!a.open) W b.open",
		"G (a -> X b)", "F (a & X a)", "a U b U c", "true", "false",
		"a R b", "N a",
	} {
		f.Add(s)
	}
	probes := [][]string{nil, {"a"}, {"b", "a"}, {"a", "a", "b"}}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := Parse(src)
		if err != nil {
			return
		}
		printed := formula.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q does not reparse: %v", printed, err)
		}
		if Key(back) != Key(formula) {
			t.Fatalf("print/parse not stable: %q -> %q", printed, back.String())
		}
		g := ToNNF(formula)
		for _, tr := range probes {
			if Eval(formula, tr) != Eval(g, tr) {
				t.Fatalf("NNF changed semantics of %q on %v", src, tr)
			}
		}
	})
}

package ltlf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Algebraic laws of LTLf, validated against the direct evaluator on all
// traces up to a bound. These pin down the finite-trace semantics —
// several laws differ subtly from infinite-trace LTL (e.g. X true is
// NOT valid on finite traces: the last instant has no successor).

type formulaValue struct{ f Formula }

func (formulaValue) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(formulaValue{f: randomFormula(rng, 3, []string{"a", "b"})})
}

var lawTraces = allTraces([]string{"a", "b"}, 4)

func equivalentOn(f, g Formula, traces [][]string) bool {
	for _, tr := range traces {
		if Eval(f, tr) != Eval(g, tr) {
			return false
		}
	}
	return true
}

func TestQuickExpansionLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// The one-step expansion laws hold at every *instant*, i.e. on
	// non-empty traces; the empty trace satisfies G f but not f & N G f
	// when f mentions an event. The compiler relies on them only when
	// consuming an event, so restricting to non-empty traces here
	// matches how they are used.
	nonEmpty := lawTraces[1:]
	checkOn := func(traces [][]string, property func(f, g Formula) (Formula, Formula)) func(formulaValue, formulaValue) bool {
		return func(v, w formulaValue) bool {
			lhs, rhs := property(v.f, w.f)
			return equivalentOn(lhs, rhs, traces)
		}
	}
	check := func(property func(f, g Formula) (Formula, Formula)) func(formulaValue, formulaValue) bool {
		return checkOn(lawTraces, property)
	}

	expansionLaws := map[string]func(f, g Formula) (Formula, Formula){
		"U expansion: f U g = g | (f & X(f U g))": func(f, g Formula) (Formula, Formula) {
			return UntilOf(f, g), OrOf(g, AndOf(f, NextOf(UntilOf(f, g))))
		},
		"W expansion: f W g = g | (f & N(f W g))": func(f, g Formula) (Formula, Formula) {
			return WeakUntilOf(f, g), OrOf(g, AndOf(f, WeakNextOf(WeakUntilOf(f, g))))
		},
		"R expansion: f R g = g & (f | N(f R g))": func(f, g Formula) (Formula, Formula) {
			return ReleaseOf(f, g), AndOf(g, OrOf(f, WeakNextOf(ReleaseOf(f, g))))
		},
		"G expansion: G f = f & N G f": func(f, _ Formula) (Formula, Formula) {
			return GloballyOf(f), AndOf(f, WeakNextOf(GloballyOf(f)))
		},
		"F expansion: F f = f | X F f": func(f, _ Formula) (Formula, Formula) {
			return FinallyOf(f), OrOf(f, NextOf(FinallyOf(f)))
		},
	}
	for name, law := range expansionLaws {
		if err := quick.Check(checkOn(nonEmpty, law), cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	laws := map[string]func(f, g Formula) (Formula, Formula){
		"W via U and G": func(f, g Formula) (Formula, Formula) {
			return WeakUntilOf(f, g), OrOf(UntilOf(f, g), GloballyOf(f))
		},
		"duality: !(f U g) = !f R !g": func(f, g Formula) (Formula, Formula) {
			return NotOf(UntilOf(f, g)), ReleaseOf(NotOf(f), NotOf(g))
		},
		"duality: !G f = F !f": func(f, _ Formula) (Formula, Formula) {
			return NotOf(GloballyOf(f)), FinallyOf(NotOf(f))
		},
		"duality: !X f = N !f": func(f, _ Formula) (Formula, Formula) {
			return NotOf(NextOf(f)), WeakNextOf(NotOf(f))
		},
		"idempotence: G G f = G f": func(f, _ Formula) (Formula, Formula) {
			return GloballyOf(GloballyOf(f)), GloballyOf(f)
		},
		"idempotence: F F f = F f": func(f, _ Formula) (Formula, Formula) {
			return FinallyOf(FinallyOf(f)), FinallyOf(f)
		},
		"distribution: G(f & g) = G f & G g": func(f, g Formula) (Formula, Formula) {
			return GloballyOf(AndOf(f, g)), AndOf(GloballyOf(f), GloballyOf(g))
		},
		"distribution: F(f | g) = F f | F g": func(f, g Formula) (Formula, Formula) {
			return FinallyOf(OrOf(f, g)), OrOf(FinallyOf(f), FinallyOf(g))
		},
		"implication is material": func(f, g Formula) (Formula, Formula) {
			return ImpliesOf(f, g), OrOf(NotOf(f), g)
		},
	}
	for name, law := range laws {
		if err := quick.Check(check(law), cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFiniteTraceSpecifics(t *testing.T) {
	// X true is not valid on finite traces: it fails at the last
	// instant (and on the empty trace).
	if Eval(NextOf(True()), []string{"a"}) {
		t.Error("X true must fail on a single-instant trace")
	}
	// N false holds only at the last instant.
	if !Eval(WeakNextOf(False()), []string{"a"}) {
		t.Error("N false holds exactly at the last instant")
	}
	if Eval(WeakNextOf(False()), []string{"a", "b"}) {
		t.Error("N false must fail before the last instant")
	}
	// G false characterizes the empty trace.
	if !Eval(GloballyOf(False()), nil) {
		t.Error("G false holds on the empty trace")
	}
	if Eval(GloballyOf(False()), []string{"a"}) {
		t.Error("G false fails on non-empty traces")
	}
	// "F true" characterizes non-emptiness.
	if Eval(FinallyOf(True()), nil) {
		t.Error("F true fails on the empty trace")
	}
	if !Eval(FinallyOf(True()), []string{"a"}) {
		t.Error("F true holds on non-empty traces")
	}
}

func TestQuickCompileAgreesWithEvalHardened(t *testing.T) {
	// Stronger version of the compile/eval agreement, over formulas with
	// three atoms (one outside the compile alphabet).
	rng := rand.New(rand.NewSource(6))
	alphabet := []string{"a", "b"}
	traces := allTraces(alphabet, 4)
	for i := 0; i < 150; i++ {
		f := randomFormula(rng, 3, []string{"a", "b", "zz"})
		d := Compile(f, alphabet)
		for _, tr := range traces {
			if d.Accepts(tr) != Eval(f, tr) {
				t.Fatalf("formula %v disagrees on %v", f, tr)
			}
		}
	}
}

func TestEventExclusivity(t *testing.T) {
	// Exactly one event holds per instant, so a & b is unsatisfiable at
	// any instant for distinct atoms.
	f := MustParse("F (a & b)")
	for _, tr := range lawTraces {
		if Eval(f, tr) {
			t.Fatalf("two distinct events can never hold together: %v", tr)
		}
	}
}

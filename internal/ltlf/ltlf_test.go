package ltlf

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
)

func TestParseAndString(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"a", "a"},
		{"a.open", "a.open"},
		{"!a", "!a"},
		{"a & b", "a & b"},
		{"a | b", "a | b"},
		{"a -> b", "a -> b"},
		{"a U b", "a U b"},
		{"a W b", "a W b"},
		{"a R b", "a R b"},
		{"X a", "X a"},
		{"N a", "N a"},
		{"G a", "G a"},
		{"F a", "F a"},
		{"true", "true"},
		{"false", "false"},
		{"(!a.open) W b.open", "!a.open W b.open"},
		{"G (a -> X b)", "G (a -> X b)"},
		{"a U b U c", "a U b U c"}, // right-assoc
		{"a & b | c", "a & b | c"},
		{"(a | b) & c", "c & (a | b)"},
		{"!(a & b)", "!(a & b)"},
		{"F (a & X b)", "F (X b & a)"},
	}
	for _, tt := range tests {
		f, err := Parse(tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if got := f.String(); got != tt.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.src, got, tt.want)
		}
		// Round trip.
		back, err := Parse(f.String())
		if err != nil {
			t.Errorf("reparse %q: %v", f.String(), err)
			continue
		}
		if Key(back) != Key(f) {
			t.Errorf("round trip changed %q -> %q", tt.src, back.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "(a", "a &", "& a", "a -> ", "a ? b", "a U", "a )"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestConstructorNormalization(t *testing.T) {
	a, b := NewAtom("a"), NewAtom("b")
	tests := []struct {
		got, want Formula
	}{
		{NotOf(True()), False()},
		{NotOf(False()), True()},
		{NotOf(NotOf(a)), a},
		{AndOf(), True()},
		{AndOf(a), a},
		{AndOf(a, True()), a},
		{AndOf(a, False()), False()},
		{AndOf(a, a), a},
		{AndOf(a, NotOf(a)), False()},
		{AndOf(a, b), AndOf(b, a)},
		{OrOf(), False()},
		{OrOf(a, False()), a},
		{OrOf(a, True()), True()},
		{OrOf(a, NotOf(a)), True()},
		{OrOf(OrOf(a, b), a), OrOf(a, b)},
	}
	for i, tt := range tests {
		if Key(tt.got) != Key(tt.want) {
			t.Errorf("case %d: got %v, want %v", i, tt.got, tt.want)
		}
	}
}

func TestEvalBasics(t *testing.T) {
	tests := []struct {
		formula string
		trace   []string
		want    bool
	}{
		{"true", nil, true},
		{"false", nil, false},
		{"a", nil, false},
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"!a", nil, true},
		{"!a", []string{"b"}, true},
		{"X a", []string{"b", "a"}, true},
		{"X a", []string{"b"}, false},
		{"X a", nil, false},
		{"N a", []string{"b"}, true}, // no next instant
		{"N a", nil, true},
		{"N a", []string{"b", "c"}, false},
		{"G a", nil, true},
		{"G a", []string{"a", "a"}, true},
		{"G a", []string{"a", "b"}, false},
		{"F a", nil, false},
		{"F a", []string{"b", "b", "a"}, true},
		{"a U b", []string{"a", "a", "b"}, true},
		{"a U b", []string{"a", "a"}, false},
		{"a U b", []string{"b"}, true},
		{"a U b", []string{"c", "b"}, false},
		{"a W b", []string{"a", "a"}, true}, // G a branch
		{"a W b", []string{"a", "b"}, true},
		{"a W b", []string{"c"}, false},
		{"a W b", nil, true},
		{"a R b", []string{"b", "b"}, true},
		{"a R b", []string{"b", "a"}, false},
		{"b R b", []string{"b"}, true},
		{"a R b", []string{"b", "c"}, false},
		{"a R b", nil, true},
		{"a -> b", []string{"a"}, false},
		{"a -> b", []string{"c"}, true},
		{"G (a -> X b)", []string{"a", "b", "a", "b"}, true},
		{"G (a -> X b)", []string{"a", "b", "a"}, false}, // last a has no next
	}
	for _, tt := range tests {
		if got := Eval(MustParse(tt.formula), tt.trace); got != tt.want {
			t.Errorf("Eval(%q, %v) = %v, want %v", tt.formula, tt.trace, got, tt.want)
		}
	}
}

// TestPaperClaimSemantics exercises the claim of Listing 2.2:
// (!a.open) W b.open — valve a stays closed at least until b opens.
func TestPaperClaimSemantics(t *testing.T) {
	claim := MustParse("(!a.open) W b.open")
	// The violating trace of §2.2 (the flattened BadSector behavior):
	// a opens before b ever does.
	violating := []string{"a.test", "a.open", "b.test", "b.open", "a.close", "b.close"}
	if Eval(claim, violating) {
		t.Error("paper's counterexample trace should violate the claim")
	}
	// A fixed ordering satisfies it.
	good := []string{"b.test", "b.open", "a.test", "a.open", "a.close", "b.close"}
	if !Eval(claim, good) {
		t.Error("opening b first should satisfy the claim")
	}
	// Never opening a satisfies the G branch of W.
	if !Eval(claim, []string{"a.test", "a.clean"}) {
		t.Error("never opening a should satisfy the claim")
	}
	if !Eval(claim, nil) {
		t.Error("the empty trace satisfies any weak-until claim")
	}
}

func TestAtoms(t *testing.T) {
	f := MustParse("(!a.open) W b.open & G c")
	if got := Atoms(f); !reflect.DeepEqual(got, []string{"a.open", "b.open", "c"}) {
		t.Errorf("Atoms = %v", got)
	}
}

func randomFormula(rng *rand.Rand, depth int, atoms []string) Formula {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return NewAtom(atoms[rng.Intn(len(atoms))])
		}
	}
	sub := func() Formula { return randomFormula(rng, depth-1, atoms) }
	switch rng.Intn(12) {
	case 0:
		return NewAtom(atoms[rng.Intn(len(atoms))])
	case 1:
		return NotOf(sub())
	case 2:
		return AndOf(sub(), sub())
	case 3:
		return OrOf(sub(), sub())
	case 4:
		return ImpliesOf(sub(), sub())
	case 5:
		return NextOf(sub())
	case 6:
		return WeakNextOf(sub())
	case 7:
		return UntilOf(sub(), sub())
	case 8:
		return WeakUntilOf(sub(), sub())
	case 9:
		return ReleaseOf(sub(), sub())
	case 10:
		return GloballyOf(sub())
	default:
		return FinallyOf(sub())
	}
}

func allTraces(alphabet []string, maxLen int) [][]string {
	out := [][]string{nil}
	frontier := [][]string{nil}
	for i := 0; i < maxLen; i++ {
		var next [][]string
		for _, tr := range frontier {
			for _, f := range alphabet {
				ext := append(append([]string{}, tr...), f)
				next = append(next, ext)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func TestNNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	atoms := []string{"a", "b"}
	traces := allTraces(atoms, 4)
	for i := 0; i < 300; i++ {
		f := randomFormula(rng, 3, atoms)
		g := ToNNF(f)
		for _, tr := range traces {
			if Eval(f, tr) != Eval(g, tr) {
				t.Fatalf("NNF changed semantics of %v (nnf %v) on %v", f, g, tr)
			}
		}
	}
}

func TestNNFPushesNegationToAtoms(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var check func(f Formula) bool
	check = func(f Formula) bool {
		switch f := f.(type) {
		case Not:
			switch f.X.(type) {
			case Atom, nonempty:
				return true
			default:
				return false
			}
		case And:
			for _, x := range f.Xs {
				if !check(x) {
					return false
				}
			}
			return true
		case Or:
			for _, x := range f.Xs {
				if !check(x) {
					return false
				}
			}
			return true
		case Implies, WeakUntil:
			return false // eliminated by NNF
		case Next:
			return check(f.X)
		case WeakNext:
			return check(f.X)
		case Globally:
			return check(f.X)
		case Finally:
			return check(f.X)
		case Until:
			return check(f.L) && check(f.R)
		case Release:
			return check(f.L) && check(f.R)
		default:
			return true
		}
	}
	for i := 0; i < 300; i++ {
		f := randomFormula(rng, 3, []string{"a", "b"})
		if g := ToNNF(f); !check(g) {
			t.Fatalf("NNF(%v) = %v is not in NNF", f, g)
		}
	}
}

func TestCompileMatchesEvalOnCorpus(t *testing.T) {
	alphabet := []string{"a", "b"}
	corpus := []string{
		"a", "!a", "a & b", "a | b", "a -> b",
		"X a", "N a", "G a", "F a",
		"a U b", "a W b", "a R b",
		"G (a -> X b)", "F (a & X a)", "(!a) W b",
		"G F a", "F G a", "a U (b U a)",
		"true", "false",
	}
	traces := allTraces(alphabet, 5)
	for _, src := range corpus {
		f := MustParse(src)
		d := Compile(f, alphabet)
		for _, tr := range traces {
			want := Eval(f, tr)
			if got := d.Accepts(tr); got != want {
				t.Errorf("Compile(%q).Accepts(%v) = %v, want %v", src, tr, got, want)
			}
		}
	}
}

func TestCompileMatchesEvalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	alphabet := []string{"a", "b"}
	traces := allTraces(alphabet, 4)
	for i := 0; i < 250; i++ {
		f := randomFormula(rng, 3, alphabet)
		d := Compile(f, alphabet)
		for _, tr := range traces {
			if d.Accepts(tr) != Eval(f, tr) {
				t.Fatalf("formula %v: DFA and Eval disagree on %v", f, tr)
			}
		}
	}
}

func TestCompileNegationIsComplement(t *testing.T) {
	alphabet := []string{"a", "b"}
	traces := allTraces(alphabet, 4)
	for _, src := range []string{"a U b", "G a", "(!a) W b"} {
		f := MustParse(src)
		pos := Compile(f, alphabet)
		neg := CompileNegation(f, alphabet)
		for _, tr := range traces {
			if pos.Accepts(tr) == neg.Accepts(tr) {
				t.Errorf("%q: negation not complementary on %v", src, tr)
			}
		}
	}
}

func TestCompilePaperClaim(t *testing.T) {
	alphabet := []string{
		"a.test", "a.open", "a.close", "a.clean",
		"b.test", "b.open", "b.close", "b.clean",
	}
	d := CompileNegation(MustParse("(!a.open) W b.open"), alphabet)
	violating := []string{"a.test", "a.open", "b.test", "b.open", "a.close", "b.close"}
	if !d.Accepts(violating) {
		t.Error("negation DFA should accept the violating trace")
	}
	good := []string{"b.test", "b.open", "a.test", "a.open", "a.close", "b.close"}
	if d.Accepts(good) {
		t.Error("negation DFA should reject a satisfying trace")
	}
	// Shortest violation: a.open as the first event.
	w, ok := d.ShortestAccepted()
	if !ok {
		t.Fatal("violations exist")
	}
	if !reflect.DeepEqual(w, []string{"a.open"}) {
		t.Errorf("shortest violation = %v, want [a.open]", w)
	}
}

func TestCompileProducesSmallAutomata(t *testing.T) {
	d := Compile(MustParse("G a"), []string{"a", "b"})
	if d.NumStates() > 2 {
		t.Errorf("G a compiled to %d states", d.NumStates())
	}
	// A claim over an alphabet not mentioning its atoms: (!x) W y with
	// x, y absent means x never holds, so the claim is trivially true.
	d = Compile(MustParse("(!x) W y"), []string{"a"})
	if !d.Accepts([]string{"a", "a"}) {
		t.Error("claim over absent atoms should hold")
	}
}

func TestEquivalentFormulasCompileEquivalent(t *testing.T) {
	alphabet := []string{"a", "b"}
	pairs := [][2]string{
		{"a W b", "(a U b) | G a"},
		{"F a", "true U a"},
		{"G a", "false R a"},
		{"!(a U b)", "(!a) R (!b)"},
		{"!X a", "N !a"},
	}
	for _, p := range pairs {
		d1 := Compile(MustParse(p[0]), alphabet)
		d2 := Compile(MustParse(p[1]), alphabet)
		if !automata.Equivalent(d1, d2) {
			t.Errorf("%q and %q compiled to different languages", p[0], p[1])
		}
	}
}

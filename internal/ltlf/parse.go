package ltlf

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a claim formula in the @claim syntax:
//
//	formula ::= implied
//	implied ::= or ("->" implied)?                     right-assoc
//	or      ::= and ("|" and)*
//	and     ::= bintemp ("&" bintemp)*
//	bintemp ::= unary (("U"|"W"|"R") bintemp)?         right-assoc
//	unary   ::= ("!"|"X"|"N"|"G"|"F") unary | atomary
//	atomary ::= "true" | "false" | ident | "(" formula ")"
//	ident   ::= letter (letter|digit|"_"|"."|ident)*   e.g. a.open
//
// Single capital letters U, W, R, X, N, G, F are operators; any other
// identifier is an atom (events are lowercase dotted names in practice,
// e.g. "a.open" in the paper's claim "(!a.open) W b.open").
func Parse(src string) (Formula, error) {
	p := &fparser{toks: flex(src), src: src}
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != ftEOF {
		return nil, fmt.Errorf("ltlf: %q: unexpected trailing input %q", src, p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on malformed input; for tests and
// constants.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type ftKind int

const (
	ftEOF ftKind = iota + 1
	ftIdent
	ftBang
	ftAmp
	ftPipe
	ftArrow
	ftLParen
	ftRParen
	ftOpU
	ftOpW
	ftOpR
	ftOpX
	ftOpN
	ftOpG
	ftOpF
	ftTrue
	ftFalse
	ftErr
)

type ftoken struct {
	kind ftKind
	text string
	pos  int
}

var ltlfOps = map[string]ftKind{
	"U": ftOpU, "W": ftOpW, "R": ftOpR,
	"X": ftOpX, "N": ftOpN, "G": ftOpG, "F": ftOpF,
	"true": ftTrue, "false": ftFalse,
}

func flex(src string) []ftoken {
	var toks []ftoken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '!':
			toks = append(toks, ftoken{kind: ftBang, text: "!", pos: i})
			i++
		case c == '&':
			i++
			if i < len(src) && src[i] == '&' {
				i++
			}
			toks = append(toks, ftoken{kind: ftAmp, text: "&", pos: i})
		case c == '|':
			i++
			if i < len(src) && src[i] == '|' {
				i++
			}
			toks = append(toks, ftoken{kind: ftPipe, text: "|", pos: i})
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, ftoken{kind: ftArrow, text: "->", pos: i})
			i += 2
		case c == '(':
			toks = append(toks, ftoken{kind: ftLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, ftoken{kind: ftRParen, text: ")", pos: i})
			i++
		case isFIdentStart(rune(c)):
			j := i
			for j < len(src) && isFIdentPart(src, j) {
				j++
			}
			text := strings.TrimRight(src[i:j], ".")
			j = i + len(text)
			if op, ok := ltlfOps[text]; ok {
				toks = append(toks, ftoken{kind: op, text: text, pos: i})
			} else {
				toks = append(toks, ftoken{kind: ftIdent, text: text, pos: i})
			}
			i = j
		default:
			toks = append(toks, ftoken{kind: ftErr, text: string(c), pos: i})
			i++
		}
	}
	return append(toks, ftoken{kind: ftEOF, pos: len(src)})
}

func isFIdentStart(c rune) bool { return unicode.IsLetter(c) || c == '_' }

func isFIdentPart(src string, i int) bool {
	c := rune(src[i])
	if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
		return true
	}
	if c == '.' && i+1 < len(src) {
		n := rune(src[i+1])
		return unicode.IsLetter(n) || unicode.IsDigit(n) || n == '_'
	}
	return false
}

type fparser struct {
	toks []ftoken
	pos  int
	src  string
}

func (p *fparser) peek() ftoken { return p.toks[p.pos] }

func (p *fparser) next() ftoken {
	t := p.toks[p.pos]
	if t.kind != ftEOF {
		p.pos++
	}
	return t
}

func (p *fparser) errorf(format string, args ...any) error {
	return fmt.Errorf("ltlf: %q: %s", p.src, fmt.Sprintf(format, args...))
}

func (p *fparser) parseImplies() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == ftArrow {
		p.next()
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return ImpliesOf(left, right), nil
	}
	return left, nil
}

func (p *fparser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Formula{left}
	for p.peek().kind == ftPipe {
		p.next()
		f, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return OrOf(parts...), nil
}

func (p *fparser) parseAnd() (Formula, error) {
	left, err := p.parseBinTemporal()
	if err != nil {
		return nil, err
	}
	parts := []Formula{left}
	for p.peek().kind == ftAmp {
		p.next()
		f, err := p.parseBinTemporal()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return AndOf(parts...), nil
}

func (p *fparser) parseBinTemporal() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case ftOpU:
		p.next()
		right, err := p.parseBinTemporal()
		if err != nil {
			return nil, err
		}
		return UntilOf(left, right), nil
	case ftOpW:
		p.next()
		right, err := p.parseBinTemporal()
		if err != nil {
			return nil, err
		}
		return WeakUntilOf(left, right), nil
	case ftOpR:
		p.next()
		right, err := p.parseBinTemporal()
		if err != nil {
			return nil, err
		}
		return ReleaseOf(left, right), nil
	}
	return left, nil
}

func (p *fparser) parseUnary() (Formula, error) {
	switch p.peek().kind {
	case ftBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotOf(x), nil
	case ftOpX:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NextOf(x), nil
	case ftOpN:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return WeakNextOf(x), nil
	case ftOpG:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return GloballyOf(x), nil
	case ftOpF:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return FinallyOf(x), nil
	}
	return p.parseAtomary()
}

func (p *fparser) parseAtomary() (Formula, error) {
	t := p.next()
	switch t.kind {
	case ftTrue:
		return True(), nil
	case ftFalse:
		return False(), nil
	case ftIdent:
		return NewAtom(t.text), nil
	case ftLParen:
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != ftRParen {
			return nil, p.errorf("expected ')' at offset %d", closing.pos)
		}
		return f, nil
	case ftEOF:
		return nil, p.errorf("unexpected end of formula")
	default:
		return nil, p.errorf("unexpected token %q at offset %d", t.text, t.pos)
	}
}

package mine

import (
	"fmt"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
)

// BenchmarkIngestAppend pins the allocation profile of the hot ingest
// path: appending an already-observed trace to a warm corpus. With
// interned symbols and the trie walk allocation-free, a duplicate
// append must not allocate at all — a regression here multiplies by
// every event a fleet sends.
func BenchmarkIngestAppend(b *testing.B) {
	traces := make([][]string, 64)
	for i := range traces {
		tr := []string{"open"}
		for j := 0; j < i%8; j++ {
			tr = append(tr, "read")
		}
		traces[i] = append(tr, "close")
	}
	c := NewCorpus(CorpusConfig{})
	for _, tr := range traces {
		c.Add("warm", tr, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add("warm", traces[i%len(traces)], true)
	}
}

// BenchmarkIngestAppendLong pins long-trace appends (the
// trace.Enumerate-churn regression case): one trace of 256 events.
func BenchmarkIngestAppendLong(b *testing.B) {
	long := make([]string, 256)
	for i := range long {
		long[i] = fmt.Sprintf("op%d", i%16)
	}
	c := NewCorpus(CorpusConfig{})
	c.Add("warm", long, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add("warm", long, true)
	}
}

// BenchmarkMineRound measures one mining round end to end (snapshot,
// L*, drift product) over a mid-size corpus, the number EXPERIMENTS.md
// P6 reports as mining-round latency.
func BenchmarkMineRound(b *testing.B) {
	m := NewMiner(Config{})
	for i := 0; i < 128; i++ {
		tr := []string{"open"}
		for j := 0; j < i%16; j++ {
			tr = append(tr, "read")
		}
		m.Ingest(Event{ClassFP: "fp/Valve", Device: "d", Events: append(tr, "close")})
	}
	static := staticValve(b)
	resolve := func(string) (*automata.DFA, bool) { return static, true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Force a re-mine each iteration by growing the accepted language
		// one conforming trace at a time.
		tr := []string{"open"}
		for j := 0; j <= i%200; j++ {
			tr = append(tr, "read")
		}
		m.Ingest(Event{ClassFP: "fp/Valve", Device: "d", Events: append(tr, "close")})
		m.MineRound(mineCtx(), resolve)
	}
}

// Package mine passively infers protocol automata from production
// traces and diffs them against the statically inferred models: the
// dynamic half of the paper's story (AutoModel-style trace mining)
// bolted onto the static half this repo already implements. Traces
// stream in from deployed fleets through bounded per-class corpora
// (shed-and-count, never blocking), a background miner runs the
// internal/learn L* stack against a corpus-backed teacher, and a drift
// detector classifies each class as conformant, under-approximated, or
// drifting — with a minimal counterexample trace when devices exercise
// behavior the static model forbids.
package mine

import (
	"sort"
	"sync"

	"github.com/shelley-go/shelley/internal/automata"
)

// CorpusConfig bounds one class's trace corpus. All bounds shed (the
// corpus counts and drops) rather than fail, so a chatty fleet degrades
// mining fidelity instead of daemon health. Zero values take defaults.
type CorpusConfig struct {
	// MaxTraces caps distinct accepted (complete-usage) traces.
	MaxTraces int

	// MaxTraceEvents caps the events of a single trace.
	MaxTraceEvents int

	// MaxNodes caps prefix-tree nodes across all traces.
	MaxNodes int

	// MaxSymbols caps the interned event alphabet.
	MaxSymbols int
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.MaxTraces == 0 {
		c.MaxTraces = 4096
	}
	if c.MaxTraceEvents == 0 {
		c.MaxTraceEvents = 256
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 65536
	}
	if c.MaxSymbols == 0 {
		c.MaxSymbols = 256
	}
	return c
}

// maxTrackedDevices bounds the distinct-device set kept for reporting.
const maxTrackedDevices = 4096

// CorpusStats is a point-in-time summary of a corpus.
type CorpusStats struct {
	Traces  int    // distinct accepted traces
	Events  uint64 // events appended into the trie
	Nodes   int    // prefix-tree nodes
	Symbols int    // interned alphabet size
	Devices int    // distinct devices observed (capped)
	Shed    uint64 // appends dropped by a bound
	Version uint64 // bumped whenever the accepted language changes
}

// Corpus is a bounded, deduplicating prefix tree of observed traces for
// one class. Event strings are interned once into a symbol table and
// every trie edge and stored trace references the interned instance, so
// a fleet repeating the same operations a million times costs one copy
// of each name — this is what keeps ingest appends allocation-flat (see
// BenchmarkIngestAppend).
type Corpus struct {
	mu      sync.RWMutex
	cfg     CorpusConfig
	syms    map[string]int32
	names   []string // interned symbol spellings, index = id
	root    *cnode
	nodes   int
	traces  int
	events  uint64
	shed    uint64
	version uint64
	devices map[string]struct{}
}

type cnode struct {
	next   map[int32]*cnode
	accept bool
	count  uint64 // accepted observations ending at this node
}

// NewCorpus returns an empty corpus under the given bounds.
func NewCorpus(cfg CorpusConfig) *Corpus {
	return &Corpus{
		cfg:     cfg.withDefaults(),
		syms:    make(map[string]int32),
		root:    &cnode{},
		nodes:   1,
		devices: make(map[string]struct{}),
	}
}

// Add appends one observation. accepted marks a complete usage (the
// device finished the protocol cleanly); partial or errored
// observations contribute their prefix to the tree but not to the
// accepted language the miner learns. Add reports false when a bound
// shed the observation; it never blocks.
func (c *Corpus) Add(device string, events []string, accepted bool) bool {
	if len(events) > c.cfg.MaxTraceEvents {
		c.mu.Lock()
		c.shed++
		c.mu.Unlock()
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if device != "" && len(c.devices) < maxTrackedDevices {
		c.devices[device] = struct{}{}
	}

	n := c.root
	for _, ev := range events {
		id, ok := c.syms[ev]
		if !ok {
			if len(c.names) >= c.cfg.MaxSymbols {
				c.shed++
				return false
			}
			// Intern: the map key and the names entry share one string;
			// every later lookup of the same spelling reuses it.
			id = int32(len(c.names))
			c.names = append(c.names, ev)
			c.syms[ev] = id
		}
		child, ok := n.next[id]
		if !ok {
			if c.nodes >= c.cfg.MaxNodes {
				c.shed++
				return false
			}
			child = &cnode{}
			if n.next == nil {
				n.next = make(map[int32]*cnode, 1)
			}
			n.next[id] = child
			c.nodes++
		}
		n = child
	}
	c.events += uint64(len(events))
	if accepted {
		if !n.accept {
			if c.traces >= c.cfg.MaxTraces {
				c.shed++
				return false
			}
			n.accept = true
			c.traces++
			c.version++
		}
		n.count++
	}
	return true
}

// Stats returns a point-in-time summary.
func (c *Corpus) Stats() CorpusStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.statsLocked()
}

func (c *Corpus) statsLocked() CorpusStats {
	return CorpusStats{
		Traces:  c.traces,
		Events:  c.events,
		Nodes:   c.nodes,
		Symbols: len(c.names),
		Devices: len(c.devices),
		Shed:    c.shed,
		Version: c.version,
	}
}

// Accepts reports whether the exact trace has been observed as a
// complete usage.
func (c *Corpus) Accepts(events []string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := c.root
	for _, ev := range events {
		id, ok := c.syms[ev]
		if !ok {
			return false
		}
		if n = n.next[id]; n == nil {
			return false
		}
	}
	return n.accept
}

// Snapshot is an immutable view of a corpus taken at one version: the
// prefix-tree acceptor as a DFA, the accepted traces, and the observed
// alphabet. The miner learns against snapshots so concurrent ingest
// appends can never flip a membership answer mid-run (L* requires a
// consistent oracle).
type Snapshot struct {
	// PTA is the prefix-tree acceptor: a DFA accepting exactly the
	// observed complete usages.
	PTA *automata.DFA

	// Traces are the accepted traces, shortest-first then lexicographic.
	// Event strings are interned; callers must not mutate.
	Traces [][]string

	// Alphabet is the sorted observed event alphabet.
	Alphabet []string

	// Stats summarizes the corpus at snapshot time.
	Stats CorpusStats
}

// Snapshot copies the corpus into an immutable Snapshot. Cost is linear
// in trie nodes (bounded by MaxNodes), so a snapshot is cheap enough to
// take every mining round.
func (c *Corpus) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()

	alphabet := make([]string, len(c.names))
	copy(alphabet, c.names)
	sort.Strings(alphabet)

	pta := automata.NewDFA(alphabet)
	pta.SetAccepting(pta.Start(), c.root.accept)

	var traces [][]string
	// DFS with an explicit stack of (trie node, DFA state, interned path).
	type frame struct {
		n     *cnode
		state int
		path  []string
	}
	stack := []frame{{n: c.root, state: pta.Start()}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.accept {
			traces = append(traces, f.path)
		}
		for id, child := range f.n.next {
			st := pta.AddState(child.accept)
			// Symbols come from the interned table, so AddTransition's
			// name lookup always succeeds.
			_ = pta.AddTransition(f.state, c.names[id], st)
			path := make([]string, len(f.path)+1)
			copy(path, f.path)
			path[len(f.path)] = c.names[id]
			stack = append(stack, frame{n: child, state: st, path: path})
		}
	}
	sort.Slice(traces, func(i, j int) bool { return lessTrace(traces[i], traces[j]) })
	return &Snapshot{PTA: pta, Traces: traces, Alphabet: alphabet, Stats: c.statsLocked()}
}

func lessTrace(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

package mine

import (
	"context"

	"github.com/shelley-go/shelley/internal/automata"
)

// Verdicts of the drift detector, ordered from healthy to alarming.
const (
	// VerdictPending: traces have arrived but no mining round has
	// completed for the class yet.
	VerdictPending = "pending"

	// VerdictConformant: the mined language is exactly within the static
	// model and covers it.
	VerdictConformant = "conformant"

	// VerdictUnder: devices stay inside the static model but have not
	// yet exercised all of it (L(mined) ⊊ L(static)). Expected while a
	// fleet warms up; Missing is a shortest unexercised usage.
	VerdictUnder = "under-approximated"

	// VerdictDrift: devices exercise behavior the static model forbids
	// (L(mined) ⊄ L(static)). Counterexample is a shortest offending
	// trace.
	VerdictDrift = "DRIFT"

	// VerdictNoStatic: the class's module is not resident, so there is
	// no static model to diff against; the mined model is still kept.
	VerdictNoStatic = "no-static-model"

	// VerdictError: the last mining round failed (typically a tripped
	// resource budget); Error carries the cause.
	VerdictError = "error"
)

// Report is one class's drift report, served by GET /v1/drift and
// persisted through the artifact store so verdicts survive restarts.
type Report struct {
	ClassFP string `json:"class_fp"`
	Verdict string `json:"verdict"`

	// Counterexample is a shortest trace the fleet executed that the
	// static model rejects (VerdictDrift only).
	Counterexample []string `json:"counterexample,omitempty"`

	// Missing is a shortest static-model usage no device has executed
	// (VerdictUnder only).
	Missing []string `json:"missing,omitempty"`

	MinedStates  int `json:"mined_states,omitempty"`
	StaticStates int `json:"static_states,omitempty"`

	// Corpus statistics at the last mining round.
	Traces  int    `json:"traces"`
	Events  uint64 `json:"events"`
	Devices int    `json:"devices"`
	Shed    uint64 `json:"shed,omitempty"`

	// Learning cost of the last mining round.
	Rounds            int `json:"rounds,omitempty"`
	MembershipQueries int `json:"membership_queries,omitempty"`

	// MinedAtUnix is when the reported model was mined (Unix seconds).
	MinedAtUnix int64 `json:"mined_at_unix,omitempty"`

	// Warm marks a report restored from the store and not yet re-mined
	// in this process.
	Warm bool `json:"warm,omitempty"`

	// Error is the last mining failure (VerdictError).
	Error string `json:"error,omitempty"`
}

// Diff classifies a mined model against the statically inferred one.
// Each direction is the intersection of one model with the complement
// of the other — computed as a single difference product over the
// *union* alphabet, so an event the static model has never heard of
// (the clearest drift there is) lands in the drift direction instead of
// vanishing inside a too-small complement. Products run under the
// context's resource budget.
//
//	L(mined) \ L(static) ≠ ∅  →  DRIFT, with a shortest witness
//	L(static) \ L(mined) ≠ ∅  →  under-approximated
//	both empty                →  conformant
func Diff(ctx context.Context, mined, static *automata.DFA) (verdict string, counterexample, missing []string, err error) {
	diffOp := func(a, b bool) bool { return a && !b }

	over, err := automata.ProductCtx(ctx, mined, static, diffOp)
	if err != nil {
		return "", nil, nil, err
	}
	if w, ok := over.ShortestAccepted(); ok {
		return VerdictDrift, w, nil, nil
	}
	under, err := automata.ProductCtx(ctx, static, mined, diffOp)
	if err != nil {
		return "", nil, nil, err
	}
	if w, ok := under.ShortestAccepted(); ok {
		return VerdictUnder, nil, w, nil
	}
	return VerdictConformant, nil, nil, nil
}

package mine

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzIngestFrame drives the NDJSON ingest decoder (and the corpus
// appends behind it) with hostile frames: malformed JSON, oversize
// lines and events, blank/partial lines, duplicated fingerprints. The
// decoder must never panic, never emit an invalid event, and its
// counters must add up; the miner must absorb whatever is emitted
// within its bounds.
func FuzzIngestFrame(f *testing.F) {
	f.Add([]byte(`{"class_fp":"fp/Valve","device":"d0","events":["open","close"],"status":"ok"}` + "\n"))
	f.Add([]byte(`{"class_fp":"fp/Valve","events":["open"],"status":"partial"}` + "\n" +
		`{"class_fp":"fp/Valve","events":["open"],"status":"partial"}` + "\n"))
	f.Add([]byte("not json\n\n{\"class_fp\":\"\"}\n"))
	f.Add([]byte(`{"class_fp":"a/b","events":[` + strings.Repeat(`"x",`, 64) + `"x"]}`))
	f.Add([]byte("{\"class_fp\":\"fp/V\",\"events\":[\"" + strings.Repeat("y", 2048) + "\"]}\n"))
	f.Add(bytes.Repeat([]byte("z"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := DecodeLimits{MaxLineBytes: 1024, MaxTraceEvents: 16}
		m := NewMiner(Config{
			MaxClasses: 4,
			Corpus:     CorpusConfig{MaxTraces: 8, MaxTraceEvents: 16, MaxNodes: 64, MaxSymbols: 8},
		})
		emitted := 0
		st, err := DecodeFrame(bytes.NewReader(data), lim, func(ev Event) {
			emitted++
			if ev.ClassFP == "" {
				t.Fatal("decoder emitted event without class_fp")
			}
			if _, ok := ev.Accepted(); !ok {
				t.Fatalf("decoder emitted invalid status %q", ev.Status)
			}
			if len(ev.Events) > lim.MaxTraceEvents {
				t.Fatalf("decoder emitted %d events over the %d cap", len(ev.Events), lim.MaxTraceEvents)
			}
			m.Ingest(ev)
		})
		if err != nil {
			t.Fatalf("in-memory reader returned transport error: %v", err)
		}
		if st.Malformed+st.Oversize > st.Lines {
			t.Fatalf("stats don't add up: %+v", st)
		}
		if emitted != st.Lines-st.Malformed-st.Oversize {
			t.Fatalf("emitted %d events for stats %+v", emitted, st)
		}
		c := m.Counters()
		if c.IngestedTraces+c.ShedTraces != uint64(emitted) {
			t.Fatalf("miner counters %+v for %d emitted", c, emitted)
		}
	})
}

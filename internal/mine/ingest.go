package mine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
)

// Event is one NDJSON line of a POST /v1/ingest frame: one observed
// usage (or usage prefix) of one class on one device. This is the wire
// type; client.IngestEvent aliases it so daemon and client can never
// drift.
type Event struct {
	// ClassFP names the class the trace exercises:
	// "<module-fingerprint>/<ClassName>", e.g. "sha256:ab…12/Valve".
	ClassFP string `json:"class_fp"`

	// Device identifies the reporting device; used only for fleet
	// statistics.
	Device string `json:"device,omitempty"`

	// Events is the operation-name sequence the device executed.
	Events []string `json:"events"`

	// Status classifies the observation: "ok" (or empty) marks a
	// complete usage that enters the mined language; "partial" and
	// "error" contribute prefix statistics only.
	Status string `json:"status,omitempty"`
}

// Accepted maps Status onto the two observation kinds; ok=false means
// the status token itself is malformed.
func (e *Event) Accepted() (accepted, ok bool) {
	switch e.Status {
	case "", "ok":
		return true, true
	case "partial", "error":
		return false, true
	default:
		return false, false
	}
}

// DecodeLimits bounds one frame decode. Zero values take defaults.
type DecodeLimits struct {
	// MaxLineBytes caps one NDJSON line; longer lines are counted
	// oversize and skipped without aborting the frame.
	MaxLineBytes int

	// MaxTraceEvents caps Events per line; longer ones are malformed.
	MaxTraceEvents int
}

func (l DecodeLimits) withDefaults() DecodeLimits {
	if l.MaxLineBytes == 0 {
		l.MaxLineBytes = 64 << 10
	}
	if l.MaxTraceEvents == 0 {
		l.MaxTraceEvents = 4096
	}
	return l
}

// FrameStats counts a frame decode. Lines is every non-blank line seen;
// Malformed and Oversize count the subset dropped, so
// Lines-Malformed-Oversize events were emitted.
type FrameStats struct {
	Lines     int `json:"lines"`
	Malformed int `json:"malformed"`
	Oversize  int `json:"oversize"`
}

// DecodeFrame parses one NDJSON ingest frame, calling emit once per
// well-formed event. Malformed and oversize lines are counted and
// skipped — a fleet with one buggy reporter keeps the rest of the frame
// flowing — and only transport-level read errors fail the decode.
// Callers bound total frame size (http.MaxBytesReader); DecodeFrame
// bounds per-line memory at MaxLineBytes regardless of input shape.
func DecodeFrame(r io.Reader, lim DecodeLimits, emit func(Event)) (FrameStats, error) {
	lim = lim.withDefaults()
	br := bufio.NewReaderSize(r, 32<<10)
	var st FrameStats
	buf := make([]byte, 0, 4096)
	oversize := false

	flush := func() {
		defer func() { buf = buf[:0]; oversize = false }()
		line := bytes.TrimSpace(buf)
		if len(line) == 0 && !oversize {
			return
		}
		st.Lines++
		if oversize {
			st.Oversize++
			return
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			st.Malformed++
			return
		}
		if _, ok := ev.Accepted(); !ok || ev.ClassFP == "" || len(ev.Events) > lim.MaxTraceEvents {
			st.Malformed++
			return
		}
		emit(ev)
	}

	for {
		chunk, err := br.ReadSlice('\n')
		if !oversize {
			if len(buf)+len(chunk) > lim.MaxLineBytes {
				oversize = true
				buf = buf[:0]
			} else {
				buf = append(buf, chunk...)
			}
		}
		switch err {
		case nil:
			flush()
		case bufio.ErrBufferFull:
			// Mid-line; keep accumulating (or skipping) until '\n'.
		case io.EOF:
			flush()
			return st, nil
		default:
			return st, err
		}
	}
}

package mine

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/store"
)

// staticValve is the running example's protocol: open · read* · close.
func staticValve(t testing.TB) *automata.DFA {
	t.Helper()
	d := automata.NewDFA([]string{"close", "open", "read"})
	mid := d.AddState(false)
	done := d.AddState(true)
	for _, tr := range []struct {
		from int
		sym  string
		to   int
	}{{0, "open", mid}, {mid, "read", mid}, {mid, "close", done}} {
		if err := d.AddTransition(tr.from, tr.sym, tr.to); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestCorpusAcceptsAndVersions(t *testing.T) {
	c := NewCorpus(CorpusConfig{})
	if !c.Add("dev-0", []string{"open", "close"}, true) {
		t.Fatal("add shed")
	}
	v1 := c.Stats().Version
	if !c.Add("dev-1", []string{"open", "close"}, true) {
		t.Fatal("dup add shed")
	}
	if got := c.Stats().Version; got != v1 {
		t.Fatalf("duplicate accepted trace bumped version %d -> %d", v1, got)
	}
	if !c.Add("dev-0", []string{"open", "read"}, false) {
		t.Fatal("partial add shed")
	}
	if got := c.Stats().Version; got != v1 {
		t.Fatalf("partial observation bumped version %d -> %d", v1, got)
	}
	if !c.Accepts([]string{"open", "close"}) {
		t.Fatal("observed complete usage not accepted")
	}
	if c.Accepts([]string{"open", "read"}) {
		t.Fatal("partial observation accepted")
	}
	if c.Accepts([]string{"open"}) {
		t.Fatal("prefix accepted")
	}
	st := c.Stats()
	if st.Traces != 1 || st.Devices != 2 || st.Symbols != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCorpusBoundsShedNeverFail(t *testing.T) {
	c := NewCorpus(CorpusConfig{MaxTraces: 2, MaxTraceEvents: 3, MaxSymbols: 4, MaxNodes: 8})
	if c.Add("d", []string{"a", "b", "c", "d"}, true) {
		t.Fatal("over-long trace not shed")
	}
	c.Add("d", []string{"a"}, true)
	c.Add("d", []string{"a", "b"}, true)
	if c.Add("d", []string{"b"}, true) {
		t.Fatal("MaxTraces not enforced")
	}
	if c.Add("d", []string{"e", "f", "g"}, true) && c.Stats().Symbols > 4 {
		t.Fatal("MaxSymbols not enforced")
	}
	if got := c.Stats().Shed; got == 0 {
		t.Fatal("sheds not counted")
	}
	if got := c.Stats().Traces; got != 2 {
		t.Fatalf("traces %d after sheds", got)
	}
}

func TestSnapshotPTAMatchesObservedLanguage(t *testing.T) {
	c := NewCorpus(CorpusConfig{})
	obs := [][]string{
		{"open", "close"},
		{"open", "read", "close"},
		{"open", "read", "read", "close"},
	}
	for _, tr := range obs {
		c.Add("d", tr, true)
	}
	snap := c.Snapshot()
	for _, tr := range obs {
		if !snap.PTA.Accepts(tr) {
			t.Fatalf("PTA rejects observed %v", tr)
		}
	}
	for _, tr := range [][]string{{}, {"open"}, {"close"}, {"open", "read"}} {
		if snap.PTA.Accepts(tr) {
			t.Fatalf("PTA accepts unobserved %v", tr)
		}
	}
	if len(snap.Traces) != len(obs) {
		t.Fatalf("snapshot has %d traces, want %d", len(snap.Traces), len(obs))
	}
	for i := 1; i < len(snap.Traces); i++ {
		if !lessTrace(snap.Traces[i-1], snap.Traces[i]) {
			t.Fatalf("snapshot traces not sorted: %v before %v", snap.Traces[i-1], snap.Traces[i])
		}
	}
}

func mineCtx() context.Context {
	return budget.With(context.Background(), budget.Default())
}

func TestMinerUnderApproximatedThenDrift(t *testing.T) {
	static := staticValve(t)
	resolve := func(string) (*automata.DFA, bool) { return static, true }
	m := NewMiner(Config{})

	for _, tr := range [][]string{{"open", "close"}, {"open", "read", "close"}} {
		if out := m.Ingest(Event{ClassFP: "fp/Valve", Device: "dev-0", Events: tr, Status: "ok"}); !out.Accepted {
			t.Fatalf("ingest shed: %+v", out)
		}
	}
	st := m.MineRound(mineCtx(), resolve)
	if st.Mined != 1 || st.Errors != 0 {
		t.Fatalf("round stats %+v", st)
	}
	reports := m.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports %v", reports)
	}
	r := reports[0]
	if r.Verdict != VerdictUnder {
		t.Fatalf("verdict %q, want %q (report %+v)", r.Verdict, VerdictUnder, r)
	}
	if len(r.Missing) == 0 || !static.Accepts(r.Missing) {
		t.Fatalf("missing witness %v not a static usage", r.Missing)
	}

	// A second round with no new traffic is a no-op.
	if st := m.MineRound(mineCtx(), resolve); st.Mined != 0 || st.Skipped != 1 {
		t.Fatalf("idle round stats %+v", st)
	}

	// One off-model device flips the verdict with a minimal witness.
	drift := []string{"read", "open", "close"}
	if static.Accepts(drift) {
		t.Fatal("test bug: drift trace conforms")
	}
	m.Ingest(Event{ClassFP: "fp/Valve", Device: "rogue", Events: drift, Status: "ok"})
	if st := m.MineRound(mineCtx(), resolve); st.Mined != 1 {
		t.Fatalf("drift round stats %+v", st)
	}
	r = m.Reports()[0]
	if r.Verdict != VerdictDrift {
		t.Fatalf("verdict %q, want DRIFT", r.Verdict)
	}
	if len(r.Counterexample) == 0 || static.Accepts(r.Counterexample) {
		t.Fatalf("counterexample %v accepted by the static model", r.Counterexample)
	}
	if len(r.Counterexample) > len(drift) {
		t.Fatalf("counterexample %v longer than the injected trace", r.Counterexample)
	}
	if got := m.Counters().DriftFlips; got != 1 {
		t.Fatalf("drift flips %d", got)
	}
}

func TestMinerConformantWhenCorpusCoversSpec(t *testing.T) {
	m := NewMiner(Config{})
	// A finite static model (open · close only) can be covered exactly.
	finite := automata.NewDFA([]string{"close", "open"})
	mid := finite.AddState(false)
	done := finite.AddState(true)
	if err := finite.AddTransition(0, "open", mid); err != nil {
		t.Fatal(err)
	}
	if err := finite.AddTransition(mid, "close", done); err != nil {
		t.Fatal(err)
	}
	resolve := func(string) (*automata.DFA, bool) { return finite, true }
	m.Ingest(Event{ClassFP: "fp/Gate", Events: []string{"open", "close"}})
	if st := m.MineRound(mineCtx(), resolve); st.Mined != 1 || st.Errors != 0 {
		t.Fatalf("round stats %+v", st)
	}
	if r := m.Reports()[0]; r.Verdict != VerdictConformant {
		t.Fatalf("verdict %q, want conformant (%+v)", r.Verdict, r)
	}
}

func TestMinerNoStaticModelThenResolved(t *testing.T) {
	static := staticValve(t)
	m := NewMiner(Config{})
	m.Ingest(Event{ClassFP: "fp/Valve", Events: []string{"open", "close"}})

	unresolved := func(string) (*automata.DFA, bool) { return nil, false }
	m.MineRound(mineCtx(), unresolved)
	if r := m.Reports()[0]; r.Verdict != VerdictNoStatic {
		t.Fatalf("verdict %q, want %q", r.Verdict, VerdictNoStatic)
	}

	// The module becomes resident later; the next round re-diffs even
	// though the corpus did not change.
	resolved := func(string) (*automata.DFA, bool) { return static, true }
	m.MineRound(mineCtx(), resolved)
	if r := m.Reports()[0]; r.Verdict != VerdictUnder {
		t.Fatalf("verdict %q after residency, want %q", r.Verdict, VerdictUnder)
	}
}

func TestMinerBudgetTripsAreClassified(t *testing.T) {
	static := staticValve(t)
	resolve := func(string) (*automata.DFA, bool) { return static, true }
	m := NewMiner(Config{})
	m.Ingest(Event{ClassFP: "fp/Valve", Events: []string{"open", "read", "read", "read", "close"}})

	// A starvation budget stops learning instead of pinning the loop.
	tight := budget.With(context.Background(), budget.Limits{MaxDFAStates: 2})
	st := m.MineRound(tight, resolve)
	if st.Errors != 1 {
		t.Fatalf("round stats %+v", st)
	}
	if got := m.Counters().BudgetTripped; got == 0 {
		t.Fatal("budget trip not counted")
	}
	r := m.Reports()[0]
	if r.Verdict != VerdictError || r.Error == "" {
		t.Fatalf("report %+v, want error verdict with cause", r)
	}

	// A failed corpus version is not re-attempted — retrying a
	// deterministic budget trip would burn a full deadline every tick —
	// so the next round skips the class entirely.
	if st := m.MineRound(mineCtx(), resolve); st.Skipped != 1 || st.Errors != 0 {
		t.Fatalf("post-failure round stats %+v, want the class skipped", st)
	}

	// Fresh traffic bumps the corpus version and re-arms mining; the
	// class then recovers under a sane budget.
	m.Ingest(Event{ClassFP: "fp/Valve", Events: []string{"open", "close"}})
	if st := m.MineRound(mineCtx(), resolve); st.Mined != 1 || st.Errors != 0 {
		t.Fatalf("recovery round stats %+v", st)
	}
	if r := m.Reports()[0]; r.Verdict != VerdictUnder || r.Error != "" {
		t.Fatalf("recovered report %+v", r)
	}
}

func TestMinerPersistenceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		s, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	static := staticValve(t)
	resolve := func(string) (*automata.DFA, bool) { return static, true }

	s1 := open()
	m1 := NewMiner(Config{Store: s1})
	m1.Ingest(Event{ClassFP: "fp/Valve", Events: []string{"read", "open", "close"}})
	m1.MineRound(mineCtx(), resolve)
	want := m1.Reports()[0]
	if want.Verdict != VerdictDrift {
		t.Fatalf("seed verdict %q", want.Verdict)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := open()
	defer s2.Close()
	m2 := NewMiner(Config{Store: s2})
	reports := m2.Reports()
	if len(reports) != 1 {
		t.Fatalf("restored %d reports", len(reports))
	}
	got := reports[0]
	if !got.Warm {
		t.Fatal("restored report not marked warm")
	}
	if got.Verdict != want.Verdict || strings.Join(got.Counterexample, ",") != strings.Join(want.Counterexample, ",") {
		t.Fatalf("restored report %+v != persisted %+v", got, want)
	}

	// Fresh conforming traffic re-mines and clears the warm flag; the
	// restored class still reports the drifting language until then.
	m2.Ingest(Event{ClassFP: "fp/Valve", Events: []string{"open", "close"}})
	m2.MineRound(mineCtx(), resolve)
	got = m2.Reports()[0]
	if got.Warm {
		t.Fatal("warm flag survived a fresh mining round")
	}
}

func TestDecodeFrame(t *testing.T) {
	input := strings.Join([]string{
		`{"class_fp":"fp/Valve","device":"d0","events":["open","close"],"status":"ok"}`,
		``,
		`{"class_fp":"fp/Valve","events":["open"],"status":"partial"}`,
		`not json at all`,
		`{"class_fp":"","events":["x"]}`,
		`{"class_fp":"fp/Valve","events":["open"],"status":"weird"}`,
		`{"class_fp":"fp/Other","events":[]}`,
	}, "\n")
	var got []Event
	st, err := DecodeFrame(strings.NewReader(input), DecodeLimits{}, func(ev Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 6 || st.Malformed != 3 || st.Oversize != 0 {
		t.Fatalf("stats %+v", st)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d events: %+v", len(got), got)
	}
	if acc, _ := got[1].Accepted(); acc {
		t.Fatal("partial status decoded as accepted")
	}
}

func TestDecodeFrameOversizeLineSkipped(t *testing.T) {
	big := `{"class_fp":"fp/V","events":["` + strings.Repeat("x", 200<<10) + `"]}`
	input := big + "\n" + `{"class_fp":"fp/V","events":["open"]}` + "\n"
	var got []Event
	st, err := DecodeFrame(strings.NewReader(input), DecodeLimits{}, func(ev Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Oversize != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(got) != 1 || got[0].Events[0] != "open" {
		t.Fatalf("line after the oversize one lost: %+v", got)
	}
}

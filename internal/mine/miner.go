package mine

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/learn"
	"github.com/shelley-go/shelley/internal/store"
)

// Config tunes a Miner. Zero values take defaults.
type Config struct {
	// MaxClasses caps tracked classes; ingest for further classes sheds.
	MaxClasses int

	// Corpus bounds each class's trace corpus.
	Corpus CorpusConfig

	// ExtraStates is the W-method sampling depth of the equivalence
	// oracle (suite size is exponential in it).
	ExtraStates int

	// Learn tunes the L* runs. A zero MaxQueries defaults to 1<<20 so a
	// pathological corpus trips a classified budget error instead of
	// pinning the mining loop.
	Learn learn.Config

	// Store, when set, persists mined models and reports so drift state
	// survives restarts.
	Store *store.Store

	// Now is the clock (tests); nil means time.Now.
	Now func() time.Time

	// OnVerdict, when set, fires after every completed mining round
	// that assigned a verdict, with the previous verdict and a copy of
	// the fresh report — the hook that turns drift flips into alert
	// events instead of a counter the operator has to poll. Called
	// with the class state locked: the hook must not call back into
	// the Miner.
	OnVerdict func(prev string, r Report)
}

func (c Config) withDefaults() Config {
	if c.MaxClasses == 0 {
		c.MaxClasses = 1024
	}
	c.Corpus = c.Corpus.withDefaults()
	if c.ExtraStates == 0 {
		c.ExtraStates = 1
	}
	if c.Learn.MaxQueries == 0 {
		c.Learn.MaxQueries = 1 << 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Resolver maps a class fingerprint ("<module-fp>/<Class>") to its
// statically inferred DFA, or false when the module is not resident.
type Resolver func(classFP string) (*automata.DFA, bool)

// Outcome reports what happened to one ingested event.
type Outcome struct {
	// Accepted: the observation entered the class corpus.
	Accepted bool

	// Shed names the bound that dropped it: "classes" (MaxClasses) or
	// "corpus" (a CorpusConfig bound). Empty when accepted.
	Shed string
}

// Counters is a point-in-time snapshot of the miner's monotonic
// counters, exported as shelleyd_mine_* metrics.
type Counters struct {
	IngestedEvents uint64 // events accepted into corpora
	IngestedTraces uint64 // observations accepted into corpora
	ShedTraces     uint64 // observations dropped by a bound
	Rounds         uint64 // completed mining rounds (per class)
	BudgetTripped  uint64 // mining rounds stopped by a resource budget
	DriftFlips     uint64 // verdict transitions into DRIFT
}

// Miner owns the per-class corpora, the mined models, and the drift
// reports. Ingest is cheap and lock-light (per-class RWMutex appends);
// all learning happens in MineRound, which the daemon drives from a
// background loop — never from a request handler.
type Miner struct {
	cfg Config

	mu      sync.RWMutex
	classes map[string]*classState

	ingestedEvents atomic.Uint64
	ingestedTraces atomic.Uint64
	shedTraces     atomic.Uint64
	rounds         atomic.Uint64
	budgetTripped  atomic.Uint64
	driftFlips     atomic.Uint64
}

type classState struct {
	classFP string
	corpus  *Corpus

	mu           sync.Mutex // guards mined/report/minedVersion
	mined        *automata.DFA
	report       Report
	minedVersion uint64

	// failedVersion is the corpus version of the last failed round.
	// While the corpus stays at it, the class is skipped instead of
	// re-attempted: a budget-tripping corpus would otherwise burn a full
	// deadline every tick while making no progress. Fresh traffic bumps
	// the version and re-arms mining.
	failedVersion uint64
}

// NewMiner returns a Miner, restoring persisted mined models and
// reports from cfg.Store when one is configured.
func NewMiner(cfg Config) *Miner {
	m := &Miner{cfg: cfg.withDefaults(), classes: make(map[string]*classState)}
	m.loadPersisted()
	return m
}

// Ingest appends one observation to its class corpus; it never blocks
// on mining. Unknown classes are admitted until MaxClasses.
func (m *Miner) Ingest(ev Event) Outcome {
	accepted, ok := ev.Accepted()
	if !ok || ev.ClassFP == "" {
		// DecodeFrame filters these; direct callers get a shed.
		m.shedTraces.Add(1)
		return Outcome{Shed: "corpus"}
	}
	cs := m.class(ev.ClassFP)
	if cs == nil {
		m.shedTraces.Add(1)
		return Outcome{Shed: "classes"}
	}
	if !cs.corpus.Add(ev.Device, ev.Events, accepted) {
		m.shedTraces.Add(1)
		return Outcome{Shed: "corpus"}
	}
	m.ingestedTraces.Add(1)
	m.ingestedEvents.Add(uint64(len(ev.Events)))
	return Outcome{Accepted: true}
}

func (m *Miner) class(classFP string) *classState {
	m.mu.RLock()
	cs := m.classes[classFP]
	m.mu.RUnlock()
	if cs != nil {
		return cs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cs := m.classes[classFP]; cs != nil {
		return cs
	}
	if len(m.classes) >= m.cfg.MaxClasses {
		return nil
	}
	cs = &classState{
		classFP: classFP,
		corpus:  NewCorpus(m.cfg.Corpus),
		report:  Report{ClassFP: classFP, Verdict: VerdictPending},
	}
	m.classes[classFP] = cs
	return cs
}

// Classes returns the tracked class fingerprints, sorted.
func (m *Miner) Classes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.classes))
	for fp := range m.classes {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}

// Counters snapshots the monotonic counters.
func (m *Miner) Counters() Counters {
	return Counters{
		IngestedEvents: m.ingestedEvents.Load(),
		IngestedTraces: m.ingestedTraces.Load(),
		ShedTraces:     m.shedTraces.Load(),
		Rounds:         m.rounds.Load(),
		BudgetTripped:  m.budgetTripped.Load(),
		DriftFlips:     m.driftFlips.Load(),
	}
}

// Reports returns every class's current drift report, sorted by class
// fingerprint.
func (m *Miner) Reports() []Report {
	fps := m.Classes()
	out := make([]Report, 0, len(fps))
	for _, fp := range fps {
		m.mu.RLock()
		cs := m.classes[fp]
		m.mu.RUnlock()
		if cs == nil {
			continue
		}
		cs.mu.Lock()
		r := cs.report
		cs.mu.Unlock()
		// Counterexample/Missing slices are never mutated after
		// publication, so sharing them is safe.
		out = append(out, r)
	}
	return out
}

// RoundStats summarizes one MineRound.
type RoundStats struct {
	Mined   int // classes (re-)mined this round
	Skipped int // classes with no new accepted traces
	Errors  int // classes whose mining failed
}

// MineRound re-mines every class whose accepted language changed since
// its last round, then re-runs drift detection against the statically
// inferred model from resolve. The context carries the resource budget
// and deadline; a class that trips it is reported (VerdictError) and
// the round moves on.
func (m *Miner) MineRound(ctx context.Context, resolve Resolver) RoundStats {
	var st RoundStats
	for _, fp := range m.Classes() {
		m.mu.RLock()
		cs := m.classes[fp]
		m.mu.RUnlock()
		if cs == nil {
			continue
		}
		mined, err := m.mineClass(ctx, cs, resolve)
		switch {
		case err != nil:
			st.Errors++
		case mined:
			st.Mined++
		default:
			st.Skipped++
		}
		if ctx.Err() != nil {
			break
		}
	}
	return st
}

// mineClass runs one class's mining round; it reports (false, nil) when
// there was nothing new to mine.
func (m *Miner) mineClass(ctx context.Context, cs *classState, resolve Resolver) (bool, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()

	snap := cs.corpus.Snapshot()
	stale := cs.report.Warm || cs.report.Verdict == VerdictNoStatic
	if snap.Stats.Traces == 0 {
		// Nothing accepted yet (or a warm restart with no fresh traffic):
		// keep the existing model and report, refresh live statistics.
		if cs.report.Verdict != VerdictPending {
			return false, nil
		}
		cs.report.Events = snap.Stats.Events
		cs.report.Devices = snap.Stats.Devices
		cs.report.Shed = snap.Stats.Shed
		return false, nil
	}
	if snap.Stats.Version == cs.minedVersion && cs.mined != nil && !stale {
		return false, nil
	}
	if cs.failedVersion != 0 && snap.Stats.Version == cs.failedVersion {
		return false, nil
	}

	if cs.mined == nil || snap.Stats.Version != cs.minedVersion {
		teacher := &corpusTeacher{ctx: ctx, snap: snap, extra: m.cfg.ExtraStates}
		res, err := learn.LStarCtx(ctx, teacher, m.cfg.Learn)
		if err == nil && teacher.err != nil {
			err = teacher.err
		}
		if err != nil {
			if errors.Is(err, budget.ErrExceeded) || errors.Is(err, budget.ErrCanceled) {
				m.budgetTripped.Add(1)
			}
			cs.failedVersion = snap.Stats.Version
			cs.report.Error = err.Error()
			if cs.mined == nil {
				cs.report.Verdict = VerdictError
			}
			return false, err
		}
		cs.mined = res.DFA
		cs.minedVersion = snap.Stats.Version
		cs.report.Rounds = res.Rounds
		cs.report.MembershipQueries = res.MembershipQueries
	}
	m.rounds.Add(1)

	prev := cs.report.Verdict
	cs.report.Error = ""
	cs.report.Warm = false
	cs.report.MinedStates = cs.mined.NumStates()
	cs.report.Traces = snap.Stats.Traces
	cs.report.Events = snap.Stats.Events
	cs.report.Devices = snap.Stats.Devices
	cs.report.Shed = snap.Stats.Shed
	cs.report.MinedAtUnix = m.cfg.Now().Unix()
	cs.report.Counterexample = nil
	cs.report.Missing = nil

	static, ok := resolve(cs.classFP)
	if !ok {
		cs.report.Verdict = VerdictNoStatic
		cs.report.StaticStates = 0
		cs.failedVersion = 0
		m.persist(cs)
		if m.cfg.OnVerdict != nil {
			m.cfg.OnVerdict(prev, cs.report)
		}
		return true, nil
	}
	verdict, cex, missing, err := Diff(ctx, cs.mined, static)
	if err != nil {
		if errors.Is(err, budget.ErrExceeded) || errors.Is(err, budget.ErrCanceled) {
			m.budgetTripped.Add(1)
		}
		cs.failedVersion = snap.Stats.Version
		cs.report.Error = err.Error()
		if prev == VerdictPending {
			cs.report.Verdict = VerdictError
		}
		return false, err
	}
	cs.report.Verdict = verdict
	cs.report.Counterexample = cex
	cs.report.Missing = missing
	cs.report.StaticStates = static.NumStates()
	if verdict == VerdictDrift && prev != VerdictDrift {
		m.driftFlips.Add(1)
	}
	cs.failedVersion = 0
	m.persist(cs)
	if m.cfg.OnVerdict != nil {
		m.cfg.OnVerdict(prev, cs.report)
	}
	return true, nil
}

// corpusTeacher answers L* queries from a corpus snapshot: membership
// is observed-accept (the PTA), and equivalence layers three checks —
//
//  1. observed-accept completeness: every corpus trace the hypothesis
//     rejects is a counterexample (exact; guarantees a drifting trace
//     can never be silently dropped from the mined model);
//  2. W-method sampling via learn.Conformance, the ISSUE's production
//     use of the conformance machinery, catching hypothesis
//     over-acceptance early with short witnesses;
//  3. an exact symmetric-difference product against the PTA as the
//     final arbiter, so the accepted hypothesis is exactly the minimal
//     DFA of the observed language (a corpus of conforming traffic can
//     therefore never yield a false DRIFT).
//
// Counterexamples from every layer are genuine membership
// disagreements, so L*'s invalid-counterexample guard never fires.
type corpusTeacher struct {
	ctx   context.Context
	snap  *Snapshot
	extra int

	// err records an equivalence-side budget trip; the Teacher interface
	// cannot return errors, so Equivalent accepts the hypothesis and the
	// caller promotes err after LStarCtx returns.
	err error
}

func (t *corpusTeacher) Alphabet() []string { return t.snap.Alphabet }

func (t *corpusTeacher) Member(trace []string) bool { return t.snap.PTA.Accepts(trace) }

// wmethodMaxStates bounds the hypotheses the W-method layer runs on:
// its suite is quadratic in hypothesis states (times |A|^(extra+1)), so
// past this size the short-witness benefit no longer pays for the suite
// and the exact product below does all the work alone.
const wmethodMaxStates = 64

func (t *corpusTeacher) Equivalent(hyp *automata.DFA) ([]string, bool) {
	for _, tr := range t.snap.Traces {
		if !hyp.Accepts(tr) {
			return tr, false
		}
	}
	if hyp.NumStates() <= wmethodMaxStates {
		suite, err := learn.WMethodSuiteCtx(t.ctx, hyp, t.extra)
		if err != nil {
			t.err = err
			return nil, true
		}
		if cex, ok := learn.Conformance(hyp, t.snap.PTA.Accepts, suite); !ok {
			return cex, false
		}
	}
	diff, err := automata.ProductCtx(t.ctx, hyp, t.snap.PTA, func(a, b bool) bool { return a != b })
	if err != nil {
		t.err = err
		return nil, true
	}
	if w, ok := diff.ShortestAccepted(); ok {
		return w, false
	}
	return nil, true
}

// persisted is the store payload of one class: the drift report plus
// the mined model, re-encoded with the automata codec.
type persisted struct {
	Report Report          `json:"report"`
	Mined  json.RawMessage `json:"mined,omitempty"`
}

func storeKey(classFP string) string { return "mine\x00" + classFP }

// manifestKey indexes the persisted classes; the store has no key
// enumeration, so the manifest is the boot-time directory.
const manifestKey = "mine\x00manifest\x00v1"

// persist writes the class's mined model and report through the store's
// write-behind queue; callers hold cs.mu.
func (m *Miner) persist(cs *classState) {
	if m.cfg.Store == nil {
		return
	}
	var minedRaw json.RawMessage
	if cs.mined != nil {
		raw, err := automata.Marshal(cs.mined)
		if err != nil {
			return
		}
		minedRaw = raw
	}
	payload, err := json.Marshal(persisted{Report: cs.report, Mined: minedRaw})
	if err != nil {
		return
	}
	m.cfg.Store.Put(storeKey(cs.classFP), payload)
	m.persistManifest()
}

func (m *Miner) persistManifest() {
	fps := m.Classes()
	payload, err := json.Marshal(fps)
	if err != nil {
		return
	}
	m.cfg.Store.Put(manifestKey, payload)
}

// loadPersisted restores mined models and reports; restored reports are
// marked Warm until fresh traffic re-mines the class.
func (m *Miner) loadPersisted() {
	if m.cfg.Store == nil {
		return
	}
	raw, ok := m.cfg.Store.Get(manifestKey)
	if !ok {
		return
	}
	var fps []string
	if err := json.Unmarshal(raw, &fps); err != nil {
		return
	}
	for _, fp := range fps {
		if fp == "" || len(m.classes) >= m.cfg.MaxClasses {
			continue
		}
		payload, ok := m.cfg.Store.Get(storeKey(fp))
		if !ok {
			continue
		}
		var p persisted
		if err := json.Unmarshal(payload, &p); err != nil || p.Report.ClassFP != fp {
			continue
		}
		cs := &classState{
			classFP: fp,
			corpus:  NewCorpus(m.cfg.Corpus),
			report:  p.Report,
		}
		cs.report.Warm = true
		if len(p.Mined) > 0 {
			if d, err := automata.Unmarshal(p.Mined); err == nil {
				cs.mined = d
			}
		}
		m.classes[fp] = cs
	}
}

package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/lower"
)

// Fingerprint returns a stable 128-bit content key (32 hex digits) of
// everything the verification pipeline reads from the class: its name,
// decorators, claims, subsystem declarations, and per operation the
// modifiers, lowered body (ir canonical form), exit points (including
// source positions, which diagnostics print), and match sites. Helpers
// are included because the checker reports on them too.
//
// The fingerprint is syntactic, like ir.Fingerprint: two classes with
// the same usage language but different bodies get distinct keys, so
// the memoization cache (internal/pipeline) can never alias them. It is
// computed once per class and safe for concurrent use; classes are
// immutable after FromAST.
func (c *Class) Fingerprint() string {
	c.fpOnce.Do(func() { c.fp = fingerprintClass(c) })
	return c.fp
}

// ProtocolFingerprint returns a stable 128-bit content key of the
// class's externally observable protocol surface — exactly what the
// analysis of a dependent composite reads from this class when it is
// used as a subsystem: the class name (diagnostics print it), the
// operations in source order with their initial/final modifiers (the
// protocol automaton is built from them), and per operation the exit
// points' ordered continuation lists (exhaustiveness checking compares
// match cases against them and prints them verbatim).
//
// Method bodies, helpers, claims, match sites, and source positions are
// deliberately excluded: none of them can influence a dependent's
// verification, so an edit confined to them leaves this key — and every
// dependent's cached artifacts — untouched. That projection is what
// turns the fingerprint machinery into an invalidation engine: a
// body-only edit to a subsystem re-verifies the subsystem alone, while
// a protocol edit propagates to its dependents (see depgraph.ClassGraph
// and the root package's Session).
func (c *Class) ProtocolFingerprint() string {
	c.protoOnce.Do(func() { c.protoFP = fingerprintProtocol(c) })
	return c.protoFP
}

// Fingerprint returns a stable 128-bit content key of one operation:
// its name, modifiers, and lowered method (body, exits, match sites).
// It is the method-granularity unit of the diff the root package's
// Session computes between module generations.
func (op *Operation) Fingerprint() string {
	op.fpOnce.Do(func() {
		h := sha256.New()
		w := fpWriter{h: h}
		fingerprintOperation(w, op)
		sum := h.Sum(nil)
		op.fp = hex.EncodeToString(sum[:16])
	})
	return op.fp
}

func fingerprintProtocol(c *Class) string {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str(c.Name)
	w.flag(c.IsSys)
	w.num(len(c.Operations))
	for _, op := range c.Operations {
		w.tag('O')
		w.str(op.Name)
		w.flag(op.Initial)
		w.flag(op.Final)
		w.num(len(op.Method.Exits))
		for _, e := range op.Method.Exits {
			w.tag('E')
			w.num(len(e.Next))
			for _, next := range e.Next {
				w.str(next)
			}
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// fpWriter hashes strings, bools, and counts with length prefixes so
// the byte stream stays injective (no two distinct classes serialize
// identically).
type fpWriter struct{ h hash.Hash }

func (w fpWriter) str(s string) {
	w.num(len(s))
	w.h.Write([]byte(s))
}

func (w fpWriter) num(n int) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(n))
	w.h.Write(buf[:])
}

func (w fpWriter) flag(b bool) {
	if b {
		w.h.Write([]byte{1})
	} else {
		w.h.Write([]byte{0})
	}
}

func (w fpWriter) tag(t byte) { w.h.Write([]byte{t}) }

func fingerprintClass(c *Class) string {
	h := sha256.New()
	w := fpWriter{h: h}

	w.str(c.Name)
	w.flag(c.IsSys)
	w.num(len(c.Claims))
	for _, cl := range c.Claims {
		w.str(cl.Formula)
		w.str(cl.Pos.String())
	}
	w.num(len(c.SubsystemNames))
	for _, name := range c.SubsystemNames {
		w.str(name)
		w.str(c.SubsystemTypes[name])
	}
	w.num(len(c.Operations))
	for _, op := range c.Operations {
		w.tag('O')
		fingerprintOperation(w, op)
	}
	w.num(len(c.Helpers))
	for _, helper := range c.Helpers {
		w.tag('H')
		fingerprintOperation(w, helper)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

func fingerprintOperation(w fpWriter, op *Operation) {
	w.str(op.Name)
	w.flag(op.Initial)
	w.flag(op.Final)
	w.flag(op.Annotated)
	fingerprintMethod(w, op.Method)
}

func fingerprintMethod(w fpWriter, m *lower.Method) {
	body := ir.AppendCanonical(nil, m.Program)
	w.num(len(body))
	w.h.Write(body)
	w.flag(m.AlwaysReturns)
	w.num(len(m.Exits))
	for _, e := range m.Exits {
		w.flag(e.Declared)
		w.flag(e.HasValue)
		w.str(e.Pos.String())
		w.num(len(e.Next))
		for _, next := range e.Next {
			w.str(next)
		}
	}
	w.num(len(m.Matches))
	for _, site := range m.Matches {
		w.str(site.Op)
		w.flag(site.Wildcard)
		w.num(len(site.Patterns))
		for _, pattern := range site.Patterns {
			if pattern == nil {
				w.tag('w') // wildcard case
				continue
			}
			w.tag('p')
			w.num(len(pattern))
			for _, label := range pattern {
				w.str(label)
			}
		}
	}
}

// Package model builds the Shelley model of an annotated MicroPython
// class: its operations (with @op_initial/@op_final/@op/@op_initial_final
// modifiers, Table 1 of the paper), its temporal claims (@claim), its
// declared subsystems (@sys([...])), the lowered body of every operation,
// and the per-exit continuation sets that induce the class's usage
// protocol.
package model

import (
	"fmt"
	"sort"
	"sync"

	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/depgraph"
	"github.com/shelley-go/shelley/internal/lower"
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pytoken"
	"github.com/shelley-go/shelley/internal/regex"
)

// Error is a modelling error with its source position.
type Error struct {
	Pos pytoken.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Operation is one verified method of a class.
type Operation struct {
	// Name is the method name; it doubles as the operation symbol in the
	// class's protocol.
	Name string

	// Initial and Final record the @op_initial/@op_final modifiers
	// (@op_initial_final sets both).
	Initial bool
	Final   bool

	// Annotated reports whether the method carried an explicit @op*
	// decorator. Classes with no annotated methods (such as Listing 3.1)
	// treat every method as a plain operation.
	Annotated bool

	// Method is the lowered body.
	Method *lower.Method

	// fp memoizes Fingerprint; operations are immutable after FromAST,
	// so the per-method content hash is computed at most once.
	fpOnce sync.Once
	fp     string
}

// Behavior returns the operation's inferred behavior over subsystem
// operations (paper §3.2), in the paper-verbatim form.
func (op *Operation) Behavior() regex.Regex { return core.Infer(op.Method.Program) }

// Claim is a temporal requirement from a @claim decorator.
type Claim struct {
	Formula string
	Pos     pytoken.Pos
}

// Class is the Shelley model of one class.
type Class struct {
	// Name is the class name.
	Name string

	// IsSys reports whether the class carries a @sys decorator (with or
	// without subsystem arguments).
	IsSys bool

	// Claims are the class's @claim decorators in source order.
	Claims []Claim

	// SubsystemNames are the declared subsystem fields, in declaration
	// order; empty for base classes.
	SubsystemNames []string

	// SubsystemTypes maps each subsystem field to the class name it is
	// constructed from in __init__.
	SubsystemTypes map[string]string

	// Operations are the verified methods, in source order.
	Operations []*Operation

	// Helpers are unannotated methods of a class that does have
	// annotated operations: they are outside the verified protocol, but
	// the checker warns when one of them touches a subsystem (such
	// usage is invisible to the analysis).
	Helpers []*Operation

	opIndex map[string]*Operation

	// fp memoizes Fingerprint; classes are immutable after FromAST, so
	// the content hash is computed at most once (sync.Once keeps the
	// lazy computation race-free under CheckAllConcurrent).
	fpOnce sync.Once
	fp     string

	// protoFP memoizes ProtocolFingerprint, the projection of fp onto
	// the protocol surface dependents can observe.
	protoOnce sync.Once
	protoFP   string
}

// Operation returns the operation with the given name, or nil.
func (c *Class) Operation(name string) *Operation { return c.opIndex[name] }

// OperationNames returns the operation names in source order.
func (c *Class) OperationNames() []string {
	out := make([]string, len(c.Operations))
	for i, op := range c.Operations {
		out[i] = op.Name
	}
	return out
}

// InitialOperations returns the names of the initial operations, in
// source order. When no operation is annotated (Listing 3.1 style), every
// operation counts as initial.
func (c *Class) InitialOperations() []string {
	var out []string
	for _, op := range c.Operations {
		if op.Initial {
			out = append(out, op.Name)
		}
	}
	return out
}

// opModifiers maps decorator names to (initial, final).
var opModifiers = map[string]struct{ initial, final bool }{
	"op":               {false, false},
	"op_initial":       {true, false},
	"op_final":         {false, true},
	"op_initial_final": {true, true},
}

// FromAST builds the model of a class, lowering every candidate method.
func FromAST(cls *pyast.ClassDef) (*Class, error) {
	out := &Class{
		Name:    cls.Name,
		opIndex: make(map[string]*Operation),
	}

	// Class decorators: @sys, @sys([...]), @claim("...").
	for _, d := range cls.Decorators {
		switch d.Name {
		case "sys":
			out.IsSys = true
			if !d.Called {
				break
			}
			if len(d.Args) != 1 {
				return nil, &Error{Pos: d.NamePos, Msg: "@sys takes exactly one list argument"}
			}
			names, ok := pyast.StringElements(d.Args[0])
			if !ok {
				return nil, &Error{Pos: d.NamePos, Msg: "@sys argument must be a list of subsystem field names"}
			}
			seen := make(map[string]struct{}, len(names))
			for _, n := range names {
				if _, dup := seen[n]; dup {
					return nil, &Error{Pos: d.NamePos, Msg: fmt.Sprintf("@sys lists subsystem %q twice", n)}
				}
				seen[n] = struct{}{}
			}
			out.SubsystemNames = names
		case "claim":
			if len(d.Args) != 1 {
				return nil, &Error{Pos: d.NamePos, Msg: "@claim takes exactly one formula string"}
			}
			s, ok := d.Args[0].(*pyast.StringLit)
			if !ok {
				return nil, &Error{Pos: d.NamePos, Msg: "@claim argument must be a string"}
			}
			out.Claims = append(out.Claims, Claim{Formula: s.Value, Pos: d.NamePos})
		default:
			return nil, &Error{Pos: d.NamePos, Msg: fmt.Sprintf("unknown class decorator @%s", d.Name)}
		}
	}

	types, err := lower.SubsystemTypes(cls, out.SubsystemNames)
	if err != nil {
		return nil, fmt.Errorf("class %s: %w", cls.Name, err)
	}
	out.SubsystemTypes = types

	tracked := lower.TrackedFields(out.SubsystemNames)

	// Methods: collect annotated operations; remember unannotated
	// non-dunder methods in case the class has no annotations at all.
	var fallback []*Operation
	for _, fn := range cls.Methods {
		var mod *struct{ initial, final bool }
		for _, d := range fn.Decorators {
			m, ok := opModifiers[d.Name]
			if !ok {
				return nil, &Error{Pos: d.NamePos, Msg: fmt.Sprintf("unknown method decorator @%s", d.Name)}
			}
			if mod != nil {
				return nil, &Error{Pos: d.NamePos, Msg: fmt.Sprintf("method %s has multiple @op decorators", fn.Name)}
			}
			mod = &m
		}
		if fn.Name == "__init__" {
			if mod != nil {
				return nil, &Error{Pos: fn.NamePos, Msg: "__init__ cannot be an operation"}
			}
			continue
		}
		lowered, err := lower.LowerMethod(fn, tracked)
		if err != nil {
			return nil, fmt.Errorf("class %s, method %s: %w", cls.Name, fn.Name, err)
		}
		op := &Operation{Name: fn.Name, Method: lowered}
		if mod != nil {
			op.Annotated = true
			op.Initial = mod.initial
			op.Final = mod.final
			out.addOperation(op)
		} else {
			fallback = append(fallback, op)
		}
	}

	if len(out.Operations) == 0 {
		// Listing 3.1 style: no annotations, every method is an
		// operation and every operation is initial and final.
		for _, op := range fallback {
			op.Initial = true
			op.Final = true
			out.addOperation(op)
		}
	} else {
		out.Helpers = fallback
	}
	if len(out.Operations) == 0 {
		return nil, fmt.Errorf("class %s has no operations", cls.Name)
	}
	return out, nil
}

func (c *Class) addOperation(op *Operation) {
	c.Operations = append(c.Operations, op)
	c.opIndex[op.Name] = op
}

// DepGraph builds the §3.1 method dependency graph over the class's
// operations.
func (c *Class) DepGraph() (*depgraph.Graph, error) {
	methods := make([]*lower.Method, len(c.Operations))
	for i, op := range c.Operations {
		methods[i] = op.Method
	}
	return depgraph.Build(methods)
}

// ProtocolEdges returns, per operation, the sorted union over its exits
// of the methods allowed next. It is the edge relation of Figs. 1–3.
func (c *Class) ProtocolEdges() map[string][]string {
	out := make(map[string][]string, len(c.Operations))
	for _, op := range c.Operations {
		set := make(map[string]struct{})
		for _, e := range op.Method.Exits {
			for _, n := range e.Next {
				set[n] = struct{}{}
			}
		}
		next := make([]string, 0, len(set))
		for n := range set {
			next = append(next, n)
		}
		sort.Strings(next)
		out[op.Name] = next
	}
	return out
}

package model

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func classFrom(t *testing.T, src, name string) *Class {
	t.Helper()
	ast, err := pyparse.ParseClass(src, name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromAST(ast)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func valve(t *testing.T) *Class { return classFrom(t, readTestdata(t, "valve.py"), "Valve") }
func badSector(t *testing.T) *Class {
	return classFrom(t, readTestdata(t, "badsector.py"), "BadSector")
}

func TestValveModel(t *testing.T) {
	c := valve(t)
	if !c.IsSys || len(c.SubsystemNames) != 0 || len(c.Claims) != 0 {
		t.Errorf("Valve header: sys=%v subs=%v claims=%v", c.IsSys, c.SubsystemNames, c.Claims)
	}
	if got := c.OperationNames(); !reflect.DeepEqual(got, []string{"test", "open", "close", "clean"}) {
		t.Fatalf("operations = %v", got)
	}
	tests := []struct {
		name           string
		initial, final bool
	}{
		{"test", true, false},
		{"open", false, false},
		{"close", false, true},
		{"clean", false, true},
	}
	for _, tt := range tests {
		op := c.Operation(tt.name)
		if op.Initial != tt.initial || op.Final != tt.final {
			t.Errorf("%s: initial=%v final=%v", tt.name, op.Initial, op.Final)
		}
		if !op.Annotated {
			t.Errorf("%s should be annotated", tt.name)
		}
	}
	if got := c.InitialOperations(); !reflect.DeepEqual(got, []string{"test"}) {
		t.Errorf("initials = %v", got)
	}
	if probs := c.Validate(); len(probs) != 0 {
		t.Errorf("Valve should validate cleanly: %v", probs)
	}
}

// TestFig1ValveProtocol checks the edge relation drawn in Fig. 1.
func TestFig1ValveProtocol(t *testing.T) {
	edges := valve(t).ProtocolEdges()
	want := map[string][]string{
		"test":  {"clean", "open"},
		"open":  {"close"},
		"close": {"test"},
		"clean": {"test"},
	}
	if !reflect.DeepEqual(edges, want) {
		t.Errorf("edges = %v, want %v", edges, want)
	}
}

func TestValveSpecDFA(t *testing.T) {
	d, err := valve(t).SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	accepted := [][]string{
		{}, // never used
		{"test", "clean"},
		{"test", "open", "close"},
		{"test", "open", "close", "test", "clean"},
	}
	rejected := [][]string{
		{"open"},                  // not initial
		{"test"},                  // test is not final
		{"test", "open"},          // open is not final (the paper's point)
		{"test", "test"},          // test cannot follow test
		{"test", "open", "clean"}, // clean cannot follow open
	}
	for _, tr := range accepted {
		if !d.Accepts(tr) {
			t.Errorf("spec should accept %v", tr)
		}
	}
	for _, tr := range rejected {
		if d.Accepts(tr) {
			t.Errorf("spec should reject %v", tr)
		}
	}
}

func TestValveSpecDFAQualified(t *testing.T) {
	d, err := valve(t).SpecDFA("a")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts([]string{"a.test", "a.open", "a.close"}) {
		t.Error("qualified spec should accept a.test a.open a.close")
	}
	if d.Accepts([]string{"test"}) {
		t.Error("qualified spec must not accept unqualified names")
	}
}

func TestBadSectorModel(t *testing.T) {
	c := badSector(t)
	if !c.IsSys {
		t.Error("BadSector is @sys")
	}
	if !reflect.DeepEqual(c.SubsystemNames, []string{"a", "b"}) {
		t.Errorf("subsystems = %v", c.SubsystemNames)
	}
	if c.SubsystemTypes["a"] != "Valve" || c.SubsystemTypes["b"] != "Valve" {
		t.Errorf("types = %v", c.SubsystemTypes)
	}
	if len(c.Claims) != 1 || c.Claims[0].Formula != "(!a.open) W b.open" {
		t.Errorf("claims = %v", c.Claims)
	}
	openA := c.Operation("open_a")
	if !openA.Initial || !openA.Final {
		t.Error("open_a is @op_initial_final")
	}
	if probs := c.Validate(); len(probs) != 0 {
		t.Errorf("BadSector structure should validate: %v", probs)
	}
}

func TestBadSectorBehaviors(t *testing.T) {
	c := badSector(t)
	// open_a lowers to: a.test(); if(*){a.open(); return}else{a.clean(); return}
	got := c.Operation("open_a").Behavior().String()
	// Both branches return, so the ongoing component is the dead a.test·(...·∅...)
	// and the returned set holds the two real paths.
	for _, want := range []string{"a.test", "a.open", "a.clean"} {
		if !strings.Contains(got, want) {
			t.Errorf("open_a behavior %q missing %q", got, want)
		}
	}
}

func TestSectorFallbackAnnotations(t *testing.T) {
	c := classFrom(t, readTestdata(t, "sector.py"), "Sector")
	if c.IsSys {
		t.Error("Sector has no @sys")
	}
	if got := len(c.Operations); got != 4 {
		t.Fatalf("operations = %d", got)
	}
	for _, op := range c.Operations {
		if op.Annotated {
			t.Errorf("%s should be unannotated", op.Name)
		}
		if !op.Initial || !op.Final {
			t.Errorf("%s: fallback operations are initial+final", op.Name)
		}
	}
}

func TestFromASTErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown class decorator", "@frob\nclass C:\n    @op\n    def m(self):\n        return []\n"},
		{"unknown method decorator", "class C:\n    @op_sometimes\n    def m(self):\n        return []\n"},
		{"multiple op decorators", "class C:\n    @op\n    @op_final\n    def m(self):\n        return []\n"},
		{"sys with two args", "@sys([\"a\"], [\"b\"])\nclass C:\n    @op\n    def m(self):\n        return []\n"},
		{"sys with non-list", "@sys(42)\nclass C:\n    @op\n    def m(self):\n        return []\n"},
		{"sys duplicate subsystem", "@sys([\"a\", \"a\"])\nclass C:\n    def __init__(self):\n        self.a = V()\n    @op\n    def m(self):\n        return []\n"},
		{"claim non-string", "@claim(42)\nclass C:\n    @op\n    def m(self):\n        return []\n"},
		{"claim no args", "@claim()\nclass C:\n    @op\n    def m(self):\n        return []\n"},
		{"op on init", "class C:\n    @op\n    def __init__(self):\n        pass\n"},
		{"no operations", "class C:\n    def __init__(self):\n        pass\n"},
		{"subsystem not initialized", "@sys([\"a\"])\nclass C:\n    def __init__(self):\n        pass\n    @op\n    def m(self):\n        return []\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			ast, err := pyparse.ParseClass(tt.src, "C")
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := FromAST(ast); err == nil {
				t.Error("expected FromAST error")
			}
		})
	}
}

func TestValidateFindsProblems(t *testing.T) {
	cases := []struct {
		name string
		src  string
		code ProblemCode
	}{
		{
			"no initial",
			"@sys\nclass C:\n    @op\n    def m(self):\n        return []\n",
			ProblemNoInitial,
		},
		{
			"undefined next",
			"@sys\nclass C:\n    @op_initial_final\n    def m(self):\n        return [\"ghost\"]\n",
			ProblemUndefinedNext,
		},
		{
			"undeclared return",
			"@sys\nclass C:\n    @op_initial_final\n    def m(self):\n        return 42\n",
			ProblemUndeclaredReturn,
		},
		{
			"may fall through",
			"@sys\nclass C:\n    @op_initial_final\n    def m(self):\n        if x:\n            return []\n",
			ProblemMayFallThrough,
		},
		{
			"no returns",
			"@sys\nclass C:\n    @op_initial_final\n    def m(self):\n        pass\n",
			ProblemNoReturns,
		},
		{
			"unreachable op",
			"@sys\nclass C:\n    @op_initial_final\n    def m(self):\n        return []\n    @op_final\n    def n(self):\n        return []\n",
			ProblemUnreachableOp,
		},
		{
			"no final reachable",
			"@sys\nclass C:\n    @op_initial\n    def m(self):\n        return [\"m\"]\n    @op_final\n    def n(self):\n        return []\n",
			ProblemNoFinalReachable,
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			ast, err := pyparse.ParseClass(tt.src, "C")
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			c, err := FromAST(ast)
			if err != nil {
				t.Fatalf("FromAST: %v", err)
			}
			probs := c.Validate()
			for _, p := range probs {
				if p.Code == tt.code {
					if p.String() == "" {
						t.Error("problem should render")
					}
					return
				}
			}
			t.Errorf("expected %v, got %v", tt.code, probs)
		})
	}
}

func TestDepGraphFromModel(t *testing.T) {
	g, err := valve(t).DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	// 4 ops; test has 2 exits, open 1, close 1, clean 1 → 9 nodes.
	if got := g.NumNodes(); got != 9 {
		t.Errorf("nodes = %d, want 9", got)
	}
}

func TestProblemCodeStrings(t *testing.T) {
	for c := ProblemNoInitial; c <= ProblemNoFinalReachable; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "PROBLEM(") {
			t.Errorf("code %d renders as %q", c, s)
		}
	}
	if !strings.HasPrefix(ProblemCode(99).String(), "PROBLEM(") {
		t.Error("unknown code should render as PROBLEM(n)")
	}
}

func TestMissingAstClass(t *testing.T) {
	// FromAST on a class parsed from pyast directly.
	ast := &pyast.ClassDef{Name: "Empty"}
	if _, err := FromAST(ast); err == nil {
		t.Error("class without operations should be rejected")
	}
}

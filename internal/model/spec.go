package model

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/automata"
)

// SpecDFA builds the class's usage-protocol automaton: the language of
// valid call sequences on one instance of the class.
//
// States are "just created" plus one state per operation ("the last
// invoked operation was m"). From the start state only initial
// operations may fire; after operation m, exactly the operations named
// by m's return lists may fire (the union over m's exits — the runtime
// narrows the choice by the returned value, which the §3-step-3
// exhaustiveness check accounts for separately). A trace may stop right
// after creation or after any final operation.
//
// Operation symbols are prefixed with prefix+"." when prefix is
// non-empty, producing the qualified names ("a.test") used when the
// class serves as a subsystem.
func (c *Class) SpecDFA(prefix string) (*automata.DFA, error) {
	qualify := func(op string) string {
		if prefix == "" {
			return op
		}
		return prefix + "." + op
	}
	alphabet := make([]string, 0, len(c.Operations))
	for _, op := range c.Operations {
		alphabet = append(alphabet, qualify(op.Name))
	}
	d := automata.NewDFA(alphabet)
	d.SetAccepting(d.Start(), true) // creating and never using is valid

	state := make(map[string]int, len(c.Operations))
	for _, op := range c.Operations {
		state[op.Name] = d.AddState(op.Final)
	}
	for _, op := range c.Operations {
		if op.Initial {
			if err := d.AddTransition(d.Start(), qualify(op.Name), state[op.Name]); err != nil {
				return nil, err
			}
		}
	}
	edges := c.ProtocolEdges()
	for _, op := range c.Operations {
		for _, next := range edges[op.Name] {
			to, ok := state[next]
			if !ok {
				return nil, fmt.Errorf("model: operation %q returns undefined operation %q", op.Name, next)
			}
			if err := d.AddTransition(state[op.Name], qualify(next), to); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// ProblemCode classifies a well-formedness problem.
type ProblemCode int

const (
	// ProblemNoInitial: the class declares operations but none is
	// initial.
	ProblemNoInitial ProblemCode = iota + 1

	// ProblemUndefinedNext: a return list names a method that is not an
	// operation of the class.
	ProblemUndefinedNext

	// ProblemUndeclaredReturn: an operation has a bare return or a
	// return whose first value is not a list of operation names.
	ProblemUndeclaredReturn

	// ProblemMayFallThrough: some control path exits the operation
	// without reaching a return statement.
	ProblemMayFallThrough

	// ProblemNoReturns: the operation has no return statements at all.
	ProblemNoReturns

	// ProblemUnreachableOp: the operation can never be invoked (not
	// initial and not named by any reachable operation's return lists).
	ProblemUnreachableOp

	// ProblemNoFinalReachable: no final operation is reachable, so no
	// complete usage of the class exists.
	ProblemNoFinalReachable
)

// String returns a short identifier for the code.
func (c ProblemCode) String() string {
	switch c {
	case ProblemNoInitial:
		return "NO_INITIAL_OPERATION"
	case ProblemUndefinedNext:
		return "UNDEFINED_NEXT_OPERATION"
	case ProblemUndeclaredReturn:
		return "UNDECLARED_RETURN"
	case ProblemMayFallThrough:
		return "MAY_FALL_THROUGH"
	case ProblemNoReturns:
		return "NO_RETURN_STATEMENTS"
	case ProblemUnreachableOp:
		return "UNREACHABLE_OPERATION"
	case ProblemNoFinalReachable:
		return "NO_FINAL_REACHABLE"
	default:
		return fmt.Sprintf("PROBLEM(%d)", int(c))
	}
}

// Problem is one well-formedness finding.
type Problem struct {
	Code ProblemCode
	// Op is the operation concerned, when applicable.
	Op  string
	Msg string
}

func (p Problem) String() string {
	if p.Op == "" {
		return fmt.Sprintf("%s: %s", p.Code, p.Msg)
	}
	return fmt.Sprintf("%s (operation %s): %s", p.Code, p.Op, p.Msg)
}

// Validate runs the structural part of the §3 "method invocation
// analysis" on the class itself: definedness of return targets, presence
// of initial operations, totality of returns, and reachability. It
// returns every problem found, in deterministic order.
func (c *Class) Validate() []Problem {
	var out []Problem

	initials := c.InitialOperations()
	if len(initials) == 0 {
		out = append(out, Problem{
			Code: ProblemNoInitial,
			Msg:  "declare at least one @op_initial or @op_initial_final method",
		})
	}

	for _, op := range c.Operations {
		if len(op.Method.Exits) == 0 {
			out = append(out, Problem{
				Code: ProblemNoReturns, Op: op.Name,
				Msg: "operations must declare their continuations with return [...]",
			})
			continue
		}
		if !op.Method.AlwaysReturns {
			out = append(out, Problem{
				Code: ProblemMayFallThrough, Op: op.Name,
				Msg: "some control path exits without a return statement",
			})
		}
		for _, e := range op.Method.Exits {
			if !e.Declared {
				out = append(out, Problem{
					Code: ProblemUndeclaredReturn, Op: op.Name,
					Msg: fmt.Sprintf("return at %s does not declare the next operations", e.Pos),
				})
				continue
			}
			for _, next := range e.Next {
				if c.Operation(next) == nil {
					out = append(out, Problem{
						Code: ProblemUndefinedNext, Op: op.Name,
						Msg: fmt.Sprintf("return at %s names %q, which is not an operation of %s", e.Pos, next, c.Name),
					})
				}
			}
		}
	}

	// Reachability over the protocol graph, only meaningful if the
	// structure above held together.
	if len(initials) > 0 && !hasProblem(out, ProblemUndefinedNext) {
		reachable := make(map[string]bool)
		frontier := append([]string(nil), initials...)
		edges := c.ProtocolEdges()
		for len(frontier) > 0 {
			m := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if reachable[m] {
				continue
			}
			reachable[m] = true
			frontier = append(frontier, edges[m]...)
		}
		finalReachable := false
		for _, op := range c.Operations {
			if !reachable[op.Name] {
				out = append(out, Problem{
					Code: ProblemUnreachableOp, Op: op.Name,
					Msg: "not reachable from any initial operation",
				})
			}
			if reachable[op.Name] && op.Final {
				finalReachable = true
			}
		}
		if !finalReachable {
			out = append(out, Problem{
				Code: ProblemNoFinalReachable,
				Msg:  "no final operation is reachable; no complete usage of the class exists",
			})
		}
	}
	return out
}

func hasProblem(ps []Problem, code ProblemCode) bool {
	for _, p := range ps {
		if p.Code == code {
			return true
		}
	}
	return false
}

// Package nusmv exports Shelley models as NuSMV modules — the backend
// path the paper's implementation uses ("Shelley delegates the actual
// model checking to NuSMV, by implementing a translation from a
// nondeterministic finite automaton into a NuSMV model", §5).
//
// The encoding turns the finite-trace (regular) language into an
// ω-regular one in the standard way (De Giacomo & Vardi): a fresh
// end-of-trace event sends the machine into an absorbing `end` state,
// and LTLf claims are rewritten into LTL over an `alive` proposition
// so that finite-trace semantics is preserved on the infinite
// continuations. The generated text is deterministic, so exports can be
// golden-tested and diffed.
package nusmv

import (
	"fmt"
	"sort"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/ltlf"
)

// EndEvent is the synthetic event that closes a finite trace in the
// ω-regular encoding.
const EndEvent = "_end"

// Export renders a NuSMV module for the automaton and claims. The DFA
// is the system's behavior (e.g. a class's SpecDFA or a composite's
// flattened behavior automaton); each claim becomes one LTLSPEC whose
// validity on the NuSMV model coincides with the LTLf validity on the
// automaton's finite traces.
func Export(name string, d *automata.DFA, claims []ltlf.Formula) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- NuSMV export of the Shelley model %q.\n", name)
	b.WriteString("-- Finite traces are encoded as infinite ones closed by the _end event\n")
	b.WriteString("-- (the standard LTLf-to-LTL reduction); `dead` traps invalid events.\n")
	b.WriteString("MODULE main\n")

	// Event and state enumerations, deterministic order.
	events := make([]string, 0, len(d.Alphabet())+1)
	for _, sym := range d.Alphabet() {
		events = append(events, eventID(sym))
	}
	events = append(events, eventID(EndEvent))

	states := make([]string, 0, d.NumStates()+2)
	for s := 0; s < d.NumStates(); s++ {
		states = append(states, stateID(s))
	}
	states = append(states, "end", "dead")

	b.WriteString("VAR\n")
	fmt.Fprintf(&b, "  event : {%s};\n", strings.Join(events, ", "))
	fmt.Fprintf(&b, "  state : {%s};\n", strings.Join(states, ", "))

	b.WriteString("ASSIGN\n")
	fmt.Fprintf(&b, "  init(state) := %s;\n", stateID(d.Start()))
	b.WriteString("  next(state) := case\n")
	for s := 0; s < d.NumStates(); s++ {
		for _, sym := range d.Alphabet() {
			if t := d.Target(s, sym); t >= 0 {
				fmt.Fprintf(&b, "    state = %s & event = %s : %s;\n",
					stateID(s), eventID(sym), stateID(t))
			}
		}
		if d.Accepting(s) {
			fmt.Fprintf(&b, "    state = %s & event = %s : end;\n",
				stateID(s), eventID(EndEvent))
		}
	}
	b.WriteString("    state = end : end;\n")
	b.WriteString("    TRUE : dead;\n")
	b.WriteString("  esac;\n")

	// The automaton's language is non-empty iff `end` is reachable;
	// export that as a sanity spec.
	b.WriteString("\n-- Sanity: some complete usage exists.\n")
	b.WriteString("SPEC EF state = end\n")

	// Claims: check only along valid, completed traces.
	for i, claim := range claims {
		fmt.Fprintf(&b, "\n-- Claim %d: %s\n", i+1, claim.String())
		fmt.Fprintf(&b, "LTLSPEC (F state = end) -> (%s)\n", ltlfToLTL(claim))
	}
	return b.String()
}

// stateID names automaton states.
func stateID(s int) string { return fmt.Sprintf("s%d", s) }

// eventID sanitizes an event name ("a.test" → "e_a_test") for NuSMV's
// identifier syntax.
func eventID(sym string) string {
	var b strings.Builder
	b.WriteString("e_")
	for _, r := range sym {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ltlfToLTL rewrites an LTLf formula into LTL text over the encoding:
// `alive` is "state != end & state != dead"; atoms become
// alive & event = e; the temporal operators are relativized to alive
// following the standard translation:
//
//	t(a)      = alive & event = e_a
//	t(X φ)    = X (alive & t(φ))         strong next
//	t(N φ)    = X (!alive | t(φ))        weak next
//	t(G φ)    = (alive & t(φ)) U !alive  -- φ holds at every live instant
//	t(F φ)    = F (alive & t(φ))
//	t(φ U ψ)  = (alive & t(φ)) U (alive & t(ψ))
//	t(φ W ψ)  = t(φ U ψ) | t(G φ)
//	t(φ R ψ)  = t(ψ) holds up to and including the first t(φ), within life
func ltlfToLTL(f ltlf.Formula) string {
	const alive = "(state != end & state != dead)"
	var tr func(ltlf.Formula) string
	tr = func(f ltlf.Formula) string {
		switch f := f.(type) {
		case ltlf.Tru:
			return "TRUE"
		case ltlf.Fls:
			return "FALSE"
		case ltlf.Atom:
			return fmt.Sprintf("(%s & event = %s)", alive, eventID(f.Name))
		case ltlf.Not:
			return "!" + tr(f.X)
		case ltlf.And:
			parts := make([]string, len(f.Xs))
			for i, x := range f.Xs {
				parts[i] = tr(x)
			}
			return "(" + strings.Join(parts, " & ") + ")"
		case ltlf.Or:
			parts := make([]string, len(f.Xs))
			for i, x := range f.Xs {
				parts[i] = tr(x)
			}
			return "(" + strings.Join(parts, " | ") + ")"
		case ltlf.Implies:
			return "(" + tr(f.L) + " -> " + tr(f.R) + ")"
		case ltlf.Next:
			return fmt.Sprintf("(X (%s & %s))", alive, tr(f.X))
		case ltlf.WeakNext:
			return fmt.Sprintf("(X (!%s | %s))", alive, tr(f.X))
		case ltlf.Globally:
			return fmt.Sprintf("((%s -> %s) U !%s | G (%s -> %s))",
				alive, tr(f.X), alive, alive, tr(f.X))
		case ltlf.Finally:
			return fmt.Sprintf("(F (%s & %s))", alive, tr(f.X))
		case ltlf.Until:
			return fmt.Sprintf("((%s & %s) U (%s & %s))", alive, tr(f.L), alive, tr(f.R))
		case ltlf.WeakUntil:
			until := fmt.Sprintf("((%s & %s) U (%s & %s))", alive, tr(f.L), alive, tr(f.R))
			globally := fmt.Sprintf("((%s -> %s) U !%s | G (%s -> %s))",
				alive, tr(f.L), alive, alive, tr(f.L))
			return "(" + until + " | " + globally + ")"
		case ltlf.Release:
			// φ R ψ = ψ W (ψ & φ); reuse the W translation.
			return tr(ltlf.WeakUntilOf(f.R, ltlf.AndOf(f.R, f.L)))
		default:
			return "TRUE"
		}
	}
	return tr(f)
}

// ExportClaims is a convenience over Export that parses the claim
// strings first.
func ExportClaims(name string, d *automata.DFA, claims []string) (string, error) {
	parsed := make([]ltlf.Formula, 0, len(claims))
	for _, c := range claims {
		f, err := ltlf.Parse(c)
		if err != nil {
			return "", fmt.Errorf("nusmv: claim %q: %w", c, err)
		}
		parsed = append(parsed, f)
	}
	return Export(name, d, parsed), nil
}

// Events lists the event identifiers the export will use, sorted; handy
// for tooling that post-processes NuSMV counterexamples back into
// Shelley traces.
func Events(d *automata.DFA) []string {
	out := make([]string, 0, len(d.Alphabet())+1)
	for _, sym := range d.Alphabet() {
		out = append(out, eventID(sym))
	}
	out = append(out, eventID(EndEvent))
	sort.Strings(out)
	return out
}

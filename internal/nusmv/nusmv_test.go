package nusmv

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/ltlf"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
	"github.com/shelley-go/shelley/internal/regex"
)

func valveSpec(t *testing.T) *automata.DFA {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	ast, err := pyparse.ParseClass(string(b), "Valve")
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.FromAST(ast)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExportValveStructure(t *testing.T) {
	out := Export("Valve", valveSpec(t), nil)
	for _, want := range []string{
		"MODULE main",
		"event : {e_clean, e_close, e_open, e_test, e__end};",
		"init(state) := s0;",
		"next(state) := case",
		"state = end : end;",
		"TRUE : dead;",
		"SPEC EF state = end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// Initial transition: only test is callable from the start state.
	if !strings.Contains(out, "state = s0 & event = e_test : ") {
		t.Error("missing initial test transition")
	}
	if strings.Contains(out, "state = s0 & event = e_open : ") {
		t.Error("open must not be callable from the start state")
	}
	// The start state is accepting (empty usage): it can end.
	if !strings.Contains(out, "state = s0 & event = e__end : end;") {
		t.Error("start state should close the trace")
	}
}

func TestExportDeterministic(t *testing.T) {
	d := valveSpec(t)
	first := Export("Valve", d, []ltlf.Formula{ltlf.MustParse("G !open")})
	for i := 0; i < 5; i++ {
		if Export("Valve", d, []ltlf.Formula{ltlf.MustParse("G !open")}) != first {
			t.Fatal("export is not deterministic")
		}
	}
}

func TestExportClaims(t *testing.T) {
	d := valveSpec(t)
	out, err := ExportClaims("Valve", d, []string{"(!open) W clean", "G (open -> X close)"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "LTLSPEC"); got != 2 {
		t.Errorf("LTLSPEC count = %d, want 2", got)
	}
	if !strings.Contains(out, "-- Claim 1: !open W clean") {
		t.Errorf("claim comment missing:\n%s", out)
	}
	if !strings.Contains(out, "event = e_open") {
		t.Error("atom translation missing")
	}
	if _, err := ExportClaims("Valve", d, []string{"(("}); err == nil {
		t.Error("malformed claim should error")
	}
}

func TestEventIDSanitization(t *testing.T) {
	tests := map[string]string{
		"a.test":  "e_a_test",
		"open":    "e_open",
		"x-y z":   "e_x_y_z",
		"_end":    "e__end",
		"B2.go_1": "e_B2_go_1",
	}
	for in, want := range tests {
		if got := eventID(in); got != want {
			t.Errorf("eventID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEvents(t *testing.T) {
	d := automata.CompileMinimal(regex.MustParse("a.x . b"))
	got := Events(d)
	want := []string{"e__end", "e_a_x", "e_b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Events = %v, want %v", got, want)
	}
}

func TestLTLfToLTLShapes(t *testing.T) {
	tests := []struct {
		formula string
		wantSub []string
	}{
		{"a", []string{"event = e_a"}},
		{"!a", []string{"!(", "event = e_a"}},
		{"X a", []string{"(X ("}},
		{"N a", []string{"(X (!("}},
		{"F a", []string{"(F ("}},
		{"a U b", []string{" U ", "event = e_a", "event = e_b"}},
		{"a -> b", []string{" -> "}},
		{"true", []string{"TRUE"}},
		{"false", []string{"FALSE"}},
		{"a & b", []string{" & "}},
		{"a | b", []string{" | "}},
		{"a R b", []string{" U "}}, // release is reduced through W
		{"G a", []string{" U !", "G ("}},
		{"a W b", []string{" U ", " | "}},
	}
	for _, tt := range tests {
		got := ltlfToLTL(ltlf.MustParse(tt.formula))
		for _, sub := range tt.wantSub {
			if !strings.Contains(got, sub) {
				t.Errorf("ltlfToLTL(%q) = %q missing %q", tt.formula, got, sub)
			}
		}
	}
}

// TestExportEncodesLanguage spot-checks the ω-regular encoding: the
// transition table of the export matches the DFA on every edge.
func TestExportEncodesLanguage(t *testing.T) {
	d := automata.CompileMinimal(regex.MustParse("(a . b)*"))
	out := Export("ab", d, nil)
	// Two states; from s0 on a to s1, s1 on b to s0; only s0 accepting.
	if !strings.Contains(out, "state = s0 & event = e_a : s1;") {
		t.Errorf("missing a-edge:\n%s", out)
	}
	if !strings.Contains(out, "state = s1 & event = e_b : s0;") {
		t.Errorf("missing b-edge:\n%s", out)
	}
	if !strings.Contains(out, "state = s0 & event = e__end : end;") {
		t.Error("s0 should be able to end")
	}
	if strings.Contains(out, "state = s1 & event = e__end") {
		t.Error("s1 is not accepting and must not end")
	}
}

package obs

import (
	"context"
	"flag"
)

// CLIFlags is the shared -trace/-trace-format wiring of the command
// line tools (shelleyc, shelleysim; shelleyd wires its own because the
// daemon's ring lives in the server). Register the flags, derive the
// run context with Context, and Flush once the run is done:
//
//	var tr obs.CLIFlags
//	tr.Register(fs)
//	ctx := tr.Context(context.Background())
//	defer tr.Flush()
type CLIFlags struct {
	// File is the -trace destination; empty disables tracing entirely
	// (the run pays one context lookup per instrumentation point).
	File string

	// Format is the -trace-format value: "chrome" (default) or "otlp".
	Format string

	ring *Ring
}

// Register installs the flags on fs.
func (f *CLIFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.File, "trace", "", "write a span trace of the run to this file (load it in chrome://tracing or ui.perfetto.dev)")
	fs.StringVar(&f.Format, "trace-format", "chrome", "trace file format: chrome or otlp")
}

// Context returns ctx carrying a fresh tracer when -trace was given,
// ctx unchanged otherwise.
func (f *CLIFlags) Context(ctx context.Context) context.Context {
	if f.File == "" {
		return ctx
	}
	f.ring = NewRing(1 << 16)
	return ContextWithTracer(ctx, New(WithExporter(f.ring)))
}

// Flush writes the collected spans to the -trace file; a no-op when
// tracing is off.
func (f *CLIFlags) Flush() error {
	if f.ring == nil {
		return nil
	}
	return WriteFile(f.File, f.Format, f.ring.Snapshot())
}

package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Ring is a fixed-capacity in-memory exporter: the most recent spans,
// oldest first on snapshot. It is the daemon's always-on trace buffer,
// served by /v1/trace-export, and the staging area the CLIs drain into
// a -trace file.
//
// Slots hold spans flattened into pointer-free byte blobs rather than
// SpanData values. A resident SpanData ring pins thousands of small
// objects (ID strings, attr slices, count maps) that the garbage
// collector re-marks on every cycle; under a high-rate warm-cache
// workload that scanning, not span creation, was the dominant tracing
// cost (EXPERIMENTS.md P3). A blob ring retains one byte slice per
// slot — nothing inside it for the collector to traverse — and reuses
// each slot's backing array across evictions.
type Ring struct {
	mu    sync.Mutex
	slots [][]byte
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring holding up to capacity spans (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([][]byte, capacity)}
}

// Export records one span, evicting the oldest when full.
func (r *Ring) Export(s SpanData) {
	r.mu.Lock()
	r.slots[r.next] = appendSpan(r.slots[r.next][:0], s)
	r.next = (r.next + 1) % len(r.slots)
	if r.next == 0 {
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (r *Ring) Snapshot() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, len(r.slots))
	if r.full {
		for _, b := range r.slots[r.next:] {
			out = append(out, decodeSpan(b))
		}
	}
	for _, b := range r.slots[:r.next] {
		out = append(out, decodeSpan(b))
	}
	return out
}

// appendSpan flattens s onto b in a private length-prefixed binary
// form: the four identity strings, varint start/end Unix nanos, then
// the attrs and (sorted) counters. decodeSpan is its exact inverse.
func appendSpan(b []byte, s SpanData) []byte {
	b = appendString(b, s.TraceID)
	b = appendString(b, s.SpanID)
	b = appendString(b, s.ParentID)
	b = appendString(b, s.Name)
	b = binary.AppendVarint(b, s.Start.UnixNano())
	b = binary.AppendVarint(b, s.End.UnixNano())
	b = binary.AppendUvarint(b, uint64(len(s.Attrs)))
	for _, a := range s.Attrs {
		b = appendString(b, a.Key)
		b = appendString(b, a.Value)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Counts)))
	for _, k := range sortedCountKeys(s.Counts) {
		b = appendString(b, k)
		b = binary.AppendUvarint(b, s.Counts[k])
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func decodeSpan(b []byte) SpanData {
	var s SpanData
	s.TraceID, b = takeString(b)
	s.SpanID, b = takeString(b)
	s.ParentID, b = takeString(b)
	s.Name, b = takeString(b)
	start, n := binary.Varint(b)
	end, m := binary.Varint(b[n:])
	b = b[n+m:]
	s.Start = time.Unix(0, start)
	s.End = time.Unix(0, end)
	nattrs, n := binary.Uvarint(b)
	b = b[n:]
	if nattrs > 0 {
		s.Attrs = make([]Attr, 0, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			var a Attr
			a.Key, b = takeString(b)
			a.Value, b = takeString(b)
			s.Attrs = append(s.Attrs, a)
		}
	}
	ncounts, n := binary.Uvarint(b)
	b = b[n:]
	if ncounts > 0 {
		s.Counts = make(map[string]uint64, ncounts)
		for i := uint64(0); i < ncounts; i++ {
			var k string
			k, b = takeString(b)
			v, n := binary.Uvarint(b)
			b = b[n:]
			s.Counts[k] = v
		}
	}
	return s
}

func takeString(b []byte) (string, []byte) {
	n, sz := binary.Uvarint(b)
	return string(b[sz : sz+int(n)]), b[sz+int(n):]
}

// Total returns the number of spans ever exported (buffered or
// already evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// chromeEvent is one trace-event in the Chrome/Perfetto JSON schema
// (ph "X" = complete event with ts+dur, ph "M" = metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the trace-event format, loadable by
// chrome://tracing and ui.perfetto.dev.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each
// trace ID becomes its own thread row (tid assigned in order of first
// appearance, with a thread_name metadata record naming it), so a
// multi-request export reads as stacked per-request flame timelines.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	tids := make(map[string]int)
	for _, s := range spans {
		tid, ok := tids[s.TraceID]
		if !ok {
			tid = len(tids) + 1
			tids[s.TraceID] = tid
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  1,
				Tid:  tid,
				Args: map[string]any{"name": "trace " + s.TraceID},
			})
		}
		args := make(map[string]any, len(s.Attrs)+len(s.Counts)+2)
		args["trace_id"] = s.TraceID
		args["span_id"] = s.SpanID
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		for _, k := range sortedCountKeys(s.Counts) {
			args[k] = s.Counts[k]
		}
		// Integer microseconds: epoch nanos exceed float64's exact
		// integer range, so divide before converting. Durations are
		// small; fractional microseconds survive for them.
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "shelley",
			Ph:   "X",
			Ts:   float64(s.Start.UnixMicro()),
			Dur:  float64(s.End.Sub(s.Start).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// otlpKeyValue / otlpSpan / otlpFile mirror the OTLP/JSON trace schema
// closely enough that standard collectors and viewers ingest the file.
type otlpValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpFile struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// WriteOTLP renders spans as OTLP-style JSON (one resource, one scope,
// service.name "shelley").
func WriteOTLP(w io.Writer, spans []SpanData) error {
	var res otlpResourceSpans
	res.Resource.Attributes = []otlpKeyValue{{
		Key: "service.name", Value: otlpValue{StringValue: "shelley"},
	}}
	scope := otlpScopeSpans{Spans: []otlpSpan{}}
	scope.Scope.Name = "github.com/shelley-go/shelley/internal/obs"
	for _, s := range spans {
		o := otlpSpan{
			TraceID:           s.TraceID,
			SpanID:            s.SpanID,
			ParentSpanID:      s.ParentID,
			Name:              s.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: fmt.Sprint(s.Start.UnixNano()),
			EndTimeUnixNano:   fmt.Sprint(s.End.UnixNano()),
		}
		for _, a := range s.Attrs {
			o.Attributes = append(o.Attributes, otlpKeyValue{Key: a.Key, Value: otlpValue{StringValue: a.Value}})
		}
		for _, k := range sortedCountKeys(s.Counts) {
			o.Attributes = append(o.Attributes, otlpKeyValue{Key: k, Value: otlpValue{IntValue: fmt.Sprint(s.Counts[k])}})
		}
		scope.Spans = append(scope.Spans, o)
	}
	res.ScopeSpans = []otlpScopeSpans{scope}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(otlpFile{ResourceSpans: []otlpResourceSpans{res}})
}

// WriteFile writes spans to path in the named format: "chrome"
// (default for any unrecognized value is an error) or "otlp". The
// shared -trace flag of the CLIs lands here.
func WriteFile(path, format string, spans []SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "", "chrome":
		err = WriteChromeTrace(f, spans)
	case "otlp":
		err = WriteOTLP(f, spans)
	default:
		err = fmt.Errorf("obs: unknown trace format %q (want chrome or otlp)", format)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

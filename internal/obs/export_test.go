package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedWorkload emits a small deterministic span tree — a stand-in for
// one class verification — using a stubbed clock and sequential IDs,
// so the exporter goldens below are byte-reproducible.
func fixedWorkload(t *testing.T) []SpanData {
	t.Helper()
	ring := NewRing(16)
	tr := New(WithExporter(ring), WithDeterministicIDs(), WithClock(stubClock(time.Millisecond)))
	ctx := ContextWithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "check.class", String("class", "Thermostat"))
	fctx, flatten := Start(ctx, "pipeline.flatten")
	_, dfa := Start(fctx, "pipeline.dfa")
	dfa.End()
	flatten.AddCount("cache.hit.behavior")
	flatten.AddCount("cache.hit.behavior")
	flatten.End()
	root.End()
	return ring.Snapshot()
}

const goldenChrome = `{
 "traceEvents": [
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "trace 00000000000000000000000000000001"
   }
  },
  {
   "name": "pipeline.dfa",
   "cat": "shelley",
   "ph": "X",
   "ts": 1700000000003000,
   "dur": 1000,
   "pid": 1,
   "tid": 1,
   "args": {
    "span_id": "0000000000000004",
    "trace_id": "00000000000000000000000000000001"
   }
  },
  {
   "name": "pipeline.flatten",
   "cat": "shelley",
   "ph": "X",
   "ts": 1700000000002000,
   "dur": 3000,
   "pid": 1,
   "tid": 1,
   "args": {
    "cache.hit.behavior": 2,
    "span_id": "0000000000000003",
    "trace_id": "00000000000000000000000000000001"
   }
  },
  {
   "name": "check.class",
   "cat": "shelley",
   "ph": "X",
   "ts": 1700000000001000,
   "dur": 5000,
   "pid": 1,
   "tid": 1,
   "args": {
    "class": "Thermostat",
    "span_id": "0000000000000002",
    "trace_id": "00000000000000000000000000000001"
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`

func TestChromeTraceGolden(t *testing.T) {
	spans := fixedWorkload(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if got := buf.String(); got != goldenChrome {
		t.Fatalf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, goldenChrome)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("golden output is not valid JSON")
	}
}

const goldenOTLP = `{
 "resourceSpans": [
  {
   "resource": {
    "attributes": [
     {
      "key": "service.name",
      "value": {
       "stringValue": "shelley"
      }
     }
    ]
   },
   "scopeSpans": [
    {
     "scope": {
      "name": "github.com/shelley-go/shelley/internal/obs"
     },
     "spans": [
      {
       "traceId": "00000000000000000000000000000001",
       "spanId": "0000000000000004",
       "parentSpanId": "0000000000000003",
       "name": "pipeline.dfa",
       "kind": 1,
       "startTimeUnixNano": "1700000000003000000",
       "endTimeUnixNano": "1700000000004000000"
      },
      {
       "traceId": "00000000000000000000000000000001",
       "spanId": "0000000000000003",
       "parentSpanId": "0000000000000002",
       "name": "pipeline.flatten",
       "kind": 1,
       "startTimeUnixNano": "1700000000002000000",
       "endTimeUnixNano": "1700000000005000000",
       "attributes": [
        {
         "key": "cache.hit.behavior",
         "value": {
          "intValue": "2"
         }
        }
       ]
      },
      {
       "traceId": "00000000000000000000000000000001",
       "spanId": "0000000000000002",
       "name": "check.class",
       "kind": 1,
       "startTimeUnixNano": "1700000000001000000",
       "endTimeUnixNano": "1700000000006000000",
       "attributes": [
        {
         "key": "class",
         "value": {
          "stringValue": "Thermostat"
         }
        }
       ]
      }
     ]
    }
   ]
  }
 ]
}
`

func TestOTLPGolden(t *testing.T) {
	spans := fixedWorkload(t)
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, spans); err != nil {
		t.Fatalf("WriteOTLP: %v", err)
	}
	if got := buf.String(); got != goldenOTLP {
		t.Fatalf("OTLP output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, goldenOTLP)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("golden output is not valid JSON")
	}
}

func TestWriteFileFormats(t *testing.T) {
	spans := fixedWorkload(t)
	dir := t.TempDir()

	chromePath := dir + "/trace.json"
	if err := WriteFile(chromePath, "chrome", spans); err != nil {
		t.Fatalf("WriteFile chrome: %v", err)
	}
	otlpPath := dir + "/trace.otlp.json"
	if err := WriteFile(otlpPath, "otlp", spans); err != nil {
		t.Fatalf("WriteFile otlp: %v", err)
	}
	if err := WriteFile(dir+"/x.json", "protobuf", spans); err == nil ||
		!strings.Contains(err.Error(), "unknown trace format") {
		t.Fatalf("unknown format error = %v", err)
	}
}

func TestChromeTraceMultipleTracesGetOwnRows(t *testing.T) {
	spans := []SpanData{
		{TraceID: "t1", SpanID: "s1", Name: "a"},
		{TraceID: "t2", SpanID: "s2", Name: "b"},
		{TraceID: "t1", SpanID: "s3", Name: "c"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	tids := make(map[string]int)
	for _, e := range file.TraceEvents {
		if e.Ph == "X" {
			tids[e.Name] = e.Tid
		}
	}
	if tids["a"] != tids["c"] {
		t.Errorf("same trace split across rows: a=%d c=%d", tids["a"], tids["c"])
	}
	if tids["a"] == tids["b"] {
		t.Errorf("distinct traces share row %d", tids["a"])
	}
}

func TestEmptySnapshotsEncodeAsEmptyArrays(t *testing.T) {
	var chrome, otlp bytes.Buffer
	if err := WriteChromeTrace(&chrome, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteOTLP(&otlp, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(chrome.String(), "null") || strings.Contains(otlp.String(), "null") {
		t.Fatalf("empty exports must use [] not null:\n%s\n%s", chrome.String(), otlp.String())
	}
}

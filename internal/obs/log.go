package obs

import (
	"context"
	"io"
	"log/slog"
)

// logHandler decorates a slog.Handler so every record emitted under a
// traced context carries trace_id and span_id attributes — the join
// key between log lines and exported spans.
type logHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with trace/span ID injection.
func NewLogHandler(inner slog.Handler) slog.Handler {
	return &logHandler{inner: inner}
}

func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := SpanFrom(ctx); s != nil {
		rec.AddAttrs(
			slog.String("trace_id", s.TraceID()),
			slog.String("span_id", s.SpanID()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	return &logHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger returns a structured logger writing key=value text records
// to w, with trace/span IDs attached whenever the logging context
// carries a span. This is the shape of shelleyd's access log.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(NewLogHandler(slog.NewTextHandler(w, nil)))
}

// NewJSONLogger is NewLogger with JSON records, for log pipelines that
// ingest one object per line.
func NewJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(NewLogHandler(slog.NewJSONHandler(w, nil)))
}

package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerAttachesTraceAndSpanIDs(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf)

	tr := New(WithDeterministicIDs())
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, sp := Start(ctx, "request")
	logger.InfoContext(ctx, "access", "method", "POST", "status", 200)
	sp.End()

	line := buf.String()
	for _, want := range []string{
		"msg=access",
		"method=POST",
		"status=200",
		"trace_id=" + sp.TraceID(),
		"span_id=" + sp.SpanID(),
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q:\n%s", want, line)
		}
	}
}

func TestLoggerWithoutSpanOmitsIDs(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf)
	logger.InfoContext(context.Background(), "access", "method", "GET")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced record should carry no trace_id:\n%s", buf.String())
	}
}

func TestLoggerSurvivesWithAttrsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	base := NewJSONLogger(&buf).With("daemon", "shelleyd").WithGroup("req")

	tr := New(WithDeterministicIDs())
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, sp := Start(ctx, "request")
	base.InfoContext(ctx, "access", "path", "/v1/check")
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access line is not one JSON object: %v\n%s", err, buf.String())
	}
	if rec["daemon"] != "shelleyd" {
		t.Errorf("With attr lost: %v", rec)
	}
	req, ok := rec["req"].(map[string]any)
	if !ok {
		t.Fatalf("group missing: %v", rec)
	}
	if req["path"] != "/v1/check" {
		t.Errorf("grouped attr lost: %v", rec)
	}
	// The injected IDs land inside the open group — what matters is
	// they are present and correct.
	if req["trace_id"] != sp.TraceID() || req["span_id"] != sp.SpanID() {
		t.Errorf("trace ids missing or wrong in %v", rec)
	}
}

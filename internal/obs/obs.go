// Package obs is the observability layer of the verification pipeline:
// a zero-dependency span tracer with context-propagated parent linkage,
// pluggable exporters (in-memory ring buffer, Chrome trace-event JSON,
// OTLP-style JSON), and a log/slog bridge that stamps every structured
// log record with the active trace and span IDs.
//
// The design mirrors OpenTelemetry's API shape at a fraction of its
// surface: obs.Start(ctx, name, attrs...) opens a span whose parent is
// whatever span ctx already carries, and span.End() delivers the
// finished record to every exporter of the tracer. When ctx carries no
// tracer, Start returns a nil span whose methods are all no-ops — the
// entire layer costs one context lookup per instrumentation point when
// tracing is off, which is what keeps the warm-cache overhead under the
// budget recorded in EXPERIMENTS.md P3.
//
// Trace IDs are 32 lowercase hex characters and span IDs 16, matching
// the OTLP wire conventions so exported files load into standard
// tooling unchanged.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings;
// numeric annotations use the Int constructor, which formats.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(value)} }

// SpanData is one finished span as delivered to exporters: immutable,
// self-contained, safe to retain.
type SpanData struct {
	// TraceID groups every span of one logical operation (one CLI run,
	// one HTTP request); 32 hex characters.
	TraceID string

	// SpanID identifies this span within its trace; 16 hex characters.
	SpanID string

	// ParentID is the SpanID of the enclosing span, empty for roots.
	ParentID string

	// Name is the instrumentation point, e.g. "pipeline.flatten".
	Name string

	// Start and End bound the span's wall time.
	Start, End time.Time

	// Attrs are the annotations, in the order they were set.
	Attrs []Attr

	// Counts are the named counters accumulated with Span.AddCount —
	// the cache-hit annotations of the pipeline use these so a hit
	// increments a number instead of re-timing the stage.
	Counts map[string]uint64
}

// Duration is the span's wall time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Exporter receives finished spans. Implementations must be safe for
// concurrent use; Export is called synchronously from Span.End.
type Exporter interface {
	Export(SpanData)
}

// Tracer creates spans and fans finished ones out to its exporters.
// The zero value is not usable; create tracers with New.
type Tracer struct {
	exporters []Exporter
	now       func() time.Time

	// seed is the random high half of every trace ID the tracer
	// generates (zero in deterministic mode); ids is the monotone low
	// half, shared by trace and span IDs.
	seed uint64
	ids  atomic.Uint64
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithExporter adds an exporter; every finished span is delivered to
// each exporter in registration order.
func WithExporter(e Exporter) Option {
	return func(t *Tracer) { t.exporters = append(t.exporters, e) }
}

// WithClock substitutes the time source — the golden exporter tests
// stub it to a fixed, stepping clock so output is byte-reproducible.
func WithClock(now func() time.Time) Option {
	return func(t *Tracer) { t.now = now }
}

// WithDeterministicIDs makes trace and span IDs sequential from zero
// instead of random-seeded; for tests only.
func WithDeterministicIDs() Option {
	return func(t *Tracer) { t.seed = 0; t.ids.Store(0) }
}

// New returns a tracer. With no options it exports nowhere (spans are
// timed and dropped), which is still useful for overhead measurement.
func New(opts ...Option) *Tracer {
	t := &Tracer{now: time.Now}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		t.seed = binary.BigEndian.Uint64(b[:])
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

const hexDigits = "0123456789abcdef"

// putHex16 writes v as 16 zero-padded lowercase hex characters —
// equivalent to %016x without fmt's reflection cost; span creation is
// the tracing hot path (see EXPERIMENTS.md P3).
func putHex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

func (t *Tracer) newTraceID() string {
	var b [32]byte
	putHex16(b[:16], t.seed)
	putHex16(b[16:], t.ids.Add(1))
	return string(b[:])
}

func (t *Tracer) newSpanID() string {
	var b [16]byte
	putHex16(b[:], t.ids.Add(1))
	return string(b[:])
}

// Span is one live (not yet ended) span. A nil *Span is valid and all
// its methods are no-ops, so instrumentation never branches on whether
// tracing is enabled.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// TraceID returns the span's trace ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's ID ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// SetAttr annotates the span. Later values for the same key append —
// exporters show them in order — keeping the hot path allocation-light.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// AddCount increments a named counter on the span. The pipeline uses
// this for cache hits: a warm lookup annotates the enclosing span
// instead of opening a sub-microsecond child span per hit.
func (s *Span) AddCount(name string) { s.AddCountN(name, 1) }

// AddCountN adds n to a named counter — the batched form callers use
// when they already know a whole group of hits happened (one map
// operation instead of n; see Module.CheckAllContext).
func (s *Span) AddCountN(name string, n uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.data.Counts == nil {
			s.data.Counts = make(map[string]uint64)
		}
		s.data.Counts[name] += n
	}
	s.mu.Unlock()
}

// End finishes the span and delivers it to the tracer's exporters.
// Idempotent: only the first End exports.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = s.tracer.now()
	data := s.data
	s.mu.Unlock()
	for _, e := range s.tracer.exporters {
		e.Export(data)
	}
}

type tracerKey struct{}
type spanKey struct{}

// ContextWithTracer returns a context carrying the tracer; every
// obs.Start under it creates real spans.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the context's active span, nil when none (or when
// tracing is off). The result is safe to use either way.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span named name as a child of the context's active
// span (a new root when there is none) and returns a context carrying
// it. When ctx has no tracer it returns (ctx, nil) after a single
// context lookup — the tracing-off fast path.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := SpanFrom(ctx)
	s := t.start(name, parent, "", attrs)
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartRoot opens a root span on tracer t — ignoring any active span —
// with a caller-chosen trace ID (generated when empty; the daemon
// passes the X-Shelley-Trace request header through here). The
// returned context carries both the tracer and the span.
func (t *Tracer) StartRoot(ctx context.Context, name, traceID string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = t.newTraceID()
	}
	s := t.start(name, nil, traceID, attrs)
	ctx = context.WithValue(ctx, tracerKey{}, t)
	return context.WithValue(ctx, spanKey{}, s), s
}

func (t *Tracer) start(name string, parent *Span, traceID string, attrs []Attr) *Span {
	s := &Span{tracer: t}
	s.data.Name = name
	switch {
	case parent != nil:
		s.data.TraceID = parent.TraceID()
		s.data.ParentID = parent.SpanID()
	case traceID != "":
		s.data.TraceID = traceID
	default:
		s.data.TraceID = t.newTraceID()
	}
	s.data.SpanID = t.newSpanID()
	s.data.Attrs = attrs
	s.data.Start = t.now()
	return s
}

// Carrier snapshots a context's tracer and active span so both can be
// re-attached to an unrelated context — the worker-pool seam: a pooled
// job runs under the pool's deadline context but must keep the
// admitting request's span as parent.
type Carrier struct {
	tracer *Tracer
	span   *Span
}

// Carry captures ctx's tracer and span.
func Carry(ctx context.Context) Carrier {
	return Carrier{tracer: TracerFrom(ctx), span: SpanFrom(ctx)}
}

// Context re-attaches the carried tracer and span onto ctx.
func (c Carrier) Context(ctx context.Context) context.Context {
	if c.tracer == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, tracerKey{}, c.tracer)
	if c.span != nil {
		ctx = context.WithValue(ctx, spanKey{}, c.span)
	}
	return ctx
}

// NewTraceID returns a fresh random 32-hex-character trace ID without
// needing a tracer — the client SDK uses it to originate the
// X-Shelley-Trace header when the caller's context carries no span.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// a constant rather than propagate an error nobody can act on.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether id is usable as a trace identifier:
// 1–64 characters of [0-9a-zA-Z_-]. The daemon regenerates anything
// else rather than echoing attacker-controlled bytes into logs.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// sortedCountKeys returns a span's counter names in stable order, for
// deterministic exporter output.
func sortedCountKeys(counts map[string]uint64) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

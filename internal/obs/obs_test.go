package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// stubClock returns a deterministic stepping time source: every call
// advances by step from a fixed epoch.
func stubClock(step time.Duration) func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything", String("k", "v"))
	if sp != nil {
		t.Fatalf("expected nil span without a tracer, got %+v", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("expected the context to pass through unchanged")
	}
	// All span methods must be nil-safe.
	sp.SetAttr(String("a", "b"))
	sp.AddCount("c")
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q, want empty", got)
	}
	if got := sp.SpanID(); got != "" {
		t.Fatalf("nil span SpanID = %q, want empty", got)
	}
}

func TestParentChildLinkage(t *testing.T) {
	ring := NewRing(16)
	tr := New(WithExporter(ring), WithDeterministicIDs(), WithClock(stubClock(time.Millisecond)))
	ctx := ContextWithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := ring.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(spans))
	}
	// Export order is end order: grandchild, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if g.Name != "grandchild" || c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected export order: %s, %s, %s", g.Name, c.Name, r.Name)
	}
	if r.ParentID != "" {
		t.Errorf("root has parent %q, want none", r.ParentID)
	}
	if c.ParentID != r.SpanID {
		t.Errorf("child parent = %q, want root %q", c.ParentID, r.SpanID)
	}
	if g.ParentID != c.SpanID {
		t.Errorf("grandchild parent = %q, want child %q", g.ParentID, c.SpanID)
	}
	for _, s := range spans {
		if s.TraceID != r.TraceID {
			t.Errorf("span %s trace %q, want shared trace %q", s.Name, s.TraceID, r.TraceID)
		}
		if !s.End.After(s.Start) {
			t.Errorf("span %s has non-positive duration", s.Name)
		}
	}
}

func TestSiblingSpansDoNotNest(t *testing.T) {
	ring := NewRing(16)
	tr := New(WithExporter(ring), WithDeterministicIDs())
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")

	// Starting a child returns a NEW context; the original ctx still
	// carries root, so a second Start on it is a sibling.
	_, a := Start(ctx, "a")
	a.End()
	_, b := Start(ctx, "b")
	b.End()
	root.End()

	spans := ring.Snapshot()
	if spans[0].ParentID != root.SpanID() || spans[1].ParentID != root.SpanID() {
		t.Fatalf("siblings should both parent to root: %q, %q vs %q",
			spans[0].ParentID, spans[1].ParentID, root.SpanID())
	}
}

func TestAttrsAndCounts(t *testing.T) {
	ring := NewRing(4)
	tr := New(WithExporter(ring), WithDeterministicIDs())
	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := Start(ctx, "op", String("class", "Valve"))
	sp.SetAttr(Int("n", 3), Bool("ok", true))
	sp.AddCount("cache.hit.dfa")
	sp.AddCount("cache.hit.dfa")
	sp.AddCount("cache.hit.spec")
	sp.End()
	// Post-End mutations must not dirty the exported record.
	sp.SetAttr(String("late", "x"))
	sp.AddCount("late")

	got := ring.Snapshot()[0]
	want := []Attr{{"class", "Valve"}, {"n", "3"}, {"ok", "true"}}
	if len(got.Attrs) != len(want) {
		t.Fatalf("attrs = %v, want %v", got.Attrs, want)
	}
	for i := range want {
		if got.Attrs[i] != want[i] {
			t.Errorf("attr[%d] = %v, want %v", i, got.Attrs[i], want[i])
		}
	}
	if got.Counts["cache.hit.dfa"] != 2 || got.Counts["cache.hit.spec"] != 1 {
		t.Errorf("counts = %v", got.Counts)
	}
	if _, ok := got.Counts["late"]; ok {
		t.Errorf("post-End AddCount leaked into the exported record")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	ring := NewRing(8)
	tr := New(WithExporter(ring))
	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := Start(ctx, "once")
	sp.End()
	sp.End()
	sp.End()
	if n := len(ring.Snapshot()); n != 1 {
		t.Fatalf("exported %d times, want 1", n)
	}
}

func TestStartRootIgnoresActiveSpan(t *testing.T) {
	ring := NewRing(8)
	tr := New(WithExporter(ring), WithDeterministicIDs())
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, outer := Start(ctx, "outer")

	rctx, root := tr.StartRoot(ctx, "http.check", "deadbeef")
	if root.TraceID() != "deadbeef" {
		t.Errorf("root trace = %q, want the caller-chosen id", root.TraceID())
	}
	_, child := Start(rctx, "inner")
	child.End()
	root.End()
	outer.End()

	spans := ring.Snapshot()
	if spans[1].ParentID != "" {
		t.Errorf("StartRoot span has parent %q, want none", spans[1].ParentID)
	}
	if spans[0].TraceID != "deadbeef" {
		t.Errorf("child of root has trace %q, want deadbeef", spans[0].TraceID)
	}
}

func TestCarrierMovesTraceAcrossContexts(t *testing.T) {
	ring := NewRing(8)
	tr := New(WithExporter(ring), WithDeterministicIDs())
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "request")

	carrier := Carry(ctx)
	fresh := context.Background() // the pool's own deadline context
	moved := carrier.Context(fresh)
	_, job := Start(moved, "job")
	job.End()
	root.End()

	spans := ring.Snapshot()
	if spans[0].ParentID != root.SpanID() {
		t.Fatalf("job parent = %q, want request root %q", spans[0].ParentID, root.SpanID())
	}

	// An empty carrier is inert.
	if got := (Carrier{}).Context(fresh); got != fresh {
		t.Fatalf("empty carrier should return the context unchanged")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Export(SpanData{Name: string(rune('a' + i))})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(got))
	}
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Name != want {
			t.Errorf("snapshot[%d] = %q, want %q (oldest first)", i, got[i].Name, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestConcurrentSpansAreRaceFree(t *testing.T) {
	ring := NewRing(1024)
	tr := New(WithExporter(ring))
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cctx, sp := Start(ctx, "worker")
				sp.AddCount("n")
				_, inner := Start(cctx, "inner")
				inner.End()
				root.AddCount("children")
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	spans := ring.Snapshot()
	if len(spans) != 801 {
		t.Fatalf("exported %d spans, want 801", len(spans))
	}
	seen := make(map[string]bool)
	for _, s := range spans {
		if seen[s.SpanID] {
			t.Fatalf("duplicate span id %q", s.SpanID)
		}
		seen[s.SpanID] = true
	}
}

func TestValidTraceID(t *testing.T) {
	valid := []string{"a", "deadbeef", "ABC-123_z", "00000000000000000000000000000001"}
	for _, id := range valid {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", "has space", "semi;colon", "new\nline", "x\x00y",
		string(make([]byte, 65))}
	for _, id := range invalid {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace ids %q / %q, want 32 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two generated trace ids collided: %q", a)
	}
	if !ValidTraceID(a) {
		t.Fatalf("generated id %q fails its own validation", a)
	}
}

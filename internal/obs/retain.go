package obs

import "sync"

// TraceBuffer is an exporter that retains finished spans grouped by
// trace ID so a whole request's span tree can be claimed after the
// fact — the retention hook behind tail-sampled exemplars: every
// request's spans are buffered briefly, and when the server decides a
// finished request was interesting it Takes the tree; ordinary
// requests are Discarded (or age out by FIFO eviction).
//
// Memory is doubly bounded: at most maxTraces live trace groups (FIFO
// eviction of the oldest whole trace) and at most maxSpans spans
// retained per trace (later spans of an oversized trace are counted,
// not kept — the root span, which Ends last, always replaces the last
// slot so the tree keeps its summary node).
type TraceBuffer struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[string]*traceGroup
	order     []string // trace IDs, oldest first
	evicted   uint64
}

type traceGroup struct {
	spans   []SpanData
	dropped int
}

// NewTraceBuffer builds a buffer retaining at most maxTraces traces of
// at most maxSpans spans each. Non-positive arguments take defaults
// (512 traces, 64 spans).
func NewTraceBuffer(maxTraces, maxSpans int) *TraceBuffer {
	if maxTraces <= 0 {
		maxTraces = 512
	}
	if maxSpans <= 0 {
		maxSpans = 64
	}
	return &TraceBuffer{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    make(map[string]*traceGroup, maxTraces),
	}
}

// Export implements Exporter.
func (b *TraceBuffer) Export(sd SpanData) {
	if sd.TraceID == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.traces[sd.TraceID]
	if !ok {
		if len(b.order) >= b.maxTraces {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.traces, oldest)
			b.evicted++
		}
		g = &traceGroup{}
		b.traces[sd.TraceID] = g
		b.order = append(b.order, sd.TraceID)
	}
	if len(g.spans) >= b.maxSpans {
		// Keep the most recent span: in practice the request's root
		// span Ends last and must survive for the exemplar to carry
		// its summary.
		g.spans[len(g.spans)-1] = sd
		g.dropped++
		return
	}
	g.spans = append(g.spans, sd)
}

// Take removes and returns a trace's retained spans in End order, plus
// the count of spans dropped by the per-trace bound. ok is false when
// the trace is unknown (never seen, already taken, or evicted).
func (b *TraceBuffer) Take(traceID string) (spans []SpanData, dropped int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, found := b.traces[traceID]
	if !found {
		return nil, 0, false
	}
	b.removeLocked(traceID)
	return g.spans, g.dropped, true
}

// Discard drops a trace's retained spans without returning them — the
// fast path for the overwhelming majority of uninteresting requests.
func (b *TraceBuffer) Discard(traceID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.traces[traceID]; ok {
		b.removeLocked(traceID)
	}
}

func (b *TraceBuffer) removeLocked(traceID string) {
	delete(b.traces, traceID)
	for i, id := range b.order {
		if id == traceID {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

// Len reports the number of live trace groups.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.traces)
}

// Evicted reports whole traces dropped by the FIFO bound since start.
func (b *TraceBuffer) Evicted() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evicted
}

package obs

import (
	"fmt"
	"testing"
)

func TestTraceBufferTakeReturnsWholeTree(t *testing.T) {
	b := NewTraceBuffer(8, 8)
	for i := 0; i < 3; i++ {
		b.Export(SpanData{TraceID: "t1", SpanID: fmt.Sprintf("s%d", i)})
	}
	b.Export(SpanData{TraceID: "t2", SpanID: "other"})
	spans, dropped, ok := b.Take("t1")
	if !ok || len(spans) != 3 || dropped != 0 {
		t.Fatalf("Take = %d spans dropped=%d ok=%v, want 3/0/true", len(spans), dropped, ok)
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i); s.SpanID != want {
			t.Errorf("span %d = %s, want %s (End order)", i, s.SpanID, want)
		}
	}
	if _, _, ok := b.Take("t1"); ok {
		t.Error("second Take of the same trace succeeded")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1 (t2 remains)", b.Len())
	}
}

func TestTraceBufferPerTraceBoundKeepsLastSpan(t *testing.T) {
	b := NewTraceBuffer(8, 4)
	for i := 0; i < 10; i++ {
		b.Export(SpanData{TraceID: "t", SpanID: fmt.Sprintf("s%d", i)})
	}
	spans, dropped, ok := b.Take("t")
	if !ok || len(spans) != 4 {
		t.Fatalf("Take = %d spans ok=%v, want 4", len(spans), ok)
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	// The final export (the root span in real traces) must survive.
	if spans[3].SpanID != "s9" {
		t.Errorf("last slot = %s, want s9", spans[3].SpanID)
	}
}

func TestTraceBufferFIFOEviction(t *testing.T) {
	b := NewTraceBuffer(3, 8)
	for i := 0; i < 5; i++ {
		b.Export(SpanData{TraceID: fmt.Sprintf("t%d", i), SpanID: "s"})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if b.Evicted() != 2 {
		t.Errorf("Evicted = %d, want 2", b.Evicted())
	}
	if _, _, ok := b.Take("t0"); ok {
		t.Error("evicted trace still takeable")
	}
	if _, _, ok := b.Take("t4"); !ok {
		t.Error("newest trace missing")
	}
}

func TestTraceBufferDiscard(t *testing.T) {
	b := NewTraceBuffer(4, 4)
	b.Export(SpanData{TraceID: "t", SpanID: "s"})
	b.Discard("t")
	b.Discard("unknown") // no-op
	if b.Len() != 0 {
		t.Errorf("Len = %d after discard, want 0", b.Len())
	}
	// Discarded slots are reusable without tripping eviction.
	for i := 0; i < 4; i++ {
		b.Export(SpanData{TraceID: fmt.Sprintf("n%d", i), SpanID: "s"})
	}
	if b.Evicted() != 0 {
		t.Errorf("Evicted = %d, want 0", b.Evicted())
	}
	b.Export(SpanData{TraceID: "", SpanID: "ignored"})
	if b.Len() != 4 {
		t.Errorf("empty trace ID should be ignored; Len = %d", b.Len())
	}
}

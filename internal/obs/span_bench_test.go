package obs

import (
	"context"
	"testing"
)

func BenchmarkStartEnd(b *testing.B) {
	tr := New(WithExporter(NewRing(1 << 12)))
	ctx := ContextWithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "child", String("class", "X"), Int("n", 3))
		s.AddCount("cache.hit.report")
		s.End()
	}
}

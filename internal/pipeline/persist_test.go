package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// memPersister is an in-memory Persister that records traffic.
type memPersister struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newMemPersister() *memPersister { return &memPersister{m: make(map[string][]byte)} }

func (p *memPersister) Get(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	b, ok := p.m[key]
	return b, ok
}

func (p *memPersister) Put(key string, payload []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	p.m[key] = payload
}

func (p *memPersister) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// stringCodec round-trips string artifacts; decoding rejects payloads
// carrying the poison marker, standing in for a validation failure on
// stale or damaged durable bytes.
type stringCodec struct{}

func (stringCodec) EncodeArtifact(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("not a string: %T", v)
	}
	return []byte(s), nil
}

func (stringCodec) DecodeArtifact(b []byte) (any, error) {
	if string(b) == "poison" {
		return nil, errors.New("validation failed")
	}
	return string(b), nil
}

func TestPersistWriteBehindThenReadThrough(t *testing.T) {
	p := newMemPersister()
	c1 := New()
	c1.Persist(StageReport, p, stringCodec{})

	builds := 0
	build := func(context.Context) (any, error) { builds++; return "artifact", nil }
	v, err := c1.DoCtx(context.Background(), StageReport, "k1", build)
	if err != nil || v != "artifact" {
		t.Fatalf("DoCtx: %v, %v", v, err)
	}
	if builds != 1 || p.puts != 1 {
		t.Fatalf("builds=%d puts=%d, want the miss built once and written behind once", builds, p.puts)
	}

	// A fresh cache (a restarted process) fills the same key from the
	// persister without building.
	c2 := New()
	c2.Persist(StageReport, p, stringCodec{})
	v, err = c2.DoCtx(context.Background(), StageReport, "k1", func(context.Context) (any, error) {
		t.Fatal("build ran despite a persisted artifact")
		return nil, nil
	})
	if err != nil || v != "artifact" {
		t.Fatalf("read-through DoCtx: %v, %v", v, err)
	}
	st := c2.Stats().Stages[StageReport]
	if st.PersistHits != 1 || st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("stats %+v, want exactly one persist hit and no miss/hit", st)
	}

	// The persist hit is now memoized: the next lookup is a plain
	// memory hit with no further persister traffic.
	before := p.gets
	if v, err = c2.DoCtx(context.Background(), StageReport, "k1", build); err != nil || v != "artifact" {
		t.Fatalf("memoized lookup: %v, %v", v, err)
	}
	if p.gets != before {
		t.Fatalf("memory hit consulted the persister (%d gets, was %d)", p.gets, before)
	}
	if got := c2.Stats().Stages[StageReport].Hits; got != 1 {
		t.Fatalf("hits=%d, want 1 memory hit after the persist fill", got)
	}
}

func TestPersistErrorsAreNotPersisted(t *testing.T) {
	p := newMemPersister()
	c := New()
	c.Persist(StageReport, p, stringCodec{})

	boom := errors.New("boom")
	_, err := c.DoCtx(context.Background(), StageReport, "bad", func(context.Context) (any, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if p.puts != 0 || p.len() != 0 {
		t.Fatalf("error result reached the persister (puts=%d len=%d)", p.puts, p.len())
	}
}

func TestPersistBadDecodeFallsThroughToBuild(t *testing.T) {
	p := newMemPersister()
	p.m["0stale"] = []byte("poison") // StageBehavior-prefixed key, rejected by the codec
	c := New()
	c.Persist(StageBehavior, p, stringCodec{})

	builds := 0
	v, err := c.DoCtx(context.Background(), StageBehavior, "stale", func(context.Context) (any, error) {
		builds++
		return "fresh", nil
	})
	if err != nil || v != "fresh" || builds != 1 {
		t.Fatalf("v=%v err=%v builds=%d, want a rejected decode to rebuild", v, err, builds)
	}
	if got := c.Stats().Stages[StageBehavior].PersistHits; got != 0 {
		t.Fatalf("persistHits=%d, want 0 for a rejected decode", got)
	}
	// The rebuild's write-behind repairs the durable entry in place.
	if string(p.m["0"+"stale"]) != "fresh" {
		t.Fatalf("durable entry %q, want repaired to %q", p.m["0stale"], "fresh")
	}
}

func TestPersistDetachAndNilCache(t *testing.T) {
	p := newMemPersister()
	c := New()
	c.Persist(StageReport, p, stringCodec{})
	c.Persist(StageReport, nil, nil) // detach
	if _, err := c.DoCtx(context.Background(), StageReport, "k", func(context.Context) (any, error) {
		return "v", nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.gets != 0 || p.puts != 0 {
		t.Fatalf("detached persister saw traffic (gets=%d puts=%d)", p.gets, p.puts)
	}

	var nilCache *Cache
	nilCache.Persist(StageReport, p, stringCodec{}) // must not panic
}

func TestPersistKeysAreStagePrefixed(t *testing.T) {
	p := newMemPersister()
	c := New()
	c.Persist(StageReport, p, stringCodec{})
	c.Persist(StageSpec, p, stringCodec{})
	if _, err := c.DoCtx(context.Background(), StageReport, "same", func(context.Context) (any, error) {
		return "report-artifact", nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DoCtx(context.Background(), StageSpec, "same", func(context.Context) (any, error) {
		return "spec-artifact", nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.len() != 2 {
		t.Fatalf("persister holds %d entries for one key across two stages, want 2", p.len())
	}
}

// Package pipeline implements the memoizing analysis cache that makes
// repeated verification near-free: a content-addressed, concurrency-safe
// store for the expensive stages of the inference pipeline — behavior
// regex inference (§3.2), regex→DFA compilation, protocol automata,
// flattened composite DFAs, LTLf claim compilation, and whole-class
// verification reports.
//
// Keys are stable content fingerprints (ir.Fingerprint for programs,
// model.Class.Fingerprint for classes, regex.Key for expressions), so
// the cache never needs explicit invalidation: a class that changes in
// any way hashes to fresh keys, and entries for dead content simply
// stop being hit. Two workers that race on the same key are collapsed
// by per-entry singleflight — the first builds while the rest block on
// the entry's ready channel — so no artifact is ever computed twice,
// even under CheckAllConcurrent.
//
// Every lookup feeds the Stats observability layer: per-stage hit/miss
// counters, build wall-time histograms, and live entry counts, exposed
// through Module.PipelineStats and the -stats flag of the CLIs.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/ltlf"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/regex"
)

// Stage identifies one cached stage of the analysis pipeline.
type Stage int

const (
	// StageBehavior memoizes behavior regex inference: ⟦p⟧ for one
	// method body (raw and simplified forms, keyed by ir.Fingerprint).
	StageBehavior Stage = iota

	// StageDFA memoizes regex→automaton compilation (derivative NFA
	// construction, determinization, and minimization; keyed by the
	// canonical regex key).
	StageDFA

	// StageSpec memoizes class usage-protocol automata (SpecDFA, keyed
	// by class fingerprint and qualification prefix).
	StageSpec

	// StageFlatten memoizes flattened composite behavior automata —
	// the ε-NFA substitution plus its determinization (keyed by the
	// class fingerprint, analysis mode, and every subsystem
	// fingerprint).
	StageFlatten

	// StageClaim memoizes compiled LTLf claim-violation automata
	// (keyed by formula text and alphabet).
	StageClaim

	// StageReport memoizes whole-class verification reports (keyed
	// like StageFlatten); a warm Check is a lookup plus a deep copy.
	StageReport

	numStages int = iota
)

// String names the stage as shown in stats output.
func (s Stage) String() string {
	switch s {
	case StageBehavior:
		return "behavior"
	case StageDFA:
		return "dfa"
	case StageSpec:
		return "spec"
	case StageFlatten:
		return "flatten"
	case StageClaim:
		return "claim"
	case StageReport:
		return "report"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// NumStages is the number of pipeline stages tracked by Stats.
const NumStages = numStages

// spanNames and hitCounters are the per-stage span and counter names,
// precomputed because DoCtx and Peek sit on the warm lookup path:
// concatenating "pipeline.<stage>" or "cache.hit.<stage>" at lookup
// time allocates per call even with tracing off (EXPERIMENTS.md P3).
var spanNames, hitCounters [numStages]string

func init() {
	for s := StageBehavior; int(s) < numStages; s++ {
		spanNames[s] = "pipeline." + s.String()
		hitCounters[s] = "cache.hit." + s.String()
	}
}

// shardCount spreads entries over independently locked maps so that
// concurrent workers contend only when they touch the same key range.
// A power of two keeps the index computation a mask.
const shardCount = 32

// Persister is the durable artifact store surface the cache reads
// through on a miss and writes behind on a fill. Both methods must be
// safe for concurrent use and must never block for long: Get is on the
// first-miss path, and Put is expected to enqueue (the store behind it
// sheds under pressure rather than stalling verification). Any durable
// failure must surface as a miss (Get) or a silent drop (Put) — the
// cache treats the persister as strictly best-effort.
type Persister interface {
	// Get returns the payload persisted under key, or ok=false.
	Get(key string) ([]byte, bool)

	// Put persists payload under key, best-effort.
	Put(key string, payload []byte)
}

// Codec translates one stage's artifact between its in-memory form and
// durable bytes. DecodeArtifact must validate: persisted bytes come
// from disk and may predate this build, and a decode error simply
// demotes the lookup to a rebuild.
type Codec interface {
	EncodeArtifact(v any) ([]byte, error)
	DecodeArtifact(b []byte) (any, error)
}

// persistHook pairs a stage's durable store with its codec.
type persistHook struct {
	store Persister
	codec Codec
}

// Cache is the memoization store. The zero value is not usable; create
// caches with New. A nil *Cache is valid everywhere and disables
// memoization (every lookup builds), which lets callers thread
// "caching off" without branching.
type Cache struct {
	shards  [shardCount]shard
	stats   [numStages]stageCounters
	persist [numStages]atomic.Pointer[persistHook]
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// entry is one singleflight cell: ready is closed once val/err are
// final, and waiters block on it instead of rebuilding.
type entry struct {
	ready chan struct{}
	val   any
	err   error
}

// Persist attaches a durable read-through/write-behind layer to one
// stage: a miss consults p before building (a verified decode is
// published as if built, counted as a persist hit), and a successful
// build is encoded and handed to p.Put. Errors are never persisted —
// only values — and the layer is strictly best-effort: a failing or
// absent persister leaves the cache exactly as fast and exactly as
// correct as without one. Attach before serving traffic; nil p or codec
// detaches. A nil cache ignores the call.
func (c *Cache) Persist(stage Stage, p Persister, codec Codec) {
	if c == nil {
		return
	}
	if p == nil || codec == nil {
		c.persist[stage].Store(nil)
		return
	}
	c.persist[stage].Store(&persistHook{store: p, codec: codec})
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
	}
	return c
}

func shardIndex(key string) int {
	// FNV-1a over the key; cheaper than importing hash/fnv per call.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (shardCount - 1))
}

// ErrPanicked is the sentinel wrapped into the error published to
// waiters of a panicking build. It exists so every cache layer can
// recognize a panic-contaminated result when it propagates upward: a
// waiter blocked on the doomed entry returns the synthesized error as
// an ordinary build error up its own stack, and without the sentinel an
// outer stage (a different class's report, a flatten that embeds the
// inner artifact) would memoize it permanently even though the panicked
// entry itself was deleted.
var ErrPanicked = errors.New("pipeline: build panicked")

// uncacheable reports whether a build error must not be memoized.
// Cancellation belongs to one request's deadline, not to the content:
// caching a *budget.CancelErr would turn one timed-out request into a
// permanent instant failure for every later request with the same
// budget key. Panic contamination (ErrPanicked, possibly observed by a
// waiter and re-returned from an outer build) is not known to be
// deterministic. Budget-exceeded errors are NOT listed: under a
// budget-prefixed key they are deterministic and stay cached.
func uncacheable(err error) bool {
	return errors.Is(err, ErrPanicked) ||
		errors.Is(err, budget.ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// Do returns the cached value for (stage, key), building it with build
// on first use. Concurrent callers of the same key share one build:
// exactly one goroutine runs build while the others wait, so the cost
// of every artifact is paid once regardless of worker count. Build
// errors are cached too — the pipeline is deterministic, so an error is
// as content-addressed as a value — except cancellation and panic
// containment errors (see uncacheable), which are released to waiters
// but never memoized. A nil receiver bypasses the cache.
func (c *Cache) Do(stage Stage, key string, build func() (any, error)) (any, error) {
	return c.DoCtx(context.Background(), stage, key,
		func(context.Context) (any, error) { return build() })
}

// DoCtx is Do with tracing threaded through: a miss runs build inside
// a "pipeline.<stage>" span (child of ctx's active span, so stage
// timings nest under the class verification that triggered them), and
// a hit increments a cache.hit.<stage> counter on the active span
// instead of opening a child — warm lookups cost nanoseconds and a
// span each would drown the timeline without adding information. The
// build callback receives the span-carrying context so nested stages
// parent correctly. With tracing off (no tracer in ctx) the path is
// identical to Do.
func (c *Cache) DoCtx(ctx context.Context, stage Stage, key string, build func(context.Context) (any, error)) (any, error) {
	if c == nil {
		ctx, span := obs.Start(ctx, spanNames[stage], obs.Bool("uncached", true))
		v, err := build(ctx)
		span.End()
		return v, err
	}
	k := string(rune('0'+int(stage))) + key
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.mu.Unlock()
		<-e.ready
		c.stats[stage].hits.Add(1)
		obs.SpanFrom(ctx).AddCount(hitCounters[stage])
		return e.val, e.err
	}
	e := &entry{ready: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()

	// Read-through: a durable artifact persisted by an earlier process
	// (or this one, pre-crash) turns the miss into a publish without a
	// build. The decode must fully validate — disk bytes are untrusted —
	// and any failure silently falls through to the build below.
	hook := c.persist[stage].Load()
	if hook != nil {
		if raw, ok := hook.store.Get(k); ok {
			if v, derr := hook.codec.DecodeArtifact(raw); derr == nil {
				e.val = v
				close(e.ready)
				st := &c.stats[stage]
				st.persistHits.Add(1)
				st.entries.Add(1)
				obs.SpanFrom(ctx).AddCount(hitCounters[stage])
				return e.val, nil
			}
		}
	}

	ctx, span := obs.Start(ctx, spanNames[stage])
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			// Never strand waiters on a panicking build: publish an
			// error, release them, and re-panic. The entry is deleted
			// from the shard first — before ready is closed — so a
			// caller that looks up the key after the close can never
			// latch onto the doomed entry; it rebuilds from scratch.
			// The published error wraps ErrPanicked so outer stages
			// that receive it from a waiter decline to cache it too.
			e.err = fmt.Errorf("%w: %s build for key %q: %v", ErrPanicked, stage, key, r)
			sh.mu.Lock()
			delete(sh.entries, k)
			sh.mu.Unlock()
			close(e.ready)
			span.End()
			panic(r)
		}
	}()
	e.val, e.err = build(ctx)
	elapsed := time.Since(start)
	cacheable := !uncacheable(e.err)
	if !cacheable {
		// Release the waiters that already latched, but delete the
		// entry (before closing ready, same ordering as the panic
		// path) so the next caller rebuilds instead of inheriting a
		// cancellation that belonged to someone else's deadline.
		sh.mu.Lock()
		delete(sh.entries, k)
		sh.mu.Unlock()
	}
	close(e.ready)
	span.End()

	st := &c.stats[stage]
	st.misses.Add(1)
	if cacheable {
		st.entries.Add(1)
	}
	st.buildNanos.Add(int64(elapsed))
	st.buckets[bucketIndex(elapsed)].Add(1)

	// Write-behind: persist the freshly built value (never an error —
	// errors are cheap to recompute and poisonous to resurrect). Put is
	// non-blocking by contract, so the only cost on this path is the
	// encode, which is trivial next to the build that just ran.
	if hook != nil && cacheable && e.err == nil {
		if raw, perr := hook.codec.EncodeArtifact(e.val); perr == nil {
			hook.store.Put(k, raw)
		}
	}
	return e.val, e.err
}

// PeekQuiet is Peek without the span annotation: a successful peek
// still counts as a stats hit, but the caller owns reporting it to the
// trace — Module.CheckAllContext peeks every class and adds one
// aggregated cache.hit.report count instead of one map operation per
// class (EXPERIMENTS.md P3).
func (c *Cache) PeekQuiet(stage Stage, key string) (any, error, bool) {
	if c == nil {
		return nil, nil, false
	}
	k := string(rune('0'+int(stage))) + key
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	e, ok := sh.entries[k]
	sh.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	select {
	case <-e.ready:
	default:
		return nil, nil, false
	}
	c.stats[stage].hits.Add(1)
	return e.val, e.err, true
}

// Peek returns the cached value for (stage, key) when it is already
// built, without blocking and without building: ok is false when the
// key is absent, still being built by another goroutine, or the cache
// is nil. A successful peek counts as a hit and annotates ctx's active
// span like DoCtx, so callers can use it as a span-free warm fast path
// (check.CheckContext peeks the report stage before opening its
// "check.class" span — see EXPERIMENTS.md P3).
func (c *Cache) Peek(ctx context.Context, stage Stage, key string) (any, error, bool) {
	v, err, ok := c.PeekQuiet(stage, key)
	if ok {
		obs.SpanFrom(ctx).AddCount(hitCounters[stage])
	}
	return v, err, ok
}

// Memo is the typed form of Do. A nil cache builds directly (still
// inside a span when ctx traces — tracing works with caching off).
func Memo[T any](c *Cache, stage Stage, key string, build func() (T, error)) (T, error) {
	return MemoCtx(context.Background(), c, stage, key,
		func(context.Context) (T, error) { return build() })
}

// MemoCtx is the typed form of DoCtx.
func MemoCtx[T any](ctx context.Context, c *Cache, stage Stage, key string, build func(context.Context) (T, error)) (T, error) {
	v, err := c.DoCtx(ctx, stage, key, func(ctx context.Context) (any, error) { return build(ctx) })
	if err != nil || v == nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// SpecKey is the canonical StageSpec key for a class fingerprint and
// qualification prefix. Exposed so every caller (the checker and the
// public API) shares one entry per automaton.
func SpecKey(classFingerprint, prefix string) string {
	return classFingerprint + "|" + prefix
}

// Infer returns ⟦p⟧ in the paper-verbatim (unsimplified) form,
// memoized under StageBehavior. ctx carries the active span for stage
// tracing; context.Background() is always valid.
func (c *Cache) Infer(ctx context.Context, p ir.Program) regex.Regex {
	r, _ := MemoCtx(ctx, c, StageBehavior, "raw|"+ir.Fingerprint(p), func(context.Context) (regex.Regex, error) {
		return core.Infer(p), nil
	})
	return r
}

// InferSimplified returns the language-preserving normalization of
// ⟦p⟧, memoized under StageBehavior.
func (c *Cache) InferSimplified(ctx context.Context, p ir.Program) regex.Regex {
	r, _ := MemoCtx(ctx, c, StageBehavior, "simp|"+ir.Fingerprint(p), func(context.Context) (regex.Regex, error) {
		return regex.Simplify(core.Infer(p)), nil
	})
	return r
}

// budgetKey prefixes key with the canonical encoding of the given
// resource limits, so a result (or deterministic budget error) computed
// under one budget is never served to a request with another: a retry
// with a larger budget hashes to a fresh key and can succeed. Callers
// pass the projection of ctx's limits onto the resources their stage
// can actually consume (see dfaLimits), so keys don't fragment on
// limits that cannot affect the artifact. Unlimited limits leave the
// key unchanged, so pre-budget entries keep hitting.
func budgetKey(l budget.Limits, key string) string {
	if bk := l.Key(); bk != "" {
		return bk + "\x01" + key
	}
	return key
}

// dfaLimits projects l onto the limits a regex→DFA compilation or an
// LTLf claim compilation can consume: derivative construction,
// determinization, and formula progression gate dfa-states, and state
// elimination / DNF canonicalization gate regex-size. NFA-state and
// search-node limits cannot affect these artifacts, so they stay out
// of the cache key — two requests differing only in those limits share
// one entry.
func dfaLimits(l budget.Limits) budget.Limits {
	return budget.Limits{MaxDFAStates: l.MaxDFAStates, MaxRegexSize: l.MaxRegexSize}
}

// MinimalDFA compiles r to its minimal DFA, memoized under StageDFA by
// the canonical regex key (prefixed with the DFA-relevant projection of
// ctx's budget key). The build runs under ctx's resource budget; a
// budget trip is returned as a structured error and cached like any
// other deterministic result. Cached automata are shared read-only;
// all DFA algorithms in internal/automata are non-mutating, and public
// API boundaries clone before handing automata to callers.
func (c *Cache) MinimalDFA(ctx context.Context, r regex.Regex) (*automata.DFA, error) {
	key := budgetKey(dfaLimits(budget.From(ctx)), regex.Key(r))
	return MemoCtx(ctx, c, StageDFA, key, func(ctx context.Context) (*automata.DFA, error) {
		return automata.CompileMinimalCtx(ctx, r)
	})
}

// BehaviorDFA is the fused hot path of flattening: the minimal DFA of
// the simplified behavior of one method body, with both intermediate
// stages memoized.
func (c *Cache) BehaviorDFA(ctx context.Context, p ir.Program) (*automata.DFA, error) {
	return c.MinimalDFA(ctx, c.InferSimplified(ctx, p))
}

// ClaimNegation compiles the violation automaton of an LTLf claim,
// memoized under StageClaim. formulaText must be the source text of f
// (it is the key, prefixed with the claim-relevant projection of ctx's
// budget key; two formulas with equal text are equal). The compilation
// runs under ctx's budget.
func (c *Cache) ClaimNegation(ctx context.Context, f ltlf.Formula, formulaText string, alphabet []string) (*automata.DFA, error) {
	key := budgetKey(dfaLimits(budget.From(ctx)), formulaText+"\x00"+strings.Join(alphabet, "\x00"))
	return MemoCtx(ctx, c, StageClaim, key, func(ctx context.Context) (*automata.DFA, error) {
		return ltlf.CompileNegationCtx(ctx, f, alphabet)
	})
}

// Package pipeline implements the memoizing analysis cache that makes
// repeated verification near-free: a content-addressed, concurrency-safe
// store for the expensive stages of the inference pipeline — behavior
// regex inference (§3.2), regex→DFA compilation, protocol automata,
// flattened composite DFAs, LTLf claim compilation, and whole-class
// verification reports.
//
// Keys are stable content fingerprints (ir.Fingerprint for programs,
// model.Class.Fingerprint for classes, regex.Key for expressions), so
// the cache never needs explicit invalidation: a class that changes in
// any way hashes to fresh keys, and entries for dead content simply
// stop being hit. Two workers that race on the same key are collapsed
// by per-entry singleflight — the first builds while the rest block on
// the entry's ready channel — so no artifact is ever computed twice,
// even under CheckAllConcurrent.
//
// Every lookup feeds the Stats observability layer: per-stage hit/miss
// counters, build wall-time histograms, and live entry counts, exposed
// through Module.PipelineStats and the -stats flag of the CLIs.
package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/ltlf"
	"github.com/shelley-go/shelley/internal/regex"
)

// Stage identifies one cached stage of the analysis pipeline.
type Stage int

const (
	// StageBehavior memoizes behavior regex inference: ⟦p⟧ for one
	// method body (raw and simplified forms, keyed by ir.Fingerprint).
	StageBehavior Stage = iota

	// StageDFA memoizes regex→automaton compilation (derivative NFA
	// construction, determinization, and minimization; keyed by the
	// canonical regex key).
	StageDFA

	// StageSpec memoizes class usage-protocol automata (SpecDFA, keyed
	// by class fingerprint and qualification prefix).
	StageSpec

	// StageFlatten memoizes flattened composite behavior automata —
	// the ε-NFA substitution plus its determinization (keyed by the
	// class fingerprint, analysis mode, and every subsystem
	// fingerprint).
	StageFlatten

	// StageClaim memoizes compiled LTLf claim-violation automata
	// (keyed by formula text and alphabet).
	StageClaim

	// StageReport memoizes whole-class verification reports (keyed
	// like StageFlatten); a warm Check is a lookup plus a deep copy.
	StageReport

	numStages int = iota
)

// String names the stage as shown in stats output.
func (s Stage) String() string {
	switch s {
	case StageBehavior:
		return "behavior"
	case StageDFA:
		return "dfa"
	case StageSpec:
		return "spec"
	case StageFlatten:
		return "flatten"
	case StageClaim:
		return "claim"
	case StageReport:
		return "report"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// NumStages is the number of pipeline stages tracked by Stats.
const NumStages = numStages

// shardCount spreads entries over independently locked maps so that
// concurrent workers contend only when they touch the same key range.
// A power of two keeps the index computation a mask.
const shardCount = 32

// Cache is the memoization store. The zero value is not usable; create
// caches with New. A nil *Cache is valid everywhere and disables
// memoization (every lookup builds), which lets callers thread
// "caching off" without branching.
type Cache struct {
	shards [shardCount]shard
	stats  [numStages]stageCounters
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// entry is one singleflight cell: ready is closed once val/err are
// final, and waiters block on it instead of rebuilding.
type entry struct {
	ready chan struct{}
	val   any
	err   error
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
	}
	return c
}

func shardIndex(key string) int {
	// FNV-1a over the key; cheaper than importing hash/fnv per call.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (shardCount - 1))
}

// Do returns the cached value for (stage, key), building it with build
// on first use. Concurrent callers of the same key share one build:
// exactly one goroutine runs build while the others wait, so the cost
// of every artifact is paid once regardless of worker count. Build
// errors are cached too — the pipeline is deterministic, so an error is
// as content-addressed as a value. A nil receiver bypasses the cache.
func (c *Cache) Do(stage Stage, key string, build func() (any, error)) (any, error) {
	if c == nil {
		return build()
	}
	k := string(rune('0'+int(stage))) + key
	sh := &c.shards[shardIndex(k)]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.mu.Unlock()
		<-e.ready
		c.stats[stage].hits.Add(1)
		return e.val, e.err
	}
	e := &entry{ready: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()

	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			// Never strand waiters on a panicking build: publish an
			// error, release them, and re-panic.
			e.err = fmt.Errorf("pipeline: %s build for key %q panicked: %v", stage, key, r)
			close(e.ready)
			panic(r)
		}
	}()
	e.val, e.err = build()
	elapsed := time.Since(start)
	close(e.ready)

	st := &c.stats[stage]
	st.misses.Add(1)
	st.entries.Add(1)
	st.buildNanos.Add(int64(elapsed))
	st.buckets[bucketIndex(elapsed)].Add(1)
	return e.val, e.err
}

// Memo is the typed form of Do. A nil cache builds directly.
func Memo[T any](c *Cache, stage Stage, key string, build func() (T, error)) (T, error) {
	if c == nil {
		return build()
	}
	v, err := c.Do(stage, key, func() (any, error) { return build() })
	if err != nil || v == nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// SpecKey is the canonical StageSpec key for a class fingerprint and
// qualification prefix. Exposed so every caller (the checker and the
// public API) shares one entry per automaton.
func SpecKey(classFingerprint, prefix string) string {
	return classFingerprint + "|" + prefix
}

// Infer returns ⟦p⟧ in the paper-verbatim (unsimplified) form,
// memoized under StageBehavior.
func (c *Cache) Infer(p ir.Program) regex.Regex {
	r, _ := Memo(c, StageBehavior, "raw|"+ir.Fingerprint(p), func() (regex.Regex, error) {
		return core.Infer(p), nil
	})
	return r
}

// InferSimplified returns the language-preserving normalization of
// ⟦p⟧, memoized under StageBehavior.
func (c *Cache) InferSimplified(p ir.Program) regex.Regex {
	r, _ := Memo(c, StageBehavior, "simp|"+ir.Fingerprint(p), func() (regex.Regex, error) {
		return regex.Simplify(core.Infer(p)), nil
	})
	return r
}

// MinimalDFA compiles r to its minimal DFA, memoized under StageDFA by
// the canonical regex key. Cached automata are shared read-only; all
// DFA algorithms in internal/automata are non-mutating, and public API
// boundaries clone before handing automata to callers.
func (c *Cache) MinimalDFA(r regex.Regex) *automata.DFA {
	d, _ := Memo(c, StageDFA, regex.Key(r), func() (*automata.DFA, error) {
		return automata.CompileMinimal(r), nil
	})
	return d
}

// BehaviorDFA is the fused hot path of flattening: the minimal DFA of
// the simplified behavior of one method body, with both intermediate
// stages memoized.
func (c *Cache) BehaviorDFA(p ir.Program) *automata.DFA {
	return c.MinimalDFA(c.InferSimplified(p))
}

// ClaimNegation compiles the violation automaton of an LTLf claim,
// memoized under StageClaim. formulaText must be the source text of f
// (it is the key; two formulas with equal text are equal).
func (c *Cache) ClaimNegation(f ltlf.Formula, formulaText string, alphabet []string) *automata.DFA {
	key := formulaText + "\x00" + strings.Join(alphabet, "\x00")
	d, _ := Memo(c, StageClaim, key, func() (*automata.DFA, error) {
		return ltlf.CompileNegation(f, alphabet), nil
	})
	return d
}

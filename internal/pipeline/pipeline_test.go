package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/ltlf"
	"github.com/shelley-go/shelley/internal/regex"
)

func TestDoMemoizes(t *testing.T) {
	c := New()
	builds := 0
	build := func() (any, error) { builds++; return 42, nil }
	for i := 0; i < 5; i++ {
		v, err := c.Do(StageDFA, "k", build)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("got %v", v)
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	st := c.Stats().Of(StageDFA)
	if st.Hits != 4 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 4 hits / 1 miss / 1 entry", st)
	}
}

func TestDoKeysAreStageScoped(t *testing.T) {
	c := New()
	v1, _ := c.Do(StageDFA, "same", func() (any, error) { return "dfa", nil })
	v2, _ := c.Do(StageSpec, "same", func() (any, error) { return "spec", nil })
	if v1.(string) != "dfa" || v2.(string) != "spec" {
		t.Fatalf("stages share entries: %v, %v", v1, v2)
	}
}

func TestDoCachesErrors(t *testing.T) {
	c := New()
	builds := 0
	want := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Do(StageReport, "k", func() (any, error) { builds++; return nil, want })
		if !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
	}
	if builds != 1 {
		t.Fatalf("failing build ran %d times, want 1 (errors are cached)", builds)
	}
}

func TestNilCacheBuildsEveryTime(t *testing.T) {
	var c *Cache
	builds := 0
	for i := 0; i < 3; i++ {
		v, err := c.Do(StageDFA, "k", func() (any, error) { builds++; return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != i {
			t.Fatalf("nil cache returned stale value %v", v)
		}
	}
	if builds != 3 {
		t.Fatalf("nil cache built %d times, want 3", builds)
	}
	// The typed helpers must be nil-safe too.
	p := ir.MustParse("a(); b()")
	if got := c.Infer(context.Background(), p).String(); got == "" {
		t.Fatal("nil cache Infer returned empty regex")
	}
	if d, err := c.MinimalDFA(context.Background(), regex.MustParse("a . b")); err != nil || d == nil || !d.Accepts([]string{"a", "b"}) {
		t.Fatal("nil cache MinimalDFA broken")
	}
	if got := c.Stats(); len(got.Stages) != NumStages {
		t.Fatalf("nil cache stats has %d stages, want %d", len(got.Stages), NumStages)
	}
}

// TestSingleflight hammers one key from many goroutines: exactly one
// build must run, every caller must see its value, and a gate channel
// makes sure the callers really do overlap with the in-flight build.
func TestSingleflight(t *testing.T) {
	c := New()
	const goroutines = 32
	var builds atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Do(StageFlatten, "hot", func() (any, error) {
				builds.Add(1)
				<-gate // hold the build open until all goroutines queued
				return "built", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for one key, want 1", n)
	}
	for g, v := range results {
		if v.(string) != "built" {
			t.Fatalf("goroutine %d saw %v", g, v)
		}
	}
	st := c.Stats().Of(StageFlatten)
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats %+v, want 1 miss / %d hits", st, goroutines-1)
	}
}

// TestConcurrentDistinctKeys checks shard safety under parallel inserts.
func TestConcurrentDistinctKeys(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				v, err := c.Do(StageBehavior, key, func() (any, error) { return key, nil })
				if err != nil || v.(string) != key {
					t.Errorf("key %q: got %v, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats().Of(StageBehavior); st.Entries != 8*200 {
		t.Fatalf("%d entries, want %d", st.Entries, 8*200)
	}
}

func TestMemoTyped(t *testing.T) {
	c := New()
	v, err := Memo(c, StageClaim, "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("got %v, %v", v, err)
	}
	// A cached error yields the zero value, not a stale one.
	_, err = Memo(c, StageClaim, "bad", func() (*int, error) { return nil, errors.New("x") })
	if err == nil {
		t.Fatal("want error")
	}
	p, err := Memo(c, StageClaim, "bad", func() (*int, error) { t.Fatal("rebuilt"); return nil, nil })
	if err == nil || p != nil {
		t.Fatalf("cached error lost: %v, %v", p, err)
	}
}

func TestInferMatchesCore(t *testing.T) {
	c := New()
	p := ir.MustParse("loop(*) { a(); if(*) { b(); return } else { c() } }")
	raw := c.Infer(context.Background(), p)
	simp := c.InferSimplified(context.Background(), p)
	if !regex.Equivalent(raw, simp) {
		t.Fatal("simplified behavior changed the language")
	}
	// Warm path returns the identical artifact.
	if c.Infer(context.Background(), p).String() != raw.String() {
		t.Fatal("warm Infer differs")
	}
	d1, err1 := c.BehaviorDFA(context.Background(), p)
	d2, err2 := c.BehaviorDFA(context.Background(), p)
	if err1 != nil || err2 != nil {
		t.Fatalf("BehaviorDFA errored: %v, %v", err1, err2)
	}
	if d1 != d2 {
		t.Fatal("warm BehaviorDFA is not the shared cached automaton")
	}
}

func TestClaimNegationCachedByTextAndAlphabet(t *testing.T) {
	c := New()
	f := ltlf.MustParse("(!a) W b")
	d1, _ := c.ClaimNegation(context.Background(), f, "(!a) W b", []string{"a", "b"})
	d2, _ := c.ClaimNegation(context.Background(), f, "(!a) W b", []string{"a", "b"})
	if d1 != d2 {
		t.Fatal("same formula and alphabet must share one cached automaton")
	}
	// A different alphabet is a different language — it must not alias.
	d3, _ := c.ClaimNegation(context.Background(), f, "(!a) W b", []string{"a", "b", "c"})
	if d3 == d1 {
		t.Fatal("distinct alphabets alias one cache entry")
	}
	if len(d3.Alphabet()) == len(d1.Alphabet()) {
		t.Fatal("alphabet extension lost")
	}
	if st := c.Stats().Of(StageClaim); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 2 misses / 1 hit", st)
	}
}

func TestStatsString(t *testing.T) {
	c := New()
	_, _ = c.Do(StageDFA, "k", func() (any, error) { return 1, nil })
	_, _ = c.Do(StageDFA, "k", func() (any, error) { return 1, nil })
	out := c.Stats().String()
	for _, want := range []string{"pipeline cache:", "behavior", "dfa", "spec", "flatten", "claim", "report"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	s := c.Stats()
	if s.TotalHits() != 1 || s.TotalMisses() != 1 {
		t.Fatalf("totals: %d hits / %d misses, want 1/1", s.TotalHits(), s.TotalMisses())
	}
	if hr := s.Of(StageDFA).HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageBehavior: "behavior",
		StageDFA:      "dfa",
		StageSpec:     "spec",
		StageFlatten:  "flatten",
		StageClaim:    "claim",
		StageReport:   "report",
	}
	if len(want) != NumStages {
		t.Fatalf("test covers %d stages, package has %d", len(want), NumStages)
	}
	seen := map[string]bool{}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
}

// TestPanicReleasesWaiters ensures a panicking build cannot strand
// concurrent waiters: each either observes the panic error (it was
// blocked on the poisoned entry) or rebuilds fresh (it arrived after
// the entry was removed), and the panic must still propagate to the
// building goroutine.
func TestPanicReleasesWaiters(t *testing.T) {
	c := New()
	gate := make(chan struct{})
	type outcome struct {
		val any
		err error
	}
	waiterDone := make(chan outcome, 1)
	go func() {
		<-gate
		v, err := c.Do(StageDFA, "p", func() (any, error) { return "rebuilt", nil })
		waiterDone <- outcome{v, err}
	}()
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _ = c.Do(StageDFA, "p", func() (any, error) {
			close(gate)
			// Give the waiter a chance to block on the entry.
			panic("kaboom")
		})
	}()
	if r := <-panicked; r == nil {
		t.Fatal("panic did not propagate to the builder")
	}
	if o := <-waiterDone; o.err == nil && o.val != "rebuilt" {
		t.Fatalf("waiter stranded with neither error nor rebuild: %v", o.val)
	}
}

// TestPanicDoesNotPoisonKey ensures a panicking build is not cached: a
// panic, unlike a build error, is not known to be deterministic, so the
// next caller of the same key must get a fresh build.
func TestPanicDoesNotPoisonKey(t *testing.T) {
	c := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_, _ = c.Do(StageDFA, "poison", func() (any, error) { panic("kaboom") })
	}()
	v, err := c.Do(StageDFA, "poison", func() (any, error) { return "recovered", nil })
	if err != nil || v.(string) != "recovered" {
		t.Fatalf("panicked key stayed poisoned: %v, %v", v, err)
	}
}

// TestCancelErrNotCached is the regression test for the cache-poisoning
// review finding: the daemon uses one fixed budget for all requests, so
// the budget-prefixed key is identical across requests — if a request
// deadline firing mid-construction left a *budget.CancelErr in the
// cache, every later request for that key would fail instantly. A
// canceled build must release its waiters but leave no entry behind.
func TestCancelErrNotCached(t *testing.T) {
	c := New()
	cancelErrs := []error{
		&budget.CancelErr{Op: "determinize", Cause: context.DeadlineExceeded},
		context.DeadlineExceeded,
		context.Canceled,
	}
	for i, cerr := range cancelErrs {
		key := fmt.Sprintf("k-%d", i)
		builds := 0
		build := func() (any, error) {
			builds++
			if builds == 1 {
				return nil, cerr
			}
			return "recovered", nil
		}
		if _, err := c.Do(StageReport, key, build); err == nil {
			t.Fatalf("%v: first build should fail", cerr)
		}
		v, err := c.Do(StageReport, key, build)
		if err != nil || v.(string) != "recovered" {
			t.Fatalf("%v stayed cached: %v, %v (builds=%d)", cerr, v, err, builds)
		}
	}
	// Deleted cancellations must not count as live entries.
	if st := c.Stats().Of(StageReport); st.Entries != uint64(len(cancelErrs)) {
		t.Fatalf("entries %d, want %d (one per recovered key)", st.Entries, len(cancelErrs))
	}
}

// TestCanceledBuildRetrySameBudget runs the end-to-end shape of the
// review scenario through the typed DFA path: a request whose deadline
// already fired caches nothing, and a retry with the SAME budget (the
// daemon's fixed Config.Limits) and a live context succeeds.
func TestCanceledBuildRetrySameBudget(t *testing.T) {
	c := New()
	r := regex.MustParse("(a + b)* . a . b")
	lim := budget.Default()
	dead, cancel := context.WithCancel(budget.With(context.Background(), lim))
	cancel()
	if _, err := c.MinimalDFA(dead, r); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("dead context: got %v, want ErrCanceled", err)
	}
	d, err := c.MinimalDFA(budget.With(context.Background(), lim), r)
	if err != nil || d == nil {
		t.Fatalf("retry with same budget poisoned: %v", err)
	}
	if !d.Accepts([]string{"b", "a", "b"}) {
		t.Fatal("retried DFA is wrong")
	}
}

// TestPanicErrorNotCachedByOuterStage covers the waiter-leak finding: a
// goroutine blocked on a panicking build receives the synthesized
// ErrPanicked error and returns it as an ordinary error from its own
// outer build (e.g. a different class's report embedding the artifact).
// The outer DoCtx must recognize the sentinel and decline to cache it.
func TestPanicErrorNotCachedByOuterStage(t *testing.T) {
	c := New()
	builds := 0
	build := func() (any, error) {
		builds++
		if builds == 1 {
			// What a waiter observes from the doomed inner entry,
			// propagated verbatim up its own stack.
			return nil, fmt.Errorf("checking inner: %w",
				fmt.Errorf("%w: dfa build for key %q: kaboom", ErrPanicked, "inner"))
		}
		return "ok", nil
	}
	if _, err := c.Do(StageReport, "outer", build); !errors.Is(err, ErrPanicked) {
		t.Fatalf("first outer build: got %v, want ErrPanicked", err)
	}
	v, err := c.Do(StageReport, "outer", build)
	if err != nil || v.(string) != "ok" {
		t.Fatalf("outer stage cached the panic contamination: %v, %v", v, err)
	}
}

// TestPanicWaiterDoesNotPoisonOuterKey drives the same leak through
// real coalescing: W's outer build waits on the inner key while B's
// build of that key panics. Whatever W observes — the panic error (it
// latched the doomed entry) or a fresh rebuild (it arrived after the
// delete) — the outer key must end up rebuildable.
func TestPanicWaiterDoesNotPoisonOuterKey(t *testing.T) {
	c := New()
	gate := make(chan struct{})
	var innerCalls atomic.Int32
	innerBuild := func() (any, error) {
		if innerCalls.Add(1) == 1 {
			close(gate)
			panic("kaboom")
		}
		return "inner", nil
	}
	outerDone := make(chan error, 1)
	go func() {
		<-gate // only start once B's build is in flight (or already done)
		_, err := c.Do(StageReport, "outer", func() (any, error) {
			return c.Do(StageDFA, "inner", innerBuild)
		})
		outerDone <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the builder")
			}
		}()
		_, _ = c.Do(StageDFA, "inner", innerBuild)
	}()
	if err := <-outerDone; err != nil && !errors.Is(err, ErrPanicked) {
		t.Fatalf("waiter saw unexpected error: %v", err)
	}
	// Whichever race was observed, neither key may stay poisoned.
	v, err := c.Do(StageReport, "outer", func() (any, error) {
		return c.Do(StageDFA, "inner", innerBuild)
	})
	if err != nil || v.(string) != "inner" {
		t.Fatalf("outer key poisoned by coalesced panic: %v, %v", v, err)
	}
}

// TestDFAKeyIgnoresIrrelevantLimits pins the per-stage budget key
// projection: NFA-state and search-node limits cannot affect a
// regex→DFA compilation, so two requests differing only in those
// limits must share one cached automaton.
func TestDFAKeyIgnoresIrrelevantLimits(t *testing.T) {
	c := New()
	r := regex.MustParse("a . b")
	ctx1 := budget.With(context.Background(), budget.Limits{
		MaxDFAStates: 100, MaxRegexSize: 1000, MaxSearchNodes: 10})
	ctx2 := budget.With(context.Background(), budget.Limits{
		MaxDFAStates: 100, MaxRegexSize: 1000, MaxSearchNodes: 999_999, MaxNFAStates: 7})
	d1, err1 := c.MinimalDFA(ctx1, r)
	d2, err2 := c.MinimalDFA(ctx2, r)
	if err1 != nil || err2 != nil {
		t.Fatalf("compiles errored: %v, %v", err1, err2)
	}
	if d1 != d2 {
		t.Fatal("DFA key fragments on limits the compilation never consumes")
	}
	// A limit that CAN affect the artifact still separates entries.
	d3, err3 := c.MinimalDFA(budget.With(context.Background(),
		budget.Limits{MaxDFAStates: 99, MaxRegexSize: 1000}), r)
	if err3 != nil || d3 == d1 {
		t.Fatalf("distinct dfa-states limits alias one entry (%v)", err3)
	}
	if st := c.Stats().Of(StageDFA); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 2 misses / 1 hit", st)
	}
}

// TestBudgetInCacheKey ensures budget-exceeded results cannot poison
// the cache across budgets: the same regex compiled under a tiny budget
// caches its structured error, and a retry under a larger (or
// unlimited) budget hashes to a different key and succeeds.
func TestBudgetInCacheKey(t *testing.T) {
	c := New()
	r := regex.MustParse("(a + b)* . a . (a + b) . (a + b) . (a + b)")
	tiny := budget.With(context.Background(), budget.Limits{MaxDFAStates: 2})
	if _, err := c.MinimalDFA(tiny, r); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("tiny budget: got %v, want ErrExceeded", err)
	}
	// Deterministic: the error is served from cache on retry.
	if _, err := c.MinimalDFA(tiny, r); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("cached tiny-budget error lost: %v", err)
	}
	// A larger budget is a different cache key and must succeed.
	big := budget.With(context.Background(), budget.Default())
	d, err := c.MinimalDFA(big, r)
	if err != nil || d == nil {
		t.Fatalf("retry with larger budget failed: %v", err)
	}
	if !d.Accepts([]string{"b", "a", "a", "b", "a"}) {
		t.Fatal("larger-budget DFA is wrong")
	}
	// Unlimited context shares the pre-budget key and also succeeds.
	if _, err := c.MinimalDFA(context.Background(), r); err != nil {
		t.Fatalf("unlimited retry failed: %v", err)
	}
	if st := c.Stats().Of(StageDFA); st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 3 misses / 1 hit", st)
	}
}

package pipeline

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// bucketBounds are the inclusive upper bounds of the build wall-time
// histogram; one overflow bucket follows the last bound. The spread
// covers the observed range of the pipeline, from sub-microsecond
// behavior inference to multi-millisecond flatten/claim products.
var bucketBounds = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
}

// NumBuckets is the number of histogram buckets per stage (the bounds
// plus one overflow bucket).
const NumBuckets = len(bucketBounds) + 1

func bucketIndex(d time.Duration) int {
	for i, bound := range bucketBounds {
		if d <= bound {
			return i
		}
	}
	return len(bucketBounds)
}

// BucketIndex returns the histogram bucket for a duration, in
// [0, NumBuckets). Exported so other observability layers (the
// shelleyd request-latency histograms) share one bucketing scheme with
// the pipeline stats and their tables line up column for column.
func BucketIndex(d time.Duration) int { return bucketIndex(d) }

// BucketBound returns the inclusive upper bound of bucket i; the last
// (overflow) bucket has no bound and returns a negative duration.
func BucketBound(i int) time.Duration {
	if i < 0 || i >= len(bucketBounds) {
		return -1
	}
	return bucketBounds[i]
}

// BucketLabels returns the histogram column labels, in bucket order.
func BucketLabels() []string {
	out := make([]string, 0, NumBuckets)
	for _, bound := range bucketBounds {
		out = append(out, "≤"+bound.String())
	}
	return append(out, ">"+bucketBounds[len(bucketBounds)-1].String())
}

// stageCounters are the live atomics behind one stage's statistics.
type stageCounters struct {
	hits        atomic.Uint64
	misses      atomic.Uint64
	entries     atomic.Uint64
	persistHits atomic.Uint64
	buildNanos  atomic.Int64
	buckets     [NumBuckets]atomic.Uint64
}

// StageStats is a point-in-time snapshot of one stage.
type StageStats struct {
	// Stage is the stage name (Stage.String()).
	Stage string

	// Hits counts lookups served from the cache, including waiters
	// that piggybacked on an in-flight build.
	Hits uint64

	// Misses counts builds actually executed.
	Misses uint64

	// Entries is the number of cached artifacts (builds plus persisted
	// artifacts resurrected by the durable layer; entries are never
	// evicted — content-addressing makes stale entries unreachable
	// rather than wrong).
	Entries uint64

	// PersistHits counts misses answered by the durable artifact store
	// instead of a build (see Cache.Persist). They are counted apart
	// from Hits — a persist hit cost a disk read and a decode, not a
	// map lookup — and apart from Misses, which count builds actually
	// executed.
	PersistHits uint64

	// BuildTime is the total wall time spent in builds.
	BuildTime time.Duration

	// Buckets is the build wall-time histogram (see BucketLabels).
	Buckets [NumBuckets]uint64
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s StageStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats is a snapshot of every stage, in Stage order.
type Stats struct {
	Stages []StageStats
}

// Stats snapshots the cache's counters. A nil cache yields all-zero
// stats (stage names included, so renderers need no special case).
func (c *Cache) Stats() Stats {
	out := Stats{Stages: make([]StageStats, numStages)}
	for i := range out.Stages {
		st := &out.Stages[i]
		st.Stage = Stage(i).String()
		if c == nil {
			continue
		}
		cnt := &c.stats[i]
		st.Hits = cnt.hits.Load()
		st.Misses = cnt.misses.Load()
		st.Entries = cnt.entries.Load()
		st.PersistHits = cnt.persistHits.Load()
		st.BuildTime = time.Duration(cnt.buildNanos.Load())
		for b := range st.Buckets {
			st.Buckets[b] = cnt.buckets[b].Load()
		}
	}
	return out
}

// Of returns the snapshot of one stage.
func (s Stats) Of(stage Stage) StageStats {
	if int(stage) < 0 || int(stage) >= len(s.Stages) {
		return StageStats{Stage: stage.String()}
	}
	return s.Stages[stage]
}

// Sub returns the per-stage difference s − prev: the activity that
// happened between two snapshots of the same cache. Incremental
// re-verification uses it to pin exactly which stages re-executed for
// one edit (hits = artifacts reused, misses = builds actually run).
// Counters are clamped at zero so a snapshot pair from different caches
// degrades to zeros instead of wrapping.
func (s Stats) Sub(prev Stats) Stats {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	out := Stats{Stages: make([]StageStats, len(s.Stages))}
	for i, st := range s.Stages {
		d := st
		if i < len(prev.Stages) {
			p := prev.Stages[i]
			d.Hits = sub(st.Hits, p.Hits)
			d.Misses = sub(st.Misses, p.Misses)
			d.Entries = sub(st.Entries, p.Entries)
			d.PersistHits = sub(st.PersistHits, p.PersistHits)
			d.BuildTime = st.BuildTime - p.BuildTime
			if d.BuildTime < 0 {
				d.BuildTime = 0
			}
			for b := range d.Buckets {
				d.Buckets[b] = sub(st.Buckets[b], p.Buckets[b])
			}
		}
		out.Stages[i] = d
	}
	return out
}

// TotalHits sums hits over every stage.
func (s Stats) TotalHits() uint64 {
	var n uint64
	for _, st := range s.Stages {
		n += st.Hits
	}
	return n
}

// TotalMisses sums misses over every stage.
func (s Stats) TotalMisses() uint64 {
	var n uint64
	for _, st := range s.Stages {
		n += st.Misses
	}
	return n
}

// String renders the snapshot as the aligned table printed by the
// -stats flag of shelleyc and shelleysim.
func (s Stats) String() string {
	var b strings.Builder
	b.WriteString("pipeline cache:\n")
	header := append([]string{"stage", "hits", "misses", "entries", "hit%", "build-time"}, BucketLabels()...)
	rows := [][]string{header}
	for _, st := range s.Stages {
		row := []string{
			st.Stage,
			fmt.Sprintf("%d", st.Hits),
			fmt.Sprintf("%d", st.Misses),
			fmt.Sprintf("%d", st.Entries),
			fmt.Sprintf("%.0f%%", st.HitRate()*100),
			st.BuildTime.Round(time.Microsecond).String(),
		}
		for _, n := range st.Buckets {
			row = append(row, fmt.Sprintf("%d", n))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	for _, row := range rows {
		b.WriteString(" ")
		for i, cell := range row {
			pad := widths[i] - len([]rune(cell))
			b.WriteString(" ")
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	return b.String()
}

package pipeline

import (
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	tests := []struct {
		name string
		d    time.Duration
		want int
	}{
		{"zero lands in the first bucket", 0, 0},
		{"below first bound", 9 * time.Microsecond, 0},
		{"exact first bound is inclusive", 10 * time.Microsecond, 0},
		{"just past first bound", 10*time.Microsecond + 1, 1},
		{"exact second bound", 100 * time.Microsecond, 1},
		{"exact 1ms bound", time.Millisecond, 2},
		{"exact 10ms bound", 10 * time.Millisecond, 3},
		{"exact last bound", 100 * time.Millisecond, 4},
		{"just past last bound overflows", 100*time.Millisecond + 1, NumBuckets - 1},
		{"effectively +Inf overflows", time.Hour, NumBuckets - 1},
		{"negative clamps to first bucket", -time.Second, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BucketIndex(tt.d); got != tt.want {
				t.Errorf("BucketIndex(%v) = %d, want %d", tt.d, got, tt.want)
			}
		})
	}
}

func TestBucketIndexAlwaysInRange(t *testing.T) {
	for _, d := range []time.Duration{0, 1, time.Nanosecond, time.Microsecond,
		time.Millisecond, time.Second, time.Hour, -1} {
		if i := BucketIndex(d); i < 0 || i >= NumBuckets {
			t.Errorf("BucketIndex(%v) = %d out of [0, %d)", d, i, NumBuckets)
		}
	}
}

func TestBucketBoundMatchesIndex(t *testing.T) {
	// Every non-overflow bucket's bound must map back into that bucket.
	for i := 0; i < NumBuckets-1; i++ {
		bound := BucketBound(i)
		if bound < 0 {
			t.Fatalf("bucket %d has no bound", i)
		}
		if got := BucketIndex(bound); got != i {
			t.Errorf("BucketIndex(BucketBound(%d)=%v) = %d", i, bound, got)
		}
		if got := BucketIndex(bound + 1); got != i+1 {
			t.Errorf("BucketIndex(bound+1) = %d, want %d", got, i+1)
		}
	}
	if BucketBound(NumBuckets-1) >= 0 {
		t.Error("overflow bucket must report a negative bound")
	}
	if BucketBound(-1) >= 0 || BucketBound(NumBuckets) >= 0 {
		t.Error("out-of-range buckets must report a negative bound")
	}
	if len(BucketLabels()) != NumBuckets {
		t.Errorf("BucketLabels() has %d entries, want %d", len(BucketLabels()), NumBuckets)
	}
}

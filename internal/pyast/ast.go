// Package pyast defines the abstract syntax tree for the MicroPython
// subset supported by Shelley (§2 of the paper): modules containing
// decorated classes, whose decorated methods use if/elif/else,
// match/case, for, while, return, assignments, and call expressions.
package pyast

import "github.com/shelley-go/shelley/internal/pytoken"

// Node is implemented by every AST node.
type Node interface {
	// Pos returns the position of the node's first token.
	Pos() pytoken.Pos
}

// Module is a parsed source file.
type Module struct {
	// Classes are the top-level class definitions, in source order.
	Classes []*ClassDef

	// Stmts are top-level statements other than class definitions
	// (imports, calls, assignments); Shelley ignores them but the parser
	// keeps them so tooling can inspect whole programs.
	Stmts []Stmt
}

// Decorator is a class or method decorator: @name or @name(args).
type Decorator struct {
	// Name is the dotted decorator name (e.g. "sys", "op_initial").
	Name string

	// Args are the decorator call arguments; nil when the decorator was
	// written without parentheses.
	Args []Expr

	// Called distinguishes @name() (true, empty Args) from @name (false).
	Called bool

	NamePos pytoken.Pos
}

// Pos implements Node.
func (d *Decorator) Pos() pytoken.Pos { return d.NamePos }

// ClassDef is a class definition with its decorators and body.
type ClassDef struct {
	Name       string
	Decorators []*Decorator
	// Bases are the base-class expressions from `class C(Base):`.
	Bases   []Expr
	Methods []*FuncDef
	// Body keeps non-method statements in the class body (rare; e.g.
	// class-level assignments), for completeness.
	Body    []Stmt
	NamePos pytoken.Pos
}

// Pos implements Node.
func (c *ClassDef) Pos() pytoken.Pos { return c.NamePos }

// Method returns the method with the given name, or nil.
func (c *ClassDef) Method(name string) *FuncDef {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// FuncDef is a function or method definition.
type FuncDef struct {
	Name       string
	Decorators []*Decorator
	Params     []string
	Body       []Stmt
	NamePos    pytoken.Pos
}

// Pos implements Node.
func (f *FuncDef) Pos() pytoken.Pos { return f.NamePos }

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

type (
	// ExprStmt is an expression used as a statement, e.g. a method call.
	ExprStmt struct {
		X Expr
	}

	// Assign is target = value (single target; chained assignment is out
	// of the supported subset).
	Assign struct {
		Target Expr
		Value  Expr
	}

	// Return is `return` with zero or more comma-separated values. Per
	// Table 2 of the paper, the first value of an annotated method names
	// the set of next operations and the optional second value is the
	// user-facing return value.
	Return struct {
		Values    []Expr
		ReturnPos pytoken.Pos
	}

	// If is an if/elif/else chain; Elifs are flattened in source order.
	If struct {
		Cond  Expr
		Body  []Stmt
		Elifs []ElifClause
		Else  []Stmt
		IfPos pytoken.Pos
	}

	// Match is a match statement with its case clauses.
	Match struct {
		Subject  Expr
		Cases    []CaseClause
		MatchPos pytoken.Pos
	}

	// While is a while loop (the else clause is out of the subset).
	While struct {
		Cond     Expr
		Body     []Stmt
		WhilePos pytoken.Pos
	}

	// For is a for loop over an iterable.
	For struct {
		Target Expr
		Iter   Expr
		Body   []Stmt
		ForPos pytoken.Pos
	}

	// Pass is the no-op statement.
	Pass struct {
		PassPos pytoken.Pos
	}

	// Break exits the innermost loop.
	Break struct {
		BreakPos pytoken.Pos
	}

	// Continue restarts the innermost loop.
	Continue struct {
		ContinuePos pytoken.Pos
	}

	// Import is `import a.b` or `from a import b, c`; recorded verbatim
	// and ignored by the analysis.
	Import struct {
		Text      string
		ImportPos pytoken.Pos
	}
)

// ElifClause is one `elif cond:` arm.
type ElifClause struct {
	Cond Expr
	Body []Stmt
}

// CaseClause is one `case pattern:` arm. The analysis understands
// list-of-strings patterns (`case ["open"]:`) and the wildcard
// (`case _:`); other patterns parse but verify as wildcards.
type CaseClause struct {
	Pattern Expr
	Body    []Stmt
}

func (*ExprStmt) stmtNode() {}
func (*Assign) stmtNode()   {}
func (*Return) stmtNode()   {}
func (*If) stmtNode()       {}
func (*Match) stmtNode()    {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Pass) stmtNode()     {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Import) stmtNode()   {}

// Pos implementations.
func (s *ExprStmt) Pos() pytoken.Pos { return s.X.Pos() }
func (s *Assign) Pos() pytoken.Pos   { return s.Target.Pos() }
func (s *Return) Pos() pytoken.Pos   { return s.ReturnPos }
func (s *If) Pos() pytoken.Pos       { return s.IfPos }
func (s *Match) Pos() pytoken.Pos    { return s.MatchPos }
func (s *While) Pos() pytoken.Pos    { return s.WhilePos }
func (s *For) Pos() pytoken.Pos      { return s.ForPos }
func (s *Pass) Pos() pytoken.Pos     { return s.PassPos }
func (s *Break) Pos() pytoken.Pos    { return s.BreakPos }
func (s *Continue) Pos() pytoken.Pos { return s.ContinuePos }
func (s *Import) Pos() pytoken.Pos   { return s.ImportPos }

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

type (
	// NameExpr is an identifier.
	NameExpr struct {
		Name    string
		NamePos pytoken.Pos
	}

	// AttrExpr is value.attr (e.g. self.control, self.a.test).
	AttrExpr struct {
		Value Expr
		Attr  string
	}

	// CallExpr is fn(args).
	CallExpr struct {
		Fn   Expr
		Args []Expr
	}

	// ListExpr is [e1, ..., en].
	ListExpr struct {
		Elts []Expr
		LPos pytoken.Pos
	}

	// TupleExpr is e1, ..., en (as in `return ["x"], 2`).
	TupleExpr struct {
		Elts []Expr
	}

	// StringLit is a string literal (decoded).
	StringLit struct {
		Value string
		SPos  pytoken.Pos
	}

	// NumberLit is a numeric literal, kept as source text (the analysis
	// never evaluates numbers).
	NumberLit struct {
		Text string
		NPos pytoken.Pos
	}

	// BoolLit is True or False.
	BoolLit struct {
		Value bool
		BPos  pytoken.Pos
	}

	// NoneLit is None.
	NoneLit struct {
		NPos pytoken.Pos
	}

	// WildcardExpr is the `_` pattern in case clauses.
	WildcardExpr struct {
		WPos pytoken.Pos
	}

	// BinOpExpr is a binary operation; Op is the operator lexeme
	// ("==", "and", "+", ...). Conditions are erased by the analysis, so
	// operators are untyped here.
	BinOpExpr struct {
		Left  Expr
		Op    string
		Right Expr
	}

	// UnaryExpr is a prefix operation ("not", "-").
	UnaryExpr struct {
		Op    string
		X     Expr
		OpPos pytoken.Pos
	}
)

func (*NameExpr) exprNode()     {}
func (*AttrExpr) exprNode()     {}
func (*CallExpr) exprNode()     {}
func (*ListExpr) exprNode()     {}
func (*TupleExpr) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*NumberLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*NoneLit) exprNode()      {}
func (*WildcardExpr) exprNode() {}
func (*BinOpExpr) exprNode()    {}
func (*UnaryExpr) exprNode()    {}

func (e *NameExpr) Pos() pytoken.Pos { return e.NamePos }
func (e *AttrExpr) Pos() pytoken.Pos { return e.Value.Pos() }
func (e *CallExpr) Pos() pytoken.Pos { return e.Fn.Pos() }
func (e *ListExpr) Pos() pytoken.Pos { return e.LPos }
func (e *TupleExpr) Pos() pytoken.Pos {
	if len(e.Elts) > 0 {
		return e.Elts[0].Pos()
	}
	return pytoken.Pos{}
}
func (e *StringLit) Pos() pytoken.Pos    { return e.SPos }
func (e *NumberLit) Pos() pytoken.Pos    { return e.NPos }
func (e *BoolLit) Pos() pytoken.Pos      { return e.BPos }
func (e *NoneLit) Pos() pytoken.Pos      { return e.NPos }
func (e *WildcardExpr) Pos() pytoken.Pos { return e.WPos }
func (e *BinOpExpr) Pos() pytoken.Pos    { return e.Left.Pos() }
func (e *UnaryExpr) Pos() pytoken.Pos    { return e.OpPos }

// DottedName flattens a Name/Attr chain into its dotted form
// ("self.a.test") and reports whether the expression is such a chain.
func DottedName(e Expr) (string, bool) {
	switch e := e.(type) {
	case *NameExpr:
		return e.Name, true
	case *AttrExpr:
		prefix, ok := DottedName(e.Value)
		if !ok {
			return "", false
		}
		return prefix + "." + e.Attr, true
	}
	return "", false
}

// StringElements extracts the string values of a list literal whose
// elements are all string literals, as used in `return ["open", "clean"]`
// and `case ["open"]:`. The second result is false when e is not such a
// list.
func StringElements(e Expr) ([]string, bool) {
	list, ok := e.(*ListExpr)
	if !ok {
		return nil, false
	}
	out := make([]string, 0, len(list.Elts))
	for _, elt := range list.Elts {
		s, ok := elt.(*StringLit)
		if !ok {
			return nil, false
		}
		out = append(out, s.Value)
	}
	return out, true
}

package pyast

import (
	"fmt"
	"strconv"
	"strings"
)

// Unparse renders the module back to MicroPython source. The output is
// normalized (4-space indentation, one blank line between classes and
// methods) and re-parses to a structurally identical AST, which the
// round-trip tests rely on. Tooling uses it to display normalized
// sources and minimized repro cases.
func Unparse(m *Module) string {
	var b strings.Builder
	for i, s := range m.Stmts {
		if i > 0 {
			// no blank lines between top-level simple statements
			_ = i
		}
		writeStmt(&b, s, 0)
	}
	for i, c := range m.Classes {
		if i > 0 || len(m.Stmts) > 0 {
			b.WriteString("\n")
		}
		writeClass(&b, c)
	}
	return b.String()
}

// UnparseClass renders a single class definition.
func UnparseClass(c *ClassDef) string {
	var b strings.Builder
	writeClass(&b, c)
	return b.String()
}

// UnparseExpr renders an expression.
func UnparseExpr(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeClass(b *strings.Builder, c *ClassDef) {
	for _, d := range c.Decorators {
		writeDecorator(b, d)
	}
	b.WriteString("class ")
	b.WriteString(c.Name)
	if len(c.Bases) > 0 {
		b.WriteString("(")
		writeExprList(b, c.Bases)
		b.WriteString(")")
	}
	b.WriteString(":\n")
	wrote := false
	for _, s := range c.Body {
		writeStmt(b, s, 1)
		wrote = true
	}
	for i, m := range c.Methods {
		if i > 0 || wrote {
			b.WriteString("\n")
		}
		writeFunc(b, m, 1)
		wrote = true
	}
	if !wrote {
		writeIndent(b, 1)
		b.WriteString("pass\n")
	}
}

func writeDecorator(b *strings.Builder, d *Decorator) {
	b.WriteString("@")
	b.WriteString(d.Name)
	if d.Called {
		b.WriteString("(")
		writeExprList(b, d.Args)
		b.WriteString(")")
	}
	b.WriteString("\n")
}

func writeFunc(b *strings.Builder, f *FuncDef, indent int) {
	for _, d := range f.Decorators {
		writeIndent(b, indent)
		writeDecorator(b, d)
	}
	writeIndent(b, indent)
	b.WriteString("def ")
	b.WriteString(f.Name)
	b.WriteString("(")
	b.WriteString(strings.Join(f.Params, ", "))
	b.WriteString("):\n")
	if len(f.Body) == 0 {
		writeIndent(b, indent+1)
		b.WriteString("pass\n")
		return
	}
	for _, s := range f.Body {
		writeStmt(b, s, indent+1)
	}
}

func writeStmt(b *strings.Builder, s Stmt, indent int) {
	switch s := s.(type) {
	case *ExprStmt:
		writeIndent(b, indent)
		writeExpr(b, s.X)
		b.WriteString("\n")
	case *Assign:
		writeIndent(b, indent)
		writeExpr(b, s.Target)
		b.WriteString(" = ")
		writeExpr(b, s.Value)
		b.WriteString("\n")
	case *Return:
		writeIndent(b, indent)
		b.WriteString("return")
		if len(s.Values) > 0 {
			b.WriteString(" ")
			writeExprList(b, s.Values)
		}
		b.WriteString("\n")
	case *If:
		writeIndent(b, indent)
		b.WriteString("if ")
		writeExpr(b, s.Cond)
		b.WriteString(":\n")
		writeBlock(b, s.Body, indent+1)
		for _, e := range s.Elifs {
			writeIndent(b, indent)
			b.WriteString("elif ")
			writeExpr(b, e.Cond)
			b.WriteString(":\n")
			writeBlock(b, e.Body, indent+1)
		}
		if s.Else != nil {
			writeIndent(b, indent)
			b.WriteString("else:\n")
			writeBlock(b, s.Else, indent+1)
		}
	case *Match:
		writeIndent(b, indent)
		b.WriteString("match ")
		writeExpr(b, s.Subject)
		b.WriteString(":\n")
		for _, c := range s.Cases {
			writeIndent(b, indent+1)
			b.WriteString("case ")
			writeExpr(b, c.Pattern)
			b.WriteString(":\n")
			writeBlock(b, c.Body, indent+2)
		}
	case *While:
		writeIndent(b, indent)
		b.WriteString("while ")
		writeExpr(b, s.Cond)
		b.WriteString(":\n")
		writeBlock(b, s.Body, indent+1)
	case *For:
		writeIndent(b, indent)
		b.WriteString("for ")
		writeExpr(b, s.Target)
		b.WriteString(" in ")
		writeExpr(b, s.Iter)
		b.WriteString(":\n")
		writeBlock(b, s.Body, indent+1)
	case *Pass:
		writeIndent(b, indent)
		b.WriteString("pass\n")
	case *Break:
		writeIndent(b, indent)
		b.WriteString("break\n")
	case *Continue:
		writeIndent(b, indent)
		b.WriteString("continue\n")
	case *Import:
		writeIndent(b, indent)
		b.WriteString(s.Text)
		b.WriteString("\n")
	default:
		writeIndent(b, indent)
		fmt.Fprintf(b, "# <unknown statement %T>\n", s)
	}
}

func writeBlock(b *strings.Builder, body []Stmt, indent int) {
	if len(body) == 0 {
		writeIndent(b, indent)
		b.WriteString("pass\n")
		return
	}
	for _, s := range body {
		writeStmt(b, s, indent)
	}
}

// Expression precedence for minimal parenthesization, mirroring the
// parser's grammar.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
	precPostfix
)

func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *BinOpExpr:
		switch e.Op {
		case "or":
			return precOr
		case "and":
			return precAnd
		case "==", "!=", "<", ">", "<=", ">=", "in", "not in":
			return precCmp
		case "+", "-":
			return precAdd
		default:
			return precMul
		}
	case *UnaryExpr:
		if e.Op == "not" {
			return precNot
		}
		return precUnary
	default:
		return precPostfix
	}
}

func writeExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *NameExpr:
		b.WriteString(e.Name)
	case *AttrExpr:
		writeChildExpr(b, e.Value, precPostfix)
		b.WriteString(".")
		b.WriteString(e.Attr)
	case *CallExpr:
		writeChildExpr(b, e.Fn, precPostfix)
		b.WriteString("(")
		writeExprList(b, e.Args)
		b.WriteString(")")
	case *ListExpr:
		b.WriteString("[")
		writeExprList(b, e.Elts)
		b.WriteString("]")
	case *TupleExpr:
		// Always parenthesized: a bare `0, 0` is only legal in the few
		// positions the parser builds tuples for (return values), which
		// print their element lists directly.
		b.WriteString("(")
		writeExprList(b, e.Elts)
		b.WriteString(")")
	case *StringLit:
		b.WriteString(strconv.Quote(e.Value))
	case *NumberLit:
		b.WriteString(e.Text)
	case *BoolLit:
		if e.Value {
			b.WriteString("True")
		} else {
			b.WriteString("False")
		}
	case *NoneLit:
		b.WriteString("None")
	case *WildcardExpr:
		b.WriteString("_")
	case *BinOpExpr:
		p := exprPrec(e)
		writeChildExpr(b, e.Left, p)
		b.WriteString(" ")
		b.WriteString(e.Op)
		b.WriteString(" ")
		// Left-associative: the right child needs parens at equal
		// precedence.
		writeChildExpr(b, e.Right, p+1)
	case *UnaryExpr:
		b.WriteString(e.Op)
		if e.Op == "not" {
			b.WriteString(" ")
		}
		writeChildExpr(b, e.X, exprPrec(e))
	default:
		fmt.Fprintf(b, "<unknown expr %T>", e)
	}
}

func writeChildExpr(b *strings.Builder, e Expr, parent int) {
	if exprPrec(e) < parent {
		b.WriteString("(")
		writeExpr(b, e)
		b.WriteString(")")
		return
	}
	writeExpr(b, e)
}

func writeExprList(b *strings.Builder, es []Expr) {
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		writeExpr(b, e)
	}
}

func writeIndent(b *strings.Builder, level int) {
	for i := 0; i < level; i++ {
		b.WriteString("    ")
	}
}

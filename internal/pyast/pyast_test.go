package pyast_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyparse"
)

// The tests live in pyast_test to use the parser without an import
// cycle (pyparse imports pyast).

func parseModule(t *testing.T, src string) *pyast.Module {
	t.Helper()
	m, err := pyparse.ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestUnparseRoundTripTestdata(t *testing.T) {
	for _, file := range []string{"valve.py", "badsector.py", "goodsector.py", "sector.py"} {
		t.Run(file, func(t *testing.T) {
			src := readTestdata(t, file)
			m1 := parseModule(t, src)
			out1 := pyast.Unparse(m1)
			m2 := parseModule(t, out1)
			out2 := pyast.Unparse(m2)
			// The printer is a normal form: printing is idempotent after
			// one round.
			if out1 != out2 {
				t.Errorf("unparse not idempotent for %s:\n--- first ---\n%s\n--- second ---\n%s",
					file, out1, out2)
			}
		})
	}
}

func TestUnparseShapes(t *testing.T) {
	src := `@claim("(!a.open) W b.open")
@sys(["a", "b"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial
    def m(self, n):
        while self.ok() and not done:
            for i in range(10):
                self.a.test()
        if x == 1:
            return ["m"], True
        elif y:
            pass
        else:
            match self.a.test():
                case ["open"]:
                    return []
                case _:
                    return []
        return -1
`
	m := parseModule(t, src)
	out := pyast.Unparse(m)
	for _, want := range []string{
		`@claim("(!a.open) W b.open")`,
		`@sys(["a", "b"])`,
		"class C:",
		"def __init__(self):",
		"self.a = Valve()",
		"@op_initial",
		"def m(self, n):",
		"while self.ok() and not done:",
		"for i in range(10):",
		"if x == 1:",
		`return ["m"], True`,
		"elif y:",
		"match self.a.test():",
		`case ["open"]:`,
		"case _:",
		"return -1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("unparse missing %q:\n%s", want, out)
		}
	}
	// Round trip must re-parse.
	if _, err := pyparse.ParseModule(out); err != nil {
		t.Fatalf("unparse output does not reparse: %v\n%s", err, out)
	}
}

func TestUnparsePrecedence(t *testing.T) {
	src := `class C:
    def m(self):
        x = (a + b) * c
        y = a + b * c
        z = not (a and b)
        w = -(a + b)
        v = (a or b) and c
`
	m := parseModule(t, src)
	out := pyast.Unparse(m)
	for _, want := range []string{
		"x = (a + b) * c",
		"y = a + b * c",
		"z = not (a and b)",
		"w = -(a + b)",
		"v = (a or b) and c",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("precedence: missing %q in\n%s", want, out)
		}
	}
}

func TestUnparseEmptyBodies(t *testing.T) {
	cls := &pyast.ClassDef{Name: "Empty"}
	out := pyast.UnparseClass(cls)
	if !strings.Contains(out, "class Empty:") || !strings.Contains(out, "pass") {
		t.Errorf("empty class:\n%s", out)
	}
}

func TestUnparseExpr(t *testing.T) {
	m := parseModule(t, "x = self.a.test(1, \"s\", [True, None])\n")
	asg := m.Stmts[0].(*pyast.Assign)
	got := pyast.UnparseExpr(asg.Value)
	if got != `self.a.test(1, "s", [True, None])` {
		t.Errorf("UnparseExpr = %q", got)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	m := parseModule(t, readTestdata(t, "badsector.py"))
	var classes, funcs, calls, returns, matches int
	pyast.WalkModule(m, func(n pyast.Node) bool {
		switch n.(type) {
		case *pyast.ClassDef:
			classes++
		case *pyast.FuncDef:
			funcs++
		case *pyast.CallExpr:
			calls++
		case *pyast.Return:
			returns++
		case *pyast.Match:
			matches++
		}
		return true
	})
	if classes != 1 {
		t.Errorf("classes = %d", classes)
	}
	if funcs != 3 { // __init__, open_a, open_b
		t.Errorf("funcs = %d", funcs)
	}
	if returns != 4 {
		t.Errorf("returns = %d", returns)
	}
	if matches != 2 {
		t.Errorf("matches = %d", matches)
	}
	if calls < 8 {
		t.Errorf("calls = %d, want at least 8", calls)
	}
}

func TestWalkPrune(t *testing.T) {
	m := parseModule(t, readTestdata(t, "badsector.py"))
	var visited int
	pyast.WalkModule(m, func(n pyast.Node) bool {
		visited++
		_, isFunc := n.(*pyast.FuncDef)
		return !isFunc // do not descend into method bodies
	})
	var all int
	pyast.WalkModule(m, func(pyast.Node) bool { all++; return true })
	if visited >= all {
		t.Errorf("pruned walk visited %d, full walk %d", visited, all)
	}
}

func TestWalkNil(t *testing.T) {
	// Walking nil must be a no-op, not a panic.
	pyast.Walk(nil, func(pyast.Node) bool { t.Fatal("visited nil"); return true })
}

func TestDottedName(t *testing.T) {
	m := parseModule(t, "x = self.a.b.c\ny = f().g\n")
	asg := m.Stmts[0].(*pyast.Assign)
	name, ok := pyast.DottedName(asg.Value)
	if !ok || name != "self.a.b.c" {
		t.Errorf("DottedName = %q, %v", name, ok)
	}
	asg2 := m.Stmts[1].(*pyast.Assign)
	if _, ok := pyast.DottedName(asg2.Value); ok {
		t.Error("call-rooted chain should not be a dotted name")
	}
}

func TestStringElements(t *testing.T) {
	m := parseModule(t, "a = [\"x\", \"y\"]\nb = []\nc = [\"x\", 1]\nd = 5\n")
	get := func(i int) pyast.Expr { return m.Stmts[i].(*pyast.Assign).Value }
	if els, ok := pyast.StringElements(get(0)); !ok || len(els) != 2 || els[1] != "y" {
		t.Errorf("case a: %v %v", els, ok)
	}
	if els, ok := pyast.StringElements(get(1)); !ok || len(els) != 0 {
		t.Errorf("case b: %v %v", els, ok)
	}
	if _, ok := pyast.StringElements(get(2)); ok {
		t.Error("mixed list should fail")
	}
	if _, ok := pyast.StringElements(get(3)); ok {
		t.Error("non-list should fail")
	}
}

func TestNodePositions(t *testing.T) {
	src := `import os

@sys
class C:
    def m(self, p):
        x = 1
        self.a.f([1], (2, 3))
        if not x:
            return ["m"], True
        while x < 2:
            pass
        for i in r():
            break
        match x:
            case _:
                continue
`
	m := parseModule(t, src)
	// Every node reachable by the walker must report a plausible
	// position (line ≥ 1) — Pos is what diagnostics anchor on.
	count := 0
	pyast.WalkModule(m, func(n pyast.Node) bool {
		count++
		if n.Pos().Line < 1 && !isPositionlessOK(n) {
			t.Errorf("node %T has no position", n)
		}
		return true
	})
	if count < 25 {
		t.Errorf("walker visited only %d nodes", count)
	}
	cls := m.Classes[0]
	if cls.Pos().Line != 4 {
		t.Errorf("class at line %d, want 4", cls.Pos().Line)
	}
	method := cls.Methods[0]
	if method.Pos().Line != 5 {
		t.Errorf("method at line %d, want 5", method.Pos().Line)
	}
	if m.Stmts[0].Pos().Line != 1 {
		t.Errorf("import at line %d", m.Stmts[0].Pos().Line)
	}
}

// isPositionlessOK allows the empty TupleExpr, whose position is the
// zero value by construction.
func isPositionlessOK(n pyast.Node) bool {
	tup, ok := n.(*pyast.TupleExpr)
	return ok && len(tup.Elts) == 0
}

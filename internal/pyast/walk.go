package pyast

// Walk traverses the node in depth-first, source order, calling visit
// for every node. If visit returns false the node's children are
// skipped. Tools use it for counting, searching, and linting.
func Walk(n Node, visit func(Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	switch n := n.(type) {
	case *ClassDef:
		for _, d := range n.Decorators {
			Walk(d, visit)
		}
		for _, b := range n.Bases {
			Walk(b, visit)
		}
		for _, s := range n.Body {
			Walk(s, visit)
		}
		for _, m := range n.Methods {
			Walk(m, visit)
		}
	case *FuncDef:
		for _, d := range n.Decorators {
			Walk(d, visit)
		}
		walkStmts(n.Body, visit)
	case *Decorator:
		for _, a := range n.Args {
			Walk(a, visit)
		}
	case *ExprStmt:
		Walk(n.X, visit)
	case *Assign:
		Walk(n.Target, visit)
		Walk(n.Value, visit)
	case *Return:
		for _, v := range n.Values {
			Walk(v, visit)
		}
	case *If:
		Walk(n.Cond, visit)
		walkStmts(n.Body, visit)
		for _, e := range n.Elifs {
			Walk(e.Cond, visit)
			walkStmts(e.Body, visit)
		}
		walkStmts(n.Else, visit)
	case *Match:
		Walk(n.Subject, visit)
		for _, c := range n.Cases {
			Walk(c.Pattern, visit)
			walkStmts(c.Body, visit)
		}
	case *While:
		Walk(n.Cond, visit)
		walkStmts(n.Body, visit)
	case *For:
		Walk(n.Target, visit)
		Walk(n.Iter, visit)
		walkStmts(n.Body, visit)
	case *AttrExpr:
		Walk(n.Value, visit)
	case *CallExpr:
		Walk(n.Fn, visit)
		for _, a := range n.Args {
			Walk(a, visit)
		}
	case *ListExpr:
		for _, e := range n.Elts {
			Walk(e, visit)
		}
	case *TupleExpr:
		for _, e := range n.Elts {
			Walk(e, visit)
		}
	case *BinOpExpr:
		Walk(n.Left, visit)
		Walk(n.Right, visit)
	case *UnaryExpr:
		Walk(n.X, visit)
	}
}

// WalkModule walks every class and top-level statement of a module.
func WalkModule(m *Module, visit func(Node) bool) {
	for _, s := range m.Stmts {
		Walk(s, visit)
	}
	for _, c := range m.Classes {
		Walk(c, visit)
	}
}

func walkStmts(body []Stmt, visit func(Node) bool) {
	for _, s := range body {
		Walk(s, visit)
	}
}

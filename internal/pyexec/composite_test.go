package pyexec

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/hw"
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func parsePaperModule(t *testing.T, files ...string) *pyast.Module {
	t.Helper()
	src := ""
	for _, f := range files {
		b, err := os.ReadFile(filepath.Join("..", "..", "testdata", f))
		if err != nil {
			t.Fatal(err)
		}
		src += string(b) + "\n"
	}
	m, err := pyparse.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func classOf(t *testing.T, m *pyast.Module, name string) *pyast.ClassDef {
	t.Helper()
	for _, c := range m.Classes {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("class %s missing", name)
	return nil
}

// TestBadSectorConcreteExecution runs the paper's §2.2 case study fully
// concretely: BadSector's __init__ builds two real Valve devices, the
// match statements dispatch on the lists a.test() actually returns, and
// the bug (valve a left open after open_a) materializes as a high
// control pin and a dangling subsystem.
func TestBadSectorConcreteExecution(t *testing.T) {
	m := parsePaperModule(t, "valve.py", "badsector.py")
	board := hw.NewBoard()
	env := NewEnv(board)
	env.RegisterModule(m)

	sector, err := NewObject(classOf(t, m, "BadSector"), env)
	if err != nil {
		t.Fatal(err)
	}
	// Both valves share the same pin numbers in the listing; on a real
	// board they'd differ, but the emulation is per-constructor-call
	// only for IN pins set via the board. Drive the shared status pin
	// high: a.test takes the ["open"] branch.
	board.SetInput(29, true)

	next, _, err := sector.Call("open_a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"open_b"}) {
		t.Fatalf("open_a returned %v, want [open_b]", next)
	}
	// Valve a took test→open: it is NOT stoppable — the §2.2 bug, live.
	if sector.CanStop() != true {
		t.Error("open_a is @op_initial_final: the composite protocol lets the caller stop")
	}
	if got := sector.DanglingFields(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("dangling = %v, want [a] (valve a left open)", got)
	}
	a, ok := sector.SubObject("a")
	if !ok {
		t.Fatal("subsystem a missing")
	}
	if a.CanStop() {
		t.Error("valve a is open (not final)")
	}
	// The physical control pin is high.
	if got := board.HighPins(); !reflect.DeepEqual(got, []int{27, 29}) {
		t.Errorf("high pins = %v, want [27 29]", got)
	}

	// Completing the protocol with open_b closes both valves.
	next, _, err = sector.Call("open_b")
	if err != nil {
		t.Fatalf("open_b: %v", err)
	}
	if len(next) != 0 {
		t.Errorf("open_b returned %v", next)
	}
	if got := sector.DanglingFields(); len(got) != 0 {
		t.Errorf("dangling after open_b = %v", got)
	}
	if got := board.HighPins(); !reflect.DeepEqual(got, []int{29}) {
		t.Errorf("high pins after full run = %v, want only the sensor", got)
	}
}

func TestBadSectorConcreteCleanBranch(t *testing.T) {
	m := parsePaperModule(t, "valve.py", "badsector.py")
	board := hw.NewBoard()
	env := NewEnv(board)
	env.RegisterModule(m)
	sector, err := NewObject(classOf(t, m, "BadSector"), env)
	if err != nil {
		t.Fatal(err)
	}
	board.SetInput(29, false) // a.test takes the ["clean"] branch
	next, _, err := sector.Call("open_a")
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 0 {
		t.Errorf("clean branch returns []; got %v", next)
	}
	// After the clean branch, nothing may follow.
	if _, _, err := sector.Call("open_b"); err == nil {
		t.Error("open_b must be rejected after the [] return")
	}
	if got := sector.DanglingFields(); len(got) != 0 {
		t.Errorf("dangling = %v (clean is final)", got)
	}
}

func TestGoodSectorConcreteExecution(t *testing.T) {
	m := parsePaperModule(t, "valve.py", "goodsector.py")
	board := hw.NewBoard()
	env := NewEnv(board)
	env.RegisterModule(m)
	sector, err := NewObject(classOf(t, m, "GoodSector"), env)
	if err != nil {
		t.Fatal(err)
	}
	board.SetInput(29, true) // both valves read openable
	if _, _, err := sector.Call("run"); err != nil {
		t.Fatal(err)
	}
	if got := sector.DanglingFields(); len(got) != 0 {
		t.Errorf("GoodSector must leave no valve open: %v", got)
	}
	if !sector.CanStop() {
		t.Error("run is final")
	}
	// Only the sensor pin remains high.
	if got := board.HighPins(); !reflect.DeepEqual(got, []int{29}) {
		t.Errorf("high pins = %v", got)
	}
}

func TestConstructorArityAndMethodArgsRejected(t *testing.T) {
	m := parsePaperModule(t, "valve.py")
	env := NewEnv(hw.NewBoard())
	env.RegisterModule(m)
	src := `class C:
    def __init__(self):
        self.v = Valve(1)

    @op_initial
    def m(self):
        return []
`
	cls, err := pyparse.ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewObject(cls, env); err == nil || !strings.Contains(err.Error(), "no arguments") {
		t.Errorf("err = %v", err)
	}
}

// TestThreeLevelConcreteExecution runs a Controller → Sector → Valve
// hierarchy fully concretely, the deepest composition the valvefarm
// example verifies statically.
func TestThreeLevelConcreteExecution(t *testing.T) {
	src := `
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["skip_it"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def skip_it(self):
        return ["test"]


@sys(["v"])
class Sector:
    def __init__(self):
        self.v = Valve()

    @op_initial_final
    def water(self):
        match self.v.test():
            case ["open"]:
                self.v.open()
                self.v.close()
                return ["water"]
            case ["skip_it"]:
                self.v.skip_it()
                return ["water"]


@sys(["s"])
class Controller:
    def __init__(self):
        self.s = Sector()

    @op_initial_final
    def day(self):
        self.s.water()
        self.s.water()
        return ["day"]
`
	m, err := pyparse.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	board := hw.NewBoard()
	env := NewEnv(board)
	env.RegisterModule(m)
	ctl, err := NewObject(classOf(t, m, "Controller"), env)
	if err != nil {
		t.Fatal(err)
	}
	board.SetInput(29, true)
	if _, _, err := ctl.Call("day"); err != nil {
		t.Fatalf("day: %v", err)
	}
	if got := ctl.DanglingFields(); len(got) != 0 {
		t.Errorf("dangling = %v", got)
	}
	// Descend two levels: the valve really cycled.
	sector, ok := ctl.SubObject("s")
	if !ok {
		t.Fatal("sector missing")
	}
	valve, ok := sector.SubObject("v")
	if !ok {
		t.Fatal("valve missing")
	}
	if !valve.CanStop() {
		t.Error("valve should be closed")
	}
	// Running day again works (water is repeatable).
	if _, _, err := ctl.Call("day"); err != nil {
		t.Fatalf("second day: %v", err)
	}
}

// TestConcreteEventsRecorded: the env records the flattened subsystem
// trace of a concrete composite run, in execution order.
func TestConcreteEventsRecorded(t *testing.T) {
	m := parsePaperModule(t, "valve.py", "goodsector.py")
	board := hw.NewBoard()
	env := NewEnv(board)
	env.RegisterModule(m)
	sector, err := NewObject(classOf(t, m, "GoodSector"), env)
	if err != nil {
		t.Fatal(err)
	}
	board.SetInput(29, true)
	if _, _, err := sector.Call("run"); err != nil {
		t.Fatal(err)
	}
	want := []string{"b.test", "b.open", "a.test", "a.open", "a.close", "b.close"}
	if got := env.Events(); !reflect.DeepEqual(got, want) {
		t.Errorf("events = %v, want %v", got, want)
	}
	env.ResetEvents()
	if len(env.Events()) != 0 {
		t.Error("ResetEvents should clear the log")
	}
}

package pyexec

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/shelley-go/shelley/internal/pyast"
)

// eval evaluates an expression to a value.
func (o *Object) eval(e pyast.Expr) (Value, error) {
	switch e := e.(type) {
	case *pyast.NameExpr:
		if e.Name == "self" {
			return nil, fmt.Errorf("'self' cannot be used as a bare value in the subset")
		}
		if v, ok := o.env.globals[e.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("undefined name %q", e.Name)
	case *pyast.NumberLit:
		n, err := parseInt(e.Text)
		if err != nil {
			return nil, err
		}
		return IntValue{V: n}, nil
	case *pyast.StringLit:
		return StringValue{V: e.Value}, nil
	case *pyast.BoolLit:
		return BoolValue{V: e.Value}, nil
	case *pyast.NoneLit:
		return NoneValue{}, nil
	case *pyast.ListExpr:
		elems := make([]Value, len(e.Elts))
		for i, elt := range e.Elts {
			v, err := o.eval(elt)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return ListValue{Elems: elems}, nil
	case *pyast.TupleExpr:
		elems := make([]Value, len(e.Elts))
		for i, elt := range e.Elts {
			v, err := o.eval(elt)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return TupleValue{Elems: elems}, nil
	case *pyast.AttrExpr:
		if base, ok := e.Value.(*pyast.NameExpr); ok && base.Name == "self" {
			if v, ok := o.fields[e.Attr]; ok {
				return v, nil
			}
			return nil, fmt.Errorf("object has no field %q", e.Attr)
		}
		return nil, fmt.Errorf("unsupported attribute access")
	case *pyast.CallExpr:
		return o.evalCall(e)
	case *pyast.UnaryExpr:
		v, err := o.eval(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "not":
			return BoolValue{V: !Truthy(v)}, nil
		case "-":
			iv, ok := v.(IntValue)
			if !ok {
				return nil, fmt.Errorf("unary - needs an int, got %s", v.valueKind())
			}
			return IntValue{V: -iv.V}, nil
		default:
			return nil, fmt.Errorf("unsupported unary operator %q", e.Op)
		}
	case *pyast.BinOpExpr:
		return o.evalBinOp(e)
	case *pyast.WildcardExpr:
		return nil, fmt.Errorf("'_' is only a pattern")
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func (o *Object) evalBinOp(e *pyast.BinOpExpr) (Value, error) {
	// Short-circuit boolean operators evaluate lazily and return the
	// deciding operand, like Python.
	switch e.Op {
	case "and":
		l, err := o.eval(e.Left)
		if err != nil {
			return nil, err
		}
		if !Truthy(l) {
			return l, nil
		}
		return o.eval(e.Right)
	case "or":
		l, err := o.eval(e.Left)
		if err != nil {
			return nil, err
		}
		if Truthy(l) {
			return l, nil
		}
		return o.eval(e.Right)
	}

	l, err := o.eval(e.Left)
	if err != nil {
		return nil, err
	}
	r, err := o.eval(e.Right)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "==":
		return BoolValue{V: equal(l, r)}, nil
	case "!=":
		return BoolValue{V: !equal(l, r)}, nil
	case "in":
		list, ok := r.(ListValue)
		if !ok {
			return nil, fmt.Errorf("'in' needs a list, got %s", r.valueKind())
		}
		for _, el := range list.Elems {
			if equal(l, el) {
				return BoolValue{V: true}, nil
			}
		}
		return BoolValue{V: false}, nil
	case "not in":
		inRes, err := o.evalBinOp(&pyast.BinOpExpr{Left: e.Left, Op: "in", Right: e.Right})
		if err != nil {
			return nil, err
		}
		return BoolValue{V: !Truthy(inRes)}, nil
	case "+", "-", "*", "/", "%", "<", ">", "<=", ">=":
		li, lok := l.(IntValue)
		ri, rok := r.(IntValue)
		if !lok || !rok {
			if e.Op == "+" {
				if ls, ok := l.(StringValue); ok {
					if rs, ok := r.(StringValue); ok {
						return StringValue{V: ls.V + rs.V}, nil
					}
				}
			}
			return nil, fmt.Errorf("operator %q needs ints, got %s and %s", e.Op, l.valueKind(), r.valueKind())
		}
		switch e.Op {
		case "+":
			return IntValue{V: li.V + ri.V}, nil
		case "-":
			return IntValue{V: li.V - ri.V}, nil
		case "*":
			return IntValue{V: li.V * ri.V}, nil
		case "/":
			if ri.V == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			return IntValue{V: li.V / ri.V}, nil
		case "%":
			if ri.V == 0 {
				return nil, fmt.Errorf("modulo by zero")
			}
			return IntValue{V: li.V % ri.V}, nil
		case "<":
			return BoolValue{V: li.V < ri.V}, nil
		case ">":
			return BoolValue{V: li.V > ri.V}, nil
		case "<=":
			return BoolValue{V: li.V <= ri.V}, nil
		default:
			return BoolValue{V: li.V >= ri.V}, nil
		}
	default:
		return nil, fmt.Errorf("unsupported operator %q", e.Op)
	}
}

func (o *Object) evalCall(e *pyast.CallExpr) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := o.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}

	switch fn := e.Fn.(type) {
	case *pyast.NameExpr:
		switch fn.Name {
		case "print":
			return NoneValue{}, nil // side-effect free in the emulator
		case "len":
			if len(args) != 1 {
				return nil, fmt.Errorf("len takes one argument")
			}
			switch v := args[0].(type) {
			case ListValue:
				return IntValue{V: int64(len(v.Elems))}, nil
			case StringValue:
				return IntValue{V: int64(len(v.V))}, nil
			default:
				return nil, fmt.Errorf("len of %s", args[0].valueKind())
			}
		}
		if builtin, ok := o.env.builtins[fn.Name]; ok {
			return builtin(args)
		}
		return nil, fmt.Errorf("unknown function or constructor %q", fn.Name)
	case *pyast.AttrExpr:
		recv, err := o.eval(fn.Value)
		if err != nil {
			return nil, err
		}
		// Record calls on object-valued self fields ("self.a.test()" →
		// event "a.test"), mirroring the checker's flattened traces.
		if _, isObj := recv.(ObjectValue); isObj {
			if base, ok := fn.Value.(*pyast.AttrExpr); ok {
				if root, ok := base.Value.(*pyast.NameExpr); ok && root.Name == "self" {
					o.env.events = append(o.env.events, base.Attr+"."+fn.Attr)
				}
			}
		}
		return callMethodOnValue(recv, fn.Attr, args)
	default:
		return nil, fmt.Errorf("unsupported call target %T", e.Fn)
	}
}

// callMethodOnValue dispatches pin and object methods; other receivers
// have no callable methods in the subset.
func callMethodOnValue(recv Value, method string, args []Value) (Value, error) {
	if obj, ok := recv.(ObjectValue); ok {
		return callObjectMethod(obj, method, args)
	}
	pin, ok := recv.(PinValue)
	if !ok {
		return nil, fmt.Errorf("%s has no method %q", recv.valueKind(), method)
	}
	switch method {
	case "on":
		if err := pin.Pin.On(); err != nil {
			return nil, err
		}
		return NoneValue{}, nil
	case "off":
		if err := pin.Pin.Off(); err != nil {
			return nil, err
		}
		return NoneValue{}, nil
	case "value":
		if len(args) == 0 {
			if pin.Pin.Value() {
				return IntValue{V: 1}, nil
			}
			return IntValue{V: 0}, nil
		}
		// value(x) drives the pin.
		if Truthy(args[0]) {
			return NoneValue{}, pin.Pin.On()
		}
		return NoneValue{}, pin.Pin.Off()
	default:
		return nil, fmt.Errorf("Pin has no method %q", method)
	}
}

// matches implements the case-pattern semantics used by the subset:
// wildcard matches anything; list-of-strings patterns match equal
// lists; literals match equal values.
func (o *Object) matches(pattern pyast.Expr, subject Value) (bool, error) {
	if _, wild := pattern.(*pyast.WildcardExpr); wild {
		return true, nil
	}
	want, err := o.eval(pattern)
	if err != nil {
		return false, err
	}
	return equal(want, subject), nil
}

func equal(a, b Value) bool {
	switch a := a.(type) {
	case NoneValue:
		_, ok := b.(NoneValue)
		return ok
	case BoolValue:
		bb, ok := b.(BoolValue)
		return ok && a.V == bb.V
	case IntValue:
		bb, ok := b.(IntValue)
		return ok && a.V == bb.V
	case StringValue:
		bb, ok := b.(StringValue)
		return ok && a.V == bb.V
	case ListValue:
		bb, ok := b.(ListValue)
		if !ok || len(a.Elems) != len(bb.Elems) {
			return false
		}
		for i := range a.Elems {
			if !equal(a.Elems[i], bb.Elems[i]) {
				return false
			}
		}
		return true
	case TupleValue:
		bb, ok := b.(TupleValue)
		if !ok || len(a.Elems) != len(bb.Elems) {
			return false
		}
		for i := range a.Elems {
			if !equal(a.Elems[i], bb.Elems[i]) {
				return false
			}
		}
		return true
	case PinValue:
		bb, ok := b.(PinValue)
		return ok && a.Pin == bb.Pin
	default:
		return false
	}
}

func parseInt(text string) (int64, error) {
	clean := strings.ReplaceAll(text, "_", "")
	n, err := strconv.ParseInt(clean, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("unsupported numeric literal %q", text)
	}
	return n, nil
}

package pyexec

import (
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/hw"
	"github.com/shelley-go/shelley/internal/pyparse"
)

// evalIn runs `return <expr>` inside a one-method class and returns the
// value or error — a compact harness for expression-level tests.
func evalIn(t *testing.T, expr string, setup func(*Env)) (Value, error) {
	t.Helper()
	src := "class C:\n    @op_initial\n    def m(self):\n        return " + expr + "\n"
	cls, err := pyparse.ParseClass(src, "C")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	env := NewEnv(hw.NewBoard())
	if setup != nil {
		setup(env)
	}
	obj, err := NewObject(cls, env)
	if err != nil {
		t.Fatal(err)
	}
	_, user, err := obj.Call("m")
	return user, err
}

func TestEvalExpressions(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"1 + 2 * 3", IntValue{V: 7}},
		{"10 - 4", IntValue{V: 6}},
		{"7 / 2", IntValue{V: 3}},
		{"7 % 3", IntValue{V: 1}},
		{"-5", IntValue{V: -5}},
		{"1 < 2", BoolValue{V: true}},
		{"2 <= 1", BoolValue{V: false}},
		{"3 > 1", BoolValue{V: true}},
		{"3 >= 4", BoolValue{V: false}},
		{"1 == 1", BoolValue{V: true}},
		{"1 != 1", BoolValue{V: false}},
		{"not 0", BoolValue{V: true}},
		{"True and 5", IntValue{V: 5}},
		{"0 or 9", IntValue{V: 9}},
		{"\"a\" + \"b\"", StringValue{V: "ab"}},
		{"2 in [1, 2]", BoolValue{V: true}},
		{"3 not in [1, 2]", BoolValue{V: true}},
		{"len([1, 2, 3])", IntValue{V: 3}},
		{"len(\"abcd\")", IntValue{V: 4}},
		{"None", NoneValue{}},
		{"0x10", IntValue{V: 16}},
		{"1_000", IntValue{V: 1000}},
	}
	for _, tt := range tests {
		got, err := evalIn(t, tt.expr, nil)
		if err != nil {
			t.Errorf("%s: %v", tt.expr, err)
			continue
		}
		if !equal(got, tt.want) {
			t.Errorf("%s = %#v, want %#v", tt.expr, got, tt.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	exprs := []string{
		"nope",          // undefined name
		"1 + \"a\"",     // type error
		"\"a\" < \"b\"", // comparison needs ints
		"-True",         // unary minus on bool
		"1 in 2",        // in needs a list
		"len(1)",        // len of int
		"f(1)",          // unknown function
		"self",          // bare self
		"1 / 0",
		"1 % 0",
		"3.14", // floats unsupported
	}
	for _, expr := range exprs {
		if _, err := evalIn(t, expr, nil); err == nil {
			t.Errorf("%s: expected error", expr)
		}
	}
}

func TestPinValueDriveThroughValueMethod(t *testing.T) {
	src := `class C:
    def __init__(self):
        self.led = Pin(3, OUT)

    @op_initial
    def m(self):
        self.led.value(1)
        x = self.led.value()
        self.led.value(0)
        return ["m"], x
`
	cls, err := pyparse.ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	board := hw.NewBoard()
	obj, err := NewObject(cls, NewEnv(board))
	if err != nil {
		t.Fatal(err)
	}
	_, user, err := obj.Call("m")
	if err != nil {
		t.Fatal(err)
	}
	if iv, ok := user.(IntValue); !ok || iv.V != 1 {
		t.Errorf("read back %v, want 1", user)
	}
	if board.Pin(3, hw.Out).Value() {
		t.Error("pin should be low at the end")
	}
	// Unknown pin method.
	src2 := strings.Replace(src, "self.led.value(1)", "self.led.wiggle()", 1)
	cls2, err := pyparse.ParseClass(src2, "C")
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := NewObject(cls2, NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obj2.Call("m"); err == nil || !strings.Contains(err.Error(), "wiggle") {
		t.Errorf("err = %v", err)
	}
}

func TestForOverListLiteral(t *testing.T) {
	src := `class C:
    @op_initial
    def m(self):
        total = 0
        for x in [1, 2, 3]:
            total = total + x
        return ["m"], total
`
	cls, err := pyparse.ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewObject(cls, NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	_, user, err := obj.Call("m")
	if err != nil {
		t.Fatal(err)
	}
	if iv, ok := user.(IntValue); !ok || iv.V != 6 {
		t.Errorf("total = %v", user)
	}
}

func TestForErrors(t *testing.T) {
	cases := []string{
		"class C:\n    @op_initial\n    def m(self):\n        for x in 5:\n            pass\n        return []\n",
		"class C:\n    @op_initial\n    def m(self):\n        for x in range(-1):\n            pass\n        return []\n",
	}
	for _, src := range cases {
		cls, err := pyparse.ParseClass(src, "C")
		if err != nil {
			t.Fatal(err)
		}
		obj, err := NewObject(cls, NewEnv(hw.NewBoard()))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := obj.Call("m"); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestValueKinds(t *testing.T) {
	kinds := map[Value]string{
		NoneValue{}:   "None",
		BoolValue{}:   "bool",
		IntValue{}:    "int",
		StringValue{}: "str",
		PinValue{}:    "Pin",
	}
	for v, want := range kinds {
		if v.valueKind() != want {
			t.Errorf("%#v kind = %s", v, v.valueKind())
		}
	}
	if (ListValue{}).valueKind() != "list" || (TupleValue{}).valueKind() != "tuple" {
		t.Error("container kinds")
	}
	if (ObjectValue{}).valueKind() != "object" {
		t.Error("object kind")
	}
}

package pyexec

import (
	"fmt"
	"sort"

	"github.com/shelley-go/shelley/internal/pyast"
)

// ObjectValue wraps a live instance of another annotated class, so
// composite classes execute concretely end to end: `self.a = Valve()`
// in __init__ instantiates a device object, and
// `match self.a.test(): case ["open"]: ...` dispatches on the list the
// device's method *actually* returned — the real MicroPython semantics
// that the static analysis abstracts into nondeterminism.
type ObjectValue struct{ Object *Object }

func (ObjectValue) valueKind() string { return "object" }

// RegisterClass makes a class constructible by name inside method
// bodies (typically from a composite's __init__).
func (e *Env) RegisterClass(cls *pyast.ClassDef) {
	e.builtins[cls.Name] = func(args []Value) (Value, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("pyexec: constructor %s takes no arguments in the subset", cls.Name)
		}
		obj, err := NewObject(cls, e)
		if err != nil {
			return nil, err
		}
		return ObjectValue{Object: obj}, nil
	}
}

// RegisterModule registers every class of the module, so a composite's
// __init__ can construct its subsystems by name.
func (e *Env) RegisterModule(m *pyast.Module) {
	for _, cls := range m.Classes {
		e.RegisterClass(cls)
	}
}

// callObjectMethod dispatches a method call on a wrapped object: the
// call is subject to the callee's own protocol, and its value is the
// return list (or (list, user) tuple) the body produced — exactly what
// the caller's match statement inspects.
func callObjectMethod(recv ObjectValue, method string, args []Value) (Value, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("pyexec: method arguments are outside the subset")
	}
	next, user, err := recv.Object.Call(method)
	if err != nil {
		return nil, err
	}
	labels := make([]Value, len(next))
	for i, l := range next {
		labels[i] = StringValue{V: l}
	}
	if user == nil {
		return ListValue{Elems: labels}, nil
	}
	return TupleValue{Elems: []Value{ListValue{Elems: labels}, user}}, nil
}

// DanglingFields lists object-valued fields that are not stoppable —
// the concrete counterpart of interp.System.DanglingSubsystems, sorted
// by field name.
func (o *Object) DanglingFields() []string {
	var out []string
	for name, v := range o.fields {
		if ov, ok := v.(ObjectValue); ok && !ov.Object.CanStop() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SubObject returns the live object behind an object-valued field.
func (o *Object) SubObject(field string) (*Object, bool) {
	v, ok := o.fields[field]
	if !ok {
		return nil, false
	}
	ov, ok := v.(ObjectValue)
	if !ok {
		return nil, false
	}
	return ov.Object, true
}

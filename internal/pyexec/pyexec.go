// Package pyexec executes annotated MicroPython base classes concretely
// against emulated hardware (internal/hw): where the model analysis
// erases values, this interpreter evaluates them — `Pin(29, IN)` builds
// a real emulated pin, `self.status.value()` reads it, `if`/`match`
// branch on actual results, and each `return ["m1", ...]` yields the
// continuation the device really took.
//
// It is the closest stand-in for "running MicroPython on the
// microcontroller" this repository has: the simulator's Chooser
// nondeterminism is replaced by physical pin state, which the test
// environment sets through the board. The object still enforces the
// class's call-order protocol, so the runtime errors the static checker
// predicts are observable here with their physical consequences (e.g.
// a control pin left high).
package pyexec

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/hw"
	"github.com/shelley-go/shelley/internal/pyast"
)

// Value is a runtime value of the supported subset.
type Value interface{ valueKind() string }

type (
	// NoneValue is Python's None.
	NoneValue struct{}

	// BoolValue is a boolean.
	BoolValue struct{ V bool }

	// IntValue is an integer (the subset needs no floats).
	IntValue struct{ V int64 }

	// StringValue is a string.
	StringValue struct{ V string }

	// ListValue is a list.
	ListValue struct{ Elems []Value }

	// TupleValue is a tuple (e.g. a return with a user value).
	TupleValue struct{ Elems []Value }

	// PinValue wraps an emulated GPIO pin.
	PinValue struct{ Pin *hw.Pin }
)

func (NoneValue) valueKind() string   { return "None" }
func (BoolValue) valueKind() string   { return "bool" }
func (IntValue) valueKind() string    { return "int" }
func (StringValue) valueKind() string { return "str" }
func (ListValue) valueKind() string   { return "list" }
func (TupleValue) valueKind() string  { return "tuple" }
func (PinValue) valueKind() string    { return "Pin" }

// Truthy implements Python truthiness for the supported values.
func Truthy(v Value) bool {
	switch v := v.(type) {
	case NoneValue:
		return false
	case BoolValue:
		return v.V
	case IntValue:
		return v.V != 0
	case StringValue:
		return v.V != ""
	case ListValue:
		return len(v.Elems) > 0
	case TupleValue:
		return len(v.Elems) > 0
	default:
		return true
	}
}

// Builtin constructs a value for a constructor call in __init__
// (e.g. Pin(27, OUT)).
type Builtin func(args []Value) (Value, error)

// Env is the execution environment: the board plus extra builtins and
// free-variable bindings (OUT/IN constants are predefined).
type Env struct {
	Board    *hw.Board
	builtins map[string]Builtin
	globals  map[string]Value
	events   []string
}

// Events returns the qualified subsystem calls ("a.test") recorded
// during execution, in order — the concrete counterpart of the
// checker's flattened traces.
func (e *Env) Events() []string { return append([]string(nil), e.events...) }

// ResetEvents clears the recorded event log.
func (e *Env) ResetEvents() { e.events = nil }

// NewEnv builds an environment over the board with the MicroPython
// machine constants and the Pin constructor installed.
func NewEnv(board *hw.Board) *Env {
	e := &Env{
		Board:    board,
		builtins: make(map[string]Builtin),
		globals: map[string]Value{
			"OUT": IntValue{V: int64(hw.Out)},
			"IN":  IntValue{V: int64(hw.In)},
		},
	}
	e.builtins["Pin"] = func(args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("pyexec: Pin takes (id, mode), got %d args", len(args))
		}
		id, ok := args[0].(IntValue)
		if !ok {
			return nil, fmt.Errorf("pyexec: Pin id must be an int, got %s", args[0].valueKind())
		}
		mode, ok := args[1].(IntValue)
		if !ok {
			return nil, fmt.Errorf("pyexec: Pin mode must be IN or OUT, got %s", args[1].valueKind())
		}
		return PinValue{Pin: board.Pin(int(id.V), hw.Mode(mode.V))}, nil
	}
	return e
}

// RegisterBuiltin installs a constructor or free function.
func (e *Env) RegisterBuiltin(name string, fn Builtin) { e.builtins[name] = fn }

// SetGlobal binds a free variable visible to method bodies.
func (e *Env) SetGlobal(name string, v Value) { e.globals[name] = v }

// Object is a live instance of an annotated base class.
type Object struct {
	class  *pyast.ClassDef
	env    *Env
	fields map[string]Value

	fresh   bool
	lastOp  string
	allowed []string
}

// NewObject instantiates the class: it executes __init__ concretely
// (building pins and other fields) and puts the protocol in the fresh
// state.
func NewObject(cls *pyast.ClassDef, env *Env) (*Object, error) {
	o := &Object{class: cls, env: env, fields: make(map[string]Value), fresh: true}
	if init := cls.Method("__init__"); init != nil {
		if _, _, err := o.execBody(init.Body); err != nil {
			return nil, fmt.Errorf("pyexec: %s.__init__: %w", cls.Name, err)
		}
	}
	return o, nil
}

// Field returns an instance field (e.g. the PinValue behind
// self.control).
func (o *Object) Field(name string) (Value, bool) {
	v, ok := o.fields[name]
	return v, ok
}

// Allowed returns the operations callable now: the initial operations
// when fresh, else the continuation the last call actually returned.
func (o *Object) Allowed() []string {
	if o.fresh {
		return initialOps(o.class)
	}
	return append([]string(nil), o.allowed...)
}

// CanStop reports whether the object may be abandoned: it is fresh or
// the last operation carries a final annotation.
func (o *Object) CanStop() bool {
	if o.fresh {
		return true
	}
	return isFinal(o.class, o.lastOp)
}

// Call invokes an operation, enforcing the protocol and executing the
// body concretely. It returns the continuation list the body's return
// produced and the optional user value (nil when absent).
func (o *Object) Call(op string) (next []string, user Value, err error) {
	fn := o.class.Method(op)
	if fn == nil {
		return nil, nil, fmt.Errorf("pyexec: class %s has no method %q", o.class.Name, op)
	}
	allowed := o.Allowed()
	permitted := false
	for _, a := range allowed {
		if a == op {
			permitted = true
			break
		}
	}
	if !permitted {
		return nil, nil, fmt.Errorf("pyexec: %s.%s is not allowed now (allowed: %v)", o.class.Name, op, allowed)
	}

	returned, value, err := o.execBody(fn.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("pyexec: %s.%s: %w", o.class.Name, op, err)
	}
	o.fresh = false
	o.lastOp = op
	o.allowed = nil
	if !returned {
		return nil, nil, nil
	}
	labels, user, err := splitReturn(value)
	if err != nil {
		return nil, nil, fmt.Errorf("pyexec: %s.%s: %w", o.class.Name, op, err)
	}
	o.allowed = labels
	return labels, user, nil
}

// splitReturn interprets a return value per Table 2 of the paper: a
// list of labels, optionally tupled with a user value.
func splitReturn(v Value) ([]string, Value, error) {
	var labelsValue Value = v
	var user Value
	if t, ok := v.(TupleValue); ok {
		if len(t.Elems) == 0 {
			return nil, nil, nil
		}
		labelsValue = t.Elems[0]
		if len(t.Elems) > 1 {
			if len(t.Elems) == 2 {
				user = t.Elems[1]
			} else {
				user = TupleValue{Elems: t.Elems[1:]}
			}
		}
	}
	list, ok := labelsValue.(ListValue)
	if !ok {
		// A non-protocol return (plain value): no continuation declared.
		return nil, v, nil
	}
	labels := make([]string, 0, len(list.Elems))
	for _, e := range list.Elems {
		s, ok := e.(StringValue)
		if !ok {
			return nil, nil, fmt.Errorf("return list must contain strings, got %s", e.valueKind())
		}
		labels = append(labels, s.V)
	}
	return labels, user, nil
}

func initialOps(cls *pyast.ClassDef) []string {
	var out []string
	for _, m := range cls.Methods {
		for _, d := range m.Decorators {
			if d.Name == "op_initial" || d.Name == "op_initial_final" {
				out = append(out, m.Name)
			}
		}
	}
	return out
}

func isFinal(cls *pyast.ClassDef, op string) bool {
	m := cls.Method(op)
	if m == nil {
		return false
	}
	for _, d := range m.Decorators {
		if d.Name == "op_final" || d.Name == "op_initial_final" {
			return true
		}
	}
	return false
}

// maxLoopIterations caps while/for execution as a runaway guard; the
// paper's subset has only terminating loops, and device loops in the
// examples are short.
const maxLoopIterations = 10000

// execBody runs a statement list; returned reports whether a return
// statement fired, with its value.
func (o *Object) execBody(body []pyast.Stmt) (returned bool, value Value, err error) {
	for _, s := range body {
		returned, value, err = o.execStmt(s)
		if err != nil || returned {
			return returned, value, err
		}
	}
	return false, nil, nil
}

func (o *Object) execStmt(s pyast.Stmt) (bool, Value, error) {
	switch s := s.(type) {
	case *pyast.Pass, *pyast.Import:
		return false, nil, nil
	case *pyast.ExprStmt:
		_, err := o.eval(s.X)
		return false, nil, err
	case *pyast.Assign:
		v, err := o.eval(s.Value)
		if err != nil {
			return false, nil, err
		}
		return false, nil, o.assign(s.Target, v)
	case *pyast.Return:
		switch len(s.Values) {
		case 0:
			return true, NoneValue{}, nil
		case 1:
			v, err := o.eval(s.Values[0])
			return true, v, err
		default:
			elems := make([]Value, len(s.Values))
			for i, e := range s.Values {
				v, err := o.eval(e)
				if err != nil {
					return false, nil, err
				}
				elems[i] = v
			}
			return true, TupleValue{Elems: elems}, nil
		}
	case *pyast.If:
		cond, err := o.eval(s.Cond)
		if err != nil {
			return false, nil, err
		}
		if Truthy(cond) {
			return o.execBody(s.Body)
		}
		for _, clause := range s.Elifs {
			c, err := o.eval(clause.Cond)
			if err != nil {
				return false, nil, err
			}
			if Truthy(c) {
				return o.execBody(clause.Body)
			}
		}
		if s.Else != nil {
			return o.execBody(s.Else)
		}
		return false, nil, nil
	case *pyast.Match:
		subject, err := o.eval(s.Subject)
		if err != nil {
			return false, nil, err
		}
		for _, c := range s.Cases {
			ok, err := o.matches(c.Pattern, subject)
			if err != nil {
				return false, nil, err
			}
			if ok {
				return o.execBody(c.Body)
			}
		}
		return false, nil, nil
	case *pyast.While:
		for i := 0; ; i++ {
			if i >= maxLoopIterations {
				return false, nil, fmt.Errorf("while loop exceeded %d iterations", maxLoopIterations)
			}
			cond, err := o.eval(s.Cond)
			if err != nil {
				return false, nil, err
			}
			if !Truthy(cond) {
				return false, nil, nil
			}
			returned, v, err := o.execBody(s.Body)
			if err != nil || returned {
				return returned, v, err
			}
		}
	case *pyast.For:
		items, err := o.iterable(s.Iter)
		if err != nil {
			return false, nil, err
		}
		name, ok := s.Target.(*pyast.NameExpr)
		if !ok {
			return false, nil, fmt.Errorf("for target must be a name")
		}
		for _, item := range items {
			o.env.globals[name.Name] = item
			returned, v, err := o.execBody(s.Body)
			if err != nil || returned {
				return returned, v, err
			}
		}
		return false, nil, nil
	case *pyast.Break, *pyast.Continue:
		return false, nil, fmt.Errorf("break/continue are outside the supported subset")
	default:
		return false, nil, fmt.Errorf("unsupported statement %T", s)
	}
}

func (o *Object) assign(target pyast.Expr, v Value) error {
	switch t := target.(type) {
	case *pyast.NameExpr:
		o.env.globals[t.Name] = v
		return nil
	case *pyast.AttrExpr:
		if base, ok := t.Value.(*pyast.NameExpr); ok && base.Name == "self" {
			o.fields[t.Attr] = v
			return nil
		}
		return fmt.Errorf("can only assign to self.<field> or names")
	default:
		return fmt.Errorf("unsupported assignment target %T", target)
	}
}

func (o *Object) iterable(e pyast.Expr) ([]Value, error) {
	// range(n) and list literals.
	if call, ok := e.(*pyast.CallExpr); ok {
		if name, ok := call.Fn.(*pyast.NameExpr); ok && name.Name == "range" && len(call.Args) == 1 {
			n, err := o.eval(call.Args[0])
			if err != nil {
				return nil, err
			}
			iv, ok := n.(IntValue)
			if !ok || iv.V < 0 || iv.V > maxLoopIterations {
				return nil, fmt.Errorf("range argument out of bounds")
			}
			items := make([]Value, iv.V)
			for i := range items {
				items[i] = IntValue{V: int64(i)}
			}
			return items, nil
		}
	}
	v, err := o.eval(e)
	if err != nil {
		return nil, err
	}
	if list, ok := v.(ListValue); ok {
		return list.Elems, nil
	}
	return nil, fmt.Errorf("cannot iterate over %s", v.valueKind())
}

package pyexec

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/hw"
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyparse"
)

func parseClass(t *testing.T, src, name string) *pyast.ClassDef {
	t.Helper()
	cls, err := pyparse.ParseClass(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func valveAST(t *testing.T) *pyast.ClassDef {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	return parseClass(t, string(b), "Valve")
}

// TestValveDeviceExecution runs Listing 2.1 concretely: the status pin
// decides which exit test takes, and the control pin reflects the valve
// being open.
func TestValveDeviceExecution(t *testing.T) {
	board := hw.NewBoard()
	env := NewEnv(board)
	valve, err := NewObject(valveAST(t), env)
	if err != nil {
		t.Fatal(err)
	}

	// __init__ configured the three pins of Listing 2.1.
	if _, ok := valve.Field("control"); !ok {
		t.Fatal("control pin missing")
	}
	if got := board.HighPins(); len(got) != 0 {
		t.Fatalf("all pins start low, got %v", got)
	}

	// Environment: status sensor reads "openable".
	board.SetInput(29, true)

	next, _, err := valve.Call("test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"open"}) {
		t.Fatalf("test returned %v, want [open] (status pin is high)", next)
	}
	if _, _, err := valve.Call("open"); err != nil {
		t.Fatal(err)
	}
	// The control pin (27) is physically high now.
	if got := board.HighPins(); !reflect.DeepEqual(got, []int{27, 29}) {
		t.Errorf("high pins = %v, want [27 29]", got)
	}
	if valve.CanStop() {
		t.Error("open is not final")
	}
	if _, _, err := valve.Call("close"); err != nil {
		t.Fatal(err)
	}
	if got := board.HighPins(); !reflect.DeepEqual(got, []int{29}) {
		t.Errorf("after close, high pins = %v, want [29]", got)
	}
	if !valve.CanStop() {
		t.Error("close is final")
	}
}

func TestValveDeviceTakesCleanBranchWhenStatusLow(t *testing.T) {
	board := hw.NewBoard()
	valve, err := NewObject(valveAST(t), NewEnv(board))
	if err != nil {
		t.Fatal(err)
	}
	board.SetInput(29, false)
	next, _, err := valve.Call("test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"clean"}) {
		t.Fatalf("test returned %v, want [clean]", next)
	}
	// The protocol now only allows clean.
	if _, _, err := valve.Call("open"); err == nil {
		t.Error("open must be rejected after the clean exit")
	}
	if _, _, err := valve.Call("clean"); err != nil {
		t.Fatal(err)
	}
	// clean drives pin 28.
	if got := board.HighPins(); !reflect.DeepEqual(got, []int{28}) {
		t.Errorf("high pins = %v, want [28]", got)
	}
}

func TestDeviceProtocolEnforcement(t *testing.T) {
	valve, err := NewObject(valveAST(t), NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, callErr := valve.Call("open"); callErr == nil {
		t.Error("open is not initial")
	} else if !strings.Contains(callErr.Error(), "not allowed") {
		t.Errorf("err = %v", callErr)
	}
	_, _, err = valve.Call("explode")
	if err == nil || !strings.Contains(err.Error(), "no method") {
		t.Errorf("err = %v", err)
	}
	if got := valve.Allowed(); !reflect.DeepEqual(got, []string{"test"}) {
		t.Errorf("allowed = %v", got)
	}
}

func TestReturnWithUserValue(t *testing.T) {
	src := `class C:
    @op_initial
    def m(self):
        return ["n"], 42

    @op_final
    def n(self):
        return [], "bye"
`
	obj, err := NewObject(parseClass(t, src, "C"), NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	next, user, err := obj.Call("m")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"n"}) {
		t.Errorf("next = %v", next)
	}
	if iv, ok := user.(IntValue); !ok || iv.V != 42 {
		t.Errorf("user value = %v", user)
	}
	next, user, err = obj.Call("n")
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 0 {
		t.Errorf("next = %v, want empty", next)
	}
	if sv, ok := user.(StringValue); !ok || sv.V != "bye" {
		t.Errorf("user value = %v", user)
	}
}

func TestLoopsAndArithmetic(t *testing.T) {
	src := `class C:
    def __init__(self):
        self.led = Pin(1, OUT)

    @op_initial_final
    def blink(self):
        n = 0
        while n < 3:
            self.led.on()
            self.led.off()
            n = n + 1
        for i in range(2):
            self.led.on()
        return ["blink"], n
`
	obj, err := NewObject(parseClass(t, src, "C"), NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	_, user, err := obj.Call("blink")
	if err != nil {
		t.Fatal(err)
	}
	if iv, ok := user.(IntValue); !ok || iv.V != 3 {
		t.Errorf("loop counter = %v, want 3", user)
	}
}

func TestMatchOnReturnedValue(t *testing.T) {
	// A device whose helper-free match dispatches on an int field.
	src := `class C:
    def __init__(self):
        self.mode = 2

    @op_initial_final
    def act(self):
        match self.mode:
            case 1:
                return ["act"], "one"
            case 2:
                return ["act"], "two"
            case _:
                return [], "other"
`
	obj, err := NewObject(parseClass(t, src, "C"), NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	_, user, err := obj.Call("act")
	if err != nil {
		t.Fatal(err)
	}
	if sv, ok := user.(StringValue); !ok || sv.V != "two" {
		t.Errorf("user = %v", user)
	}
}

func TestDrivingInputPinIsError(t *testing.T) {
	src := `class C:
    def __init__(self):
        self.sensor = Pin(9, IN)

    @op_initial_final
    def zap(self):
        self.sensor.on()
        return []
`
	obj, err := NewObject(parseClass(t, src, "C"), NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obj.Call("zap"); err == nil || !strings.Contains(err.Error(), "cannot drive") {
		t.Errorf("err = %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined name", "class C:\n    @op_initial\n    def m(self):\n        return [x]\n"},
		{"unknown field", "class C:\n    @op_initial\n    def m(self):\n        self.ghost.on()\n        return []\n"},
		{"unknown constructor", "class C:\n    def __init__(self):\n        self.x = Widget()\n    @op_initial\n    def m(self):\n        return []\n"},
		{"non-string label", "class C:\n    @op_initial\n    def m(self):\n        return [1]\n"},
		{"division by zero", "class C:\n    @op_initial\n    def m(self):\n        x = 1 / 0\n        return []\n"},
		{"infinite loop capped", "class C:\n    @op_initial\n    def m(self):\n        while True:\n            pass\n        return []\n"},
		{"break unsupported", "class C:\n    @op_initial\n    def m(self):\n        while True:\n            break\n        return []\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			cls := parseClass(t, tt.src, "C")
			obj, err := NewObject(cls, NewEnv(hw.NewBoard()))
			if err != nil {
				return // __init__ failures are also acceptable detections
			}
			if _, _, err := obj.Call("m"); err == nil {
				t.Error("expected runtime error")
			}
		})
	}
}

func TestBuiltinRegistrationAndGlobals(t *testing.T) {
	src := `class C:
    def __init__(self):
        self.dev = Gadget(7)

    @op_initial_final
    def m(self):
        if limit > 2:
            return ["m"]
        return []
`
	env := NewEnv(hw.NewBoard())
	env.RegisterBuiltin("Gadget", func(args []Value) (Value, error) {
		return IntValue{V: args[0].(IntValue).V * 2}, nil
	})
	env.SetGlobal("limit", IntValue{V: 5})
	obj, err := NewObject(parseClass(t, src, "C"), env)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := obj.Field("dev"); v.(IntValue).V != 14 {
		t.Errorf("gadget = %v", v)
	}
	next, _, err := obj.Call("m")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, []string{"m"}) {
		t.Errorf("next = %v", next)
	}
}

func TestTruthyAndEqual(t *testing.T) {
	if Truthy(NoneValue{}) || Truthy(BoolValue{}) || Truthy(IntValue{}) ||
		Truthy(StringValue{}) || Truthy(ListValue{}) {
		t.Error("zero values should be falsy")
	}
	if !Truthy(IntValue{V: 3}) || !Truthy(StringValue{V: "x"}) ||
		!Truthy(ListValue{Elems: []Value{NoneValue{}}}) {
		t.Error("non-empty values should be truthy")
	}
	if !equal(ListValue{Elems: []Value{StringValue{V: "a"}}}, ListValue{Elems: []Value{StringValue{V: "a"}}}) {
		t.Error("equal lists")
	}
	if equal(IntValue{V: 1}, StringValue{V: "1"}) {
		t.Error("different kinds are unequal")
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	// `x or (1/0)` must not evaluate the crash when x is truthy.
	src := `class C:
    @op_initial_final
    def m(self):
        if True or 1 / 0 == 0:
            return []
        return []
`
	obj, err := NewObject(parseClass(t, src, "C"), NewEnv(hw.NewBoard()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obj.Call("m"); err != nil {
		t.Errorf("short-circuit failed: %v", err)
	}
}

package pyparse

import (
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pytoken"
)

// Expression grammar (precedence climbing, loosest first):
//
//	expr    ::= orExpr
//	orExpr  ::= andExpr ("or" andExpr)*
//	andExpr ::= notExpr ("and" notExpr)*
//	notExpr ::= "not" notExpr | cmpExpr
//	cmpExpr ::= addExpr (("=="|"!="|"<"|">"|"<="|">="|"in"|"not in") addExpr)*
//	addExpr ::= mulExpr (("+"|"-") mulExpr)*
//	mulExpr ::= unary (("*"|"/"|"%") unary)*
//	unary   ::= "-" unary | primary
//	primary ::= atom ("." NAME | "(" args ")")*
//	atom    ::= NAME | NUMBER | STRING | True | False | None
//	          | "(" expr ["," ...] ")" | "[" [exprlist] "]"
//
// The analysis erases condition values, so all binary operators collapse
// into BinOpExpr with the operator lexeme kept for pretty printing only.

func (p *parser) parseExpr() (pyast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (pyast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(pytoken.KwOr) {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &pyast.BinOpExpr{Left: left, Op: "or", Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (pyast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at(pytoken.KwAnd) {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &pyast.BinOpExpr{Left: left, Op: "and", Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (pyast.Expr, error) {
	if p.at(pytoken.KwNot) {
		tok := p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &pyast.UnaryExpr{Op: "not", X: x, OpPos: tok.Pos}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[pytoken.Kind]string{
	pytoken.Eq:    "==",
	pytoken.NotEq: "!=",
	pytoken.Lt:    "<",
	pytoken.Gt:    ">",
	pytoken.LtEq:  "<=",
	pytoken.GtEq:  ">=",
}

func (p *parser) parseComparison() (pyast.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		if op, ok := comparisonOps[p.peek().Kind]; ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			left = &pyast.BinOpExpr{Left: left, Op: op, Right: right}
			continue
		}
		if p.at(pytoken.KwIn) {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			left = &pyast.BinOpExpr{Left: left, Op: "in", Right: right}
			continue
		}
		if p.at(pytoken.KwNot) {
			// "not in"
			p.next()
			if _, err := p.expect(pytoken.KwIn); err != nil {
				return nil, err
			}
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			left = &pyast.BinOpExpr{Left: left, Op: "not in", Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseAdd() (pyast.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case pytoken.Plus:
			op = "+"
		case pytoken.Minus:
			op = "-"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &pyast.BinOpExpr{Left: left, Op: op, Right: right}
	}
}

func (p *parser) parseMul() (pyast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case pytoken.StarTok:
			op = "*"
		case pytoken.Slash:
			op = "/"
		case pytoken.Percent:
			op = "%"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &pyast.BinOpExpr{Left: left, Op: op, Right: right}
	}
}

func (p *parser) parseUnary() (pyast.Expr, error) {
	if p.at(pytoken.Minus) {
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &pyast.UnaryExpr{Op: "-", X: x, OpPos: tok.Pos}, nil
	}
	return p.parsePrimary()
}

// parsePrimary parses an atom followed by attribute accesses and calls.
func (p *parser) parsePrimary() (pyast.Expr, error) {
	x, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case pytoken.Dot:
			p.next()
			attr, err := p.expect(pytoken.Name)
			if err != nil {
				return nil, err
			}
			x = &pyast.AttrExpr{Value: x, Attr: attr.Text}
		case pytoken.LParen:
			p.next()
			args, err := p.parseExprListUntil(pytoken.RParen)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(pytoken.RParen); err != nil {
				return nil, err
			}
			x = &pyast.CallExpr{Fn: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseAtom() (pyast.Expr, error) {
	tok := p.peek()
	switch tok.Kind {
	case pytoken.Name:
		p.next()
		return &pyast.NameExpr{Name: tok.Text, NamePos: tok.Pos}, nil
	case pytoken.Number:
		p.next()
		return &pyast.NumberLit{Text: tok.Text, NPos: tok.Pos}, nil
	case pytoken.String:
		p.next()
		return &pyast.StringLit{Value: tok.Text, SPos: tok.Pos}, nil
	case pytoken.KwTrue:
		p.next()
		return &pyast.BoolLit{Value: true, BPos: tok.Pos}, nil
	case pytoken.KwFalse:
		p.next()
		return &pyast.BoolLit{Value: false, BPos: tok.Pos}, nil
	case pytoken.KwNone:
		p.next()
		return &pyast.NoneLit{NPos: tok.Pos}, nil
	case pytoken.LParen:
		p.next()
		if p.accept(pytoken.RParen) {
			return &pyast.TupleExpr{}, nil
		}
		elems, err := p.parseExprListUntil(pytoken.RParen)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(pytoken.RParen); err != nil {
			return nil, err
		}
		if len(elems) == 1 {
			return elems[0], nil
		}
		return &pyast.TupleExpr{Elts: elems}, nil
	case pytoken.LBracket:
		p.next()
		elems, err := p.parseExprListUntil(pytoken.RBracket)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(pytoken.RBracket); err != nil {
			return nil, err
		}
		return &pyast.ListExpr{Elts: elems, LPos: tok.Pos}, nil
	default:
		return nil, p.errorf("expected an expression, found %s", tok)
	}
}

package pyparse

import (
	"testing"

	"github.com/shelley-go/shelley/internal/pyast"
)

// FuzzParseModule checks totality of the parser and, on success, that
// the unparser's output re-parses (printer/parser agreement).
func FuzzParseModule(f *testing.F) {
	seeds := []string{
		"",
		"x = 1\n",
		"@sys\nclass C:\n    @op\n    def m(self):\n        return [\"m\"]\n",
		"class C:\n    def m(self):\n        while a:\n            for i in r():\n                pass\n",
		"class C:\n    def m(self):\n        match self.a.t():\n            case [\"x\"]:\n                pass\n            case _:\n                pass\n",
		"class C:\n    def m(self, a=1, b: int = 2) -> bool:\n        return [\"m\"], True\n",
		"import machine\nfrom m import x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		mod, err := ParseModule(src)
		if err != nil {
			return
		}
		out := pyast.Unparse(mod)
		if _, err := ParseModule(out); err != nil {
			t.Fatalf("unparse output does not reparse: %v\ninput: %q\nunparsed:\n%s", err, src, out)
		}
	})
}

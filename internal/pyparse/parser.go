// Package pyparse parses the MicroPython subset supported by Shelley
// (§2 of the paper) into the pyast representation: decorated classes and
// methods, if/elif/else, match/case, for, while, return, assignments and
// call expressions. The parser is a hand-written recursive-descent parser
// over the pytoken stream, with Python-style INDENT/DEDENT block
// structure.
package pyparse

import (
	"fmt"

	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pytoken"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos pytoken.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ParseModule parses a whole source file.
func ParseModule(src string) (*pyast.Module, error) {
	toks, err := pytoken.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

// ParseClass parses a source file and returns the class named name. It
// is a convenience for tests and tools that target one class.
func ParseClass(src, name string) (*pyast.ClassDef, error) {
	mod, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	for _, c := range mod.Classes {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("pyparse: class %q not found", name)
}

type parser struct {
	toks []pytoken.Token
	pos  int
}

func (p *parser) peek() pytoken.Token { return p.toks[p.pos] }

func (p *parser) at(k pytoken.Kind) bool { return p.peek().Kind == k }

func (p *parser) next() pytoken.Token {
	t := p.toks[p.pos]
	if t.Kind != pytoken.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k pytoken.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k pytoken.Kind) (pytoken.Token, error) {
	if !p.at(k) {
		return pytoken.Token{}, p.errorf("expected %s, found %s", k, p.peek())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseModule() (*pyast.Module, error) {
	mod := &pyast.Module{}
	for !p.at(pytoken.EOF) {
		if p.accept(pytoken.Newline) {
			continue
		}
		// Decorators may precede either a class or a def; defs at module
		// level are kept as plain statements (ignored by the analysis).
		decorators, err := p.parseDecorators()
		if err != nil {
			return nil, err
		}
		switch {
		case p.at(pytoken.KwClass):
			cls, err := p.parseClassDef(decorators)
			if err != nil {
				return nil, err
			}
			mod.Classes = append(mod.Classes, cls)
		case p.at(pytoken.KwDef):
			if _, err := p.parseFuncDef(decorators); err != nil {
				return nil, err
			}
			// Module-level functions are outside Shelley's model; parse
			// and drop.
		default:
			if len(decorators) > 0 {
				return nil, p.errorf("decorators must precede 'class' or 'def', found %s", p.peek())
			}
			stmt, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			mod.Stmts = append(mod.Stmts, stmt)
		}
	}
	return mod, nil
}

func (p *parser) parseDecorators() ([]*pyast.Decorator, error) {
	var out []*pyast.Decorator
	for p.at(pytoken.At) {
		p.next()
		nameTok, err := p.expect(pytoken.Name)
		if err != nil {
			return nil, err
		}
		name := nameTok.Text
		for p.accept(pytoken.Dot) {
			part, err := p.expect(pytoken.Name)
			if err != nil {
				return nil, err
			}
			name += "." + part.Text
		}
		d := &pyast.Decorator{Name: name, NamePos: nameTok.Pos}
		if p.accept(pytoken.LParen) {
			d.Called = true
			args, err := p.parseExprListUntil(pytoken.RParen)
			if err != nil {
				return nil, err
			}
			d.Args = args
			if _, err := p.expect(pytoken.RParen); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(pytoken.Newline); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func (p *parser) parseClassDef(decorators []*pyast.Decorator) (*pyast.ClassDef, error) {
	if _, err := p.expect(pytoken.KwClass); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(pytoken.Name)
	if err != nil {
		return nil, err
	}
	cls := &pyast.ClassDef{Name: nameTok.Text, Decorators: decorators, NamePos: nameTok.Pos}
	if p.accept(pytoken.LParen) {
		bases, err := p.parseExprListUntil(pytoken.RParen)
		if err != nil {
			return nil, err
		}
		cls.Bases = bases
		if _, err := p.expect(pytoken.RParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(pytoken.Colon); err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Newline); err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Indent); err != nil {
		return nil, err
	}
	for !p.at(pytoken.Dedent) && !p.at(pytoken.EOF) {
		if p.accept(pytoken.Newline) {
			continue
		}
		memberDecorators, err := p.parseDecorators()
		if err != nil {
			return nil, err
		}
		if p.at(pytoken.KwDef) {
			m, err := p.parseFuncDef(memberDecorators)
			if err != nil {
				return nil, err
			}
			cls.Methods = append(cls.Methods, m)
			continue
		}
		if len(memberDecorators) > 0 {
			return nil, p.errorf("decorators inside a class must precede 'def', found %s", p.peek())
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		cls.Body = append(cls.Body, stmt)
	}
	if _, err := p.expect(pytoken.Dedent); err != nil {
		return nil, err
	}
	return cls, nil
}

func (p *parser) parseFuncDef(decorators []*pyast.Decorator) (*pyast.FuncDef, error) {
	if _, err := p.expect(pytoken.KwDef); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(pytoken.Name)
	if err != nil {
		return nil, err
	}
	fn := &pyast.FuncDef{Name: nameTok.Text, Decorators: decorators, NamePos: nameTok.Pos}
	if _, err := p.expect(pytoken.LParen); err != nil {
		return nil, err
	}
	for !p.at(pytoken.RParen) {
		param, err := p.expect(pytoken.Name)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, param.Text)
		// Default values and annotations: parse and discard.
		if p.accept(pytoken.Colon) {
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if p.accept(pytoken.Assign) {
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if !p.accept(pytoken.Comma) {
			break
		}
	}
	if _, err := p.expect(pytoken.RParen); err != nil {
		return nil, err
	}
	if p.accept(pytoken.Arrow) {
		if _, err := p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(pytoken.Colon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseBlock parses either an indented suite or an inline simple
// statement ("if x: return").
func (p *parser) parseBlock() ([]pyast.Stmt, error) {
	if p.accept(pytoken.Newline) {
		if _, err := p.expect(pytoken.Indent); err != nil {
			return nil, err
		}
		var out []pyast.Stmt
		for !p.at(pytoken.Dedent) && !p.at(pytoken.EOF) {
			if p.accept(pytoken.Newline) {
				continue
			}
			s, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		if _, err := p.expect(pytoken.Dedent); err != nil {
			return nil, err
		}
		if len(out) == 0 {
			return nil, p.errorf("empty block")
		}
		return out, nil
	}
	// Inline suite.
	s, err := p.parseSimpleStatement()
	if err != nil {
		return nil, err
	}
	if !p.accept(pytoken.Newline) && !p.at(pytoken.EOF) {
		return nil, p.errorf("expected newline after inline statement, found %s", p.peek())
	}
	return []pyast.Stmt{s}, nil
}

func (p *parser) parseStatement() (pyast.Stmt, error) {
	switch p.peek().Kind {
	case pytoken.KwIf:
		return p.parseIf()
	case pytoken.KwMatch:
		return p.parseMatch()
	case pytoken.KwWhile:
		return p.parseWhile()
	case pytoken.KwFor:
		return p.parseFor()
	default:
		s, err := p.parseSimpleStatement()
		if err != nil {
			return nil, err
		}
		if !p.accept(pytoken.Newline) && !p.at(pytoken.EOF) {
			return nil, p.errorf("expected newline, found %s", p.peek())
		}
		return s, nil
	}
}

func (p *parser) parseSimpleStatement() (pyast.Stmt, error) {
	tok := p.peek()
	switch tok.Kind {
	case pytoken.KwReturn:
		p.next()
		ret := &pyast.Return{ReturnPos: tok.Pos}
		if !p.at(pytoken.Newline) && !p.at(pytoken.EOF) && !p.at(pytoken.Dedent) {
			values, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			ret.Values = values
		}
		return ret, nil
	case pytoken.KwPass:
		p.next()
		return &pyast.Pass{PassPos: tok.Pos}, nil
	case pytoken.KwBreak:
		p.next()
		return &pyast.Break{BreakPos: tok.Pos}, nil
	case pytoken.KwContinue:
		p.next()
		return &pyast.Continue{ContinuePos: tok.Pos}, nil
	case pytoken.KwImport, pytoken.KwFrom:
		return p.parseImport()
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(pytoken.Assign) {
			value, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &pyast.Assign{Target: x, Value: value}, nil
		}
		return &pyast.ExprStmt{X: x}, nil
	}
}

func (p *parser) parseImport() (pyast.Stmt, error) {
	pos := p.peek().Pos
	text := ""
	for !p.at(pytoken.Newline) && !p.at(pytoken.EOF) {
		t := p.next()
		if text != "" {
			text += " "
		}
		if t.Text != "" {
			text += t.Text
		} else {
			text += t.Kind.String()
		}
	}
	return &pyast.Import{Text: text, ImportPos: pos}, nil
}

func (p *parser) parseIf() (pyast.Stmt, error) {
	tok, err := p.expect(pytoken.KwIf)
	if err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Colon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	out := &pyast.If{Cond: cond, Body: body, IfPos: tok.Pos}
	for p.at(pytoken.KwElif) {
		p.next()
		econd, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(pytoken.Colon); err != nil {
			return nil, err
		}
		ebody, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		out.Elifs = append(out.Elifs, pyast.ElifClause{Cond: econd, Body: ebody})
	}
	if p.accept(pytoken.KwElse) {
		if _, err := p.expect(pytoken.Colon); err != nil {
			return nil, err
		}
		ebody, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		out.Else = ebody
	}
	return out, nil
}

func (p *parser) parseMatch() (pyast.Stmt, error) {
	tok, err := p.expect(pytoken.KwMatch)
	if err != nil {
		return nil, err
	}
	subject, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Colon); err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Newline); err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Indent); err != nil {
		return nil, err
	}
	out := &pyast.Match{Subject: subject, MatchPos: tok.Pos}
	for !p.at(pytoken.Dedent) && !p.at(pytoken.EOF) {
		if p.accept(pytoken.Newline) {
			continue
		}
		if _, err := p.expect(pytoken.KwCase); err != nil {
			return nil, err
		}
		pattern, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(pytoken.Colon); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		out.Cases = append(out.Cases, pyast.CaseClause{Pattern: pattern, Body: body})
	}
	if _, err := p.expect(pytoken.Dedent); err != nil {
		return nil, err
	}
	if len(out.Cases) == 0 {
		return nil, p.errorf("match statement has no case clauses")
	}
	return out, nil
}

// parsePattern parses a case pattern. The `_` name becomes the wildcard.
func (p *parser) parsePattern() (pyast.Expr, error) {
	if p.at(pytoken.Name) && p.peek().Text == "_" {
		tok := p.next()
		return &pyast.WildcardExpr{WPos: tok.Pos}, nil
	}
	return p.parseExpr()
}

func (p *parser) parseWhile() (pyast.Stmt, error) {
	tok, err := p.expect(pytoken.KwWhile)
	if err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Colon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &pyast.While{Cond: cond, Body: body, WhilePos: tok.Pos}, nil
}

func (p *parser) parseFor() (pyast.Stmt, error) {
	tok, err := p.expect(pytoken.KwFor)
	if err != nil {
		return nil, err
	}
	target, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.KwIn); err != nil {
		return nil, err
	}
	iter, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(pytoken.Colon); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &pyast.For{Target: target, Iter: iter, Body: body, ForPos: tok.Pos}, nil
}

// parseExprList parses e1, e2, ..., en and wraps n > 1 into a TupleExpr.
func (p *parser) parseExprList() ([]pyast.Expr, error) {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	out := []pyast.Expr{first}
	for p.accept(pytoken.Comma) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// parseExprListUntil parses a possibly-empty comma list terminated by the
// given closing token (not consumed).
func (p *parser) parseExprListUntil(close pytoken.Kind) ([]pyast.Expr, error) {
	var out []pyast.Expr
	for !p.at(close) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(pytoken.Comma) {
			break
		}
	}
	return out, nil
}

package pyparse

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/shelley-go/shelley/internal/pyast"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("read testdata: %v", err)
	}
	return string(b)
}

func TestParseValveListing(t *testing.T) {
	cls, err := ParseClass(readTestdata(t, "valve.py"), "Valve")
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Decorators) != 1 || cls.Decorators[0].Name != "sys" {
		t.Fatalf("decorators = %+v, want [@sys]", cls.Decorators)
	}
	if cls.Decorators[0].Called {
		t.Error("@sys without parentheses should have Called=false")
	}

	wantMethods := []string{"__init__", "test", "open", "close", "clean"}
	if len(cls.Methods) != len(wantMethods) {
		t.Fatalf("methods = %d, want %d", len(cls.Methods), len(wantMethods))
	}
	for i, name := range wantMethods {
		if cls.Methods[i].Name != name {
			t.Errorf("method[%d] = %q, want %q", i, cls.Methods[i].Name, name)
		}
	}

	test := cls.Method("test")
	if len(test.Decorators) != 1 || test.Decorators[0].Name != "op_initial" {
		t.Errorf("test decorators = %+v", test.Decorators)
	}
	ifStmt, ok := test.Body[0].(*pyast.If)
	if !ok {
		t.Fatalf("test body[0] is %T, want *If", test.Body[0])
	}
	ret, ok := ifStmt.Body[0].(*pyast.Return)
	if !ok {
		t.Fatalf("then-branch stmt is %T", ifStmt.Body[0])
	}
	labels, ok := pyast.StringElements(ret.Values[0])
	if !ok || len(labels) != 1 || labels[0] != "open" {
		t.Errorf("then-branch returns %v", ret.Values)
	}

	if cls.Method("nope") != nil {
		t.Error("Method on missing name should be nil")
	}
}

func TestParseBadSectorListing(t *testing.T) {
	cls, err := ParseClass(readTestdata(t, "badsector.py"), "BadSector")
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Decorators) != 2 {
		t.Fatalf("decorators = %+v", cls.Decorators)
	}
	claim := cls.Decorators[0]
	if claim.Name != "claim" || len(claim.Args) != 1 {
		t.Fatalf("claim decorator = %+v", claim)
	}
	formula, ok := claim.Args[0].(*pyast.StringLit)
	if !ok || formula.Value != "(!a.open) W b.open" {
		t.Errorf("claim formula = %v", claim.Args[0])
	}
	sys := cls.Decorators[1]
	if sys.Name != "sys" || !sys.Called {
		t.Fatalf("sys decorator = %+v", sys)
	}
	subs, ok := pyast.StringElements(sys.Args[0])
	if !ok || len(subs) != 2 || subs[0] != "a" || subs[1] != "b" {
		t.Errorf("subsystems = %v", sys.Args)
	}

	openA := cls.Method("open_a")
	if openA == nil {
		t.Fatal("open_a missing")
	}
	m, ok := openA.Body[0].(*pyast.Match)
	if !ok {
		t.Fatalf("open_a body[0] is %T", openA.Body[0])
	}
	if len(m.Cases) != 2 {
		t.Fatalf("open_a has %d cases", len(m.Cases))
	}
	subject, ok := m.Subject.(*pyast.CallExpr)
	if !ok {
		t.Fatalf("match subject is %T", m.Subject)
	}
	if name, _ := pyast.DottedName(subject.Fn); name != "self.a.test" {
		t.Errorf("match subject call = %q", name)
	}
	pat, ok := pyast.StringElements(m.Cases[0].Pattern)
	if !ok || len(pat) != 1 || pat[0] != "open" {
		t.Errorf("case 0 pattern = %v", m.Cases[0].Pattern)
	}
}

func TestParseSectorListing(t *testing.T) {
	cls, err := ParseClass(readTestdata(t, "sector.py"), "Sector")
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Methods) != 4 {
		t.Fatalf("methods = %d, want 4", len(cls.Methods))
	}
}

func TestParseInitAssignments(t *testing.T) {
	cls, err := ParseClass(readTestdata(t, "valve.py"), "Valve")
	if err != nil {
		t.Fatal(err)
	}
	init := cls.Method("__init__")
	if len(init.Body) != 3 {
		t.Fatalf("__init__ body = %d stmts", len(init.Body))
	}
	asg, ok := init.Body[0].(*pyast.Assign)
	if !ok {
		t.Fatalf("__init__ stmt 0 is %T", init.Body[0])
	}
	if name, _ := pyast.DottedName(asg.Target); name != "self.control" {
		t.Errorf("assign target = %q", name)
	}
	call, ok := asg.Value.(*pyast.CallExpr)
	if !ok {
		t.Fatalf("assign value is %T", asg.Value)
	}
	if name, _ := pyast.DottedName(call.Fn); name != "Pin" {
		t.Errorf("constructor = %q", name)
	}
	if len(call.Args) != 2 {
		t.Errorf("Pin args = %d", len(call.Args))
	}
}

func TestReturnForms(t *testing.T) {
	// The five shapes from Table 2 of the paper.
	src := `class C:
    def m(self):
        return ["close"]

    def n(self):
        return ["open", "clean"]

    def o(self):
        return ["close"], 2

    def p(self):
        return ["close"], True

    def q(self):
        return ["open", "clean"], 2
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		method     string
		wantLabels []string
		wantExtra  int
	}{
		{"m", []string{"close"}, 0},
		{"n", []string{"open", "clean"}, 0},
		{"o", []string{"close"}, 1},
		{"p", []string{"close"}, 1},
		{"q", []string{"open", "clean"}, 1},
	}
	for _, tt := range tests {
		ret := cls.Method(tt.method).Body[0].(*pyast.Return)
		if len(ret.Values) != 1+tt.wantExtra {
			t.Errorf("%s: %d return values, want %d", tt.method, len(ret.Values), 1+tt.wantExtra)
			continue
		}
		labels, ok := pyast.StringElements(ret.Values[0])
		if !ok {
			t.Errorf("%s: first value not a string list", tt.method)
			continue
		}
		if len(labels) != len(tt.wantLabels) {
			t.Errorf("%s: labels = %v, want %v", tt.method, labels, tt.wantLabels)
			continue
		}
		for i := range labels {
			if labels[i] != tt.wantLabels[i] {
				t.Errorf("%s: labels = %v, want %v", tt.method, labels, tt.wantLabels)
			}
		}
	}
}

func TestBareReturnAndEmptyList(t *testing.T) {
	src := `class C:
    def m(self):
        return

    def n(self):
        return []
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	if ret := cls.Method("m").Body[0].(*pyast.Return); len(ret.Values) != 0 {
		t.Errorf("bare return has values %v", ret.Values)
	}
	ret := cls.Method("n").Body[0].(*pyast.Return)
	labels, ok := pyast.StringElements(ret.Values[0])
	if !ok || len(labels) != 0 {
		t.Errorf("return [] parsed as %v", ret.Values)
	}
}

func TestWhileForAndControlFlow(t *testing.T) {
	src := `class C:
    def m(self):
        while self.ok():
            self.dev.step()
            if self.dev.hot():
                break
            else:
                continue
        for i in range(10):
            self.dev.tick()
        pass
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	body := cls.Method("m").Body
	if _, ok := body[0].(*pyast.While); !ok {
		t.Errorf("stmt 0 is %T, want While", body[0])
	}
	forStmt, ok := body[1].(*pyast.For)
	if !ok {
		t.Fatalf("stmt 1 is %T, want For", body[1])
	}
	if name, _ := pyast.DottedName(forStmt.Target); name != "i" {
		t.Errorf("for target = %q", name)
	}
	if _, ok := body[2].(*pyast.Pass); !ok {
		t.Errorf("stmt 2 is %T, want Pass", body[2])
	}
}

func TestElifChain(t *testing.T) {
	src := `class C:
    def m(self):
        if a:
            self.x.p()
        elif b:
            self.x.q()
        elif c:
            self.x.r()
        else:
            self.x.s()
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	ifStmt := cls.Method("m").Body[0].(*pyast.If)
	if len(ifStmt.Elifs) != 2 {
		t.Errorf("elifs = %d, want 2", len(ifStmt.Elifs))
	}
	if len(ifStmt.Else) != 1 {
		t.Errorf("else body = %d stmts, want 1", len(ifStmt.Else))
	}
}

func TestMatchWildcard(t *testing.T) {
	src := `class C:
    def m(self):
        match self.d.test():
            case ["ok"]:
                pass
            case _:
                pass
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	m := cls.Method("m").Body[0].(*pyast.Match)
	if _, ok := m.Cases[1].Pattern.(*pyast.WildcardExpr); !ok {
		t.Errorf("case 1 pattern is %T, want wildcard", m.Cases[1].Pattern)
	}
}

func TestInlineSuite(t *testing.T) {
	src := `class C:
    def m(self):
        if x: return ["a"]
        return ["b"]
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	ifStmt := cls.Method("m").Body[0].(*pyast.If)
	if _, ok := ifStmt.Body[0].(*pyast.Return); !ok {
		t.Errorf("inline suite stmt is %T", ifStmt.Body[0])
	}
}

func TestModuleLevelStatements(t *testing.T) {
	src := `import machine
from machine import Pin

x = 1

class C:
    def m(self):
        pass
`
	mod, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Classes) != 1 {
		t.Errorf("classes = %d", len(mod.Classes))
	}
	if len(mod.Stmts) != 3 {
		t.Errorf("module stmts = %d, want 3", len(mod.Stmts))
	}
	if _, ok := mod.Stmts[0].(*pyast.Import); !ok {
		t.Errorf("stmt 0 is %T, want Import", mod.Stmts[0])
	}
}

func TestExpressionOperators(t *testing.T) {
	src := `class C:
    def m(self):
        x = not a and b or c
        y = 1 + 2 * 3 - -4
        z = a == b != c
        w = a in xs and b not in ys
        t = (1, 2)
        u = ()
`
	if _, err := ParseClass(src, "C"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing colon", "class C\n    pass\n"},
		{"missing class name", "class:\n    pass\n"},
		{"decorator before stmt", "@op\nx = 1\n"},
		{"empty match", "class C:\n    def m(self):\n        match x:\n            pass\n"},
		{"bad expression", "class C:\n    def m(self):\n        x = =\n"},
		{"unclosed paren", "class C:\n    def m(self):\n        f(1\n"},
		{"missing def after decorator in class", "class C:\n    @op\n    x = 1\n"},
		{"class not found", ""},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseClass(tt.src, "C"); err == nil {
				t.Errorf("expected error for %q", tt.src)
			}
		})
	}
}

func TestParamDefaultsAndAnnotations(t *testing.T) {
	src := `class C:
    def m(self, n=3, label: str = "x") -> bool:
        return ["a"], True
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatal(err)
	}
	m := cls.Method("m")
	if len(m.Params) != 3 {
		t.Errorf("params = %v", m.Params)
	}
}

func TestSyntaxErrorMentionsPosition(t *testing.T) {
	_, err := ParseModule("class C\n")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 1 {
		t.Errorf("error line = %d, want 1", perr.Pos.Line)
	}
}

func TestTrailingCommas(t *testing.T) {
	src := `class C:
    def m(self):
        x = f(1, 2,)
        y = [1, 2,]
        return ["m",]
`
	cls, err := ParseClass(src, "C")
	if err != nil {
		t.Fatalf("trailing commas should parse: %v", err)
	}
	ret := cls.Method("m").Body[2].(*pyast.Return)
	labels, ok := pyast.StringElements(ret.Values[0])
	if !ok || len(labels) != 1 || labels[0] != "m" {
		t.Errorf("labels = %v", labels)
	}
}

package pyparse

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// The parser must be total: any input produces an AST or an error,
// never a panic — including truncations and mutations of valid sources,
// which exercise every error path.

func corpusSources(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, f := range []string{"valve.py", "badsector.py", "goodsector.py", "sector.py"} {
		b, err := os.ReadFile(filepath.Join("..", "..", "testdata", f))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

func TestParseTruncationsNeverPanic(t *testing.T) {
	for _, src := range corpusSources(t) {
		for cut := 0; cut <= len(src); cut += 7 {
			_, _ = ParseModule(src[:cut]) // must not panic
		}
	}
}

func TestParseMutationsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mutants := []byte("(){}[]:,.@=#\"'\n\t xX0")
	for _, src := range corpusSources(t) {
		b := []byte(src)
		for i := 0; i < 500; i++ {
			pos := rng.Intn(len(b))
			old := b[pos]
			b[pos] = mutants[rng.Intn(len(mutants))]
			_, _ = ParseModule(string(b)) // must not panic
			b[pos] = old
		}
	}
}

func TestParseRandomTokenSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := []string{
		"class", "def", "if", "elif", "else", "match", "case", "for",
		"while", "return", "pass", "in", "and", "or", "not", "x", "self",
		"(", ")", "[", "]", ":", ",", ".", "@", "=", "\"s\"", "1", "\n",
		"    ", "_",
	}
	for i := 0; i < 2000; i++ {
		n := rng.Intn(30)
		src := ""
		for j := 0; j < n; j++ {
			src += words[rng.Intn(len(words))] + " "
		}
		_, _ = ParseModule(src) // must not panic
	}
}

func TestParseDeepNestingTerminates(t *testing.T) {
	// Deeply nested expressions must parse (recursive descent depth is
	// proportional to input size; this guards against accidental
	// exponential behavior).
	src := "x = "
	for i := 0; i < 500; i++ {
		src += "("
	}
	src += "1"
	for i := 0; i < 500; i++ {
		src += ")"
	}
	src += "\n"
	if _, err := ParseModule(src); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
}

package pytoken

import (
	"os"
	"path/filepath"
	"testing"
)

func BenchmarkTokenizeValve(b *testing.B) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "valve.py"))
	if err != nil {
		b.Fatal(err)
	}
	text := string(src)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tokenize(text); err != nil {
			b.Fatal(err)
		}
	}
}

package pytoken

import "testing"

// FuzzTokenize drives the lexer with arbitrary inputs; run the seeds in
// regular `go test`, or explore with `go test -fuzz=FuzzTokenize`.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"x = 1\n",
		"@sys\nclass C:\n    def m(self):\n        return [\"a\"]\n",
		"if x:\n    a()\nelse:\n    b()\n",
		"s = \"esc\\n\\t\\\"q\\\"\"\n",
		"f(1,\n  2)\n",
		"match x:\n    case [\"a\"]:\n        pass\n",
		"\t\tweird indent\n",
		"0x1F + 3.14 + 1_000\n",
		"# only a comment\n",
		"a \\\n b\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			t.Fatalf("token stream must end in EOF: %v", toks)
		}
		depth := 0
		for _, tok := range toks {
			switch tok.Kind {
			case Indent:
				depth++
			case Dedent:
				depth--
			}
			if depth < 0 {
				t.Fatal("dedent below zero")
			}
		}
		if depth != 0 {
			t.Fatal("unbalanced indentation")
		}
	})
}

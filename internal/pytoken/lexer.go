package pytoken

import (
	"fmt"
	"strings"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Tokenize converts source text into a token stream terminated by an EOF
// token. Block structure is encoded as INDENT/DEDENT tokens following
// Python's rules: the indentation of each logical line is compared with a
// stack of open indentation levels; inconsistent dedents are reported as
// errors. Newlines inside (), [] or {} are ignored (implicit line
// joining), as are blank lines and comment-only lines.
func Tokenize(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1, indents: []int{0}}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

type lexer struct {
	src         string
	off         int
	line        int
	col         int
	indents     []int
	depth       int // bracket nesting depth; >0 suppresses NEWLINE/INDENT
	toks        []Token
	atLineStart bool
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) errorf(format string, args ...any) error {
	return &Error{Pos: l.pos(), Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) emit(kind Kind, text string, pos Pos) {
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Pos: pos})
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) run() error {
	l.atLineStart = true
	for {
		if l.atLineStart && l.depth == 0 {
			if err := l.handleIndentation(); err != nil {
				return err
			}
			l.atLineStart = false
			continue
		}
		c := l.peek()
		switch {
		case c == 0:
			// Close the final logical line and any open blocks.
			if n := len(l.toks); n > 0 && l.toks[n-1].Kind != Newline && l.toks[n-1].Kind != Indent && l.toks[n-1].Kind != Dedent {
				l.emit(Newline, "", l.pos())
			}
			for len(l.indents) > 1 {
				l.indents = l.indents[:len(l.indents)-1]
				l.emit(Dedent, "", l.pos())
			}
			l.emit(EOF, "", l.pos())
			return nil
		case c == '\n':
			pos := l.pos() // report the newline at the end of its line
			l.advance()
			if l.depth == 0 {
				if n := len(l.toks); n > 0 {
					switch l.toks[n-1].Kind {
					case Newline, Indent, Dedent:
						// Blank line: no token.
					default:
						l.emit(Newline, "", pos)
					}
				}
				l.atLineStart = true
			}
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '#':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '\\' && l.peekAt(1) == '\n':
			// Explicit line joining.
			l.advance()
			l.advance()
		case c == '"' || c == '\'':
			if err := l.lexString(); err != nil {
				return err
			}
		case isDigit(c):
			l.lexNumber()
		case isNameStart(c):
			l.lexName()
		default:
			if err := l.lexOperator(); err != nil {
				return err
			}
		}
	}
}

// handleIndentation measures the leading whitespace of the upcoming
// logical line and emits INDENT/DEDENT tokens. Lines that turn out to be
// blank or comment-only produce nothing.
func (l *lexer) handleIndentation() error {
	// Measure from the current offset without consuming non-whitespace.
	width := 0
	for {
		switch l.peek() {
		case ' ':
			l.advance()
			width++
		case '\t':
			l.advance()
			width += 8 - width%8 // Python tab rule
		case '\r':
			l.advance()
		case '\n':
			l.advance()
			width = 0 // blank line: restart measurement on next line
		case '#':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case 0:
			return nil // EOF handling in run()
		default:
			goto measured
		}
	}
measured:
	top := l.indents[len(l.indents)-1]
	switch {
	case width > top:
		l.indents = append(l.indents, width)
		l.emit(Indent, "", l.pos())
	case width < top:
		for len(l.indents) > 1 && l.indents[len(l.indents)-1] > width {
			l.indents = l.indents[:len(l.indents)-1]
			l.emit(Dedent, "", l.pos())
		}
		if l.indents[len(l.indents)-1] != width {
			return l.errorf("unindent does not match any outer indentation level")
		}
	}
	return nil
}

func (l *lexer) lexString() error {
	pos := l.pos()
	quote := l.advance()
	var b strings.Builder
	for {
		c := l.peek()
		switch c {
		case 0, '\n':
			return &Error{Pos: pos, Msg: "unterminated string literal"}
		case '\\':
			l.advance()
			esc := l.peek()
			if esc == 0 {
				return &Error{Pos: pos, Msg: "unterminated string literal"}
			}
			l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				// Unknown escapes are kept verbatim, like Python does
				// (with a warning we don't reproduce).
				b.WriteByte('\\')
				b.WriteByte(esc)
			}
		default:
			l.advance()
			if c == quote {
				l.emit(String, b.String(), pos)
				return nil
			}
			b.WriteByte(c)
		}
	}
}

func (l *lexer) lexNumber() {
	pos := l.pos()
	start := l.off
	for isDigit(l.peek()) || l.peek() == '_' {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	// Hex/binary/octal prefixes (0x..., 0b..., 0o...).
	if l.off-start == 1 && l.src[start] == '0' {
		switch l.peek() {
		case 'x', 'X', 'b', 'B', 'o', 'O':
			l.advance()
			for isHexDigit(l.peek()) {
				l.advance()
			}
		}
	}
	l.emit(Number, l.src[start:l.off], pos)
}

func (l *lexer) lexName() {
	pos := l.pos()
	start := l.off
	for isNamePart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.off]
	if kw, ok := keywords[text]; ok {
		l.emit(kw, text, pos)
		return
	}
	l.emit(Name, text, pos)
}

func (l *lexer) lexOperator() error {
	pos := l.pos()
	c := l.advance()
	two := func(next byte, k2 Kind, k1 Kind) {
		if l.peek() == next {
			l.advance()
			l.emit(k2, "", pos)
			return
		}
		l.emit(k1, "", pos)
	}
	switch c {
	case '(':
		l.depth++
		l.emit(LParen, "", pos)
	case ')':
		l.depth--
		l.emit(RParen, "", pos)
	case '[':
		l.depth++
		l.emit(LBracket, "", pos)
	case ']':
		l.depth--
		l.emit(RBracket, "", pos)
	case '{':
		l.depth++
		l.emit(LBrace, "", pos)
	case '}':
		l.depth--
		l.emit(RBrace, "", pos)
	case ':':
		l.emit(Colon, "", pos)
	case ',':
		l.emit(Comma, "", pos)
	case '.':
		l.emit(Dot, "", pos)
	case '@':
		l.emit(At, "", pos)
	case '=':
		two('=', Eq, Assign)
	case '+':
		l.emit(Plus, "", pos)
	case '-':
		two('>', Arrow, Minus)
	case '*':
		l.emit(StarTok, "", pos)
	case '/':
		l.emit(Slash, "", pos)
	case '%':
		l.emit(Percent, "", pos)
	case '<':
		two('=', LtEq, Lt)
	case '>':
		two('=', GtEq, Gt)
	case '!':
		if l.peek() == '=' {
			l.advance()
			l.emit(NotEq, "", pos)
			return nil
		}
		return &Error{Pos: pos, Msg: "unexpected character '!'"}
	default:
		return &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", string(c))}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isNamePart(c byte) bool { return isNameStart(c) || isDigit(c) }

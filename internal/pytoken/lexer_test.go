package pytoken

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func assertKinds(t *testing.T, src string, want []Kind) {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("Tokenize(%q) = %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize(%q)[%d] = %v, want %v (full: %v)", src, i, got[i], want[i], got)
		}
	}
}

func TestSimpleStatement(t *testing.T) {
	assertKinds(t, "x = 1\n", []Kind{Name, Assign, Number, Newline, EOF})
}

func TestNoTrailingNewlineStillTerminates(t *testing.T) {
	assertKinds(t, "x = 1", []Kind{Name, Assign, Number, Newline, EOF})
}

func TestIndentDedent(t *testing.T) {
	src := "if x:\n    y()\nz()\n"
	assertKinds(t, src, []Kind{
		KwIf, Name, Colon, Newline,
		Indent, Name, LParen, RParen, Newline, Dedent,
		Name, LParen, RParen, Newline, EOF,
	})
}

func TestNestedIndentation(t *testing.T) {
	src := "def f():\n  if x:\n    y()\n"
	assertKinds(t, src, []Kind{
		KwDef, Name, LParen, RParen, Colon, Newline,
		Indent, KwIf, Name, Colon, Newline,
		Indent, Name, LParen, RParen, Newline,
		Dedent, Dedent, EOF,
	})
}

func TestBlankAndCommentLinesIgnored(t *testing.T) {
	src := "a()\n\n# comment\n   # indented comment\nb()\n"
	assertKinds(t, src, []Kind{
		Name, LParen, RParen, Newline,
		Name, LParen, RParen, Newline, EOF,
	})
}

func TestTrailingCommentIgnored(t *testing.T) {
	assertKinds(t, "a()  # call a\n", []Kind{Name, LParen, RParen, Newline, EOF})
}

func TestImplicitLineJoining(t *testing.T) {
	src := "f(1,\n  2,\n  3)\n"
	assertKinds(t, src, []Kind{
		Name, LParen, Number, Comma, Number, Comma, Number, RParen, Newline, EOF,
	})
}

func TestExplicitLineJoining(t *testing.T) {
	assertKinds(t, "x = 1 + \\\n2\n", []Kind{Name, Assign, Number, Plus, Number, Newline, EOF})
}

func TestKeywordsAndNames(t *testing.T) {
	src := "class def if elif else match case for while return pass in not and or True False None classes\n"
	assertKinds(t, src, []Kind{
		KwClass, KwDef, KwIf, KwElif, KwElse, KwMatch, KwCase, KwFor, KwWhile,
		KwReturn, KwPass, KwIn, KwNot, KwAnd, KwOr, KwTrue, KwFalse, KwNone,
		Name, Newline, EOF,
	})
}

func TestOperators(t *testing.T) {
	src := "a == b != c <= d >= e < f > g -> h\n"
	assertKinds(t, src, []Kind{
		Name, Eq, Name, NotEq, Name, LtEq, Name, GtEq, Name, Lt, Name, Gt,
		Name, Arrow, Name, Newline, EOF,
	})
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize(`x = "open" + 'clean'` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != String || toks[2].Text != "open" {
		t.Errorf("first string = %v", toks[2])
	}
	if toks[4].Kind != String || toks[4].Text != "clean" {
		t.Errorf("second string = %v", toks[4])
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize(`s = "a\nb\t\"q\""` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := toks[2].Text, "a\nb\t\"q\""; got != want {
		t.Errorf("decoded = %q, want %q", got, want)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("s = \"abc\n"); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := Tokenize("s = \"abc"); err == nil {
		t.Error("expected unterminated string error at EOF")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("a = 27 + 3.14 + 0xFF + 1_000\n")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tok := range toks {
		if tok.Kind == Number {
			nums = append(nums, tok.Text)
		}
	}
	want := []string{"27", "3.14", "0xFF", "1_000"}
	if len(nums) != len(want) {
		t.Fatalf("numbers = %v, want %v", nums, want)
	}
	for i := range want {
		if nums[i] != want[i] {
			t.Errorf("numbers[%d] = %q, want %q", i, nums[i], want[i])
		}
	}
}

func TestInconsistentDedentIsError(t *testing.T) {
	src := "if x:\n    a()\n  b()\n"
	if _, err := Tokenize(src); err == nil {
		t.Error("expected inconsistent-dedent error")
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	for _, src := range []string{"a ? b\n", "a ! b\n", "a & b\n"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestMultipleDedentsAtEOF(t *testing.T) {
	src := "if a:\n  if b:\n    c()\n"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	dedents := 0
	for _, tok := range toks {
		if tok.Kind == Dedent {
			dedents++
		}
	}
	if dedents != 2 {
		t.Errorf("got %d dedents, want 2", dedents)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("ab = 1\ncd()\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("ab at %v", toks[0].Pos)
	}
	// cd is the 5th token (ab, =, 1, newline, cd).
	if toks[4].Pos != (Pos{Line: 2, Col: 1}) {
		t.Errorf("cd at %v, want 2:1", toks[4].Pos)
	}
	if s := toks[4].Pos.String(); s != "2:1" {
		t.Errorf("Pos.String = %q", s)
	}
}

func TestDecoratorTokens(t *testing.T) {
	assertKinds(t, "@sys([\"a\", \"b\"])\n", []Kind{
		At, Name, LParen, LBracket, String, Comma, String, RBracket, RParen, Newline, EOF,
	})
}

func TestKindStringCoverage(t *testing.T) {
	for k := EOF; k <= GtEq; k++ {
		if s := k.String(); s == "" {
			t.Errorf("Kind(%d).String is empty", k)
		}
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestTokenString(t *testing.T) {
	tests := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: Name, Text: "x"}, `"x"`},
		{Token{Kind: Number, Text: "42"}, `"42"`},
		{Token{Kind: String, Text: "s"}, `string "s"`},
		{Token{Kind: Colon}, "':'"},
	}
	for _, tt := range tests {
		if got := tt.tok.String(); got != tt.want {
			t.Errorf("Token.String = %q, want %q", got, tt.want)
		}
	}
}

func TestTabIndentation(t *testing.T) {
	src := "if x:\n\ta()\n\tb()\n"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	indents, dedents := 0, 0
	for _, tok := range toks {
		switch tok.Kind {
		case Indent:
			indents++
		case Dedent:
			dedents++
		}
	}
	if indents != 1 || dedents != 1 {
		t.Errorf("indents=%d dedents=%d, want 1/1", indents, dedents)
	}
}

package pytoken

import (
	"math/rand"
	"strings"
	"testing"
)

// The lexer is the outermost trust boundary of the pipeline: it must
// never panic, whatever bytes it is fed, and must always terminate with
// either a token stream ending in EOF or an error.

func TestTokenizeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		toks, err := Tokenize(string(b))
		if err != nil {
			continue
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			t.Fatalf("input %q: stream does not end in EOF", b)
		}
	}
}

func TestTokenizeNeverPanicsOnRandomASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alphabet := "abc def([]){}:,.@=-><!#\"'\\\n\t 0123456789"
	for i := 0; i < 2000; i++ {
		n := rng.Intn(80)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		toks, err := Tokenize(b.String())
		if err != nil {
			continue
		}
		if toks[len(toks)-1].Kind != EOF {
			t.Fatalf("input %q: no EOF", b.String())
		}
	}
}

func TestTokenizeBalancedIndentation(t *testing.T) {
	// Every successful tokenization has balanced INDENT/DEDENT.
	rng := rand.New(rand.NewSource(3))
	lines := []string{"if x:", "    a()", "        b()", "c()", "", "# c", "    d()"}
	for i := 0; i < 500; i++ {
		var b strings.Builder
		for j := 0; j < rng.Intn(10); j++ {
			b.WriteString(lines[rng.Intn(len(lines))])
			b.WriteString("\n")
		}
		toks, err := Tokenize(b.String())
		if err != nil {
			continue
		}
		depth := 0
		for _, tok := range toks {
			switch tok.Kind {
			case Indent:
				depth++
			case Dedent:
				depth--
			}
			if depth < 0 {
				t.Fatalf("input %q: dedent below zero", b.String())
			}
		}
		if depth != 0 {
			t.Fatalf("input %q: unbalanced indentation (%d)", b.String(), depth)
		}
	}
}

func TestTokenizeLongInput(t *testing.T) {
	// A deep but balanced nesting: no quadratic blowup, no stack issues.
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString(strings.Repeat(" ", i*2))
		b.WriteString("if x:\n")
	}
	b.WriteString(strings.Repeat(" ", 400))
	b.WriteString("pass\n")
	toks, err := Tokenize(b.String())
	if err != nil {
		t.Fatal(err)
	}
	indents := 0
	for _, tok := range toks {
		if tok.Kind == Indent {
			indents++
		}
	}
	if indents != 200 {
		t.Errorf("indents = %d, want 200", indents)
	}
}

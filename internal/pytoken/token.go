// Package pytoken tokenizes the MicroPython subset that Shelley analyzes.
//
// The lexer implements the essential parts of Python's lexical structure:
// logical lines delimited by NEWLINE tokens, block structure delimited by
// INDENT/DEDENT tokens computed from leading whitespace, implicit line
// joining inside parentheses/brackets, comments, string and numeric
// literals, names, keywords, and the operator/delimiter set used by the
// supported constructs (§2 of the paper: classes, decorators, methods,
// if/elif/else, match/case, for, while, return).
package pytoken

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Keyword tokens are distinguished from NAME during lexing
// so the parser can switch on them directly.
const (
	EOF Kind = iota + 1
	Newline
	Indent
	Dedent
	Name
	Number
	String

	// Keywords of the supported subset.
	KwClass
	KwDef
	KwIf
	KwElif
	KwElse
	KwMatch
	KwCase
	KwFor
	KwWhile
	KwReturn
	KwPass
	KwBreak
	KwContinue
	KwIn
	KwNot
	KwAnd
	KwOr
	KwTrue
	KwFalse
	KwNone
	KwImport
	KwFrom
	KwAs

	// Operators and delimiters.
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	LBrace   // {
	RBrace   // }
	Colon    // :
	Comma    // ,
	Dot      // .
	At       // @
	Assign   // =
	Arrow    // ->
	Plus     // +
	Minus    // -
	StarTok  // *
	Slash    // /
	Percent  // %
	Eq       // ==
	NotEq    // !=
	Lt       // <
	Gt       // >
	LtEq     // <=
	GtEq     // >=
)

var kindNames = map[Kind]string{
	EOF:        "end of file",
	Newline:    "newline",
	Indent:     "indent",
	Dedent:     "dedent",
	Name:       "name",
	Number:     "number",
	String:     "string",
	KwClass:    "'class'",
	KwDef:      "'def'",
	KwIf:       "'if'",
	KwElif:     "'elif'",
	KwElse:     "'else'",
	KwMatch:    "'match'",
	KwCase:     "'case'",
	KwFor:      "'for'",
	KwWhile:    "'while'",
	KwReturn:   "'return'",
	KwPass:     "'pass'",
	KwBreak:    "'break'",
	KwContinue: "'continue'",
	KwIn:       "'in'",
	KwNot:      "'not'",
	KwAnd:      "'and'",
	KwOr:       "'or'",
	KwTrue:     "'True'",
	KwFalse:    "'False'",
	KwNone:     "'None'",
	KwImport:   "'import'",
	KwFrom:     "'from'",
	KwAs:       "'as'",
	LParen:     "'('",
	RParen:     "')'",
	LBracket:   "'['",
	RBracket:   "']'",
	LBrace:     "'{'",
	RBrace:     "'}'",
	Colon:      "':'",
	Comma:      "','",
	Dot:        "'.'",
	At:         "'@'",
	Assign:     "'='",
	Arrow:      "'->'",
	Plus:       "'+'",
	Minus:      "'-'",
	StarTok:    "'*'",
	Slash:      "'/'",
	Percent:    "'%'",
	Eq:         "'=='",
	NotEq:      "'!='",
	Lt:         "'<'",
	Gt:         "'>'",
	LtEq:       "'<='",
	GtEq:       "'>='",
}

// String returns a human-readable description of the kind, used in
// parser diagnostics ("expected ':', found 'else'").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"class":    KwClass,
	"def":      KwDef,
	"if":       KwIf,
	"elif":     KwElif,
	"else":     KwElse,
	"match":    KwMatch,
	"case":     KwCase,
	"for":      KwFor,
	"while":    KwWhile,
	"return":   KwReturn,
	"pass":     KwPass,
	"break":    KwBreak,
	"continue": KwContinue,
	"in":       KwIn,
	"not":      KwNot,
	"and":      KwAnd,
	"or":       KwOr,
	"True":     KwTrue,
	"False":    KwFalse,
	"None":     KwNone,
	"import":   KwImport,
	"from":     KwFrom,
	"as":       KwAs,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexeme with its source position.
type Token struct {
	Kind Kind
	// Text is the raw lexeme for Name/Number tokens and the *decoded*
	// value for String tokens.
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Name, Number:
		return fmt.Sprintf("%q", t.Text)
	case String:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}

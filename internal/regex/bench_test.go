package regex

import "testing"

var benchExpr = MustParse("(a . (b + c))* . a . b . (c + a . (b + c)* . c)")

func BenchmarkDerivative(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Derivative(benchExpr, "a")
	}
}

func BenchmarkMatch(b *testing.B) {
	tr := []string{"a", "b", "a", "c", "a", "b", "c"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Match(benchExpr, tr)
	}
}

func BenchmarkEquivalent(b *testing.B) {
	r1 := MustParse("(a + b)*")
	r2 := MustParse("(a* . b*)*")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Equivalent(r1, r2) {
			b.Fatal("equal languages")
		}
	}
}

func BenchmarkParse(b *testing.B) {
	const src = "(a . (b + c))* . a . b . (c + a . (b + c)* . c)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(benchExpr, 5)
	}
}

func BenchmarkSimplify(b *testing.B) {
	raw := RawAlt(RawCat(Symbol("a"), RawCat(Symbol("b"), Empty())), RawStar(RawCat(Symbol("a"), Symbol("c"))))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simplify(raw)
	}
}

package regex

// This file implements Brzozowski derivatives, the engine behind matching
// (match.go), bounded language enumeration (enumerate.go), and decision of
// language equivalence (equiv.go).
//
// The derivative of r with respect to symbol f, written ∂f r, denotes the
// language { l | f·l ∈ L(r) }. Together with nullability (ε ∈ L(r)?) it
// gives a decision procedure for membership:
//
//	[f1,...,fn] ∈ L(r)  ⇔  Nullable(∂fn ... ∂f1 r)
//
// Because the smart constructors normalize modulo ACI of +, the set of
// iterated derivatives of any expression is finite (Brzozowski 1964), so
// derivatives also induce a deterministic finite automaton whose states
// are expressions; equiv.go exploits this.

// Nullable reports whether the empty trace belongs to L(r).
func Nullable(r Regex) bool {
	switch r := r.(type) {
	case EmptySet:
		return false
	case EmptyString:
		return true
	case Sym:
		return false
	case Cat:
		for _, p := range r.Parts {
			if !Nullable(p) {
				return false
			}
		}
		return true
	case Alt:
		for _, p := range r.Parts {
			if Nullable(p) {
				return true
			}
		}
		return false
	case Rep:
		return true
	}
	return false
}

// Derivative returns ∂f r, the Brzozowski derivative of r by symbol f,
// in normal form.
func Derivative(r Regex, f string) Regex {
	switch r := r.(type) {
	case EmptySet, EmptyString:
		return emptySet
	case Sym:
		if r.Name == f {
			return emptyString
		}
		return emptySet
	case Cat:
		// ∂f (p1·rest) = (∂f p1)·rest  +  [p1 nullable] ∂f rest
		head := r.Parts[0]
		rest := Concat(r.Parts[1:]...)
		d := Concat(Derivative(head, f), rest)
		if Nullable(head) {
			d = Union(d, Derivative(rest, f))
		}
		return d
	case Alt:
		parts := make([]Regex, len(r.Parts))
		for i, p := range r.Parts {
			parts[i] = Derivative(p, f)
		}
		return Union(parts...)
	case Rep:
		return Concat(Derivative(r.Inner, f), r)
	}
	return emptySet
}

// DeriveTrace applies Derivative successively for each symbol of the
// trace, returning the residual expression.
func DeriveTrace(r Regex, trace []string) Regex {
	for _, f := range trace {
		r = Derivative(r, f)
		if _, dead := r.(EmptySet); dead {
			return emptySet
		}
	}
	return r
}

// Match reports whether the trace belongs to L(r).
func Match(r Regex, trace []string) bool {
	return Nullable(DeriveTrace(r, trace))
}

// MatchPrefix reports whether the trace is a prefix of some member of
// L(r), i.e. whether the residual language after the trace is non-empty.
func MatchPrefix(r Regex, trace []string) bool {
	return !IsEmptyLanguage(DeriveTrace(r, trace))
}

package regex

import "sort"

// Enumerate returns every trace of L(r) whose length is at most maxLen,
// in shortlex order (shorter traces first, ties broken lexicographically
// by symbol). It works by breadth-first exploration of the derivative
// automaton of r, so the cost is bounded by the number of reachable
// derivative states times the alphabet size times maxLen — independent of
// the (possibly infinite) language size beyond the length bound.
//
// Enumerate is the workhorse of the executable soundness/completeness
// tests (Theorems 1 and 2): both the trace semantics and the inferred
// expression are enumerated up to a bound and compared as sets.
func Enumerate(r Regex, maxLen int) [][]string {
	alphabet := Alphabet(r)
	var out [][]string

	type node struct {
		r     Regex
		trace []string
	}
	frontier := []node{{r: r, trace: nil}}
	for depth := 0; depth <= maxLen; depth++ {
		// Collect accepting prefixes at this depth.
		for _, n := range frontier {
			if Nullable(n.r) {
				out = append(out, n.trace)
			}
		}
		if depth == maxLen {
			break
		}
		next := make([]node, 0, len(frontier))
		for _, n := range frontier {
			for _, f := range alphabet {
				d := Derivative(n.r, f)
				if IsEmptyLanguage(d) {
					continue
				}
				trace := make([]string, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = f
				next = append(next, node{r: d, trace: trace})
			}
		}
		frontier = next
	}
	sortTraces(out)
	return out
}

// CountAtMost returns the number of distinct traces in L(r) of length at
// most maxLen, without materializing them. It deduplicates by derivative
// state counting paths in the determinized automaton.
func CountAtMost(r Regex, maxLen int) int {
	alphabet := Alphabet(r)
	// current maps derivative-state key -> (expression, number of distinct
	// traces of the current length reaching it).
	type entry struct {
		r Regex
		n int
	}
	current := map[string]entry{Key(r): {r: r, n: 1}}
	total := 0
	for depth := 0; ; depth++ {
		for _, e := range current {
			if Nullable(e.r) {
				total += e.n
			}
		}
		if depth == maxLen {
			return total
		}
		next := make(map[string]entry, len(current))
		for _, e := range current {
			for _, f := range alphabet {
				d := Derivative(e.r, f)
				if IsEmptyLanguage(d) {
					continue
				}
				k := Key(d)
				ne := next[k]
				ne.r = d
				ne.n += e.n
				next[k] = ne
			}
		}
		if len(next) == 0 {
			return total
		}
		current = next
	}
}

// ShortestTrace returns a shortest member of L(r) and true, or nil and
// false when L(r) is empty. Among traces of minimal length it returns the
// lexicographically least one, making counterexample output deterministic.
func ShortestTrace(r Regex) ([]string, bool) {
	alphabet := Alphabet(r)
	type node struct {
		r     Regex
		trace []string
	}
	visited := map[string]struct{}{Key(r): {}}
	frontier := []node{{r: r}}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			if Nullable(n.r) {
				return n.trace, true
			}
			for _, f := range alphabet {
				d := Derivative(n.r, f)
				if IsEmptyLanguage(d) {
					continue
				}
				k := Key(d)
				if _, ok := visited[k]; ok {
					continue
				}
				visited[k] = struct{}{}
				trace := make([]string, len(n.trace)+1)
				copy(trace, n.trace)
				trace[len(n.trace)] = f
				next = append(next, node{r: d, trace: trace})
			}
		}
		frontier = next
	}
	return nil, false
}

// sortTraces orders traces in shortlex order.
func sortTraces(ts [][]string) {
	sort.Slice(ts, func(i, j int) bool { return lessTrace(ts[i], ts[j]) })
}

func lessTrace(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TraceSet builds a set keyed by an unambiguous encoding of each trace.
// It is shared by the theorem tests to compare enumerations.
func TraceSet(ts [][]string) map[string]struct{} {
	set := make(map[string]struct{}, len(ts))
	for _, t := range ts {
		set[TraceKey(t)] = struct{}{}
	}
	return set
}

// TraceKey encodes a trace unambiguously (symbols may contain any
// character except the NUL separator used here).
func TraceKey(t []string) string {
	key := ""
	for _, f := range t {
		key += f + "\x00"
	}
	return key
}

package regex

// Language equivalence and inclusion, decided by bisimulation over
// Brzozowski derivatives (Hopcroft–Karp style union–find on pairs).
//
// Because the smart constructors normalize modulo associativity,
// commutativity, and idempotence of +, the set of derivatives of an
// expression is finite, so the pair exploration below terminates.

// Equivalent reports whether L(a) = L(b).
func Equivalent(a, b Regex) bool {
	_, eq := Distinguish(a, b)
	return eq
}

// Distinguish returns (nil, true) when L(a) = L(b); otherwise it returns
// a shortest trace on which the two languages disagree and false. Among
// shortest distinguishing traces the lexicographically least is returned,
// so output is deterministic.
func Distinguish(a, b Regex) ([]string, bool) {
	alphabet := unionAlphabet(a, b)

	type pair struct {
		a, b  Regex
		trace []string
	}
	seen := map[string]struct{}{pairKey(a, b): {}}
	frontier := []pair{{a: a, b: b}}
	for len(frontier) > 0 {
		var next []pair
		for _, p := range frontier {
			if Nullable(p.a) != Nullable(p.b) {
				return p.trace, false
			}
			for _, f := range alphabet {
				da, db := Derivative(p.a, f), Derivative(p.b, f)
				if IsEmptyLanguage(da) && IsEmptyLanguage(db) {
					continue
				}
				k := pairKey(da, db)
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				trace := make([]string, len(p.trace)+1)
				copy(trace, p.trace)
				trace[len(p.trace)] = f
				next = append(next, pair{a: da, b: db, trace: trace})
			}
		}
		frontier = next
	}
	return nil, true
}

// Subset reports whether L(a) ⊆ L(b).
func Subset(a, b Regex) bool {
	_, ok := CounterexampleSubset(a, b)
	return ok
}

// CounterexampleSubset returns (nil, true) when L(a) ⊆ L(b); otherwise it
// returns a shortest trace in L(a) \ L(b) and false.
func CounterexampleSubset(a, b Regex) ([]string, bool) {
	alphabet := unionAlphabet(a, b)

	type pair struct {
		a, b  Regex
		trace []string
	}
	seen := map[string]struct{}{pairKey(a, b): {}}
	frontier := []pair{{a: a, b: b}}
	for len(frontier) > 0 {
		var next []pair
		for _, p := range frontier {
			if Nullable(p.a) && !Nullable(p.b) {
				return p.trace, false
			}
			for _, f := range alphabet {
				da := Derivative(p.a, f)
				if IsEmptyLanguage(da) {
					// Nothing in L(a) continues this way; inclusion
					// cannot fail down this branch.
					continue
				}
				db := Derivative(p.b, f)
				k := pairKey(da, db)
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				trace := make([]string, len(p.trace)+1)
				copy(trace, p.trace)
				trace[len(p.trace)] = f
				next = append(next, pair{a: da, b: db, trace: trace})
			}
		}
		frontier = next
	}
	return nil, true
}

func pairKey(a, b Regex) string { return Key(a) + "|" + Key(b) }

func unionAlphabet(a, b Regex) []string {
	set := make(map[string]struct{})
	collectAlphabet(a, set)
	collectAlphabet(b, set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	// Insertion sort: alphabets are tiny (method names of one class).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

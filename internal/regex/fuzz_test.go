package regex

import "testing"

// FuzzParse checks the regex parser's totality and the print/parse
// fixpoint: once parsed, printing and reparsing is stable.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"", "0", "1", "a", "a . b", "a + b", "a*", "(a . (b . 0 + c))*",
		"a.open . b.close", "((a))", "a b c", "a**",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Parse(src)
		if err != nil {
			return
		}
		printed := r.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q does not reparse: %v", printed, err)
		}
		if !Equal(back, r) {
			t.Fatalf("print/parse not stable: %q -> %q", printed, back.String())
		}
	})
}

package regex

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads an expression in the concrete syntax produced by String:
//
//	expr   ::= term ("+" term)*          union
//	term   ::= factor ("." factor)*      concatenation (explicit dot)
//	factor ::= atom "*"*                 Kleene star (postfix)
//	atom   ::= "0" | "1" | ident | "(" expr ")"
//	ident  ::= letter (letter | digit | "_" | "." )*   method labels, e.g. a.open
//
// "0" denotes ∅ and "1" denotes ε. An identifier may contain dots (as in
// the qualified operation name "a.open"); the concatenation operator dot
// must therefore be surrounded by whitespace or parentheses boundaries to
// be recognized as an operator — exactly the format String emits (" . ").
func Parse(src string) (Regex, error) {
	p := &parser{toks: lex(src), src: src}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("regex %q: unexpected trailing input at %q", src, p.peek().text)
	}
	return r, nil
}

// MustParse is Parse for test expectations and package-internal constants;
// it panics on malformed input.
func MustParse(src string) Regex {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokZero
	tokOne
	tokPlus
	tokDot
	tokStar
	tokLParen
	tokRParen
	tokErr
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, text: "+", pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, text: "*", pos: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '.':
			toks = append(toks, token{kind: tokDot, text: ".", pos: i})
			i++
		case c == '0' && !followsIdentChar(src, i):
			toks = append(toks, token{kind: tokZero, text: "0", pos: i})
			i++
		case c == '1' && !followsIdentChar(src, i):
			toks = append(toks, token{kind: tokOne, text: "1", pos: i})
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(src, j) {
				j++
			}
			// Trim a trailing dot: "a.open." parses as ident "a.open"
			// followed by the dot operator.
			text := src[i:j]
			trimmed := strings.TrimRight(text, ".")
			j -= len(text) - len(trimmed)
			toks = append(toks, token{kind: tokIdent, text: trimmed, pos: i})
			i = j
		default:
			toks = append(toks, token{kind: tokErr, text: string(c), pos: i})
			i++
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks
}

func isIdentStart(c rune) bool { return unicode.IsLetter(c) || c == '_' }

// isIdentPart treats an interior dot as part of the identifier only when
// it is immediately followed by another identifier character ("a.open"),
// so that "a . b" lexes as ident, dot-operator, ident.
func isIdentPart(src string, i int) bool {
	c := rune(src[i])
	if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
		return true
	}
	if c == '.' && i+1 < len(src) {
		n := rune(src[i+1])
		return unicode.IsLetter(n) || unicode.IsDigit(n) || n == '_'
	}
	return false
}

func followsIdentChar(src string, i int) bool {
	if i+1 >= len(src) {
		return false
	}
	n := rune(src[i+1])
	return unicode.IsLetter(n) || unicode.IsDigit(n) || n == '_' || n == '.'
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) parseExpr() (Regex, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	parts := []Regex{first}
	for p.peek().kind == tokPlus {
		p.next()
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		parts = append(parts, t)
	}
	return Union(parts...), nil
}

func (p *parser) parseTerm() (Regex, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	parts := []Regex{first}
	for {
		switch p.peek().kind {
		case tokDot:
			p.next()
			f, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			parts = append(parts, f)
		case tokIdent, tokZero, tokOne, tokLParen:
			// Juxtaposition also concatenates: "a b" == "a . b".
			f, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			parts = append(parts, f)
		default:
			return Concat(parts...), nil
		}
	}
}

func (p *parser) parseFactor() (Regex, error) {
	a, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokStar {
		p.next()
		a = Star(a)
	}
	return a, nil
}

func (p *parser) parseAtom() (Regex, error) {
	t := p.next()
	switch t.kind {
	case tokZero:
		return Empty(), nil
	case tokOne:
		return Epsilon(), nil
	case tokIdent:
		return Symbol(t.text), nil
	case tokLParen:
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != tokRParen {
			return nil, fmt.Errorf("regex %q: expected ')' at offset %d, found %q", p.src, closing.pos, closing.text)
		}
		return inner, nil
	case tokEOF:
		return nil, fmt.Errorf("regex %q: unexpected end of input", p.src)
	default:
		return nil, fmt.Errorf("regex %q: unexpected token %q at offset %d", p.src, t.text, t.pos)
	}
}

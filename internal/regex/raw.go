package regex

// Raw constructors build expression nodes without any normalization.
//
// The behavior-inference function ⟦p⟧ of the paper (internal/core) is a
// purely syntactic definition: for instance ⟦return⟧ contributes a ∅
// factor, so ⟦if(★){b(); return}else{c()}⟧ literally produces (b·∅)+c.
// To reproduce the paper's Example 3 output verbatim, inference builds
// raw nodes and leaves simplification as a separate, optional pass
// (Simplify). All algorithms in this package (Nullable, Derivative,
// Enumerate, Equivalent, ...) are defined structurally and remain correct
// on raw trees; derivatives rebuild their results through the smart
// constructors, so the derivative state space stays finite either way.

// RawCat builds the node a·b verbatim, flattening nothing.
func RawCat(a, b Regex) Regex { return Cat{Parts: []Regex{a, b}} }

// RawAlt builds the node a+b verbatim, preserving operand order.
func RawAlt(a, b Regex) Regex { return Alt{Parts: []Regex{a, b}} }

// RawStar builds the node r* verbatim.
func RawStar(r Regex) Regex { return Rep{Inner: r} }

// RawAlts folds rs into a right-nested raw union r1+(r2+(...)). With no
// arguments it returns ∅ and with one argument it returns it unchanged.
func RawAlts(rs ...Regex) Regex {
	switch len(rs) {
	case 0:
		return Empty()
	case 1:
		return rs[0]
	}
	out := rs[len(rs)-1]
	for i := len(rs) - 2; i >= 0; i-- {
		out = RawAlt(rs[i], out)
	}
	return out
}

// Simplify rebuilds r bottom-up through the smart constructors, putting
// it into the package normal form (flattened, ∅/ε laws applied, unions
// sorted and deduplicated). L(Simplify(r)) = L(r).
func Simplify(r Regex) Regex {
	switch r := r.(type) {
	case EmptySet, EmptyString, Sym:
		return r
	case Cat:
		parts := make([]Regex, len(r.Parts))
		for i, p := range r.Parts {
			parts[i] = Simplify(p)
		}
		return Concat(parts...)
	case Alt:
		parts := make([]Regex, len(r.Parts))
		for i, p := range r.Parts {
			parts[i] = Simplify(p)
		}
		return Union(parts...)
	case Rep:
		return Star(Simplify(r.Inner))
	}
	return r
}
